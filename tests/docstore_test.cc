#include "docstore/document_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace quarry::docstore {
namespace {

json::Value Doc(const std::string& kind, int n) {
  json::Object obj;
  obj.emplace_back("kind", json::Value(kind));
  obj.emplace_back("n", json::Value(n));
  return json::Value(std::move(obj));
}

TEST(CollectionTest, InsertAssignsSequentialIds) {
  Collection c("xrq");
  auto id1 = c.Insert(Doc("a", 1));
  auto id2 = c.Insert(Doc("a", 2));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, "xrq-1");
  EXPECT_EQ(*id2, "xrq-2");
  EXPECT_EQ(c.size(), 2u);
}

TEST(CollectionTest, InsertHonoursExplicitId) {
  Collection c("xrq");
  json::Value doc = Doc("a", 1);
  doc.Set("_id", json::Value("ir_revenue"));
  auto id = c.Insert(doc);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, "ir_revenue");
  EXPECT_TRUE(c.Insert(doc).status().IsAlreadyExists());
}

TEST(CollectionTest, InsertRejectsNonObjects) {
  Collection c("x");
  EXPECT_TRUE(c.Insert(json::Value(1)).status().IsInvalidArgument());
}

TEST(CollectionTest, GetAndRemove) {
  Collection c("x");
  auto id = c.Insert(Doc("a", 7));
  ASSERT_TRUE(id.ok());
  auto doc = c.Get(*id);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("n")->as_int(), 7);
  EXPECT_TRUE(c.Remove(*id).ok());
  EXPECT_TRUE(c.Get(*id).status().IsNotFound());
  EXPECT_TRUE(c.Remove(*id).IsNotFound());
}

TEST(CollectionTest, UpsertInsertsThenReplaces) {
  Collection c("x");
  ASSERT_TRUE(c.Upsert("k", Doc("a", 1)).ok());
  ASSERT_TRUE(c.Upsert("k", Doc("a", 2)).ok());
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.Get("k")->Find("n")->as_int(), 2);
  EXPECT_EQ(c.Get("k")->GetString("_id"), "k");
}

TEST(CollectionTest, FindByFieldEquality) {
  Collection c("x");
  ASSERT_TRUE(c.Insert(Doc("xmd", 1)).ok());
  ASSERT_TRUE(c.Insert(Doc("xlm", 2)).ok());
  ASSERT_TRUE(c.Insert(Doc("xmd", 3)).ok());
  auto hits = c.Find("kind", json::Value("xmd"));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].Find("n")->as_int(), 1);
  EXPECT_EQ(hits[1].Find("n")->as_int(), 3);
  EXPECT_TRUE(c.Find("kind", json::Value("nope")).empty());
  EXPECT_TRUE(c.Find("ghost_field", json::Value(1)).empty());
}

TEST(DocumentStoreTest, GetOrCreateAndDrop) {
  DocumentStore store;
  Collection* c = store.GetOrCreate("designs");
  EXPECT_EQ(c, store.GetOrCreate("designs"));
  EXPECT_TRUE(store.Get("designs").ok());
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
  EXPECT_EQ(store.CollectionNames(),
            (std::vector<std::string>{"designs"}));
  EXPECT_TRUE(store.Drop("designs").ok());
  EXPECT_TRUE(store.Drop("designs").IsNotFound());
}

TEST(DocumentStoreTest, SaveAndLoadDirectory) {
  std::string dir =
      std::filesystem::temp_directory_path() / "quarry_docstore_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DocumentStore store;
  ASSERT_TRUE(store.GetOrCreate("xrq")->Insert(Doc("xrq", 1)).ok());
  ASSERT_TRUE(store.GetOrCreate("xrq")->Insert(Doc("xrq", 2)).ok());
  ASSERT_TRUE(store.GetOrCreate("xmd")->Upsert("unified", Doc("xmd", 3)).ok());
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());

  auto loaded = DocumentStore::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->Get("xrq").ok());
  EXPECT_EQ((*loaded->Get("xrq"))->size(), 2u);
  auto doc = (*loaded->Get("xmd"))->Get("unified");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("n")->as_int(), 3);

  std::filesystem::remove_all(dir);
}

TEST(DocumentStoreTest, SaveToMissingDirectoryFails) {
  DocumentStore store;
  EXPECT_TRUE(store.SaveToDirectory("/nonexistent/quarry").IsNotFound());
  EXPECT_TRUE(
      DocumentStore::LoadFromDirectory("/nonexistent/quarry").status()
          .IsNotFound());
}

}  // namespace
}  // namespace quarry::docstore
