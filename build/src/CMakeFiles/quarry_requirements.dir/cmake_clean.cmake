file(REMOVE_RECURSE
  "CMakeFiles/quarry_requirements.dir/requirements/elicitor.cc.o"
  "CMakeFiles/quarry_requirements.dir/requirements/elicitor.cc.o.d"
  "CMakeFiles/quarry_requirements.dir/requirements/query_parser.cc.o"
  "CMakeFiles/quarry_requirements.dir/requirements/query_parser.cc.o.d"
  "CMakeFiles/quarry_requirements.dir/requirements/requirement.cc.o"
  "CMakeFiles/quarry_requirements.dir/requirements/requirement.cc.o.d"
  "CMakeFiles/quarry_requirements.dir/requirements/workload.cc.o"
  "CMakeFiles/quarry_requirements.dir/requirements/workload.cc.o.d"
  "libquarry_requirements.a"
  "libquarry_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
