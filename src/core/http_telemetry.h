#ifndef QUARRY_CORE_HTTP_TELEMETRY_H_
#define QUARRY_CORE_HTTP_TELEMETRY_H_

#include <memory>

#include "common/result.h"
#include "obs/http_exporter.h"

namespace quarry::core {

class Quarry;

/// \brief Starts the telemetry HTTP listener for `quarry`
/// (docs/OBSERVABILITY.md §"HTTP endpoints & request profiles").
///
/// The returned exporter serves five endpoints:
///   /metrics       Prometheus text exposition (the full registry)
///   /metrics.json  the same registry as a JSON snapshot
///   /healthz       200 "ok" JSON while a warehouse generation is being
///                  served, 503 otherwise; carries the serving generation,
///                  publish-failure count and the startup recovery report
///   /statusz       build info, uptime, admission-lane load, warehouse
///                  stats and request-log totals
///   /requestz      recent request-completion records + promoted
///                  slow-request profiles from the event log
///
/// `quarry` must outlive the exporter (Stop() it first). Defaults bind
/// loopback on an ephemeral port; read it back with exporter->port().
Result<std::unique_ptr<obs::HttpExporter>> StartTelemetryServer(
    Quarry* quarry, obs::HttpExporterOptions options = {});

}  // namespace quarry::core

#endif  // QUARRY_CORE_HTTP_TELEMETRY_H_
