file(REMOVE_RECURSE
  "CMakeFiles/deployment_targets.dir/deployment_targets.cpp.o"
  "CMakeFiles/deployment_targets.dir/deployment_targets.cpp.o.d"
  "deployment_targets"
  "deployment_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
