#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/prng.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"

namespace quarry {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::NotFound("concept 'Part'");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "concept 'Part'");
  EXPECT_EQ(s.ToString(), "NotFound: concept 'Part'");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kValidationError, StatusCode::kUnsatisfiable,
        StatusCode::kExecutionError, StatusCode::kUnsupported,
        StatusCode::kInternal}) {
    names.insert(StatusCodeToString(code));
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST(StatusTest, WithContextPrependsAndKeepsCode) {
  Status s = Status::ParseError("bad tag").WithContext("xmd");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(s.message(), "xmd: bad tag");
  EXPECT_TRUE(Status::OK().WithContext("noop").ok());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    QUARRY_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusIsNormalizedToInternal) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<std::string> {
    if (fail) return Status::NotFound("x");
    return std::string("value");
  };
  auto use = [&](bool fail) -> Result<size_t> {
    QUARRY_ASSIGN_OR_RETURN(std::string s, make(fail));
    return s.size();
  };
  ASSERT_TRUE(use(false).ok());
  EXPECT_EQ(*use(false), 5u);
  EXPECT_TRUE(use(true).status().IsNotFound());
}

TEST(StrUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtilTest, JoinIsInverseOfSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("LineItem"), "lineitem");
  EXPECT_EQ(ToUpper("LineItem"), "LINEITEM");
  EXPECT_TRUE(EqualsIgnoreCase("Revenue", "REVENUE"));
  EXPECT_FALSE(EqualsIgnoreCase("Revenue", "Revenues"));
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("fact_table_revenue", "fact_"));
  EXPECT_FALSE(StartsWith("fact", "fact_"));
  EXPECT_TRUE(EndsWith("DATASTORE_Partsupp", "Partsupp"));
  EXPECT_FALSE(EndsWith("x", "xx"));
}

TEST(StrUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "_"), "a_b_c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("xyz", "q", "r"), "xyz");
}

TEST(StrUtilTest, NameSimilarityBasics) {
  EXPECT_DOUBLE_EQ(NameSimilarity("revenue", "revenue"), 1.0);
  EXPECT_DOUBLE_EQ(NameSimilarity("Revenue", "REVENUE"), 1.0);
  EXPECT_GT(NameSimilarity("fact_table_revenue", "fact_table_netprofit"),
            NameSimilarity("fact_table_revenue", "dim_customer"));
  EXPECT_EQ(NameSimilarity("ab", "xy"), 0.0);
}

TEST(StrUtilTest, NameSimilarityIgnoresUnderscores) {
  EXPECT_DOUBLE_EQ(NameSimilarity("order_date", "orderdate"), 1.0);
}

TEST(PrngTest, DeterministicAcrossInstances) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(PrngTest, UniformStaysInRange) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(PrngTest, UniformDoubleInUnitInterval) {
  Prng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, WeightedRespectsZeroWeight) {
  Prng rng(5);
  std::vector<double> weights{0.0, 1.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.Weighted(weights), 1u);
}

TEST(PrngTest, WordHasRequestedLength) {
  Prng rng(1);
  EXPECT_EQ(rng.Word(12).size(), 12u);
  for (char c : rng.Word(64)) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace quarry
