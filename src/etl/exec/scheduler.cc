#include "etl/exec/scheduler.h"

#include <algorithm>
#include <functional>
#include <thread>
#include <utility>

#include "common/prng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace quarry::etl {

namespace {

// Scheduler-owned metric families.
obs::Counter& ParallelRunsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_scheduler_parallel_runs_total",
      "ETL flow executions dispatched to the wavefront scheduler");
  return c;
}

obs::Gauge& ReadyDepthGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Instance().gauge(
      "quarry_etl_scheduler_ready_depth",
      "Nodes currently sitting in the scheduler's ready queue");
  return g;
}

obs::Histogram& WavefrontWidthHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Instance().histogram(
      "quarry_etl_scheduler_wavefront_width",
      "Runnable plus running nodes observed at each scheduling step",
      /*bounds=*/{1, 2, 4, 8, 16, 32, 64});
  return h;
}

obs::Counter& WorkerNodesCounter(int worker) {
  return obs::MetricsRegistry::Instance().counter(
      "quarry_etl_scheduler_worker_nodes_total",
      "Nodes executed per scheduler worker",
      {{"worker", std::to_string(worker)}});
}

obs::Counter& WorkerBusyCounter(int worker) {
  return obs::MetricsRegistry::Instance().counter(
      "quarry_etl_scheduler_worker_busy_micros_total",
      "Wall time each scheduler worker spent executing nodes, in "
      "microseconds",
      {{"worker", std::to_string(worker)}});
}

// Shared per-node families: looked up by name, so serial and parallel runs
// feed the same series the serial path caches in executor.cc.
obs::Counter& RowsInCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_rows_in_total", "Rows entering ETL operators");
  return c;
}

obs::Counter& RowsOutCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_rows_out_total", "Rows produced by ETL operators");
  return c;
}

obs::Counter& RetryCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_node_retries_total",
      "Extra attempts beyond the first across all ETL nodes");
  return c;
}

obs::Counter& RunFailureCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_run_failures_total",
      "ETL flow executions that returned an error");
  return c;
}

// The reason instances were registered eagerly by RunInternal's prologue
// before the run was dispatched here.
void CountLifecycleAbort(const Status& status) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  if (status.IsCancelled()) {
    reg.counter("quarry_etl_lifecycle_aborts_total", "",
                {{"reason", "cancelled"}})
        .Increment();
  } else if (status.IsDeadlineExceeded()) {
    reg.counter("quarry_etl_lifecycle_aborts_total", "",
                {{"reason", "deadline"}})
        .Increment();
  } else if (status.IsResourceExhausted()) {
    reg.counter("quarry_etl_lifecycle_aborts_total", "",
                {{"reason", "budget"}})
        .Increment();
  }
}

void CountNodeDone(const Node& node, int64_t rows_out, double micros) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  obs::Labels op_label{{"op", OpTypeToString(node.type)}};
  reg.counter("quarry_etl_nodes_executed_total",
              "ETL operator executions by operator type", op_label)
      .Increment();
  reg.histogram("quarry_etl_node_micros",
                "Wall time per ETL operator execution in microseconds",
                /*bounds=*/{}, op_label)
      .Observe(micros);
  RowsOutCounter().Increment(rows_out);
}

}  // namespace

Result<ExecutionReport> Scheduler::Run(
    const Flow& flow, const std::vector<std::string>& order,
    const RetryPolicy& retry, Checkpoint* checkpoint, const ExecContext* ctx,
    std::set<std::string> completed, std::map<std::string, Dataset> done,
    std::map<std::string, size_t> remaining_consumers, ExecutionReport report,
    bool resumed_any, Timer total) {
  flow_ = &flow;
  retry_ = retry;
  checkpoint_ = checkpoint;
  ctx_ = ctx;
  completed_ = std::move(completed);
  done_ = std::move(done);
  remaining_consumers_ = std::move(remaining_consumers);
  report_ = std::move(report);

  // Dependency counters over the uncompleted nodes: flow edges whose
  // producer has not completed, plus one chain edge per loader pair so
  // target writes stay in topological order (class comment).
  succs_ = flow.SuccessorLists();
  preds_.clear();
  deps_.clear();
  pending_ = 0;
  std::string prev_loader;
  for (const std::string& id : order) {
    if (completed_.count(id) > 0) continue;
    ++pending_;
    std::vector<std::string> preds = flow.Predecessors(id);
    size_t unmet = 0;
    for (const std::string& pred : preds) {
      if (completed_.count(pred) == 0) ++unmet;
    }
    preds_[id] = std::move(preds);
    deps_[id] = unmet;
    if (flow.GetNode(id).value()->type == OpType::kLoader) {
      if (!prev_loader.empty()) {
        succs_[prev_loader].push_back(id);
        ++deps_[id];
      }
      prev_loader = id;
    }
  }
  for (const std::string& id : order) {
    auto it = deps_.find(id);
    if (it != deps_.end() && it->second == 0) ready_.push_back(id);
  }

  if (pending_ == 0) {  // Resume of an already-complete checkpoint.
    report_.total_millis = total.ElapsedMillis();
    report_.recovered = resumed_any || !report_.retried_nodes.empty();
    return std::move(report_);
  }

  ParallelRunsCounter().Increment();
  ReadyDepthGauge().Set(static_cast<double>(ready_.size()));
  WavefrontWidthHistogram().Observe(static_cast<double>(ready_.size()));

  const size_t worker_count = std::min(
      static_cast<size_t>(std::max(1, options_.max_workers)), pending_);
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back([this, w] { Worker(static_cast<int>(w)); });
  }
  for (std::thread& t : workers) t.join();
  ReadyDepthGauge().Set(0);

  if (abort_) {
    CountLifecycleAbort(failure_.status);
    if (checkpoint_ != nullptr) {
      checkpoint_->failed_node = failure_.node_id;
      // The run is abandoned, so the live intermediates move into the
      // checkpoint wholesale — the success path never copies a dataset.
      checkpoint_->datasets = std::move(done_);
    }
    RunFailureCounter().Increment();
    std::string context = "node '" + failure_.node_id + "' (" +
                          OpTypeToString(failure_.type) + ")";
    if (failure_.attempts > 1) {
      context += " after " + std::to_string(failure_.attempts) + " attempts";
    }
    return failure_.status.WithContext(context);
  }
  report_.total_millis = total.ElapsedMillis();
  report_.recovered = resumed_any || !report_.retried_nodes.empty();
  return std::move(report_);
}

void Scheduler::Worker(int worker_index) {
  obs::Counter& nodes_done = WorkerNodesCounter(worker_index);
  obs::Counter& busy_micros = WorkerBusyCounter(worker_index);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock,
             [&] { return abort_ || !ready_.empty() || pending_ == 0; });
    // On abort the queue was cleared, so either exit condition means no
    // more work will ever appear for this worker.
    if (abort_ || ready_.empty()) return;

    std::string id = std::move(ready_.front());
    ready_.pop_front();
    ReadyDepthGauge().Set(static_cast<double>(ready_.size()));
    const Node& node = *flow_->GetNode(id).value();
    // Resolve inputs to pointers while holding the lock: map nodes are
    // stable under unrelated insert/erase, and a dataset is only erased
    // once its last consumer *completed*, which this node has not.
    std::vector<const Dataset*> inputs;
    int64_t rows_in = 0;
    for (const std::string& pred : preds_.at(id)) {
      const Dataset& dataset = done_.at(pred);
      inputs.push_back(&dataset);
      rows_in += dataset.row_count();
    }
    ++in_flight_;
    lock.unlock();

    RowsInCounter().Increment(rows_in);
    Timer node_timer;
    Executor::NodeAttempt outcome;
    {
      QUARRY_NAMED_SPAN(node_span,
                        std::string("etl.node.") + OpTypeToString(node.type));
      QUARRY_SPAN_ATTR(node_span, "node_id", id);
      QUARRY_SPAN_ATTR(node_span, "worker",
                       static_cast<int64_t>(worker_index));
      // Per-node jitter stream: which worker runs a node (or how many nodes
      // retried before it) must not change the node's backoff sequence, so
      // the stream is keyed by node id. The serial path keeps its original
      // shared stream for bit-compatibility with the determinism tests.
      Prng backoff_prng(retry_.jitter_seed ^
                        static_cast<uint64_t>(std::hash<std::string>{}(id)));
      outcome = executor_->ExecuteNode(node, inputs, rows_in, retry_, ctx_,
                                       /*protect_loader_always=*/true,
                                       &backoff_prng, &backoff_, options_);
      if (outcome.result.ok()) {
        QUARRY_SPAN_ATTR(node_span, "rows_in", rows_in);
        QUARRY_SPAN_ATTR(node_span, "rows_out", outcome.result->row_count());
        QUARRY_SPAN_ATTR(node_span, "attempts", outcome.attempts);
      } else {
        QUARRY_SPAN_ATTR(node_span, "error",
                         outcome.result.status().message());
      }
    }
    const double node_millis = node_timer.ElapsedMillis();
    nodes_done.Increment();
    busy_micros.Increment(static_cast<int64_t>(node_millis * 1000.0));
    if (outcome.attempts > 1) RetryCounter().Increment(outcome.attempts - 1);

    lock.lock();
    --in_flight_;
    if (!outcome.result.ok()) {
      if (!abort_) {  // First error wins; later failures are drained.
        abort_ = true;
        failure_.status = outcome.result.status();
        failure_.node_id = id;
        failure_.type = node.type;
        failure_.attempts = outcome.attempts;
        ready_.clear();
        ReadyDepthGauge().Set(0);
      }
      cv_.notify_all();
      continue;
    }
    CompleteNode(id, node, rows_in, node_millis, &outcome);
    cv_.notify_all();
  }
}

void Scheduler::CompleteNode(const std::string& id, const Node& node,
                             int64_t rows_in, double node_millis,
                             Executor::NodeAttempt* outcome) {
  if (outcome->loader.fired) {
    report_.loaded[outcome->loader.table] += outcome->loader.rows;
  }
  NodeStats stats;
  stats.node_id = id;
  stats.type = node.type;
  stats.rows_in = rows_in;
  stats.rows_out = outcome->result->row_count();
  stats.millis = node_millis;
  stats.attempts = outcome->attempts;
  CountNodeDone(node, stats.rows_out, node_millis * 1000.0);
  report_.rows_processed += rows_in;
  report_.attempts += outcome->attempts;
  if (outcome->attempts > 1) report_.retried_nodes.push_back(id);
  report_.nodes.push_back(std::move(stats));
  completed_.insert(id);
  --pending_;
  for (const std::string& pred : preds_.at(id)) {
    if (--remaining_consumers_[pred] == 0) done_.erase(pred);
  }
  if (remaining_consumers_[id] > 0) {
    done_.emplace(id, std::move(*outcome->result));
  }
  if (checkpoint_ != nullptr) {
    checkpoint_->completed.push_back(id);
    checkpoint_->loaded = report_.loaded;
  }
  // While draining after an abort the completion above is still recorded —
  // this node's loader writes already landed, so forgetting it would make
  // Resume re-run it — but successors must never start.
  if (abort_) return;
  size_t newly_ready = 0;
  for (const std::string& succ : succs_.at(id)) {
    if (--deps_[succ] == 0) {
      ready_.push_back(succ);
      ++newly_ready;
    }
  }
  if (newly_ready > 0) {
    ReadyDepthGauge().Set(static_cast<double>(ready_.size()));
    WavefrontWidthHistogram().Observe(
        static_cast<double>(ready_.size() + in_flight_));
  }
}

}  // namespace quarry::etl
