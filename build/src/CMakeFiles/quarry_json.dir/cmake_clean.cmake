file(REMOVE_RECURSE
  "CMakeFiles/quarry_json.dir/json/json.cc.o"
  "CMakeFiles/quarry_json.dir/json/json.cc.o.d"
  "CMakeFiles/quarry_json.dir/json/xml_json.cc.o"
  "CMakeFiles/quarry_json.dir/json/xml_json.cc.o.d"
  "libquarry_json.a"
  "libquarry_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
