# Empty compiler generated dependencies file for quarry_integrator.
# This may be replaced when dependencies are built.
