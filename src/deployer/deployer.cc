#include "deployer/deployer.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <thread>

#include "common/timer.h"
#include "deployer/pdi_generator.h"
#include "deployer/sql_generator.h"
#include "etl/equivalence.h"
#include "json/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/sql.h"

namespace quarry::deployer {

namespace {

obs::Counter& DeployCounter(const char* family, const char* help) {
  return obs::MetricsRegistry::Instance().counter(family, help);
}

/// Observes the wall time of one deployment stage into
/// quarry_deploy_stage_micros{stage=...} when the scope closes — failure
/// paths included, since a slow failing stage is exactly what an operator
/// wants to see.
struct StageScope {
  explicit StageScope(const char* stage) : stage(stage) {}
  ~StageScope() {
    obs::MetricsRegistry::Instance()
        .histogram("quarry_deploy_stage_micros",
                   "Wall time per deployment stage in microseconds",
                   /*bounds=*/{}, {{"stage", stage}})
        .Observe(timer.ElapsedMicros());
  }
  const char* stage;
  Timer timer;
};

/// Execution-plan optimization: the logical (xLM) flow is kept as designed;
/// the deployer prunes dead columns right after each extraction before
/// running (see etl::InsertEarlyProjections).
Result<etl::Flow> OptimizeForExecution(const etl::Flow& flow,
                                       const storage::Database& source) {
  etl::TableColumns columns;
  for (const std::string& name : source.TableNames()) {
    std::vector<std::string> cols;
    for (const storage::Column& c : (*source.GetTable(name))->schema()
                                        .columns()) {
      cols.push_back(c.name);
    }
    columns[name] = std::move(cols);
  }
  etl::Flow optimized = flow.Clone();
  QUARRY_RETURN_NOT_OK(
      etl::InsertEarlyProjections(&optimized, columns).status());
  return optimized;
}

/// Deploy-level retry backoff: clipped by the policy's overall budget and
/// the request deadline, and accumulated into `*spent_ms` so the budget
/// spans the DDL and metadata retry loops together.
void BackoffSleep(const etl::RetryPolicy& policy, int failed_attempts,
                  Prng* prng, double* spent_ms, const ExecContext* ctx) {
  double sleep_ms = etl::BoundedBackoffMillis(policy, failed_attempts, prng,
                                              *spent_ms, ctx);
  if (sleep_ms > 0) {
    *spent_ms += sleep_ms;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
}

/// The deployment record written to the metadata store's "deployments"
/// collection (paper §2.5: the repository tracks every design artifact —
/// deployments included, so evolution steps can see what is live).
json::Value DeploymentRecord(const DeployOptions& options,
                             const std::string& status,
                             const DeploymentReport& report,
                             const std::vector<std::string>& kept_tables) {
  json::Object doc;
  doc.emplace_back("_id", json::Value(options.deployment_id));
  doc.emplace_back("status", json::Value(status));
  doc.emplace_back("database", json::Value(options.database_name));
  // Whether this record itself rode the crash-safe (WAL-backed) path —
  // operators auditing a recovery need to know if the record can be trusted
  // to have survived a kill (docs/ROBUSTNESS.md §6).
  doc.emplace_back("metadata_durable",
                   json::Value(options.metadata != nullptr &&
                               options.metadata->durable()));
  doc.emplace_back("tables_created",
                   json::Value(static_cast<int64_t>(report.tables_created)));
  json::Object rows;
  for (const auto& [table, n] : report.etl.loaded) {
    rows.emplace_back(table, json::Value(n));
  }
  doc.emplace_back("rows_loaded", json::Value(std::move(rows)));
  doc.emplace_back("recovered", json::Value(report.etl.recovered));
  if (!kept_tables.empty()) {
    json::Array kept;
    for (const std::string& t : kept_tables) kept.push_back(json::Value(t));
    doc.emplace_back("kept_tables", json::Value(std::move(kept)));
  }
  return json::Value(std::move(doc));
}

}  // namespace

Result<DeploymentReport> Deployer::Deploy(
    const md::MdSchema& schema, const etl::Flow& flow,
    const ontology::SourceMapping& mapping,
    const std::string& database_name) {
  DeployOptions options;
  options.database_name = database_name;
  QUARRY_ASSIGN_OR_RETURN(
      DeploymentOutcome outcome,
      DeployTransactional(schema, flow, mapping, options));
  if (!outcome.success) {
    const DeploymentFailure& failure = *outcome.failure;
    return failure.cause.WithContext("deployment stage '" + failure.stage +
                                     "'");
  }
  return std::move(outcome.report);
}

Result<DeploymentOutcome> Deployer::DeployTransactional(
    const md::MdSchema& schema, const etl::Flow& flow,
    const ontology::SourceMapping& mapping, const DeployOptions& options) {
  DeploymentOutcome outcome;
  DeploymentReport& report = outcome.report;
  QUARRY_NAMED_SPAN(deploy_span, "deploy");
  QUARRY_SPAN_ATTR(deploy_span, "database", options.database_name);
  QUARRY_SPAN_ATTR(deploy_span, "deployment_id", options.deployment_id);
  if (RequestId(options.context) != 0) {
    QUARRY_SPAN_ATTR(deploy_span, "request_id",
                     static_cast<int64_t>(RequestId(options.context)));
  }
  DeployCounter("quarry_deploy_attempts_total",
                "Transactional deployments started")
      .Increment();
  const int max_attempts = std::max(1, options.retry.max_attempts);
  // Distinct jitter stream from the executor's so deploy-level retries do
  // not perturb the per-node backoff sequence.
  Prng backoff_prng(options.retry.jitter_seed ^ 0xD3B07384D113EDECULL);
  double backoff_spent_ms = 0;
  const ExecContext* ctx = options.context;

  // Pre-deploy snapshots: any mid-deploy failure restores both stores
  // byte-identically (docs/ROBUSTNESS.md). A scratch target (a private,
  // unpublished warehouse generation, §9) snapshots as empty: restoring it
  // just clears the scratch, so the rollback path never deep-copies.
  std::unique_ptr<storage::Database> db_snapshot =
      options.target_is_scratch
          ? std::make_unique<storage::Database>(target_->name())
          : target_->Clone();
  std::optional<docstore::DocumentStore> meta_snapshot;
  if (options.metadata != nullptr) {
    meta_snapshot = options.metadata->Clone();
  }

  auto roll_back = [&]() {
    QUARRY_SPAN("deploy.rollback");
    DeployCounter("quarry_deploy_rollbacks_total",
                  "Deployments rolled back to the pre-deploy snapshot")
        .Increment();
    target_->RestoreFrom(*db_snapshot);
    if (options.metadata != nullptr) {
      options.metadata->RestoreFrom(*meta_snapshot);
    }
  };
  auto fail = [&](std::string stage, Status cause) -> DeploymentOutcome {
    DeploymentFailure failure;
    failure.stage = std::move(stage);
    failure.cause = std::move(cause);
    failure.rolled_back = true;
    outcome.failure = std::move(failure);
    outcome.success = false;
    return std::move(outcome);
  };

  // Stage boundaries are cancellation points: an abandoned request fails
  // before the next stage mutates anything further, and once state HAS been
  // mutated the existing rollback path restores it — a deadline mid-deploy
  // can never leave a half-deployed warehouse (docs/ROBUSTNESS.md §7).
  if (Status live = CheckContext(ctx, "deploy stage 'generate'"); !live.ok()) {
    return fail("generate", live);  // Nothing mutated yet.
  }

  // Stage 1: generate the executables. Nothing is mutated yet.
  Result<etl::Flow> optimized = Status::Internal("not generated");
  {
    StageScope stage("generate");
    QUARRY_SPAN("deploy.generate");
    auto sql = GenerateSql(schema, mapping, *source_, options.database_name);
    if (!sql.ok()) return fail("generate", sql.status());
    report.ddl = std::move(*sql);
    report.pdi_ktr = GeneratePdiText(flow, options.database_name);
    optimized = OptimizeForExecution(flow, *source_);
    if (!optimized.ok()) return fail("generate", optimized.status());
  }

  if (Status live = CheckContext(ctx, "deploy stage 'ddl'"); !live.ok()) {
    return fail("ddl", live);  // Nothing mutated yet.
  }

  // Stage 2: execute the DDL. A failed script leaves earlier statements
  // applied, so every retry starts from the restored snapshot.
  {
    StageScope stage("ddl");
    QUARRY_SPAN("deploy.ddl");
    Status ddl_status;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      Status live = CheckContext(ctx, "deploy stage 'ddl'");
      if (!live.ok()) {
        ddl_status = live;
        break;
      }
      auto sql_report = storage::ExecuteSql(target_, report.ddl);
      if (sql_report.ok()) {
        report.tables_created = sql_report->tables_created;
        ddl_status = Status::OK();
        break;
      }
      ddl_status = sql_report.status();
      target_->RestoreFrom(*db_snapshot);
      if (attempt < max_attempts) {
        BackoffSleep(options.retry, attempt, &backoff_prng,
                     &backoff_spent_ms, ctx);
      }
    }
    if (!ddl_status.ok()) {
      roll_back();
      return fail("ddl", ddl_status);
    }
  }

  if (Status live = CheckContext(ctx, "deploy stage 'etl'"); !live.ok()) {
    roll_back();
    return fail("etl", live);
  }

  // Stage 3: run the unified ETL flow with per-node retries and a
  // checkpoint, so the failure report can say how far the load got.
  etl::Executor executor(source_, target_);
  etl::Checkpoint checkpoint;
  Result<etl::ExecutionReport> etl_report = Status::Internal("never ran");
  {
    StageScope stage("etl");
    QUARRY_SPAN("deploy.etl");
    etl_report =
        executor.Run(*optimized, options.exec, options.retry, &checkpoint, ctx);
  }
  if (!etl_report.ok()) {
    // Best-effort keeps completed tables only for genuine operator faults.
    // A request that was cancelled / timed out / blew its budget is
    // abandoned, and an abandoned deploy always rolls back fully: "partial
    // because the caller gave up" is indistinguishable from a half-deployed
    // warehouse.
    if (options.best_effort && !IsLifecycleError(etl_report.status())) {
      // Keep only tables whose every loader completed; restore the rest.
      std::set<std::string> keep;
      for (const auto& [table, n] : checkpoint.loaded) keep.insert(table);
      std::set<std::string> completed(checkpoint.completed.begin(),
                                      checkpoint.completed.end());
      for (const auto& [id, node] : optimized->nodes()) {
        if (node.type != etl::OpType::kLoader || completed.count(id) > 0) {
          continue;
        }
        auto it = node.params.find("table");
        if (it != node.params.end()) keep.erase(it->second);
      }
      for (const std::string& name : target_->TableNames()) {
        if (keep.count(name) > 0) continue;
        if (db_snapshot->HasTable(name)) {
          target_->RestoreTable((*db_snapshot->GetTable(name))->Clone());
        } else {
          target_->EraseTable(name);
        }
      }
      DeploymentFailure failure;
      failure.stage = "etl";
      failure.failed_node = checkpoint.failed_node;
      failure.rows_loaded = checkpoint.loaded;
      failure.cause = etl_report.status();
      failure.rolled_back = keep.empty();
      failure.kept_tables.assign(keep.begin(), keep.end());
      outcome.partial = !keep.empty();
      if (outcome.partial) {
        DeployCounter("quarry_deploy_partial_total",
                      "Best-effort deployments that kept a partial result")
            .Increment();
      }
      outcome.failure = std::move(failure);
      if (options.metadata != nullptr && outcome.partial) {
        // Best effort all the way down: a failed record write is ignored.
        (void)options.metadata->GetOrCreate("deployments")
            ->Upsert(options.deployment_id,
                     DeploymentRecord(options, "partial", report,
                                      outcome.failure->kept_tables));
      }
      return std::move(outcome);
    }
    roll_back();
    DeploymentOutcome failed =
        fail("etl", etl_report.status());
    failed.failure->failed_node = checkpoint.failed_node;
    failed.failure->rows_loaded = checkpoint.loaded;
    return failed;
  }
  report.etl = std::move(*etl_report);

  if (Status live = CheckContext(ctx, "deploy stage 'integrity'");
      !live.ok()) {
    roll_back();
    return fail("integrity", live);
  }

  // Stage 4: verify referential integrity. Broken data is never kept, not
  // even in best-effort mode.
  {
    StageScope stage("integrity");
    QUARRY_SPAN("deploy.integrity");
    Status integrity = target_->CheckReferentialIntegrity();
    report.referential_integrity_ok = integrity.ok();
    if (!integrity.ok()) {
      roll_back();
      return fail("integrity",
                  integrity.WithContext("post-deployment integrity check"));
    }
  }

  if (Status live = CheckContext(ctx, "deploy stage 'metadata'");
      !live.ok()) {
    roll_back();
    return fail("metadata", live);
  }

  // Stage 5: record the deployment in the metadata store.
  if (options.metadata != nullptr) {
    StageScope stage("metadata");
    QUARRY_SPAN("deploy.metadata");
    Status record_status;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      record_status =
          options.metadata->GetOrCreate("deployments")
              ->Upsert(options.deployment_id,
                       DeploymentRecord(options, "complete", report, {}));
      if (record_status.ok()) break;
      if (IsLifecycleError(record_status)) break;
      if (attempt < max_attempts) {
        BackoffSleep(options.retry, attempt, &backoff_prng,
                     &backoff_spent_ms, ctx);
      }
    }
    if (!record_status.ok()) {
      roll_back();
      return fail("metadata", record_status);
    }
  }
  DeployCounter("quarry_deploy_success_total",
                "Deployments that committed all five stages")
      .Increment();
  outcome.success = true;
  return std::move(outcome);
}

Result<etl::ExecutionReport> Deployer::Refresh(const etl::Flow& flow,
                                               const etl::RetryPolicy& retry,
                                               const ExecContext* ctx,
                                               const etl::ExecOptions& exec) {
  QUARRY_SPAN("deploy.refresh");
  QUARRY_RETURN_NOT_OK(CheckContext(ctx, "refresh"));
  QUARRY_ASSIGN_OR_RETURN(etl::Flow optimized,
                          OptimizeForExecution(flow, *source_));
  etl::Executor executor(source_, target_);
  QUARRY_ASSIGN_OR_RETURN(etl::ExecutionReport report,
                          executor.Run(optimized, exec, retry, nullptr, ctx));
  QUARRY_RETURN_NOT_OK(
      target_->CheckReferentialIntegrity().WithContext("post-refresh "
                                                       "integrity check"));
  return report;
}

}  // namespace quarry::deployer
