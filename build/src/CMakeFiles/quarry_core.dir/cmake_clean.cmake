file(REMOVE_RECURSE
  "CMakeFiles/quarry_core.dir/core/metadata_repository.cc.o"
  "CMakeFiles/quarry_core.dir/core/metadata_repository.cc.o.d"
  "CMakeFiles/quarry_core.dir/core/quarry.cc.o"
  "CMakeFiles/quarry_core.dir/core/quarry.cc.o.d"
  "CMakeFiles/quarry_core.dir/core/session.cc.o"
  "CMakeFiles/quarry_core.dir/core/session.cc.o.d"
  "libquarry_core.a"
  "libquarry_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
