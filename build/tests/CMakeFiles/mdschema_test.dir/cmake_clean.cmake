file(REMOVE_RECURSE
  "CMakeFiles/mdschema_test.dir/mdschema_test.cc.o"
  "CMakeFiles/mdschema_test.dir/mdschema_test.cc.o.d"
  "mdschema_test"
  "mdschema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdschema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
