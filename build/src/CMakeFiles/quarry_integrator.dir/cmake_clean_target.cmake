file(REMOVE_RECURSE
  "libquarry_integrator.a"
)
