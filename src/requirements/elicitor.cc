#include "requirements/elicitor.h"

#include <algorithm>

#include "etl/expr.h"

namespace quarry::req {

using ontology::Association;
using ontology::DataProperty;
using ontology::Multiplicity;

std::vector<FactSuggestion> Elicitor::SuggestFacts() const {
  std::vector<FactSuggestion> out;
  for (const ontology::Concept& c : onto_->concepts()) {
    FactSuggestion s;
    s.concept_id = c.id;
    for (const DataProperty& p : onto_->PropertiesOf(c.id)) {
      if (p.is_numeric()) ++s.numeric_properties;
    }
    int functional_in_degree = 0;
    for (const Association& a : onto_->AssociationsOf(c.id)) {
      bool forward_functional = a.multiplicity == Multiplicity::kManyToOne ||
                                a.multiplicity == Multiplicity::kOneToOne;
      bool backward_functional = a.multiplicity == Multiplicity::kOneToMany ||
                                 a.multiplicity == Multiplicity::kOneToOne;
      if (a.from_concept == c.id && forward_functional) {
        ++s.functional_out_degree;
      }
      if (a.to_concept == c.id && backward_functional) {
        ++s.functional_out_degree;
      }
      if (a.to_concept == c.id && forward_functional) {
        ++functional_in_degree;
      }
      if (a.from_concept == c.id && backward_functional) {
        ++functional_in_degree;
      }
    }
    // Events (facts) measure things and fan out to dimensions; concepts
    // that many others roll up to are dimensions themselves.
    s.score = 1.0 * s.numeric_properties + 0.5 * s.functional_out_degree -
              0.25 * functional_in_degree;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const FactSuggestion& a, const FactSuggestion& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.concept_id < b.concept_id;
            });
  return out;
}

Result<std::vector<MeasureSuggestion>> Elicitor::SuggestMeasures(
    const std::string& focus_concept) const {
  QUARRY_RETURN_NOT_OK(onto_->GetConcept(focus_concept).status());
  std::vector<MeasureSuggestion> out;
  for (const DataProperty& p : onto_->PropertiesOf(focus_concept)) {
    if (!p.is_numeric()) continue;
    MeasureSuggestion s;
    s.property_id = p.id;
    // Doubles (amounts, prices) rank above ints (counts, keys).
    s.score = p.type == storage::DataType::kDouble ? 1.0 : 0.5;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MeasureSuggestion& a, const MeasureSuggestion& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.property_id < b.property_id;
            });
  return out;
}

Result<std::vector<DimensionSuggestion>> Elicitor::SuggestDimensions(
    const std::string& focus_concept) const {
  QUARRY_RETURN_NOT_OK(onto_->GetConcept(focus_concept).status());
  std::vector<DimensionSuggestion> out;
  for (const auto& [concept_id, hops] :
       onto_->FunctionallyReachable(focus_concept)) {
    DimensionSuggestion s;
    s.concept_id = concept_id;
    s.hops = hops;
    for (const DataProperty& p : onto_->PropertiesOf(concept_id)) {
      if (!p.is_numeric()) s.descriptive_properties.push_back(p.id);
    }
    s.score = (1.0 / hops) + 0.1 * static_cast<double>(
                                       s.descriptive_properties.size());
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const DimensionSuggestion& a, const DimensionSuggestion& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.concept_id < b.concept_id;
            });
  return out;
}

Status Elicitor::CheckPropertyReachable(
    const std::string& property_id, const std::string& focus_concept) const {
  QUARRY_ASSIGN_OR_RETURN(DataProperty p, onto_->GetProperty(property_id));
  Status reachable =
      onto_->FindFunctionalPath(focus_concept, p.concept_id).status();
  if (!reachable.ok()) {
    return Status::Unsatisfiable(
        "property '" + property_id + "' lives on concept '" + p.concept_id +
        "', which is not functionally reachable from focus '" +
        focus_concept + "'");
  }
  return Status::OK();
}

Result<InformationRequirement> Elicitor::BuildRequirement(
    const std::string& id, const std::string& name,
    const std::string& focus_concept, std::vector<MeasureSpec> measures,
    std::vector<DimensionSpec> dimensions,
    std::vector<Slicer> slicers) const {
  if (id.empty()) return Status::InvalidArgument("requirement id is empty");
  QUARRY_RETURN_NOT_OK(onto_->GetConcept(focus_concept).status());
  if (measures.empty()) {
    return Status::InvalidArgument("requirement '" + id +
                                   "' has no measures");
  }
  if (dimensions.empty()) {
    return Status::InvalidArgument("requirement '" + id +
                                   "' has no dimensions");
  }
  for (const MeasureSpec& m : measures) {
    QUARRY_ASSIGN_OR_RETURN(etl::Expr::Ptr expr,
                            etl::ParseExpr(m.expression));
    for (const std::string& property_id : expr->ReferencedColumns()) {
      QUARRY_RETURN_NOT_OK(CheckPropertyReachable(property_id, focus_concept)
                               .WithContext("measure '" + m.id + "'"));
    }
  }
  for (const DimensionSpec& d : dimensions) {
    QUARRY_RETURN_NOT_OK(CheckPropertyReachable(d.property_id, focus_concept)
                             .WithContext("dimension"));
  }
  for (const Slicer& s : slicers) {
    QUARRY_RETURN_NOT_OK(CheckPropertyReachable(s.property_id, focus_concept)
                             .WithContext("slicer"));
    if (s.op != "=" && s.op != "<>" && s.op != "<" && s.op != "<=" &&
        s.op != ">" && s.op != ">=") {
      return Status::InvalidArgument("slicer operator '" + s.op +
                                     "' is not supported");
    }
  }
  InformationRequirement ir;
  ir.id = id;
  ir.name = name;
  ir.focus_concept = focus_concept;
  ir.measures = std::move(measures);
  ir.dimensions = std::move(dimensions);
  ir.slicers = std::move(slicers);
  // Default aggregation plan: every measure by every dimension with the
  // measure's own function (the paper's Fig. 4 lists these explicitly).
  int order = 1;
  for (const MeasureSpec& m : ir.measures) {
    for (const DimensionSpec& d : ir.dimensions) {
      ir.aggregations.push_back({d.property_id, m.id, m.aggregation, order});
    }
    ++order;
  }
  return ir;
}

}  // namespace quarry::req
