file(REMOVE_RECURSE
  "libquarry_ontology.a"
)
