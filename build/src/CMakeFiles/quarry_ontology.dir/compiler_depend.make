# Empty compiler generated dependencies file for quarry_ontology.
# This may be replaced when dependencies are built.
