# Empty compiler generated dependencies file for analyst_session.
# This may be replaced when dependencies are built.
