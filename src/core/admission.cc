#include "core/admission.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"

namespace quarry::core {

namespace {

/// Queued waiters sleep in short slices so a cancellation or deadline from
/// another thread is observed promptly even when no slot is released.
constexpr auto kWaitSlice = std::chrono::milliseconds(1);

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  // Lanes label their metric instances; the default (empty) lane keeps the
  // original unlabeled identities, so pre-lane dashboards and tests hold.
  obs::Labels lane;
  obs::Labels shed_full{{"reason", "queue_full"}};
  obs::Labels shed_timeout{{"reason", "queue_timeout"}};
  if (!options_.lane.empty()) {
    lane = {{"lane", options_.lane}};
    shed_full.insert(shed_full.begin(), {"lane", options_.lane});
    shed_timeout.insert(shed_timeout.begin(), {"lane", options_.lane});
  }
  requests_total_ =
      &reg.counter("quarry_admission_requests_total",
                   "Requests that reached the admission controller", lane);
  admitted_total_ = &reg.counter("quarry_admission_admitted_total",
                                 "Requests granted an in-flight slot", lane);
  const std::string shed_help =
      "Requests shed by admission control, by reason";
  shed_queue_full_ =
      &reg.counter("quarry_admission_shed_total", shed_help, shed_full);
  shed_queue_timeout_ =
      &reg.counter("quarry_admission_shed_total", shed_help, shed_timeout);
  cancelled_total_ =
      &reg.counter("quarry_admission_cancelled_total",
                   "Requests cancelled while waiting in the admission queue",
                   lane);
  deadline_total_ = &reg.counter(
      "quarry_admission_deadline_total",
      "Requests whose deadline expired while waiting in the admission queue",
      lane);
  in_flight_gauge_ =
      &reg.gauge("quarry_admission_in_flight",
                 "Requests currently holding an in-flight slot", lane);
  queue_depth_gauge_ = &reg.gauge(
      "quarry_admission_queue_depth",
      "Requests currently parked in the admission wait queue", lane);
  queue_wait_micros_ = &reg.histogram(
      "quarry_admission_queue_wait_micros",
      "Time admitted requests spent queued, in microseconds",
      obs::LatencyBucketsMicros(), lane);
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    in_flight_gauge_->Set(static_cast<double>(in_flight_));
  }
  cv_.notify_all();
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const ExecContext* ctx, double* queue_wait_micros) {
  requests_total_->Increment();
  Timer queued;
  if (queue_wait_micros != nullptr) *queue_wait_micros = 0.0;
  std::unique_lock<std::mutex> lock(mu_);

  // Fast path: a free slot and nobody queued ahead.
  if (in_flight_ < options_.max_in_flight && queue_.empty()) {
    ++in_flight_;
    in_flight_gauge_->Set(static_cast<double>(in_flight_));
    admitted_total_->Increment();
    double waited = queued.ElapsedMicros();
    queue_wait_micros_->Observe(waited);
    if (queue_wait_micros != nullptr) *queue_wait_micros = waited;
    return Ticket(this);
  }

  if (static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
    shed_queue_full_->Increment();
    return Status::Overloaded(
        "admission queue full (" + std::to_string(queue_.size()) +
        " waiting, " + std::to_string(in_flight_) + " in flight)");
  }

  const uint64_t seq = next_seq_++;
  queue_.push_back(seq);
  queue_depth_gauge_->Set(static_cast<double>(queue_.size()));

  // Drops this waiter out of the queue; later waiters may now be at the
  // head, so wake them.
  auto give_up = [&] {
    queue_.erase(std::find(queue_.begin(), queue_.end(), seq));
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    lock.unlock();
    cv_.notify_all();
  };

  using Clock = std::chrono::steady_clock;
  const bool has_timeout = options_.queue_timeout_millis >= 0;
  const Clock::time_point shed_at =
      has_timeout ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double, std::milli>(
                                           options_.queue_timeout_millis))
                  : Clock::time_point::max();

  while (true) {
    if (!queue_.empty() && queue_.front() == seq &&
        in_flight_ < options_.max_in_flight) {
      queue_.pop_front();
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      ++in_flight_;
      in_flight_gauge_->Set(static_cast<double>(in_flight_));
      admitted_total_->Increment();
      double waited = queued.ElapsedMicros();
      queue_wait_micros_->Observe(waited);
      if (queue_wait_micros != nullptr) *queue_wait_micros = waited;
      return Ticket(this);
    }
    if (ctx != nullptr) {
      if (Status live = ctx->Check("admission queue"); !live.ok()) {
        (live.IsCancelled() ? cancelled_total_ : deadline_total_)->Increment();
        give_up();
        return live;
      }
    }
    if (has_timeout && Clock::now() >= shed_at) {
      shed_queue_timeout_->Increment();
      give_up();
      return Status::Overloaded(
          "shed after " + std::to_string(options_.queue_timeout_millis) +
          " ms in the admission queue");
    }
    // Slot releases notify; context cancellation from another thread does
    // not, hence the bounded slice when a context is attached.
    Clock::time_point wake = has_timeout ? shed_at : Clock::time_point::max();
    if (ctx != nullptr) wake = std::min(wake, Clock::now() + kWaitSlice);
    if (wake == Clock::time_point::max()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, wake);
    }
  }
}

}  // namespace quarry::core
