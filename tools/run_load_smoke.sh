#!/usr/bin/env bash
# Deterministic sustained-load smoke for multi-tenant overload protection
# (docs/ROBUSTNESS.md §11): runs bench/bench_load with a fixed seed and a
# fixed two-tenant phase plan — a high-priority "gold" tenant plus
# closed-loop low-priority "bronze" flooders offering >= 5x their quota —
# and lets the bench hard-assert the priority-isolation invariants:
#
#   - the flooder sheds at its own tenant gate (shed rate >= 0.5), every
#     shed carrying a machine-readable retry-after hint;
#   - gold never sheds at the tenant gate and keeps making progress, its
#     p99 bounded relative to the quiesced phase;
#   - every tenant's in-flight count returns to zero (no quota leaks) and
#     requests == admitted + shed.
#
# Part of tools/run_all_checks.sh. Full-length numbers for
# BENCH_serving.json come from running bench_load without --smoke.
#
# Usage: tools/run_load_smoke.sh [build-dir]
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
bench="${build_dir}/bench/bench_load"

if [[ ! -x "${bench}" ]]; then
  echo "run_load_smoke: missing ${bench} (build first)" >&2
  exit 1
fi

out="$(mktemp)"
trap 'rm -f "${out}"' EXIT

if ! "${bench}" --smoke --seed=77 --flooders=2 >"${out}"; then
  echo "run_load_smoke: FAILED" >&2
  cat "${out}" >&2
  exit 1
fi

# The bench already asserted the invariants; surface the headline numbers.
grep -E '"(bronze_offered_rps|bronze_shed_rate|gold_p99_isolation_factor)"' \
  "${out}" || cat "${out}"
echo "run_load_smoke: priority-isolation invariants held"
