#include "storage/database.h"

#include <functional>
#include <unordered_map>

#include "common/fault_injection.h"

namespace quarry::storage {

Result<Table*> Database::CreateTable(TableSchema schema) {
  QUARRY_FAULT_POINT("storage.database.create_table");
  if (tables_.count(schema.name()) > 0) {
    return Status::AlreadyExists("table '" + schema.name() + "'");
  }
  for (const ForeignKey& fk : schema.foreign_keys()) {
    auto it = tables_.find(fk.referenced_table);
    if (it == tables_.end()) {
      return Status::NotFound("referenced table '" + fk.referenced_table +
                              "' for foreign key of '" + schema.name() + "'");
    }
    for (const std::string& rc : fk.referenced_columns) {
      if (!it->second->schema().ColumnIndex(rc).has_value()) {
        return Status::NotFound("referenced column '" + rc + "' in table '" +
                                fk.referenced_table + "'");
      }
    }
  }
  std::string name = schema.name();
  auto table = std::make_unique<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(std::move(name), std::move(table));
  return raw;
}

Status Database::DropTable(const std::string& name) {
  QUARRY_FAULT_POINT("storage.database.drop_table");
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "'");
  }
  return Status::OK();
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  return static_cast<const Table*>(it->second.get());
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->num_rows();
  return total;
}

std::unique_ptr<Database> Database::Clone() const {
  auto copy = std::make_unique<Database>(name_);
  for (const auto& [name, table] : tables_) {
    copy->tables_.emplace(name, table->Clone());
  }
  return copy;
}

void Database::RestoreFrom(const Database& snapshot) {
  name_ = snapshot.name_;
  tables_.clear();
  for (const auto& [name, table] : snapshot.tables_) {
    tables_.emplace(name, table->Clone());
  }
}

void Database::RestoreTable(std::unique_ptr<Table> table) {
  std::string name = table->name();
  tables_[std::move(name)] = std::move(table);
}

uint64_t Database::Fingerprint() const {
  uint64_t h = std::hash<std::string>{}(name_);
  for (const auto& [name, table] : tables_) {
    h ^= 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2) + table->Fingerprint();
  }
  return h;
}

Status Database::CheckReferentialIntegrity() const {
  for (const auto& [name, table] : tables_) {
    for (const ForeignKey& fk : table->schema().foreign_keys()) {
      auto ref_it = tables_.find(fk.referenced_table);
      if (ref_it == tables_.end()) {
        return Status::NotFound("referenced table '" + fk.referenced_table +
                                "'");
      }
      const Table& ref = *ref_it->second;
      // Build the set of referenced keys once.
      std::vector<size_t> ref_positions;
      for (const std::string& c : fk.referenced_columns) {
        ref_positions.push_back(*ref.schema().ColumnIndex(c));
      }
      std::unordered_map<size_t, std::vector<Row>> ref_keys;
      ref_keys.reserve(ref.num_rows());
      auto same_row = [](const Row& a, const Row& b) {
        if (a.size() != b.size()) return false;
        for (size_t i = 0; i < a.size(); ++i) {
          if (!a[i].SameAs(b[i])) return false;
        }
        return true;
      };
      for (const Row& row : ref.rows()) {
        Row key;
        for (size_t p : ref_positions) key.push_back(row[p]);
        std::vector<Row>& bucket = ref_keys[HashRow(key)];
        bool present = false;
        for (const Row& existing : bucket) {
          if (same_row(existing, key)) {
            present = true;
            break;
          }
        }
        if (!present) bucket.push_back(std::move(key));
      }
      std::vector<size_t> positions;
      for (const std::string& c : fk.columns) {
        positions.push_back(*table->schema().ColumnIndex(c));
      }
      for (const Row& row : table->rows()) {
        Row key;
        bool has_null = false;
        for (size_t p : positions) {
          if (row[p].is_null()) has_null = true;
          key.push_back(row[p]);
        }
        if (has_null) continue;  // SQL: NULL FKs are not checked.
        bool found = false;
        auto it = ref_keys.find(HashRow(key));
        if (it != ref_keys.end()) {
          for (const Row& existing : it->second) {
            if (same_row(existing, key)) {
              found = true;
              break;
            }
          }
        }
        if (!found) {
          std::string key_text;
          for (const Value& v : key) key_text += v.ToString() + ",";
          return Status::ValidationError(
              "dangling foreign key (" + key_text + ") from '" + name +
              "' to '" + fk.referenced_table + "'");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace quarry::storage
