#include "ontology/mapping.h"

#include "common/str_util.h"

namespace quarry::ontology {

Status SourceMapping::MapConcept(const std::string& concept_id,
                                 const std::string& table,
                                 std::vector<std::string> key_columns) {
  if (concepts_.count(concept_id) > 0) {
    return Status::AlreadyExists("concept mapping for '" + concept_id + "'");
  }
  if (key_columns.empty()) {
    return Status::InvalidArgument("concept mapping for '" + concept_id +
                                   "' needs at least one key column");
  }
  concepts_.emplace(concept_id,
                    ConceptMapping{concept_id, table, std::move(key_columns)});
  return Status::OK();
}

Status SourceMapping::MapProperty(const std::string& property_id,
                                  const std::string& table,
                                  const std::string& column) {
  if (properties_.count(property_id) > 0) {
    return Status::AlreadyExists("property mapping for '" + property_id +
                                 "'");
  }
  properties_.emplace(property_id,
                      PropertyMapping{property_id, table, column});
  return Status::OK();
}

Status SourceMapping::MapAssociation(const std::string& association_id,
                                     std::vector<std::string> from_columns,
                                     std::vector<std::string> to_columns) {
  if (associations_.count(association_id) > 0) {
    return Status::AlreadyExists("association mapping for '" +
                                 association_id + "'");
  }
  if (from_columns.empty() || from_columns.size() != to_columns.size()) {
    return Status::InvalidArgument("association mapping for '" +
                                   association_id +
                                   "' needs matching join column lists");
  }
  associations_.emplace(association_id,
                        AssociationMapping{association_id,
                                           std::move(from_columns),
                                           std::move(to_columns)});
  return Status::OK();
}

Result<ConceptMapping> SourceMapping::ForConcept(
    const std::string& concept_id) const {
  auto it = concepts_.find(concept_id);
  if (it == concepts_.end()) {
    return Status::NotFound("concept mapping for '" + concept_id + "'");
  }
  return it->second;
}

Result<PropertyMapping> SourceMapping::ForProperty(
    const std::string& property_id) const {
  auto it = properties_.find(property_id);
  if (it == properties_.end()) {
    return Status::NotFound("property mapping for '" + property_id + "'");
  }
  return it->second;
}

Result<AssociationMapping> SourceMapping::ForAssociation(
    const std::string& association_id) const {
  auto it = associations_.find(association_id);
  if (it == associations_.end()) {
    return Status::NotFound("association mapping for '" + association_id +
                            "'");
  }
  return it->second;
}

Status SourceMapping::Validate(const Ontology& onto) const {
  for (const auto& [id, m] : concepts_) {
    if (!onto.HasConcept(id)) {
      return Status::ValidationError("mapping refers to unknown concept '" +
                                     id + "'");
    }
  }
  for (const auto& [id, m] : properties_) {
    QUARRY_ASSIGN_OR_RETURN(DataProperty p, onto.GetProperty(id));
    if (concepts_.count(p.concept_id) == 0) {
      return Status::ValidationError("property '" + id +
                                     "' mapped but its concept '" +
                                     p.concept_id + "' is not");
    }
  }
  for (const auto& [id, m] : associations_) {
    QUARRY_RETURN_NOT_OK(onto.GetAssociation(id).status());
  }
  return Status::OK();
}

std::unique_ptr<xml::Element> SourceMapping::ToXml() const {
  auto root = std::make_unique<xml::Element>("mappings");
  for (const auto& [id, m] : concepts_) {
    xml::Element* e = root->AddChild("conceptMap");
    e->SetAttr("concept", m.concept_id);
    e->SetAttr("table", m.table);
    e->SetAttr("keys", Join(m.key_columns, ","));
  }
  for (const auto& [id, m] : properties_) {
    xml::Element* e = root->AddChild("propertyMap");
    e->SetAttr("property", m.property_id);
    e->SetAttr("table", m.table);
    e->SetAttr("column", m.column);
  }
  for (const auto& [id, m] : associations_) {
    xml::Element* e = root->AddChild("associationMap");
    e->SetAttr("association", m.association_id);
    e->SetAttr("fromColumns", Join(m.from_columns, ","));
    e->SetAttr("toColumns", Join(m.to_columns, ","));
  }
  return root;
}

Result<SourceMapping> SourceMapping::FromXml(const xml::Element& root) {
  if (root.name() != "mappings") {
    return Status::ParseError("expected <mappings>, got <" + root.name() +
                              ">");
  }
  SourceMapping mapping;
  for (const xml::Element* e : root.Children("conceptMap")) {
    QUARRY_RETURN_NOT_OK(mapping.MapConcept(e->AttrOr("concept"),
                                            e->AttrOr("table"),
                                            Split(e->AttrOr("keys"), ',')));
  }
  for (const xml::Element* e : root.Children("propertyMap")) {
    QUARRY_RETURN_NOT_OK(mapping.MapProperty(
        e->AttrOr("property"), e->AttrOr("table"), e->AttrOr("column")));
  }
  for (const xml::Element* e : root.Children("associationMap")) {
    QUARRY_RETURN_NOT_OK(mapping.MapAssociation(
        e->AttrOr("association"), Split(e->AttrOr("fromColumns"), ','),
        Split(e->AttrOr("toColumns"), ',')));
  }
  return mapping;
}

}  // namespace quarry::ontology
