#include "ontology/tpch_ontology.h"

#include <cassert>

namespace quarry::ontology {

namespace {

using storage::DataType;

// The builders below are infallible by construction; Check keeps that
// invariant loud during development without leaking Status plumbing to
// callers.
void Check(const Status& status) { assert(status.ok()); (void)status; }

}  // namespace

Ontology BuildTpchOntology() {
  Ontology onto("tpch");
  for (const char* concept_id :
       {"Region", "Nation", "Supplier", "Customer", "Part", "Partsupp",
        "Orders", "Lineitem"}) {
    Check(onto.AddConcept(concept_id));
  }

  Check(onto.AddDataProperty("Region", "r_name", DataType::kString));
  Check(onto.AddDataProperty("Nation", "n_name", DataType::kString));
  Check(onto.AddDataProperty("Supplier", "s_name", DataType::kString));
  Check(onto.AddDataProperty("Supplier", "s_acctbal", DataType::kDouble));
  Check(onto.AddDataProperty("Customer", "c_name", DataType::kString));
  Check(onto.AddDataProperty("Customer", "c_acctbal", DataType::kDouble));
  Check(onto.AddDataProperty("Customer", "c_mktsegment", DataType::kString));
  Check(onto.AddDataProperty("Part", "p_name", DataType::kString));
  Check(onto.AddDataProperty("Part", "p_brand", DataType::kString));
  Check(onto.AddDataProperty("Part", "p_type", DataType::kString));
  Check(onto.AddDataProperty("Part", "p_retailprice", DataType::kDouble));
  Check(onto.AddDataProperty("Partsupp", "ps_availqty", DataType::kInt64));
  Check(onto.AddDataProperty("Partsupp", "ps_supplycost", DataType::kDouble));
  Check(onto.AddDataProperty("Orders", "o_orderstatus", DataType::kString));
  Check(onto.AddDataProperty("Orders", "o_totalprice", DataType::kDouble));
  Check(onto.AddDataProperty("Orders", "o_orderdate", DataType::kDate));
  Check(onto.AddDataProperty("Lineitem", "l_quantity", DataType::kInt64));
  Check(onto.AddDataProperty("Lineitem", "l_extendedprice",
                             DataType::kDouble));
  Check(onto.AddDataProperty("Lineitem", "l_discount", DataType::kDouble));
  Check(onto.AddDataProperty("Lineitem", "l_tax", DataType::kDouble));
  Check(onto.AddDataProperty("Lineitem", "l_shipdate", DataType::kDate));
  Check(onto.AddDataProperty("Lineitem", "l_returnflag", DataType::kString));

  Check(onto.AddAssociation("nation_region", "Nation", "Region",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("supplier_nation", "Supplier", "Nation",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("customer_nation", "Customer", "Nation",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("orders_customer", "Orders", "Customer",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("lineitem_orders", "Lineitem", "Orders",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("lineitem_part", "Lineitem", "Part",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("lineitem_supplier", "Lineitem", "Supplier",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("partsupp_part", "Partsupp", "Part",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("partsupp_supplier", "Partsupp", "Supplier",
                            Multiplicity::kManyToOne));
  // Each Lineitem references exactly one (part, supplier) offer.
  Check(onto.AddAssociation("lineitem_partsupp", "Lineitem", "Partsupp",
                            Multiplicity::kManyToOne));
  return onto;
}

SourceMapping BuildTpchMappings() {
  SourceMapping m;
  Check(m.MapConcept("Region", "region", {"r_regionkey"}));
  Check(m.MapConcept("Nation", "nation", {"n_nationkey"}));
  Check(m.MapConcept("Supplier", "supplier", {"s_suppkey"}));
  Check(m.MapConcept("Customer", "customer", {"c_custkey"}));
  Check(m.MapConcept("Part", "part", {"p_partkey"}));
  Check(m.MapConcept("Partsupp", "partsupp", {"ps_partkey", "ps_suppkey"}));
  Check(m.MapConcept("Orders", "orders", {"o_orderkey"}));
  Check(m.MapConcept("Lineitem", "lineitem", {"l_orderkey", "l_linenumber"}));

  Check(m.MapProperty("Region.r_name", "region", "r_name"));
  Check(m.MapProperty("Nation.n_name", "nation", "n_name"));
  Check(m.MapProperty("Supplier.s_name", "supplier", "s_name"));
  Check(m.MapProperty("Supplier.s_acctbal", "supplier", "s_acctbal"));
  Check(m.MapProperty("Customer.c_name", "customer", "c_name"));
  Check(m.MapProperty("Customer.c_acctbal", "customer", "c_acctbal"));
  Check(m.MapProperty("Customer.c_mktsegment", "customer", "c_mktsegment"));
  Check(m.MapProperty("Part.p_name", "part", "p_name"));
  Check(m.MapProperty("Part.p_brand", "part", "p_brand"));
  Check(m.MapProperty("Part.p_type", "part", "p_type"));
  Check(m.MapProperty("Part.p_retailprice", "part", "p_retailprice"));
  Check(m.MapProperty("Partsupp.ps_availqty", "partsupp", "ps_availqty"));
  Check(m.MapProperty("Partsupp.ps_supplycost", "partsupp", "ps_supplycost"));
  Check(m.MapProperty("Orders.o_orderstatus", "orders", "o_orderstatus"));
  Check(m.MapProperty("Orders.o_totalprice", "orders", "o_totalprice"));
  Check(m.MapProperty("Orders.o_orderdate", "orders", "o_orderdate"));
  Check(m.MapProperty("Lineitem.l_quantity", "lineitem", "l_quantity"));
  Check(m.MapProperty("Lineitem.l_extendedprice", "lineitem",
                      "l_extendedprice"));
  Check(m.MapProperty("Lineitem.l_discount", "lineitem", "l_discount"));
  Check(m.MapProperty("Lineitem.l_tax", "lineitem", "l_tax"));
  Check(m.MapProperty("Lineitem.l_shipdate", "lineitem", "l_shipdate"));
  Check(m.MapProperty("Lineitem.l_returnflag", "lineitem", "l_returnflag"));

  Check(m.MapAssociation("nation_region", {"n_regionkey"}, {"r_regionkey"}));
  Check(
      m.MapAssociation("supplier_nation", {"s_nationkey"}, {"n_nationkey"}));
  Check(
      m.MapAssociation("customer_nation", {"c_nationkey"}, {"n_nationkey"}));
  Check(m.MapAssociation("orders_customer", {"o_custkey"}, {"c_custkey"}));
  Check(m.MapAssociation("lineitem_orders", {"l_orderkey"}, {"o_orderkey"}));
  Check(m.MapAssociation("lineitem_part", {"l_partkey"}, {"p_partkey"}));
  Check(
      m.MapAssociation("lineitem_supplier", {"l_suppkey"}, {"s_suppkey"}));
  Check(m.MapAssociation("partsupp_part", {"ps_partkey"}, {"p_partkey"}));
  Check(
      m.MapAssociation("partsupp_supplier", {"ps_suppkey"}, {"s_suppkey"}));
  Check(m.MapAssociation("lineitem_partsupp", {"l_partkey", "l_suppkey"},
                         {"ps_partkey", "ps_suppkey"}));
  return m;
}

}  // namespace quarry::ontology
