file(REMOVE_RECURSE
  "CMakeFiles/quarry_mdschema.dir/mdschema/complexity.cc.o"
  "CMakeFiles/quarry_mdschema.dir/mdschema/complexity.cc.o.d"
  "CMakeFiles/quarry_mdschema.dir/mdschema/md_schema.cc.o"
  "CMakeFiles/quarry_mdschema.dir/mdschema/md_schema.cc.o.d"
  "CMakeFiles/quarry_mdschema.dir/mdschema/validator.cc.o"
  "CMakeFiles/quarry_mdschema.dir/mdschema/validator.cc.o.d"
  "libquarry_mdschema.a"
  "libquarry_mdschema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_mdschema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
