#ifndef QUARRY_OBS_REQUEST_LOG_H_
#define QUARRY_OBS_REQUEST_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace quarry::obs {

/// One of a request's slowest operators, kept in its completion record so
/// "why was this slow" is answerable without the full profile.
struct OpTiming {
  std::string node;   ///< Flow node id.
  double micros = 0.0;
};

/// \brief One request-completion record of the structured event log.
struct RequestRecord {
  uint64_t id = 0;
  std::string kind;    ///< "query", "deploy", "refresh", ...
  std::string lane;    ///< Admission lane ("query", "stale", "" = design).
  std::string tenant;  ///< Tenant the request ran for ("" = untenanted).
  std::string status = "ok";  ///< "ok" or the status code name.
  double latency_micros = 0.0;
  double admission_wait_micros = 0.0;
  int64_t rows = 0;
  uint64_t generation = 0;
  bool stale = false;
  std::vector<OpTiming> slowest_ops;  ///< Top 3 by wall time, descending.
  /// Full RequestProfile::ToJson() — kept only when latency crossed the
  /// slow-request threshold (cleared otherwise to bound memory).
  std::string profile_json;

  /// Single-line JSON rendering (the JSONL unit).
  std::string ToJson() const;
};

/// \brief Bounded in-memory ring of recent request completions
/// (docs/OBSERVABILITY.md §"HTTP endpoints & request profiles").
///
/// Writers reserve a slot with one atomic fetch_add (same discipline as the
/// trace ring) and fill it under a per-slot mutex, so concurrent request
/// completions never contend on a global lock and a reader snapshotting the
/// ring never observes a half-written record. Capacity is fixed; old
/// records are overwritten. Records whose latency crosses the slow-request
/// threshold keep their full profile JSON ("promoted"); fast ones drop it.
class RequestLog {
 public:
  /// The process-wide instance (capacity kDefaultCapacity).
  static RequestLog& Instance();

  static constexpr size_t kDefaultCapacity = 256;
  static constexpr double kDefaultSlowThresholdMicros = 100'000.0;  // 100ms

  explicit RequestLog(size_t capacity = kDefaultCapacity);

  /// Appends one completion record. Clears `record.profile_json` unless the
  /// record is slow (latency >= slow_threshold_micros()). Thread-safe.
  void Record(RequestRecord record);

  /// Latency at or above which a record keeps its full profile.
  double slow_threshold_micros() const {
    return slow_threshold_micros_.load(std::memory_order_relaxed);
  }
  void set_slow_threshold_micros(double micros) {
    slow_threshold_micros_.store(micros, std::memory_order_relaxed);
  }

  /// The retained records, oldest first. At most capacity() entries.
  std::vector<RequestRecord> Snapshot() const;

  /// Every retained record as JSON Lines (one object per line, oldest
  /// first) — the drain format Telemetry().WriteTo exports.
  std::string ToJsonl() const;

  size_t capacity() const { return slots_.size(); }

  /// Total records ever appended (monotonic, survives wrap-around).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Clears retained records and restores the default threshold. Metric
  /// families stay registered (the registry owns those).
  void ResetForTest();

 private:
  struct Slot {
    mutable std::mutex mu;
    uint64_t seq = 0;  ///< 1-based append sequence; 0 = never written.
    RequestRecord record;
  };

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<double> slow_threshold_micros_{kDefaultSlowThresholdMicros};
};

}  // namespace quarry::obs

#endif  // QUARRY_OBS_REQUEST_LOG_H_
