file(REMOVE_RECURSE
  "CMakeFiles/deployer_test.dir/deployer_test.cc.o"
  "CMakeFiles/deployer_test.dir/deployer_test.cc.o.d"
  "deployer_test"
  "deployer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
