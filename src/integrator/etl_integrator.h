#ifndef QUARRY_INTEGRATOR_ETL_INTEGRATOR_H_
#define QUARRY_INTEGRATOR_ETL_INTEGRATOR_H_

#include <map>
#include <string>

#include "common/result.h"
#include "etl/cost_model.h"
#include "etl/flow.h"
#include "etl/schema_inference.h"

namespace quarry::integrator {

/// Options steering the ETL Process Integrator (the ablation bench flips
/// these to quantify each design choice).
struct EtlIntegrationOptions {
  /// Align partial flows with the generic equivalence rules before
  /// matching. Without alignment, equal computations in different shapes
  /// (e.g. selections at different positions) are not recognized as
  /// reusable.
  bool align_with_equivalence_rules = true;
};

/// What the ETL Process Integrator did.
struct EtlIntegrationReport {
  int nodes_reused = 0;  ///< Partial nodes mapped onto existing ones.
  int nodes_added = 0;
  int rewrites_applied = 0;  ///< Equivalence-rule rewrites while aligning.
  /// Cost-model estimates: executing both flows separately vs. the unified
  /// flow (the paper's "overall execution time" quality factor).
  double cost_separate = 0;
  double cost_unified = 0;
};

/// \brief The ETL Process Integrator (paper §2.3): consolidates a partial
/// ETL flow into the unified one, maximizing reuse of data and operations.
///
/// Method (refs [5] in the paper):
///  1. *Align*: normalize the partial flow with the generic equivalence
///     rules (selection push-down, canonical selection order, redundant
///     projection removal) so equal computations take equal shapes.
///  2. *Match*: compute a recursive computation signature for every node
///     (operator signature + input signatures); a partial node whose
///     signature already exists in the unified flow denotes the same
///     dataset and is reused — this finds the largest overlapping prefix.
///  3. *Graft*: remaining nodes are copied in (ids uniquified on clash)
///     and wired to their mapped inputs; requirement traces union onto
///     reused nodes.
///
/// The configurable cost model reports the estimated saving of the unified
/// flow versus executing the flows separately.
class EtlIntegrator {
 public:
  /// `source_columns` lists the columns of every source table the flows
  /// extract from (needed by the equivalence rules); `table_rows` feeds the
  /// cost model.
  EtlIntegrator(etl::TableColumns source_columns,
                std::map<std::string, int64_t> table_rows,
                etl::CostModelConfig cost_config = {},
                EtlIntegrationOptions options = {})
      : source_columns_(std::move(source_columns)),
        table_rows_(std::move(table_rows)),
        cost_config_(cost_config),
        options_(options) {}

  /// Integrates `partial` into `unified`. On error `unified` is left
  /// unchanged.
  Result<EtlIntegrationReport> Integrate(etl::Flow* unified,
                                         const etl::Flow& partial) const;

  /// Recursive computation signatures of every node in `flow` (exposed for
  /// tests and benches).
  static Result<std::map<std::string, std::string>> ComputeSignatures(
      const etl::Flow& flow);

 private:
  etl::TableColumns source_columns_;
  std::map<std::string, int64_t> table_rows_;
  etl::CostModelConfig cost_config_;
  EtlIntegrationOptions options_;
};

}  // namespace quarry::integrator

#endif  // QUARRY_INTEGRATOR_ETL_INTEGRATOR_H_
