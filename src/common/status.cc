#include "common/status.h"

namespace quarry {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kValidationError:
      return "ValidationError";
    case StatusCode::kUnsatisfiable:
      return "Unsatisfiable";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace quarry
