#ifndef QUARRY_JSON_XML_JSON_H_
#define QUARRY_JSON_XML_JSON_H_

#include <memory>

#include "common/result.h"
#include "json/json.h"
#include "xml/xml.h"

namespace quarry::json {

/// \brief Generic, lossless XML<->JSON<->XML bridge.
///
/// The Quarry paper's Communication & Metadata layer stores XML artifacts
/// (xRQ / xMD / xLM documents, ontologies) in a document store "using a
/// generic XML-JSON-XML parser". This is that bridge. An element becomes:
///
/// \code{.json}
///   {"tag": "node", "attrs": {"id": "n1"}, "text": "...",
///    "children": [ ... ]}
/// \endcode
///
/// with empty `attrs`/`text`/`children` omitted, so that
/// `JsonToXml(XmlToJson(e))` is structurally identical to `e`
/// (xml::DeepEqual).
Value XmlToJson(const xml::Element& element);

/// Inverse of XmlToJson. Fails when the value does not follow the mapping.
Result<std::unique_ptr<xml::Element>> JsonToXml(const Value& value);

}  // namespace quarry::json

#endif  // QUARRY_JSON_XML_JSON_H_
