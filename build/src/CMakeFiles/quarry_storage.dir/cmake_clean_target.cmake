file(REMOVE_RECURSE
  "libquarry_storage.a"
)
