#include "etl/expr.h"

#include <cctype>

#include "common/str_util.h"

namespace quarry::etl {

using storage::DataType;
using storage::Value;

Result<Value> RowView::Get(const std::string& name) const {
  for (size_t i = 0; i < names->size(); ++i) {
    if ((*names)[i] == name) return (*row)[i];
  }
  return Status::NotFound("column '" + name + "' in row");
}

Expr::Ptr Expr::Literal(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

Expr::Ptr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->column_ = std::move(name);
  return e;
}

Expr::Ptr Expr::Unary(std::string op, Ptr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kUnary;
  e->op_ = std::move(op);
  e->args_ = {std::move(operand)};
  return e;
}

Expr::Ptr Expr::Binary(std::string op, Ptr lhs, Ptr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kBinary;
  e->op_ = std::move(op);
  e->args_ = {std::move(lhs), std::move(rhs)};
  return e;
}

bool ExprTruthy(const Value& v) {
  return !v.is_null() && v.is_bool() && v.as_bool();
}

Result<Value> EvalArithmetic(const std::string& op, const Value& a,
                             const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    if (op == "+" && a.is_string() && b.is_string()) {
      return Value::String(a.as_string() + b.as_string());
    }
    return Status::InvalidArgument("arithmetic on non-numeric values: " +
                                   a.ToString() + " " + op + " " +
                                   b.ToString());
  }
  if (op == "/") {
    double denom = b.as_double();
    if (denom == 0.0) return Value::Null();  // SQL raises; ETL nulls out.
    return Value::Double(a.as_double() / denom);
  }
  if (a.is_int() && b.is_int()) {
    int64_t x = a.as_int(), y = b.as_int();
    if (op == "+") return Value::Int(x + y);
    if (op == "-") return Value::Int(x - y);
    if (op == "*") return Value::Int(x * y);
  } else {
    double x = a.as_double(), y = b.as_double();
    if (op == "+") return Value::Double(x + y);
    if (op == "-") return Value::Double(x - y);
    if (op == "*") return Value::Double(x * y);
  }
  return Status::Internal("unknown arithmetic op '" + op + "'");
}

Result<Value> EvalComparison(const std::string& op, const Value& a,
                             const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  int cmp = a.Compare(b);
  if (op == "=") return Value::Bool(cmp == 0);
  if (op == "<>") return Value::Bool(cmp != 0);
  if (op == "<") return Value::Bool(cmp < 0);
  if (op == "<=") return Value::Bool(cmp <= 0);
  if (op == ">") return Value::Bool(cmp > 0);
  if (op == ">=") return Value::Bool(cmp >= 0);
  return Status::Internal("unknown comparison op '" + op + "'");
}

Result<Value> Expr::Eval(const RowView& row) const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kColumn:
      return row.Get(column_);
    case Kind::kUnary: {
      QUARRY_ASSIGN_OR_RETURN(Value v, args_[0]->Eval(row));
      if (op_ == "-") {
        if (v.is_null()) return Value::Null();
        if (v.is_int()) return Value::Int(-v.as_int());
        if (v.is_double()) return Value::Double(-v.as_double());
        return Status::InvalidArgument("negation of non-numeric value");
      }
      if (op_ == "NOT") return Value::Bool(!ExprTruthy(v));
      return Status::Internal("unknown unary op '" + op_ + "'");
    }
    case Kind::kBinary: {
      if (op_ == "AND") {
        QUARRY_ASSIGN_OR_RETURN(Value a, args_[0]->Eval(row));
        if (!ExprTruthy(a)) return Value::Bool(false);
        QUARRY_ASSIGN_OR_RETURN(Value b, args_[1]->Eval(row));
        return Value::Bool(ExprTruthy(b));
      }
      if (op_ == "OR") {
        QUARRY_ASSIGN_OR_RETURN(Value a, args_[0]->Eval(row));
        if (ExprTruthy(a)) return Value::Bool(true);
        QUARRY_ASSIGN_OR_RETURN(Value b, args_[1]->Eval(row));
        return Value::Bool(ExprTruthy(b));
      }
      QUARRY_ASSIGN_OR_RETURN(Value a, args_[0]->Eval(row));
      QUARRY_ASSIGN_OR_RETURN(Value b, args_[1]->Eval(row));
      if (op_ == "+" || op_ == "-" || op_ == "*" || op_ == "/") {
        return EvalArithmetic(op_, a, b);
      }
      return EvalComparison(op_, a, b);
    }
  }
  return Status::Internal("corrupt expression");
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLiteral:
      if (literal_.is_string()) {
        return "'" + ReplaceAll(literal_.as_string(), "'", "''") + "'";
      }
      if (literal_.is_date()) return "DATE '" + literal_.ToString() + "'";
      if (literal_.is_bool()) return literal_.as_bool() ? "TRUE" : "FALSE";
      return literal_.ToString();
    case Kind::kColumn:
      return column_;
    case Kind::kUnary:
      if (op_ == "NOT") return "NOT (" + args_[0]->ToString() + ")";
      return "(" + op_ + args_[0]->ToString() + ")";
    case Kind::kBinary:
      return "(" + args_[0]->ToString() + " " + op_ + " " +
             args_[1]->ToString() + ")";
  }
  return "?";
}

std::set<std::string> Expr::ReferencedColumns() const {
  std::set<std::string> out;
  if (kind_ == Kind::kColumn) out.insert(column_);
  for (const Ptr& arg : args_) {
    for (const std::string& c : arg->ReferencedColumns()) out.insert(c);
  }
  return out;
}

namespace {

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  Result<Expr::Ptr> Parse() {
    QUARRY_ASSIGN_OR_RETURN(Expr::Ptr e, Or());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing input in expression at offset " +
                                std::to_string(pos_));
    }
    return e;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool MatchChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekChar(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  // Matches a keyword (case-insensitive, word boundary).
  bool MatchKeyword(std::string_view kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) != kw[i]) {
        return false;
      }
    }
    size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_' || text_[end] == '.')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  Result<Expr::Ptr> Or() {
    QUARRY_ASSIGN_OR_RETURN(Expr::Ptr lhs, And());
    while (MatchKeyword("OR")) {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr rhs, And());
      lhs = Expr::Binary("OR", lhs, rhs);
    }
    return lhs;
  }

  Result<Expr::Ptr> And() {
    QUARRY_ASSIGN_OR_RETURN(Expr::Ptr lhs, Not());
    while (MatchKeyword("AND")) {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr rhs, Not());
      lhs = Expr::Binary("AND", lhs, rhs);
    }
    return lhs;
  }

  Result<Expr::Ptr> Not() {
    if (MatchKeyword("NOT")) {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr operand, Not());
      return Expr::Unary("NOT", operand);
    }
    return Comparison();
  }

  Result<Expr::Ptr> Comparison() {
    QUARRY_ASSIGN_OR_RETURN(Expr::Ptr lhs, Additive());
    SkipSpace();
    std::string op;
    if (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '=') {
        op = "=";
        ++pos_;
      } else if (c == '<') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '>') {
          op = "<>";
          ++pos_;
        } else if (pos_ < text_.size() && text_[pos_] == '=') {
          op = "<=";
          ++pos_;
        } else {
          op = "<";
        }
      } else if (c == '>') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          op = ">=";
          ++pos_;
        } else {
          op = ">";
        }
      } else if (c == '!' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '=') {
        op = "<>";
        pos_ += 2;
      }
    }
    if (op.empty()) return lhs;
    QUARRY_ASSIGN_OR_RETURN(Expr::Ptr rhs, Additive());
    return Expr::Binary(op, lhs, rhs);
  }

  Result<Expr::Ptr> Additive() {
    QUARRY_ASSIGN_OR_RETURN(Expr::Ptr lhs, Multiplicative());
    while (true) {
      if (MatchChar('+')) {
        QUARRY_ASSIGN_OR_RETURN(Expr::Ptr rhs, Multiplicative());
        lhs = Expr::Binary("+", lhs, rhs);
      } else if (PeekChar('-')) {
        ++pos_;
        QUARRY_ASSIGN_OR_RETURN(Expr::Ptr rhs, Multiplicative());
        lhs = Expr::Binary("-", lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<Expr::Ptr> Multiplicative() {
    QUARRY_ASSIGN_OR_RETURN(Expr::Ptr lhs, UnaryExpr());
    while (true) {
      if (MatchChar('*')) {
        QUARRY_ASSIGN_OR_RETURN(Expr::Ptr rhs, UnaryExpr());
        lhs = Expr::Binary("*", lhs, rhs);
      } else if (MatchChar('/')) {
        QUARRY_ASSIGN_OR_RETURN(Expr::Ptr rhs, UnaryExpr());
        lhs = Expr::Binary("/", lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<Expr::Ptr> UnaryExpr() {
    if (MatchChar('-')) {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr operand, UnaryExpr());
      return Expr::Unary("-", operand);
    }
    return Primary();
  }

  Result<Expr::Ptr> Primary() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of expression");
    }
    if (MatchChar('(')) {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr inner, Or());
      if (!MatchChar(')')) {
        return Status::ParseError("expected ')' in expression");
      }
      return inner;
    }
    char c = text_[pos_];
    if (c == '\'') return StringLiteral(/*as_date=*/false);
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return NumberLiteral();
    }
    if (MatchKeyword("TRUE")) return Expr::Literal(Value::Bool(true));
    if (MatchKeyword("FALSE")) return Expr::Literal(Value::Bool(false));
    if (MatchKeyword("NULL")) return Expr::Literal(Value::Null());
    if (MatchKeyword("DATE")) return StringLiteral(/*as_date=*/true);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.')) {
        ++pos_;
      }
      return Expr::Column(std::string(text_.substr(start, pos_ - start)));
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' in expression");
  }

  Result<Expr::Ptr> StringLiteral(bool as_date) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '\'') {
      return Status::ParseError("expected string literal");
    }
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated string literal");
      }
      char c = text_[pos_++];
      if (c == '\'') {
        if (pos_ < text_.size() && text_[pos_] == '\'') {
          out.push_back('\'');
          ++pos_;
          continue;
        }
        break;
      }
      out.push_back(c);
    }
    if (as_date) {
      QUARRY_ASSIGN_OR_RETURN(Value v, Value::Parse(out, DataType::kDate));
      return Expr::Literal(std::move(v));
    }
    return Expr::Literal(Value::String(std::move(out)));
  }

  Result<Expr::Ptr> NumberLiteral() {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_double = true;
        ++pos_;
        if ((c == 'e' || c == 'E') && pos_ < text_.size() &&
            (text_[pos_] == '+' || text_[pos_] == '-')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    QUARRY_ASSIGN_OR_RETURN(
        Value v, Value::Parse(token, is_double ? DataType::kDouble
                                               : DataType::kInt64));
    return Expr::Literal(std::move(v));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Expr::Ptr> ParseExpr(std::string_view text) {
  ExprParser parser(text);
  return parser.Parse();
}

}  // namespace quarry::etl
