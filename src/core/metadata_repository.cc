#include "core/metadata_repository.h"

#include "json/xml_json.h"

namespace quarry::core {

Status MetadataRepository::StoreXml(const std::string& collection,
                                    const std::string& id,
                                    const xml::Element& doc) {
  json::Object wrapper;
  wrapper.emplace_back("_id", json::Value(id));
  wrapper.emplace_back("kind", json::Value(collection));
  wrapper.emplace_back("doc", json::XmlToJson(doc));
  return store_.GetOrCreate(collection)
      ->Upsert(id, json::Value(std::move(wrapper)));
}

Result<std::unique_ptr<xml::Element>> MetadataRepository::FetchXml(
    const std::string& collection, const std::string& id) const {
  QUARRY_ASSIGN_OR_RETURN(const docstore::Collection* c,
                          store_.Get(collection));
  QUARRY_ASSIGN_OR_RETURN(json::Value doc, c->Get(id));
  const json::Value* payload = doc.Find("doc");
  if (payload == nullptr) {
    return Status::Internal("document '" + id + "' lacks a 'doc' field");
  }
  return json::JsonToXml(*payload);
}

Status MetadataRepository::Remove(const std::string& collection,
                                  const std::string& id) {
  QUARRY_ASSIGN_OR_RETURN(docstore::Collection * c, store_.Get(collection));
  return c->Remove(id);
}

std::vector<std::string> MetadataRepository::Ids(
    const std::string& collection) const {
  auto c = store_.Get(collection);
  if (!c.ok()) return {};
  return (*c)->Ids();
}

Status MetadataRepository::EnableDurability(const std::string& dir) {
  return store_.EnableDurability(dir).WithContext("metadata repository");
}

Status MetadataRepository::RegisterExporter(const std::string& name,
                                            Exporter exporter) {
  if (exporters_.count(name) > 0) {
    return Status::AlreadyExists("exporter '" + name + "'");
  }
  exporters_.emplace(name, std::move(exporter));
  return Status::OK();
}

Result<std::string> MetadataRepository::Export(const std::string& name,
                                               const xml::Element& doc) const {
  auto it = exporters_.find(name);
  if (it == exporters_.end()) {
    return Status::NotFound("exporter '" + name + "'");
  }
  return it->second(doc);
}

std::vector<std::string> MetadataRepository::ExporterNames() const {
  std::vector<std::string> out;
  out.reserve(exporters_.size());
  for (const auto& [name, e] : exporters_) out.push_back(name);
  return out;
}

Status MetadataRepository::RegisterImporter(const std::string& name,
                                            Importer importer) {
  if (importers_.count(name) > 0) {
    return Status::AlreadyExists("importer '" + name + "'");
  }
  importers_.emplace(name, std::move(importer));
  return Status::OK();
}

Result<std::unique_ptr<xml::Element>> MetadataRepository::Import(
    const std::string& name, std::string_view text) const {
  auto it = importers_.find(name);
  if (it == importers_.end()) {
    return Status::NotFound("importer '" + name + "'");
  }
  return it->second(text);
}

std::vector<std::string> MetadataRepository::ImporterNames() const {
  std::vector<std::string> out;
  out.reserve(importers_.size());
  for (const auto& [name, i] : importers_) out.push_back(name);
  return out;
}

}  // namespace quarry::core
