#include "deployer/deployer.h"

#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "deployer/pdi_generator.h"
#include "deployer/sql_generator.h"
#include "integrator/design_integrator.h"
#include "interpreter/interpreter.h"
#include "ontology/tpch_ontology.h"
#include "storage/sql.h"

namespace quarry::deployer {
namespace {

using interpreter::Interpreter;
using req::InformationRequirement;

class DeployerTest : public ::testing::Test {
 protected:
  DeployerTest()
      : onto_(ontology::BuildTpchOntology()),
        mapping_(ontology::BuildTpchMappings()),
        interpreter_(&onto_, &mapping_) {
    EXPECT_TRUE(datagen::PopulateTpch(&src_, {0.005, 23}).ok());
  }

  static InformationRequirement RevenueIr() {
    InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_name"});
    ir.dimensions.push_back({"Supplier.s_name"});
    return ir;
  }

  interpreter::PartialDesign Interpret(const InformationRequirement& ir) {
    auto design = interpreter_.Interpret(ir);
    EXPECT_TRUE(design.ok()) << design.status();
    return std::move(*design);
  }

  ontology::Ontology onto_;
  ontology::SourceMapping mapping_;
  Interpreter interpreter_;
  storage::Database src_;
};

TEST_F(DeployerTest, GeneratedSqlMatchesPaperShape) {
  auto design = Interpret(RevenueIr());
  auto sql = GenerateSql(design.schema, mapping_, src_);
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("CREATE DATABASE demo;"), std::string::npos);
  EXPECT_NE(sql->find("CREATE TABLE fact_table_revenue"), std::string::npos);
  EXPECT_NE(sql->find("CREATE TABLE dim_Part"), std::string::npos);
  EXPECT_NE(sql->find("CREATE TABLE dim_Supplier"), std::string::npos);
  EXPECT_NE(sql->find("revenue double precision"), std::string::npos);
  EXPECT_NE(sql->find("PRIMARY KEY( p_partkey, s_suppkey )"),
            std::string::npos);
  EXPECT_NE(sql->find("FOREIGN KEY( p_partkey ) REFERENCES dim_Part"),
            std::string::npos);
}

TEST_F(DeployerTest, GeneratedSqlIsExecutable) {
  auto design = Interpret(RevenueIr());
  auto sql = GenerateSql(design.schema, mapping_, src_);
  ASSERT_TRUE(sql.ok());
  storage::Database target;
  auto report = storage::ExecuteSql(&target, *sql);
  ASSERT_TRUE(report.ok()) << report.status() << "\n" << *sql;
  EXPECT_EQ(report->tables_created, 3);
  EXPECT_EQ(target.name(), "demo");
  // Fact schema carries the FK and the composite PK.
  const storage::TableSchema& fact =
      (*target.GetTable("fact_table_revenue"))->schema();
  EXPECT_EQ(fact.primary_key().size(), 2u);
  EXPECT_EQ(fact.foreign_keys().size(), 2u);
}

TEST_F(DeployerTest, PdiExportMatchesPaperShape) {
  auto design = Interpret(RevenueIr());
  std::string ktr = GeneratePdiText(design.flow);
  EXPECT_NE(ktr.find("<transformation>"), std::string::npos);
  EXPECT_NE(ktr.find("<database>demo</database>"), std::string::npos);
  EXPECT_NE(ktr.find("<hop>"), std::string::npos);
  EXPECT_NE(ktr.find("<from>DATASTORE_lineitem</from>"), std::string::npos);
  EXPECT_NE(ktr.find("<type>TableInput</type>"), std::string::npos);
  EXPECT_NE(ktr.find("<type>TableOutput</type>"), std::string::npos);
  EXPECT_NE(ktr.find("<enabled>Y</enabled>"), std::string::npos);
  // It parses back as XML.
  EXPECT_TRUE(xml::Parse(ktr).ok());
}

TEST_F(DeployerTest, EndToEndDeploymentPopulatesWarehouse) {
  auto design = Interpret(RevenueIr());
  storage::Database target;
  Deployer dep(&src_, &target);
  auto report = dep.Deploy(design.schema, design.flow, mapping_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->tables_created, 3);
  EXPECT_TRUE(report->referential_integrity_ok);
  EXPECT_GT(report->etl.loaded.at("fact_table_revenue"), 0);
  EXPECT_GT(report->etl.loaded.at("dim_Part"), 0);
  // The fact PK (grain) held during the load and FK targets exist.
  EXPECT_TRUE(target.CheckReferentialIntegrity().ok());
}

TEST_F(DeployerTest, MergedFactFromTwoRequirementsFillsBothMeasures) {
  // Two IRs sharing grain -> one fact table with two measure columns, each
  // filled by its own loader (merge semantics).
  InformationRequirement r1 = RevenueIr();
  InformationRequirement r2 = RevenueIr();
  r2.id = "ir_discount";
  r2.measures[0] = {"avg_discount", "Lineitem.l_discount",
                    md::AggFunc::kAvg};

  etl::TableColumns columns;
  std::map<std::string, int64_t> rows;
  for (const std::string& name : src_.TableNames()) {
    std::vector<std::string> cols;
    for (const auto& c : (*src_.GetTable(name))->schema().columns()) {
      cols.push_back(c.name);
    }
    columns[name] = cols;
    rows[name] = static_cast<int64_t>((*src_.GetTable(name))->num_rows());
  }
  integrator::DesignIntegrator integrator(&onto_, columns, rows);
  ASSERT_TRUE(integrator.AddRequirement(r1, Interpret(r1)).ok());
  ASSERT_TRUE(integrator.AddRequirement(r2, Interpret(r2)).ok());

  storage::Database target;
  Deployer dep(&src_, &target);
  auto report =
      dep.Deploy(integrator.schema(), integrator.flow(), mapping_);
  ASSERT_TRUE(report.ok()) << report.status();
  const storage::Table& fact = **target.GetTable("fact_table_revenue");
  auto rev = fact.schema().ColumnIndex("revenue");
  auto disc = fact.schema().ColumnIndex("avg_discount");
  ASSERT_TRUE(rev.has_value());
  ASSERT_TRUE(disc.has_value());
  ASSERT_GT(fact.num_rows(), 0u);
  for (const storage::Row& row : fact.rows()) {
    EXPECT_FALSE(row[*rev].is_null());
    EXPECT_FALSE(row[*disc].is_null());
  }
}

TEST_F(DeployerTest, SqlGenerationFailsOnUnmappedConcept) {
  auto design = Interpret(RevenueIr());
  ontology::SourceMapping empty;
  EXPECT_TRUE(
      GenerateSql(design.schema, empty, src_).status().IsNotFound());
}

}  // namespace
}  // namespace quarry::deployer
