// End-to-end coverage of the second (retail) demo domain: the pipeline is
// domain-independent — swap the ontology + mappings + source and the whole
// lifecycle works unchanged.

#include "datagen/retail.h"

#include <gtest/gtest.h>

#include "core/quarry.h"
#include "olap/cube_query.h"

namespace quarry::datagen {
namespace {

class RetailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(PopulateRetail(&src_, {0.02, 9}).ok());
  }
  storage::Database src_;
};

TEST_F(RetailTest, GeneratorProducesConsistentData) {
  for (const char* table :
       {"retail_region", "store", "product", "retail_customer", "sale"}) {
    ASSERT_TRUE(src_.HasTable(table)) << table;
    EXPECT_GT((*src_.GetTable(table))->num_rows(), 0u) << table;
  }
  EXPECT_TRUE(src_.CheckReferentialIntegrity().ok());
}

TEST_F(RetailTest, GeneratorIsDeterministic) {
  storage::Database a, b;
  ASSERT_TRUE(PopulateRetail(&a, {0.005, 3}).ok());
  ASSERT_TRUE(PopulateRetail(&b, {0.005, 3}).ok());
  const storage::Table& sa = **a.GetTable("sale");
  const storage::Table& sb = **b.GetTable("sale");
  ASSERT_EQ(sa.num_rows(), sb.num_rows());
  for (size_t i = 0; i < sa.num_rows(); ++i) {
    EXPECT_TRUE(sa.rows()[i][6].SameAs(sb.rows()[i][6]));
  }
}

TEST_F(RetailTest, OntologyAndMappingsValidate) {
  ontology::Ontology onto = BuildRetailOntology();
  ontology::SourceMapping mapping = BuildRetailMappings();
  EXPECT_TRUE(mapping.Validate(onto).ok());
  // Sale fans out functionally to all analysis concepts.
  auto reachable = onto.FunctionallyReachable("Sale");
  EXPECT_EQ(reachable.size(), 4u);
  EXPECT_TRUE(onto.FindFunctionalPath("Sale", "Region").ok());
}

TEST_F(RetailTest, FullLifecycleOnRetailDomain) {
  auto quarry = core::Quarry::Create(BuildRetailOntology(),
                                     BuildRetailMappings(), &src_);
  ASSERT_TRUE(quarry.ok()) << quarry.status();

  // The elicitor ranks Sale as the subject of analysis.
  auto facts = (*quarry)->elicitor().SuggestFacts();
  ASSERT_FALSE(facts.empty());
  EXPECT_EQ(facts[0].concept_id, "Sale");

  auto outcome = (*quarry)->AddRequirementFromQuery(
      "ANALYZE turnover ON Sale "
      "MEASURE turnover = Sale.sl_amount * (1 - Sale.sl_discount) SUM "
      "BY Product.pr_category, Store.st_city "
      "WHERE Customer.cu_segment = 'LOYALTY'");
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  // Second requirement at region grain: Region folds into Store's
  // hierarchy (the integrator behaves identically across domains).
  auto outcome2 = (*quarry)->AddRequirementFromQuery(
      "ANALYZE units_by_region ON Sale "
      "MEASURE units = Sale.sl_units SUM BY Region.rr_name");
  ASSERT_TRUE(outcome2.ok()) << outcome2.status();
  EXPECT_TRUE(
      (*quarry)->schema().GetDimension("Region").status().IsNotFound());
  const md::Dimension& store_dim = **(*quarry)->schema().GetDimension("Store");
  EXPECT_EQ(store_dim.levels.back().concept_id, "Region");

  storage::Database dw;
  auto deployment = (*quarry)->Deploy(&dw);
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  EXPECT_TRUE(deployment->referential_integrity_ok);
  EXPECT_GT((*dw.GetTable("fact_table_turnover"))->num_rows(), 0u);

  // Roll up turnover per category on the deployed warehouse.
  olap::CubeQueryEngine engine(&(*quarry)->schema(), &(*quarry)->mapping(),
                               &dw);
  olap::CubeQuery query;
  query.fact = "fact_table_turnover";
  query.group_by = {"pr_category"};
  query.measures = {{"turnover", md::AggFunc::kSum, ""}};
  auto result = engine.Execute(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->rows.size(), 0u);
  EXPECT_LE(result->rows.size(), 6u);  // six product categories
}

TEST_F(RetailTest, CrossDomainSessionsAreIndependent) {
  // Two Quarry instances over different domains coexist without clashes.
  auto retail = core::Quarry::Create(BuildRetailOntology(),
                                     BuildRetailMappings(), &src_);
  ASSERT_TRUE(retail.ok());
  EXPECT_TRUE((*retail)->ontology().HasConcept("Sale"));
  EXPECT_FALSE((*retail)->ontology().HasConcept("Lineitem"));
}

}  // namespace
}  // namespace quarry::datagen
