#include "xml/xml.h"

#include <cctype>
#include <sstream>

#include "common/str_util.h"

namespace quarry::xml {

void Element::SetAttr(const std::string& key, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(key, std::move(value));
}

bool Element::HasAttr(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return true;
  }
  return false;
}

std::string Element::AttrOr(const std::string& key,
                            std::string fallback) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  return fallback;
}

Element* Element::AddChild(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return children_.back().get();
}

Element* Element::AddTextChild(std::string name, std::string text) {
  Element* child = AddChild(std::move(name));
  child->set_text(std::move(text));
  return child;
}

Element* Element::Adopt(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

const Element* Element::FirstChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

Element* Element::FirstChild(std::string_view name) {
  for (auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::Children(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& child : children_) {
    if (child->name() == name) out.push_back(child.get());
  }
  return out;
}

std::string Element::ChildText(std::string_view name) const {
  const Element* child = FirstChild(name);
  return child == nullptr ? "" : child->text();
}

size_t Element::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children_) n += child->SubtreeSize();
  return n;
}

std::unique_ptr<Element> Element::Clone() const {
  auto copy = std::make_unique<Element>(name_);
  copy->text_ = text_;
  copy->attributes_ = attributes_;
  for (const auto& child : children_) copy->Adopt(child->Clone());
  return copy;
}

namespace {

/// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view input, const ParseLimits& limits)
      : input_(input), limits_(limits) {}

  Result<std::unique_ptr<Element>> ParseDocument() {
    if (limits_.max_input_bytes > 0 &&
        input_.size() > limits_.max_input_bytes) {
      return Status::ResourceExhausted(
          "XML document of " + std::to_string(input_.size()) +
          " bytes exceeds the input limit of " +
          std::to_string(limits_.max_input_bytes) + " bytes");
    }
    SkipProlog();
    if (AtEnd() || Peek() != '<') {
      return Status::ParseError("expected root element");
    }
    QUARRY_ASSIGN_OR_RETURN(auto root, ParseElement());
    SkipMisc();
    if (!AtEnd()) {
      return Status::ParseError("trailing content after root element at " +
                                Where());
    }
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }
  void Advance() { ++pos_; }

  std::string Where() const { return "offset " + std::to_string(pos_); }

  bool Match(std::string_view token) {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  // Skips declaration / DTD / comments / PIs before or after the root.
  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (Match("<?")) {
        SkipUntil("?>");
      } else if (Match("<!--")) {
        SkipUntil("-->");
      } else if (Match("<!DOCTYPE")) {
        SkipUntil(">");
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Match("<!--")) {
        SkipUntil("-->");
      } else if (Match("<?")) {
        SkipUntil("?>");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    size_t found = input_.find(terminator, pos_);
    pos_ = found == std::string_view::npos ? input_.size()
                                           : found + terminator.size();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    if (pos_ == start) {
      return Status::ParseError("expected name at " + Where());
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseAttrValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Status::ParseError("expected quoted attribute value at " +
                                Where());
    }
    char quote = Peek();
    Advance();
    std::string raw;
    while (!AtEnd() && Peek() != quote) {
      raw.push_back(Peek());
      Advance();
    }
    if (AtEnd()) {
      return Status::ParseError("unterminated attribute value at " + Where());
    }
    Advance();  // closing quote
    return DecodeEntities(raw);
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        ++i;
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (!entity.empty() && entity[0] == '#') {
        int base = 10;
        std::string_view digits = entity.substr(1);
        if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
          base = 16;
          digits = digits.substr(1);
        }
        long code = 0;
        for (char c : digits) {
          int digit;
          if (c >= '0' && c <= '9') {
            digit = c - '0';
          } else if (base == 16 && c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else if (base == 16 && c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
          } else {
            return Status::ParseError("bad character reference &" +
                                      std::string(entity) + ";");
          }
          code = code * base + digit;
        }
        // Encode as UTF-8.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Status::ParseError("unknown entity &" + std::string(entity) +
                                  ";");
      }
      i = semi + 1;
    }
    return out;
  }

  Result<std::unique_ptr<Element>> ParseElement() {
    if (limits_.max_depth > 0 && depth_ >= limits_.max_depth) {
      return Status::ResourceExhausted(
          "element nesting exceeds the depth limit of " +
          std::to_string(limits_.max_depth) + " at " + Where());
    }
    ++depth_;
    Result<std::unique_ptr<Element>> element = ParseElementInner();
    --depth_;
    return element;
  }

  Result<std::unique_ptr<Element>> ParseElementInner() {
    if (!Match("<")) {
      return Status::ParseError("expected '<' at " + Where());
    }
    QUARRY_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto element = std::make_unique<Element>(name);
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) {
        return Status::ParseError("unterminated start tag <" + name);
      }
      if (Peek() == '>' || Peek() == '/') break;
      QUARRY_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWhitespace();
      if (!Match("=")) {
        return Status::ParseError("expected '=' after attribute " + key);
      }
      SkipWhitespace();
      QUARRY_ASSIGN_OR_RETURN(std::string value, ParseAttrValue());
      element->SetAttr(key, std::move(value));
    }
    if (Match("/>")) return element;
    if (!Match(">")) {
      return Status::ParseError("malformed start tag <" + name);
    }
    // Content.
    std::string text;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unterminated element <" + name + ">");
      }
      if (Peek() == '<') {
        if (Match("</")) {
          QUARRY_ASSIGN_OR_RETURN(std::string close, ParseName());
          if (close != name) {
            return Status::ParseError("mismatched close tag </" + close +
                                      "> for <" + name + ">");
          }
          SkipWhitespace();
          if (!Match(">")) {
            return Status::ParseError("malformed close tag </" + close);
          }
          break;
        }
        if (Match("<!--")) {
          SkipUntil("-->");
          continue;
        }
        if (Match("<![CDATA[")) {
          size_t end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return Status::ParseError("unterminated CDATA section");
          }
          text.append(input_.substr(pos_, end - pos_));
          pos_ = end + 3;
          continue;
        }
        if (Match("<?")) {
          SkipUntil("?>");
          continue;
        }
        QUARRY_ASSIGN_OR_RETURN(auto child, ParseElement());
        element->Adopt(std::move(child));
        continue;
      }
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') Advance();
      QUARRY_ASSIGN_OR_RETURN(
          std::string decoded,
          DecodeEntities(input_.substr(start, pos_ - start)));
      text.append(decoded);
    }
    element->set_text(std::string(Trim(text)));
    return element;
  }

  std::string_view input_;
  ParseLimits limits_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

void WriteElement(const Element& element, bool pretty, int depth,
                  std::string* out) {
  std::string indent = pretty ? std::string(2 * depth, ' ') : "";
  out->append(indent);
  out->push_back('<');
  out->append(element.name());
  for (const auto& [key, value] : element.attributes()) {
    out->push_back(' ');
    out->append(key);
    out->append("=\"");
    out->append(EscapeText(value));
    out->push_back('"');
  }
  if (element.children().empty() && element.text().empty()) {
    out->append("/>");
    if (pretty) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (element.children().empty()) {
    // Leaf with text: keep on one line.
    out->append(EscapeText(element.text()));
  } else {
    if (pretty) out->push_back('\n');
    if (!element.text().empty()) {
      if (pretty) out->append(std::string(2 * (depth + 1), ' '));
      out->append(EscapeText(element.text()));
      if (pretty) out->push_back('\n');
    }
    for (const auto& child : element.children()) {
      WriteElement(*child, pretty, depth + 1, out);
    }
    out->append(indent);
  }
  out->append("</");
  out->append(element.name());
  out->push_back('>');
  if (pretty) out->push_back('\n');
}

}  // namespace

Result<std::unique_ptr<Element>> Parse(std::string_view input,
                                       const ParseLimits& limits) {
  Parser parser(input, limits);
  return parser.ParseDocument();
}

std::string Write(const Element& root, bool pretty) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  if (pretty) out.push_back('\n');
  WriteElement(root, pretty, 0, &out);
  return out;
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '&':
        out.append("&amp;");
        break;
      case '"':
        out.append("&quot;");
        break;
      case '\'':
        out.append("&apos;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

bool DeepEqual(const Element& a, const Element& b) {
  if (a.name() != b.name()) return false;
  if (Trim(a.text()) != Trim(b.text())) return false;
  if (a.attributes() != b.attributes()) return false;
  if (a.children().size() != b.children().size()) return false;
  for (size_t i = 0; i < a.children().size(); ++i) {
    if (!DeepEqual(*a.children()[i], *b.children()[i])) return false;
  }
  return true;
}

}  // namespace quarry::xml
