file(REMOVE_RECURSE
  "libquarry_deployer.a"
)
