#ifndef QUARRY_OBS_TRACE_H_
#define QUARRY_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace quarry::obs {

/// One span attribute, stringified at record time ("ir_id" -> "ir_revenue",
/// "rows_out" -> "1234").
struct SpanAttr {
  std::string key;
  std::string value;
};

/// \brief A completed span as stored in the recorder's buffer.
///
/// Timestamps are microseconds on the monotonic clock, relative to the
/// recorder's Start() — Chrome trace_event wants exactly that shape.
struct SpanRecord {
  std::string name;
  double start_us = 0;
  double dur_us = 0;
  uint32_t tid = 0;    ///< Small sequential per-thread id.
  uint32_t depth = 0;  ///< Nesting depth on its thread (0 = root span).
  std::vector<SpanAttr> attrs;
};

/// \brief Process-wide span recorder (docs/OBSERVABILITY.md).
///
/// Disabled by default: QUARRY_SPAN costs one relaxed atomic load until
/// Start() is called. Enabled, completed spans go into a preallocated
/// buffer via a lock-free slot reservation (fetch_add) — no mutex on the
/// hot path; when the buffer is full new spans are counted as dropped
/// instead of evicting the recorded prefix (the start of a run is what a
/// trace viewer needs intact). Export is Chrome trace_event JSON, loadable
/// in chrome://tracing or https://ui.perfetto.dev.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  static TraceRecorder& Instance();

  /// Clears the buffer, (re)sizes it, re-bases timestamps and enables
  /// recording.
  void Start(size_t capacity = kDefaultCapacity);

  /// Stops recording; the buffer stays readable for export.
  void Stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Completed spans recorded so far, in completion order.
  std::vector<SpanRecord> Snapshot() const;

  /// Spans that found the buffer full and were not recorded.
  int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  size_t size() const;

  /// Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...}, ...]}.
  /// Complete ("X") events with ts/dur nest automatically per thread.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`; returns false and fills `error`
  /// (when non-null) on I/O failure. No quarry::Status here — the obs layer
  /// stays dependency-free.
  bool WriteChromeTrace(const std::string& path,
                        std::string* error = nullptr) const;

  /// Called by Span's destructor. Public only for the Span class.
  void Record(SpanRecord record);

  /// Microseconds since Start() on the monotonic clock.
  double NowMicros() const;

 private:
  TraceRecorder();

  struct Slot {
    std::atomic<bool> ready{false};
    SpanRecord record;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> next_{0};  ///< Slot reservation cursor.
  std::atomic<int64_t> dropped_{0};
  /// Allocated by Start(); grown buffers deliberately leak the old array so
  /// a straggler Record() can never touch freed memory (Start is a
  /// control-plane call; growth is rare and bounded).
  Slot* slots_ = nullptr;
  size_t capacity_ = 0;
  int64_t epoch_ns_ = 0;  ///< Monotonic nanos at Start().
};

/// \brief RAII span: records [construction, destruction) on the current
/// thread when the recorder is enabled. Use via QUARRY_SPAN /
/// QUARRY_NAMED_SPAN so -DQUARRY_DISABLE_TRACING compiles every span (and
/// its name expression) out entirely.
class Span {
 public:
  explicit Span(std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an attribute. Prefer QUARRY_SPAN_ATTR, which also compiles
  /// the value expression out under QUARRY_DISABLE_TRACING.
  void SetAttr(std::string_view key, std::string_view value);
  void SetAttr(std::string_view key, const char* value) {
    SetAttr(key, std::string_view(value));
  }
  void SetAttr(std::string_view key, int64_t value);
  void SetAttr(std::string_view key, int value) {
    SetAttr(key, static_cast<int64_t>(value));
  }
  void SetAttr(std::string_view key, double value);

  bool active() const { return active_; }

 private:
  bool active_ = false;
  uint32_t depth_ = 0;
  double start_us_ = 0;
  std::string name_;
  std::vector<SpanAttr> attrs_;
};

/// No-op stand-in used when tracing is compiled out. Accepts every SetAttr
/// the real Span does (arguments are still evaluated — use
/// QUARRY_SPAN_ATTR when the value expression itself must vanish).
struct NullSpan {
  template <typename K, typename V>
  void SetAttr(K&&, V&&) {}
  bool active() const { return false; }
};

}  // namespace quarry::obs

#define QUARRY_OBS_CONCAT_INNER(a, b) a##b
#define QUARRY_OBS_CONCAT(a, b) QUARRY_OBS_CONCAT_INNER(a, b)

/// QUARRY_SPAN("stage.name"): traces the rest of the enclosing scope.
/// QUARRY_NAMED_SPAN(span, "stage.name"): same, but names the variable so
/// attributes can be attached: QUARRY_SPAN_ATTR(span, "rows", n).
/// With -DQUARRY_DISABLE_TRACING all three compile to (at most) an unused
/// empty object — name and attribute expressions are never evaluated.
#ifdef QUARRY_DISABLE_TRACING
#define QUARRY_SPAN(name)                      \
  [[maybe_unused]] ::quarry::obs::NullSpan     \
      QUARRY_OBS_CONCAT(_quarry_span_, __LINE__)
#define QUARRY_NAMED_SPAN(var, name) \
  [[maybe_unused]] ::quarry::obs::NullSpan var
#define QUARRY_SPAN_ATTR(var, key, value) \
  do {                                    \
  } while (false)
#else
#define QUARRY_SPAN(name) \
  ::quarry::obs::Span QUARRY_OBS_CONCAT(_quarry_span_, __LINE__)(name)
#define QUARRY_NAMED_SPAN(var, name) ::quarry::obs::Span var(name)
#define QUARRY_SPAN_ATTR(var, key, value) (var).SetAttr((key), (value))
#endif

#endif  // QUARRY_OBS_TRACE_H_
