#ifndef QUARRY_DEPLOYER_DEPLOYER_H_
#define QUARRY_DEPLOYER_DEPLOYER_H_

#include <string>

#include "common/result.h"
#include "etl/exec/executor.h"
#include "etl/flow.h"
#include "mdschema/md_schema.h"
#include "ontology/mapping.h"
#include "storage/database.h"

namespace quarry::deployer {

/// Outcome of a full deployment.
struct DeploymentReport {
  std::string ddl;       ///< Generated SQL script (also executed).
  std::string pdi_ktr;   ///< Generated Pentaho-style transformation XML.
  int tables_created = 0;
  etl::ExecutionReport etl;  ///< Stats of the initial ETL population run.
  bool referential_integrity_ok = false;
};

/// \brief The Design Deployer (paper §2.4): turns the unified design
/// solutions into executables for the target platforms and performs the
/// initial deployment — CREATE TABLE script executed on the embedded
/// relational engine (the PostgreSQL stand-in) and the unified ETL flow run
/// on the embedded ETL engine (the Pentaho stand-in) to populate it.
class Deployer {
 public:
  /// Both databases must outlive the deployer. `source` holds the
  /// operational data the ETL extracts from; `target` receives the DW.
  Deployer(const storage::Database* source, storage::Database* target)
      : source_(source), target_(target) {}

  /// Generates DDL + ktr, executes the DDL against the target, runs the
  /// flow to populate it, and verifies referential integrity.
  Result<DeploymentReport> Deploy(const md::MdSchema& schema,
                                  const etl::Flow& flow,
                                  const ontology::SourceMapping& mapping,
                                  const std::string& database_name = "demo");

  /// Incremental refresh of an already-deployed warehouse: re-runs the ETL
  /// flow without touching the schema. Keyed loaders skip rows already
  /// present and merge-fill new measure columns, so only source changes
  /// since the last run land in the target. Verifies integrity afterwards.
  Result<etl::ExecutionReport> Refresh(const etl::Flow& flow);

 private:
  const storage::Database* source_;
  storage::Database* target_;
};

}  // namespace quarry::deployer

#endif  // QUARRY_DEPLOYER_DEPLOYER_H_
