#!/usr/bin/env bash
# Runs the robustness suites — the fault-injection matrix (`-L fault`) and
# the durability crash matrix (`-L crash`) — in a dedicated ASan-instrumented
# build, so the QUARRY_SANITIZE wiring is actually exercised and every
# injected crash/recovery path is checked for memory errors too.
#
# Usage: tools/run_crash_matrix.sh [build-dir] [sanitizer]
#   build-dir  defaults to build-asan (kept separate from the plain build)
#   sanitizer  defaults to address ('undefined' also works)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
sanitizer="${2:-address}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQUARRY_SANITIZE="${sanitizer}"
cmake --build "${build_dir}" -j

# abort_on_error makes an ASan report fail the ctest run instead of only
# printing; detect_leaks catches WAL fds / buffers dropped on crash paths.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"

ctest --test-dir "${build_dir}" -L 'fault|crash' --output-on-failure
