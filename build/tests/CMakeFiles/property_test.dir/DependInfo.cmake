
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quarry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_deployer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_integrator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_interpreter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_requirements.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_docstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_etl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_mdschema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
