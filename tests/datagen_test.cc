#include "datagen/tpch.h"

#include <gtest/gtest.h>

#include <set>

#include "storage/database.h"

namespace quarry::datagen {
namespace {

using storage::Database;
using storage::Row;
using storage::Table;
using storage::Value;

class TpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.scale_factor = 0.002;
    config.seed = 7;
    ASSERT_TRUE(PopulateTpch(&db_, config).ok());
  }
  Database db_;
};

TEST_F(TpchTest, AllEightTablesCreated) {
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(db_.HasTable(name)) << name;
  }
  EXPECT_EQ(db_.num_tables(), 8u);
}

TEST_F(TpchTest, FixedCardinalities) {
  EXPECT_EQ((*db_.GetTable("region"))->num_rows(), 5u);
  EXPECT_EQ((*db_.GetTable("nation"))->num_rows(), 25u);
}

TEST_F(TpchTest, ScaledCardinalitiesMatchExpectation) {
  TpchConfig config;
  config.scale_factor = 0.002;
  for (const char* name : {"supplier", "customer", "part", "partsupp",
                           "orders"}) {
    EXPECT_EQ(static_cast<int64_t>((*db_.GetTable(name))->num_rows()),
              ExpectedRows(name, config))
        << name;
  }
  // Lineitem is stochastic per order (1..7): check a sane envelope.
  int64_t orders = ExpectedRows("orders", config);
  auto lineitem = (*db_.GetTable("lineitem"))->num_rows();
  EXPECT_GE(static_cast<int64_t>(lineitem), orders);
  EXPECT_LE(static_cast<int64_t>(lineitem), orders * 7);
}

TEST_F(TpchTest, ReferentialIntegrityHolds) {
  EXPECT_TRUE(db_.CheckReferentialIntegrity().ok());
}

TEST_F(TpchTest, LineitemSupplierMatchesAPartsuppOffer) {
  const Table& lineitem = **db_.GetTable("lineitem");
  const Table& partsupp = **db_.GetTable("partsupp");
  std::set<std::pair<int64_t, int64_t>> offers;
  for (const Row& row : partsupp.rows()) {
    offers.emplace(row[0].as_int(), row[1].as_int());
  }
  for (const Row& row : lineitem.rows()) {
    EXPECT_TRUE(offers.count({row[2].as_int(), row[3].as_int()}) > 0)
        << "lineitem references (part,supplier) not offered in partsupp";
  }
}

TEST_F(TpchTest, DatesWithinTpchWindow) {
  const Table& orders = **db_.GetTable("orders");
  int32_t lo = storage::DaysFromCivil(1992, 1, 1);
  int32_t hi = storage::DaysFromCivil(1998, 12, 31);
  for (const Row& row : orders.rows()) {
    EXPECT_GE(row[4].as_date_days(), lo);
    EXPECT_LE(row[4].as_date_days(), hi);
  }
}

TEST(TpchDeterminismTest, SameSeedSameData) {
  TpchConfig config;
  config.scale_factor = 0.001;
  config.seed = 99;
  Database a, b;
  ASSERT_TRUE(PopulateTpch(&a, config).ok());
  ASSERT_TRUE(PopulateTpch(&b, config).ok());
  for (const std::string& name : a.TableNames()) {
    const Table& ta = **a.GetTable(name);
    const Table& tb = **b.GetTable(name);
    ASSERT_EQ(ta.num_rows(), tb.num_rows()) << name;
    for (size_t i = 0; i < ta.num_rows(); ++i) {
      for (size_t c = 0; c < ta.schema().num_columns(); ++c) {
        ASSERT_TRUE(ta.rows()[i][c].SameAs(tb.rows()[i][c]))
            << name << " row " << i << " col " << c;
      }
    }
  }
}

TEST(TpchDeterminismTest, DifferentSeedDifferentData) {
  TpchConfig c1{0.001, 1}, c2{0.001, 2};
  Database a, b;
  ASSERT_TRUE(PopulateTpch(&a, c1).ok());
  ASSERT_TRUE(PopulateTpch(&b, c2).ok());
  const Table& la = **a.GetTable("lineitem");
  const Table& lb = **b.GetTable("lineitem");
  bool any_diff = la.num_rows() != lb.num_rows();
  for (size_t i = 0; !any_diff && i < la.num_rows(); ++i) {
    if (!la.rows()[i][5].SameAs(lb.rows()[i][5])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TpchConfigTest, RejectsNonPositiveScale) {
  Database db;
  EXPECT_TRUE(PopulateTpch(&db, {0.0, 1}).IsInvalidArgument());
  EXPECT_TRUE(PopulateTpch(&db, {-1.0, 1}).IsInvalidArgument());
}

TEST(TpchConfigTest, RepopulationFails) {
  Database db;
  ASSERT_TRUE(PopulateTpch(&db, {0.001, 1}).ok());
  EXPECT_TRUE(PopulateTpch(&db, {0.001, 1}).IsAlreadyExists());
}

TEST(TpchConfigTest, ScaleGrowsCardinalities) {
  TpchConfig small{0.001, 1}, large{0.01, 1};
  EXPECT_LT(ExpectedRows("orders", small), ExpectedRows("orders", large));
  EXPECT_LT(ExpectedRows("part", small), ExpectedRows("part", large));
}

}  // namespace
}  // namespace quarry::datagen
