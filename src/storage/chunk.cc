#include "storage/chunk.h"

#include <algorithm>
#include <utility>

namespace quarry::storage {

namespace {

/// Rep for one value; never called on NULL.
ValueSegment::Rep RepOf(const Value& v) {
  if (v.is_bool()) return ValueSegment::Rep::kBool;
  if (v.is_int()) return ValueSegment::Rep::kInt64;
  if (v.is_double()) return ValueSegment::Rep::kDouble;
  if (v.is_string()) return ValueSegment::Rep::kString;
  return ValueSegment::Rep::kDate;
}

}  // namespace

ValueSegment ValueSegment::FromRows(const std::vector<Row>& rows,
                                    size_t column, size_t begin, size_t end) {
  std::vector<Value> values;
  values.reserve(end - begin);
  for (size_t r = begin; r < end; ++r) values.push_back(rows[r][column]);
  return FromValues(std::move(values));
}

ValueSegment ValueSegment::FromValues(std::vector<Value> values) {
  ValueSegment seg;
  seg.size_ = values.size();

  // Pass 1: pick the representation — the uniform non-NULL type, or kMixed.
  bool any_value = false;
  bool mixed = false;
  Rep rep = Rep::kInt64;  // All-NULL default; the mask hides it anyway.
  for (const Value& v : values) {
    if (v.is_null()) continue;
    Rep r = RepOf(v);
    if (!any_value) {
      rep = r;
      any_value = true;
    } else if (r != rep) {
      mixed = true;
      break;
    }
  }
  if (mixed) {
    seg.rep_ = Rep::kMixed;
    seg.values_ = std::move(values);
    return seg;
  }
  seg.rep_ = rep;

  // Pass 2: typed payload plus a null mask (allocated only when needed).
  bool any_null = false;
  for (const Value& v : values) {
    if (v.is_null()) {
      any_null = true;
      break;
    }
  }
  if (any_null) seg.nulls_.assign(values.size(), 0);
  switch (rep) {
    case Rep::kBool:
      seg.bools_.resize(values.size(), 0);
      break;
    case Rep::kInt64:
      seg.ints_.resize(values.size(), 0);
      break;
    case Rep::kDouble:
      seg.doubles_.resize(values.size(), 0.0);
      break;
    case Rep::kString:
      seg.strings_.resize(values.size());
      break;
    case Rep::kDate:
      seg.dates_.resize(values.size(), 0);
      break;
    case Rep::kMixed:
      break;  // Unreachable.
  }
  for (size_t i = 0; i < values.size(); ++i) {
    Value& v = values[i];
    if (v.is_null()) {
      seg.nulls_[i] = 1;
      continue;
    }
    switch (rep) {
      case Rep::kBool:
        seg.bools_[i] = v.as_bool() ? 1 : 0;
        break;
      case Rep::kInt64:
        seg.ints_[i] = v.as_int();
        break;
      case Rep::kDouble:
        seg.doubles_[i] = v.as_double();
        break;
      case Rep::kString:
        seg.strings_[i] = std::move(const_cast<std::string&>(v.as_string()));
        break;
      case Rep::kDate:
        seg.dates_[i] = v.as_date_days();
        break;
      case Rep::kMixed:
        break;  // Unreachable.
    }
  }
  return seg;
}

Value ValueSegment::At(size_t i) const {
  if (rep_ == Rep::kMixed) return values_[i];
  if (IsNull(i)) return Value::Null();
  switch (rep_) {
    case Rep::kBool:
      return Value::Bool(bools_[i] != 0);
    case Rep::kInt64:
      return Value::Int(ints_[i]);
    case Rep::kDouble:
      return Value::Double(doubles_[i]);
    case Rep::kString:
      return Value::String(strings_[i]);
    case Rep::kDate:
      return Value::Date(dates_[i]);
    case Rep::kMixed:
      break;  // Handled above.
  }
  return Value::Null();
}

ValueSegment ValueSegment::Gather(const std::vector<uint32_t>& positions) const {
  ValueSegment seg;
  seg.rep_ = rep_;
  seg.size_ = positions.size();
  if (rep_ == Rep::kMixed) {
    seg.values_.reserve(positions.size());
    for (uint32_t p : positions) seg.values_.push_back(values_[p]);
    return seg;
  }
  if (!nulls_.empty()) {
    seg.nulls_.reserve(positions.size());
    for (uint32_t p : positions) seg.nulls_.push_back(nulls_[p]);
  }
  switch (rep_) {
    case Rep::kBool:
      seg.bools_.reserve(positions.size());
      for (uint32_t p : positions) seg.bools_.push_back(bools_[p]);
      break;
    case Rep::kInt64:
      seg.ints_.reserve(positions.size());
      for (uint32_t p : positions) seg.ints_.push_back(ints_[p]);
      break;
    case Rep::kDouble:
      seg.doubles_.reserve(positions.size());
      for (uint32_t p : positions) seg.doubles_.push_back(doubles_[p]);
      break;
    case Rep::kString:
      seg.strings_.reserve(positions.size());
      for (uint32_t p : positions) seg.strings_.push_back(strings_[p]);
      break;
    case Rep::kDate:
      seg.dates_.reserve(positions.size());
      for (uint32_t p : positions) seg.dates_.push_back(dates_[p]);
      break;
    case Rep::kMixed:
      break;  // Handled above.
  }
  return seg;
}

void Chunk::AppendRowsTo(std::vector<Row>* out) const {
  const size_t n = num_rows();
  const size_t cols = num_columns();
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t phys = PhysicalRow(i);
    Row row;
    row.reserve(cols);
    for (size_t c = 0; c < cols; ++c) row.push_back(segments_[c]->At(phys));
    out->push_back(std::move(row));
  }
}

Chunk MakeChunk(const std::vector<Row>& rows, size_t num_columns,
                size_t begin, size_t end) {
  std::vector<Chunk::SegmentPtr> segments;
  segments.reserve(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    segments.push_back(std::make_shared<const ValueSegment>(
        ValueSegment::FromRows(rows, c, begin, end)));
  }
  return Chunk(std::move(segments));
}

std::vector<Chunk> ChunkRows(const std::vector<Row>& rows,
                             size_t num_columns, int64_t chunk_size) {
  const size_t step = static_cast<size_t>(std::max<int64_t>(1, chunk_size));
  std::vector<Chunk> chunks;
  chunks.reserve(rows.size() / step + 1);
  for (size_t begin = 0; begin < rows.size(); begin += step) {
    const size_t end = std::min(rows.size(), begin + step);
    chunks.push_back(MakeChunk(rows, num_columns, begin, end));
  }
  return chunks;
}

}  // namespace quarry::storage
