file(REMOVE_RECURSE
  "CMakeFiles/quarry_datagen.dir/datagen/retail.cc.o"
  "CMakeFiles/quarry_datagen.dir/datagen/retail.cc.o.d"
  "CMakeFiles/quarry_datagen.dir/datagen/tpch.cc.o"
  "CMakeFiles/quarry_datagen.dir/datagen/tpch.cc.o.d"
  "libquarry_datagen.a"
  "libquarry_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
