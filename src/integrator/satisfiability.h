#ifndef QUARRY_INTEGRATOR_SATISFIABILITY_H_
#define QUARRY_INTEGRATOR_SATISFIABILITY_H_

#include "common/result.h"
#include "etl/flow.h"
#include "mdschema/md_schema.h"
#include "requirements/requirement.h"

namespace quarry::integrator {

/// \brief Verifies that a unified design still satisfies one information
/// requirement (the paper's satisfiability guarantee, §2.3: "at each step
/// ... Quarry guarantees the soundness of the unified design solutions and
/// the satisfiability of all requirements processed so far").
///
/// Checks, against the unified MD schema:
///  * some fact is traced to the requirement and carries every requested
///    measure (by name, traced to the requirement);
///  * every requested dimension property appears as a level attribute
///    (matched by source property id) of a dimension referenced by that
///    fact;
/// and against the unified ETL flow:
///  * a Loader traced to the requirement exists for the fact's table.
Status CheckSatisfies(const md::MdSchema& schema, const etl::Flow& flow,
                      const req::InformationRequirement& ir);

}  // namespace quarry::integrator

#endif  // QUARRY_INTEGRATOR_SATISFIABILITY_H_
