#include "storage/sql.h"

#include <cctype>
#include <vector>

#include "common/fault_injection.h"
#include "common/str_util.h"

namespace quarry::storage {

namespace {

enum class TokenKind { kIdentifier, kNumber, kString, kPunct, kEnd };

struct Token {
  TokenKind kind;
  std::string text;  // Identifiers are stored verbatim; matching is
                     // case-insensitive for keywords.
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= input_.size()) break;
      char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
          c == '"') {
        out.push_back(LexIdentifier());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 ((c == '-' || c == '+') && pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        out.push_back(LexNumber());
      } else if (c == '\'') {
        QUARRY_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else if (c == '(' || c == ')' || c == ',' || c == ';' || c == '.' ||
                 c == '*' || c == '=') {
        out.push_back({TokenKind::kPunct, std::string(1, c)});
        ++pos_;
      } else {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' in SQL");
      }
    }
    out.push_back({TokenKind::kEnd, ""});
    return out;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '-') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token LexIdentifier() {
    if (input_[pos_] == '"') {  // Quoted identifier.
      ++pos_;
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != '"') ++pos_;
      std::string text(input_.substr(start, pos_ - start));
      if (pos_ < input_.size()) ++pos_;
      return {TokenKind::kIdentifier, std::move(text)};
    }
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return {TokenKind::kIdentifier,
            std::string(input_.substr(start, pos_ - start))};
  }

  Token LexNumber() {
    size_t start = pos_;
    if (input_[pos_] == '-' || input_[pos_] == '+') ++pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E')) {
      ++pos_;
    }
    return {TokenKind::kNumber, std::string(input_.substr(start, pos_ - start))};
  }

  Result<Token> LexString() {
    ++pos_;  // opening quote
    std::string text;
    while (true) {
      if (pos_ >= input_.size()) {
        return Status::ParseError("unterminated string literal in SQL");
      }
      char c = input_[pos_];
      ++pos_;
      if (c == '\'') {
        if (pos_ < input_.size() && input_[pos_] == '\'') {
          text.push_back('\'');
          ++pos_;
          continue;
        }
        break;
      }
      text.push_back(c);
    }
    return Token{TokenKind::kString, std::move(text)};
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class SqlParser {
 public:
  SqlParser(Database* db, std::vector<Token> tokens)
      : db_(db), tokens_(std::move(tokens)) {}

  Result<SqlExecutionReport> Run() {
    SqlExecutionReport report;
    while (!AtEnd()) {
      if (MatchPunct(";")) continue;  // Stray separators.
      QUARRY_RETURN_NOT_OK(Statement(&report));
      ++report.statements;
      if (!AtEnd() && !MatchPunct(";")) {
        return Status::ParseError("expected ';' after statement, got '" +
                                  Peek().text + "'");
      }
    }
    return report;
  }

 private:
  bool AtEnd() const { return tokens_[pos_].kind == TokenKind::kEnd; }
  const Token& Peek() const { return tokens_[pos_]; }

  bool MatchKeyword(std::string_view kw) {
    if (Peek().kind == TokenKind::kIdentifier &&
        EqualsIgnoreCase(Peek().text, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchPunct(std::string_view p) {
    if (Peek().kind == TokenKind::kPunct && Peek().text == p) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError("expected '" + std::string(kw) + "', got '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }

  Status ExpectPunct(std::string_view p) {
    if (!MatchPunct(p)) {
      return Status::ParseError("expected '" + std::string(p) + "', got '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }

  Result<std::string> Identifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected identifier, got '" + Peek().text +
                                "'");
    }
    return tokens_[pos_++].text;
  }

  Result<std::vector<std::string>> ColumnList() {
    QUARRY_RETURN_NOT_OK(ExpectPunct("("));
    std::vector<std::string> cols;
    while (true) {
      QUARRY_ASSIGN_OR_RETURN(std::string c, Identifier());
      cols.push_back(std::move(c));
      if (MatchPunct(",")) continue;
      QUARRY_RETURN_NOT_OK(ExpectPunct(")"));
      break;
    }
    return cols;
  }

  Status Statement(SqlExecutionReport* report) {
    QUARRY_FAULT_POINT("storage.sql.statement");
    if (MatchKeyword("CREATE")) {
      if (MatchKeyword("DATABASE")) return CreateDatabase();
      if (MatchKeyword("TABLE")) return CreateTable(report);
      if (MatchKeyword("INDEX")) return CreateIndex(report);
      return Status::ParseError("expected DATABASE, TABLE or INDEX");
    }
    if (MatchKeyword("DROP")) {
      QUARRY_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      return DropTable(report);
    }
    if (MatchKeyword("INSERT")) {
      QUARRY_RETURN_NOT_OK(ExpectKeyword("INTO"));
      return Insert(report);
    }
    return Status::ParseError("unsupported statement starting with '" +
                              Peek().text + "'");
  }

  Status CreateDatabase() {
    QUARRY_ASSIGN_OR_RETURN(std::string name, Identifier());
    db_->set_name(name);
    return Status::OK();
  }

  Result<DataType> ParseType() {
    QUARRY_ASSIGN_OR_RETURN(std::string head, Identifier());
    std::string upper = ToUpper(head);
    auto skip_parens = [&]() -> Status {
      if (MatchPunct("(")) {
        // (p) or (p, s): consume numbers and commas.
        while (!MatchPunct(")")) {
          if (AtEnd()) return Status::ParseError("unterminated type args");
          ++pos_;
        }
      }
      return Status::OK();
    };
    if (upper == "BIGINT" || upper == "INT" || upper == "INTEGER" ||
        upper == "SMALLINT") {
      return DataType::kInt64;
    }
    if (upper == "DOUBLE") {
      MatchKeyword("PRECISION");
      return DataType::kDouble;
    }
    if (upper == "FLOAT" || upper == "REAL") return DataType::kDouble;
    if (upper == "NUMERIC" || upper == "DECIMAL") {
      QUARRY_RETURN_NOT_OK(skip_parens());
      return DataType::kDouble;
    }
    if (upper == "VARCHAR" || upper == "CHAR" || upper == "CHARACTER") {
      MatchKeyword("VARYING");
      QUARRY_RETURN_NOT_OK(skip_parens());
      return DataType::kString;
    }
    if (upper == "TEXT") return DataType::kString;
    if (upper == "DATE") return DataType::kDate;
    if (upper == "BOOLEAN" || upper == "BOOL") return DataType::kBool;
    return Status::ParseError("unknown SQL type '" + head + "'");
  }

  Status CreateTable(SqlExecutionReport* report) {
    QUARRY_ASSIGN_OR_RETURN(std::string name, Identifier());
    TableSchema schema(name);
    QUARRY_RETURN_NOT_OK(ExpectPunct("("));
    while (true) {
      if (MatchKeyword("PRIMARY")) {
        QUARRY_RETURN_NOT_OK(ExpectKeyword("KEY"));
        QUARRY_ASSIGN_OR_RETURN(auto cols, ColumnList());
        QUARRY_RETURN_NOT_OK(schema.SetPrimaryKey(std::move(cols)));
      } else if (MatchKeyword("FOREIGN")) {
        QUARRY_RETURN_NOT_OK(ExpectKeyword("KEY"));
        ForeignKey fk;
        QUARRY_ASSIGN_OR_RETURN(fk.columns, ColumnList());
        QUARRY_RETURN_NOT_OK(ExpectKeyword("REFERENCES"));
        QUARRY_ASSIGN_OR_RETURN(fk.referenced_table, Identifier());
        QUARRY_ASSIGN_OR_RETURN(fk.referenced_columns, ColumnList());
        QUARRY_RETURN_NOT_OK(schema.AddForeignKey(std::move(fk)));
      } else {
        Column col;
        QUARRY_ASSIGN_OR_RETURN(col.name, Identifier());
        QUARRY_ASSIGN_OR_RETURN(col.type, ParseType());
        if (MatchKeyword("NOT")) {
          QUARRY_RETURN_NOT_OK(ExpectKeyword("NULL"));
          col.nullable = false;
        } else if (MatchKeyword("NULL")) {
          col.nullable = true;
        }
        // Tolerate DEFAULT <literal>.
        if (MatchKeyword("DEFAULT")) ++pos_;
        QUARRY_RETURN_NOT_OK(schema.AddColumn(std::move(col)));
      }
      if (MatchPunct(",")) continue;
      QUARRY_RETURN_NOT_OK(ExpectPunct(")"));
      break;
    }
    QUARRY_RETURN_NOT_OK(db_->CreateTable(std::move(schema)).status());
    ++report->tables_created;
    return Status::OK();
  }

  Status CreateIndex(SqlExecutionReport* report) {
    QUARRY_ASSIGN_OR_RETURN(std::string index_name, Identifier());
    (void)index_name;  // Indexes are anonymous internally.
    QUARRY_RETURN_NOT_OK(ExpectKeyword("ON"));
    QUARRY_ASSIGN_OR_RETURN(std::string table_name, Identifier());
    QUARRY_ASSIGN_OR_RETURN(auto cols, ColumnList());
    QUARRY_ASSIGN_OR_RETURN(Table * table, db_->GetTable(table_name));
    QUARRY_RETURN_NOT_OK(table->CreateIndex(cols));
    ++report->indexes_created;
    return Status::OK();
  }

  Status DropTable(SqlExecutionReport* report) {
    bool if_exists = false;
    if (MatchKeyword("IF")) {
      QUARRY_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      if_exists = true;
    }
    QUARRY_ASSIGN_OR_RETURN(std::string name, Identifier());
    Status s = db_->DropTable(name);
    if (!s.ok() && !(if_exists && s.IsNotFound())) return s;
    if (s.ok()) ++report->tables_dropped;
    return Status::OK();
  }

  Result<Value> Literal() {
    if (Peek().kind == TokenKind::kNumber) {
      std::string text = tokens_[pos_++].text;
      if (text.find('.') != std::string::npos ||
          text.find('e') != std::string::npos ||
          text.find('E') != std::string::npos) {
        return Value::Parse(text, DataType::kDouble);
      }
      return Value::Parse(text, DataType::kInt64);
    }
    if (Peek().kind == TokenKind::kString) {
      return Value::String(tokens_[pos_++].text);
    }
    if (MatchKeyword("NULL")) return Value::Null();
    if (MatchKeyword("TRUE")) return Value::Bool(true);
    if (MatchKeyword("FALSE")) return Value::Bool(false);
    if (MatchKeyword("DATE")) {
      if (Peek().kind != TokenKind::kString) {
        return Status::ParseError("DATE must be followed by a string literal");
      }
      return Value::Parse(tokens_[pos_++].text, DataType::kDate);
    }
    return Status::ParseError("expected literal, got '" + Peek().text + "'");
  }

  Status Insert(SqlExecutionReport* report) {
    QUARRY_ASSIGN_OR_RETURN(std::string name, Identifier());
    QUARRY_ASSIGN_OR_RETURN(Table * table, db_->GetTable(name));
    QUARRY_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    while (true) {
      QUARRY_RETURN_NOT_OK(ExpectPunct("("));
      Row row;
      while (true) {
        QUARRY_ASSIGN_OR_RETURN(Value v, Literal());
        row.push_back(std::move(v));
        if (MatchPunct(",")) continue;
        QUARRY_RETURN_NOT_OK(ExpectPunct(")"));
        break;
      }
      QUARRY_RETURN_NOT_OK(table->Insert(std::move(row)));
      ++report->rows_inserted;
      if (MatchPunct(",")) continue;
      break;
    }
    return Status::OK();
  }

  Database* db_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlExecutionReport> ExecuteSql(Database* db, std::string_view script) {
  Lexer lexer(script);
  QUARRY_ASSIGN_OR_RETURN(auto tokens, lexer.Tokenize());
  SqlParser parser(db, std::move(tokens));
  return parser.Run();
}

std::string SchemaToDdl(const TableSchema& schema) {
  std::string out = "CREATE TABLE " + schema.name() + " (\n";
  std::vector<std::string> items;
  for (const Column& col : schema.columns()) {
    std::string item = "  " + col.name + " ";
    switch (col.type) {
      case DataType::kInt64:
        item += "BIGINT";
        break;
      case DataType::kDouble:
        item += "double precision";
        break;
      case DataType::kString:
        item += "VARCHAR(255)";
        break;
      case DataType::kDate:
        item += "DATE";
        break;
      case DataType::kBool:
        item += "BOOLEAN";
        break;
    }
    if (!col.nullable) item += " NOT NULL";
    items.push_back(std::move(item));
  }
  if (!schema.primary_key().empty()) {
    items.push_back("  PRIMARY KEY( " + Join(schema.primary_key(), ", ") +
                    " )");
  }
  for (const ForeignKey& fk : schema.foreign_keys()) {
    items.push_back("  FOREIGN KEY( " + Join(fk.columns, ", ") +
                    " ) REFERENCES " + fk.referenced_table + "( " +
                    Join(fk.referenced_columns, ", ") + " )");
  }
  out += Join(items, ",\n");
  out += "\n);";
  return out;
}

}  // namespace quarry::storage
