#include "docstore/document_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/fault_injection.h"

namespace quarry::docstore {

Result<std::string> Collection::Insert(json::Value document) {
  QUARRY_FAULT_POINT("docstore.collection.insert");
  if (!document.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  std::string id = document.GetString("_id");
  if (id.empty()) {
    id = name_ + "-" + std::to_string(next_id_++);
    document.Set("_id", json::Value(id));
  }
  if (docs_.count(id) > 0) {
    return Status::AlreadyExists("document '" + id + "' in collection '" +
                                 name_ + "'");
  }
  docs_.emplace(id, std::move(document));
  order_.push_back(id);
  return id;
}

Result<json::Value> Collection::Get(const std::string& id) const {
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return Status::NotFound("document '" + id + "' in collection '" + name_ +
                            "'");
  }
  return it->second;
}

Status Collection::Upsert(const std::string& id, json::Value document) {
  QUARRY_FAULT_POINT("docstore.collection.upsert");
  if (!document.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  document.Set("_id", json::Value(id));
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    docs_.emplace(id, std::move(document));
    order_.push_back(id);
  } else {
    it->second = std::move(document);
  }
  return Status::OK();
}

Status Collection::Remove(const std::string& id) {
  QUARRY_FAULT_POINT("docstore.collection.remove");
  if (docs_.erase(id) == 0) {
    return Status::NotFound("document '" + id + "' in collection '" + name_ +
                            "'");
  }
  order_.erase(std::remove(order_.begin(), order_.end(), id), order_.end());
  return Status::OK();
}

std::vector<json::Value> Collection::Find(const std::string& field,
                                          const json::Value& value) const {
  std::vector<json::Value> out;
  for (const std::string& id : order_) {
    const json::Value& doc = docs_.at(id);
    const json::Value* v = doc.Find(field);
    if (v != nullptr && *v == value) out.push_back(doc);
  }
  return out;
}

Collection* DocumentStore::GetOrCreate(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return it->second.get();
}

Result<Collection*> DocumentStore::Get(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + name + "'");
  }
  return it->second.get();
}

Result<const Collection*> DocumentStore::Get(const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + name + "'");
  }
  return static_cast<const Collection*>(it->second.get());
}

Status DocumentStore::Drop(const std::string& name) {
  if (collections_.erase(name) == 0) {
    return Status::NotFound("collection '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> DocumentStore::CollectionNames() const {
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, c] : collections_) out.push_back(name);
  return out;
}

Status DocumentStore::SaveToDirectory(const std::string& dir) const {
  QUARRY_FAULT_POINT("docstore.save");
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("directory '" + dir + "'");
  }
  for (const auto& [name, collection] : collections_) {
    json::Array docs;
    for (const std::string& id : collection->Ids()) {
      docs.push_back(*collection->Get(id));
    }
    std::ofstream out(dir + "/" + name + ".json",
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::ExecutionError("cannot write collection '" + name +
                                    "'");
    }
    out << json::Write(json::Value(std::move(docs)), /*pretty=*/true);
  }
  return Status::OK();
}

DocumentStore DocumentStore::Clone() const {
  DocumentStore copy;
  for (const auto& [name, collection] : collections_) {
    copy.collections_.emplace(name,
                              std::make_unique<Collection>(*collection));
  }
  return copy;
}

void DocumentStore::RestoreFrom(const DocumentStore& snapshot) {
  collections_.clear();
  for (const auto& [name, collection] : snapshot.collections_) {
    collections_.emplace(name, std::make_unique<Collection>(*collection));
  }
}

uint64_t DocumentStore::Fingerprint() const {
  std::hash<std::string> hash;
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  for (const auto& [name, collection] : collections_) {
    mix(hash(name));
    for (const std::string& id : collection->Ids()) {
      mix(hash(id));
      mix(hash(json::Write(*collection->Get(id))));
    }
  }
  return h;
}

Result<DocumentStore> DocumentStore::LoadFromDirectory(
    const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("directory '" + dir + "'");
  }
  DocumentStore store;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    QUARRY_ASSIGN_OR_RETURN(json::Value docs, json::Parse(ss.str()));
    if (!docs.is_array()) {
      return Status::ParseError("collection file '" +
                                entry.path().string() +
                                "' is not a JSON array");
    }
    Collection* collection = store.GetOrCreate(entry.path().stem().string());
    for (json::Value& doc : docs.as_array()) {
      QUARRY_RETURN_NOT_OK(collection->Insert(std::move(doc)).status());
    }
  }
  return store;
}

}  // namespace quarry::docstore
