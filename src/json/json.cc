#include "json/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace quarry::json {

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::Set(const std::string& key, Value value) {
  if (is_null()) data_ = Object{};
  Object& obj = as_object();
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.emplace_back(key, std::move(value));
}

std::string Value::GetString(std::string_view key,
                             std::string fallback) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_string()) return fallback;
  return v->as_string();
}

namespace {

class Parser {
 public:
  Parser(std::string_view input, const ParseLimits& limits)
      : input_(input), limits_(limits) {}

  Result<Value> ParseDocument() {
    if (limits_.max_input_bytes > 0 &&
        input_.size() > limits_.max_input_bytes) {
      return Status::ResourceExhausted(
          "JSON document of " + std::to_string(input_.size()) +
          " bytes exceeds the input limit of " +
          std::to_string(limits_.max_input_bytes) + " bytes");
    }
    QUARRY_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing content after JSON value");
    }
    return v;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  bool Match(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchWord(std::string_view word) {
    if (input_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (AtEnd()) return Status::ParseError("unexpected end of JSON input");
    char c = Peek();
    if (c == '{' || c == '[') {
      if (limits_.max_depth > 0 && depth_ >= limits_.max_depth) {
        return Status::ResourceExhausted(
            "value nesting exceeds the depth limit of " +
            std::to_string(limits_.max_depth) + " at offset " +
            std::to_string(pos_));
      }
      ++depth_;
      Result<Value> nested = c == '{' ? ParseObject() : ParseArray();
      --depth_;
      return nested;
    }
    if (c == '"') {
      QUARRY_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value(std::move(s));
    }
    if (MatchWord("true")) return Value(true);
    if (MatchWord("false")) return Value(false);
    if (MatchWord("null")) return Value(nullptr);
    return ParseNumber();
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Object obj;
    SkipWhitespace();
    if (Match('}')) return Value(std::move(obj));
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Status::ParseError("expected object key string");
      }
      QUARRY_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Match(':')) return Status::ParseError("expected ':' in object");
      QUARRY_ASSIGN_OR_RETURN(Value v, ParseValue());
      obj.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (Match(',')) continue;
      if (Match('}')) break;
      return Status::ParseError("expected ',' or '}' in object");
    }
    return Value(std::move(obj));
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Array arr;
    SkipWhitespace();
    if (Match(']')) return Value(std::move(arr));
    while (true) {
      QUARRY_ASSIGN_OR_RETURN(Value v, ParseValue());
      arr.push_back(std::move(v));
      SkipWhitespace();
      if (Match(',')) continue;
      if (Match(']')) break;
      return Status::ParseError("expected ',' or ']' in array");
    }
    return Value(std::move(arr));
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (AtEnd()) return Status::ParseError("unterminated string");
      char c = Peek();
      ++pos_;
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Status::ParseError("unterminated escape");
      char e = Peek();
      ++pos_;
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > input_.size()) {
            return Status::ParseError("truncated \\u escape");
          }
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = input_[pos_ + i];
            int digit;
            if (h >= '0' && h <= '9') {
              digit = h - '0';
            } else if (h >= 'a' && h <= 'f') {
              digit = h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = h - 'A' + 10;
            } else {
              return Status::ParseError("bad hex digit in \\u escape");
            }
            code = code * 16 + digit;
          }
          pos_ += 4;
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::ParseError("unknown escape \\" + std::string(1, e));
      }
    }
    return out;
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) ++pos_;
    bool is_double = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = input_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Status::ParseError("invalid number");
    }
    if (is_double) {
      double d = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), d);
      if (ec != std::errc() || ptr != token.data() + token.size()) {
        return Status::ParseError("invalid number '" + std::string(token) +
                                  "'");
      }
      return Value(d);
    }
    int64_t i = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), i);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Status::ParseError("invalid integer '" + std::string(token) +
                                "'");
    }
    return Value(i);
  }

  std::string_view input_;
  ParseLimits limits_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

void WriteString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void WriteValue(const Value& value, bool pretty, int depth, std::string* out) {
  const std::string indent = pretty ? std::string(2 * (depth + 1), ' ') : "";
  const std::string closing_indent = pretty ? std::string(2 * depth, ' ') : "";
  const char* newline = pretty ? "\n" : "";
  if (value.is_null()) {
    out->append("null");
  } else if (value.is_bool()) {
    out->append(value.as_bool() ? "true" : "false");
  } else if (value.is_int()) {
    out->append(std::to_string(value.as_int()));
  } else if (value.is_double()) {
    double d = value.as_double();
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out->append(buf);
    } else {
      out->append("null");  // JSON has no Inf/NaN.
    }
  } else if (value.is_string()) {
    WriteString(value.as_string(), out);
  } else if (value.is_array()) {
    const Array& arr = value.as_array();
    if (arr.empty()) {
      out->append("[]");
      return;
    }
    out->push_back('[');
    out->append(newline);
    for (size_t i = 0; i < arr.size(); ++i) {
      out->append(indent);
      WriteValue(arr[i], pretty, depth + 1, out);
      if (i + 1 < arr.size()) out->push_back(',');
      out->append(newline);
    }
    out->append(closing_indent);
    out->push_back(']');
  } else {
    const Object& obj = value.as_object();
    if (obj.empty()) {
      out->append("{}");
      return;
    }
    out->push_back('{');
    out->append(newline);
    for (size_t i = 0; i < obj.size(); ++i) {
      out->append(indent);
      WriteString(obj[i].first, out);
      out->push_back(':');
      if (pretty) out->push_back(' ');
      WriteValue(obj[i].second, pretty, depth + 1, out);
      if (i + 1 < obj.size()) out->push_back(',');
      out->append(newline);
    }
    out->append(closing_indent);
    out->push_back('}');
  }
}

}  // namespace

Result<Value> Parse(std::string_view input, const ParseLimits& limits) {
  Parser parser(input, limits);
  return parser.ParseDocument();
}

std::string Write(const Value& value, bool pretty) {
  std::string out;
  WriteValue(value, pretty, 0, &out);
  return out;
}

}  // namespace quarry::json
