#ifndef QUARRY_COMMON_FAULT_INJECTION_H_
#define QUARRY_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/prng.h"
#include "common/status.h"

namespace quarry::fault {

/// \brief When and how often a fault site fires (see docs/ROBUSTNESS.md).
///
/// A site fires when ANY of the enabled triggers matches the current hit:
///   - `probability`: an independent Bernoulli draw per hit from the
///     injector's seeded PRNG (deterministic across runs for a fixed seed
///     and a fixed single-threaded hit sequence);
///   - `trigger_on_hit`: fires exactly on the Nth hit of the site (1-based)
///     — the canonical "one transient fault, then healthy" setup;
///   - `fail_from_hit`: fires on every hit >= N — the canonical
///     "unrecoverable from this point on" setup (N = 1 kills every hit).
/// `max_failures` caps the total number of failures a site produces.
struct SiteConfig {
  double probability = 0.0;
  int64_t trigger_on_hit = 0;  ///< 0 disables the exact-hit trigger.
  int64_t fail_from_hit = 0;   ///< 0 disables the from-hit trigger.
  int64_t max_failures = -1;   ///< -1 = unlimited.
};

/// \brief Deterministic, site-named fault injector (process-wide singleton).
///
/// Components mark fallible spots with QUARRY_FAULT_POINT("layer.site");
/// when the injector is disabled (the default, and always in production
/// paths) the macro is a single relaxed atomic load. Tests and benches
/// enable it with a seed, configure sites, run a scenario, and read back
/// the hit/failure bookkeeping. The same seed plus the same site
/// configuration yields the identical failure sequence on every run — the
/// fault matrix is a repeatable test surface, not a flaky one.
///
/// Thread-safety: Check() takes a lock; the enabled flag is lock-free. The
/// engine itself is single-threaded today, so determinism of the draw
/// sequence is guaranteed by construction.
class Injector {
 public:
  /// The process-wide injector used by QUARRY_FAULT_POINT.
  static Injector& Instance();

  /// Turns injection on, reseeds the PRNG, and clears hit counters and the
  /// failure log. Site configurations are kept, so calling Enable(seed)
  /// again replays the exact same failure sequence.
  void Enable(uint64_t seed);

  /// Turns injection off (fault points become no-ops again). Counters,
  /// configs and the log are kept for post-mortem inspection.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Installs (or replaces) the configuration of one site.
  void Configure(const std::string& site, SiteConfig config);

  /// Drops every site configuration (counters are kept).
  void ClearConfigs();

  /// Called by QUARRY_FAULT_POINT. Records the hit and returns a non-OK
  /// ExecutionError when the site's configuration says this hit fails.
  Status Check(std::string_view site);

  /// Sites hit at least once since the last Enable() — running a scenario
  /// once with injection enabled and no configs enumerates its fault
  /// surface (the "registered sites" of the fault matrix).
  std::vector<std::string> HitSites() const;

  int64_t HitCount(const std::string& site) const;
  int64_t FailureCount(const std::string& site) const;

  /// Every injected failure in order, as "site@hit" — the determinism
  /// tests assert two equally-seeded runs produce identical logs.
  std::vector<std::string> FailureLog() const;

 private:
  Injector() = default;

  struct SiteState {
    int64_t hits = 0;
    int64_t failures = 0;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, SiteConfig> configs_;
  std::map<std::string, SiteState> states_;
  Prng prng_{0};
  std::vector<std::string> failure_log_;
};

/// Lock-free fast path for QUARRY_FAULT_POINT.
inline bool Enabled() { return Injector::Instance().enabled(); }

/// Convenience forwarding to the singleton.
Status Check(std::string_view site);

}  // namespace quarry::fault

/// Marks a named fault site inside a function returning Status or
/// Result<T>. Disabled injector: one relaxed atomic load. Defining
/// QUARRY_DISABLE_FAULT_INJECTION compiles every site away entirely.
#ifdef QUARRY_DISABLE_FAULT_INJECTION
#define QUARRY_FAULT_POINT(site) \
  do {                           \
  } while (false)
#else
#define QUARRY_FAULT_POINT(site)                                \
  do {                                                          \
    if (::quarry::fault::Enabled()) {                           \
      ::quarry::Status _quarry_fault =                          \
          ::quarry::fault::Check(site);                         \
      if (!_quarry_fault.ok()) return _quarry_fault;            \
    }                                                           \
  } while (false)
#endif

#endif  // QUARRY_COMMON_FAULT_INJECTION_H_
