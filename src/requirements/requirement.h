#ifndef QUARRY_REQUIREMENTS_REQUIREMENT_H_
#define QUARRY_REQUIREMENTS_REQUIREMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mdschema/md_schema.h"
#include "xml/xml.h"

namespace quarry::req {

/// A requested measure: a named numeric expression over ontology property
/// ids (e.g. "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)").
struct MeasureSpec {
  std::string id;  ///< e.g. "revenue".
  std::string expression;
  md::AggFunc aggregation = md::AggFunc::kSum;
};

/// A requested analysis dimension, named by the descriptive property to
/// group by (its owning concept becomes the dimension level).
struct DimensionSpec {
  std::string property_id;  ///< e.g. "Part.p_name".
};

/// A slicer: restrict the analysis to rows where `property op value`.
struct Slicer {
  std::string property_id;  ///< e.g. "Nation.n_name".
  std::string op;           ///< =, <>, <, <=, >, >=
  std::string value;        ///< Literal text; typed by the property.
};

/// Explicit (dimension, measure, function) aggregation request.
struct AggregationSpec {
  std::string dimension_property;
  std::string measure_id;
  md::AggFunc function = md::AggFunc::kSum;
  int order = 1;
};

/// \brief An information requirement: an analytical query in MD terms
/// ("Analyze the revenue from last year's sales, per products ordered from
/// Spain"). This is what the Requirements Elicitor produces and the
/// Requirements Interpreter consumes.
struct InformationRequirement {
  std::string id;    ///< e.g. "ir_revenue"; traces through all designs.
  std::string name;  ///< Display name / fact name hint.
  /// Focus concept of the analysis (e.g. "Lineitem"). May be empty: the
  /// interpreter then derives it from the measures' property concepts.
  std::string focus_concept;
  std::vector<MeasureSpec> measures;
  std::vector<DimensionSpec> dimensions;
  std::vector<Slicer> slicers;
  std::vector<AggregationSpec> aggregations;
};

/// xRQ serialization, following the paper's Figure 4 snippet:
/// \code{.xml}
/// <cube id="ir_revenue" name="revenue" focus="Lineitem">
///   <dimensions><concept id="Part.p_name"/>...</dimensions>
///   <measures><concept id="revenue">
///     <function>Lineitem.l_extendedprice * (1 - Lineitem.l_discount)
///     </function><aggregation>SUM</aggregation></concept></measures>
///   <slicers><comparison><concept id="Nation.n_name"/>
///     <operator>=</operator><value>Spain</value></comparison></slicers>
///   <aggregations><aggregation order="1">
///     <dimension refID="Part.p_name"/><measure refID="revenue"/>
///     <function>AVERAGE</function></aggregation></aggregations>
/// </cube>
/// \endcode
std::unique_ptr<xml::Element> ToXrq(const InformationRequirement& ir);

/// Inverse of ToXrq.
Result<InformationRequirement> FromXrq(const xml::Element& root);

}  // namespace quarry::req

#endif  // QUARRY_REQUIREMENTS_REQUIREMENT_H_
