#ifndef QUARRY_INTEGRATOR_MD_INTEGRATOR_H_
#define QUARRY_INTEGRATOR_MD_INTEGRATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "mdschema/complexity.h"
#include "mdschema/md_schema.h"
#include "ontology/ontology.h"

namespace quarry::integrator {

/// Options steering the MD Schema Integrator's cost-based choices.
struct MdIntegrationOptions {
  md::ComplexityWeights weights;
  /// When true (default), stage 3 folds a dimension into another one's
  /// hierarchy when its base concept is a functional rollup target of the
  /// other's top level *and* doing so lowers structural complexity.
  bool allow_hierarchy_merge = true;
};

/// What the integrator did and what it cost.
struct MdIntegrationReport {
  int facts_merged = 0;
  int facts_added = 0;
  int dimensions_conformed = 0;  ///< Matched to an existing dimension.
  int dimensions_added = 0;
  int dimensions_folded = 0;     ///< Absorbed as upper hierarchy levels.
  int measures_added = 0;
  int attributes_added = 0;
  /// Structural complexity of the naive side-by-side union, for comparison.
  double complexity_naive_union = 0;
  double complexity_after = 0;
  std::vector<std::string> decisions;  ///< Human-readable stage log.
  /// partial fact name -> unified fact name (differs when stage 1 merged
  /// the fact into an existing same-grain fact). The Design Integrator
  /// uses this to redirect the partial ETL flow's fact loaders.
  std::map<std::string, std::string> fact_mapping;
};

/// One candidate unified design, for user-in-the-loop selection (paper
/// §2.3: the first three stages "gradually match different MD concepts and
/// explore new DW design alternatives. The last stage considers these
/// matchings and end-user's feedback").
struct MdAlternative {
  std::string description;
  md::MdSchema schema;
  double complexity = 0;
};

/// \brief The MD Schema Integrator (paper §2.3): consolidates a partial MD
/// schema into the unified one through four stages — matching facts,
/// matching dimensions, complementing the design, and integration — while
/// guaranteeing MD-compliant results and minimizing structural design
/// complexity.
///
/// Stage semantics (refs [6] in the paper):
///  1. *Matching facts*: a partial fact merges into a unified fact with the
///     same focus concept and the same base (set of referenced level
///     concepts); measures union (same-name measures must agree on
///     expression and aggregation).
///  2. *Matching dimensions*: a partial dimension conforms to a unified
///     dimension containing a level over the same concept; level
///     attributes union.
///  3. *Complementing*: hierarchy folding — a single-level dimension whose
///     concept is a functional rollup target of another dimension's top
///     level is offered as an upper level of that dimension; the
///     complexity cost model accepts or rejects the alternative.
///  4. *Integration*: apply the chosen alternatives, rewrite fact
///     dimension references, union requirement traces, and re-validate
///     soundness (md::CheckSound).
class MdIntegrator {
 public:
  /// The ontology must outlive the integrator.
  explicit MdIntegrator(const ontology::Ontology* onto,
                        MdIntegrationOptions options = {})
      : onto_(onto), options_(options) {}

  /// Integrates `partial` into `unified`. On error `unified` is left
  /// unchanged.
  Result<MdIntegrationReport> Integrate(md::MdSchema* unified,
                                        const md::MdSchema& partial) const;

  /// Enumerates the sound candidate designs for accommodating `partial`
  /// into `unified`, cheapest (lowest structural complexity) first:
  ///   1. full integration with hierarchy folding,
  ///   2. full integration keeping dimensions flat,
  ///   3. side-by-side union (partial elements renamed on collision) —
  ///      the "reject all matchings" baseline a reviewer may prefer.
  /// The first entry is what Integrate() would produce with the current
  /// options; callers wanting user feedback present the list instead.
  Result<std::vector<MdAlternative>> ProposeAlternatives(
      const md::MdSchema& unified, const md::MdSchema& partial) const;

 private:
  Status IntegrateInto(md::MdSchema* unified, const md::MdSchema& partial,
                       MdIntegrationReport* report) const;
  Status FoldHierarchies(md::MdSchema* unified,
                         MdIntegrationReport* report) const;

  const ontology::Ontology* onto_;
  MdIntegrationOptions options_;
};

}  // namespace quarry::integrator

#endif  // QUARRY_INTEGRATOR_MD_INTEGRATOR_H_
