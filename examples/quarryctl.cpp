// quarryctl — a small command-line driver for the whole system, the
// shape a downstream user would script. Reads commands from stdin (or the
// file given as argv[1]), one per line:
//
//   load-tpch <scale_factor> [seed]     create the source database
//   analyze <ANALYZE ... BY ...>        add a requirement (textual notation)
//   suggest <FocusConcept>              elicitor suggestions for a focus
//   remove <requirement_id>             retire a requirement
//   show schema|flow|sql|ktr|requirements
//   alternatives <ANALYZE ...>          preview integration alternatives
//   deploy                              deploy + load the warehouse
//   query <fact> BY <col,...> [WHERE <pred>]   roll-up on the warehouse
//   save <dir> / load <dir>             persist / restore the session
//   quit
//
// Example session: see examples/quarryctl_demo.txt (executed by the test
// suite and the examples build).

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/str_util.h"
#include "core/quarry.h"
#include "core/session.h"
#include "datagen/tpch.h"
#include "integrator/md_integrator.h"
#include "interpreter/interpreter.h"
#include "olap/cube_query.h"
#include "ontology/tpch_ontology.h"
#include "requirements/query_parser.h"

namespace {

using quarry::Status;
using quarry::core::Quarry;

struct Session {
  std::unique_ptr<quarry::storage::Database> source;
  std::unique_ptr<Quarry> quarry;
  std::unique_ptr<quarry::storage::Database> warehouse;

  Status RequireQuarry() const {
    if (quarry == nullptr) {
      return Status::InvalidArgument(
          "no active session; run 'load-tpch <sf>' first");
    }
    return Status::OK();
  }
};

Status CmdLoadTpch(Session* session, std::istringstream* args) {
  double sf = 0.01;
  uint64_t seed = 42;
  *args >> sf >> seed;
  session->source =
      std::make_unique<quarry::storage::Database>("tpch");
  QUARRY_RETURN_NOT_OK(
      quarry::datagen::PopulateTpch(session->source.get(), {sf, seed}));
  auto q = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                          quarry::ontology::BuildTpchMappings(),
                          session->source.get());
  QUARRY_RETURN_NOT_OK(q.status());
  session->quarry = std::move(*q);
  session->warehouse.reset();
  std::cout << "loaded TPC-H sf=" << sf << " ("
            << session->source->TotalRows() << " rows)\n";
  return Status::OK();
}

Status CmdAnalyze(Session* session, const std::string& rest) {
  QUARRY_RETURN_NOT_OK(session->RequireQuarry());
  auto outcome = session->quarry->AddRequirementFromQuery(rest);
  QUARRY_RETURN_NOT_OK(outcome.status());
  std::cout << "integrated (" << outcome->etl.nodes_reused
            << " ETL nodes reused, complexity "
            << outcome->md.complexity_after << ")\n";
  return Status::OK();
}

Status CmdSuggest(Session* session, std::istringstream* args) {
  QUARRY_RETURN_NOT_OK(session->RequireQuarry());
  std::string focus;
  *args >> focus;
  auto dims = session->quarry->elicitor().SuggestDimensions(focus);
  QUARRY_RETURN_NOT_OK(dims.status());
  auto measures = session->quarry->elicitor().SuggestMeasures(focus);
  QUARRY_RETURN_NOT_OK(measures.status());
  std::cout << "measures:";
  for (const auto& m : *measures) std::cout << " " << m.property_id;
  std::cout << "\ndimensions:";
  for (const auto& d : *dims) {
    std::cout << " " << d.concept_id << "(" << d.hops << ")";
  }
  std::cout << "\n";
  return Status::OK();
}

Status CmdShow(Session* session, std::istringstream* args) {
  QUARRY_RETURN_NOT_OK(session->RequireQuarry());
  std::string what;
  *args >> what;
  if (what == "schema") {
    std::cout << quarry::xml::Write(*session->quarry->schema().ToXml());
  } else if (what == "flow") {
    std::cout << "nodes=" << session->quarry->flow().num_nodes()
              << " edges=" << session->quarry->flow().num_edges() << "\n";
    for (const auto& [id, node] : session->quarry->flow().nodes()) {
      std::cout << "  " << id << " ["
                << quarry::etl::OpTypeToString(node.type) << "]\n";
    }
  } else if (what == "sql") {
    auto sql = session->quarry->ExportSchema("sql");
    QUARRY_RETURN_NOT_OK(sql.status());
    std::cout << *sql;
  } else if (what == "ktr") {
    auto ktr = session->quarry->ExportFlow("pdi");
    QUARRY_RETURN_NOT_OK(ktr.status());
    std::cout << *ktr;
  } else if (what == "requirements") {
    for (const auto& [id, ir] : session->quarry->requirements()) {
      std::cout << quarry::req::RequirementQueryToString(ir) << "\n\n";
    }
  } else {
    return Status::InvalidArgument("show schema|flow|sql|ktr|requirements");
  }
  return Status::OK();
}

Status CmdAlternatives(Session* session, const std::string& rest) {
  QUARRY_RETURN_NOT_OK(session->RequireQuarry());
  auto ir = quarry::req::ParseRequirementQuery(rest);
  QUARRY_RETURN_NOT_OK(ir.status());
  quarry::interpreter::Interpreter interpreter(
      &session->quarry->ontology(), &session->quarry->mapping());
  auto partial = interpreter.Interpret(*ir);
  QUARRY_RETURN_NOT_OK(partial.status());
  quarry::integrator::MdIntegrator integrator(&session->quarry->ontology());
  auto alternatives =
      integrator.ProposeAlternatives(session->quarry->schema(),
                                     partial->schema);
  QUARRY_RETURN_NOT_OK(alternatives.status());
  for (size_t i = 0; i < alternatives->size(); ++i) {
    const auto& alt = (*alternatives)[i];
    std::cout << "  [" << i + 1 << "] complexity=" << alt.complexity << "  "
              << alt.description << "\n";
  }
  return Status::OK();
}

Status CmdRemove(Session* session, std::istringstream* args) {
  QUARRY_RETURN_NOT_OK(session->RequireQuarry());
  std::string id;
  *args >> id;
  QUARRY_RETURN_NOT_OK(session->quarry->RemoveRequirement(id));
  std::cout << "removed " << id << "\n";
  return Status::OK();
}

Status CmdDeploy(Session* session) {
  QUARRY_RETURN_NOT_OK(session->RequireQuarry());
  session->warehouse = std::make_unique<quarry::storage::Database>();
  auto report = session->quarry->Deploy(session->warehouse.get());
  QUARRY_RETURN_NOT_OK(report.status());
  std::cout << "deployed " << report->tables_created << " tables; loaded";
  for (const auto& [table, rows] : report->etl.loaded) {
    std::cout << " " << table << "=" << rows;
  }
  std::cout << "\n";
  return Status::OK();
}

Status CmdQuery(Session* session, const std::string& rest) {
  QUARRY_RETURN_NOT_OK(session->RequireQuarry());
  if (session->warehouse == nullptr) {
    return Status::InvalidArgument("deploy before querying");
  }
  // "<fact> BY a,b [WHERE pred]"
  std::string text = rest;
  quarry::olap::CubeQuery query;
  size_t by = quarry::ToUpper(text).find(" BY ");
  if (by == std::string::npos) {
    return Status::InvalidArgument("query <fact> BY <cols> [WHERE <pred>]");
  }
  query.fact = std::string(quarry::Trim(text.substr(0, by)));
  std::string tail = text.substr(by + 4);
  size_t where = quarry::ToUpper(tail).find(" WHERE ");
  std::string group = tail;
  if (where != std::string::npos) {
    group = tail.substr(0, where);
    query.filters.push_back(std::string(quarry::Trim(tail.substr(where + 7))));
  }
  for (const std::string& column : quarry::Split(group, ',')) {
    query.group_by.push_back(std::string(quarry::Trim(column)));
  }
  // Aggregate every measure of the fact with its default function.
  auto fact = session->quarry->schema().GetFact(query.fact);
  QUARRY_RETURN_NOT_OK(fact.status());
  for (const auto& measure : (*fact)->measures) {
    query.measures.push_back({measure.name, measure.aggregation, ""});
  }
  quarry::olap::CubeQueryEngine engine(&session->quarry->schema(),
                                       &session->quarry->mapping(),
                                       session->warehouse.get());
  auto result = engine.Execute(query);
  QUARRY_RETURN_NOT_OK(result.status());
  for (const std::string& column : result->columns) {
    std::cout << column << "\t";
  }
  std::cout << "\n";
  size_t shown = 0;
  for (const auto& row : result->rows) {
    if (shown++ == 10) {
      std::cout << "... (" << result->rows.size() << " rows)\n";
      break;
    }
    for (const auto& value : row) std::cout << value.ToString() << "\t";
    std::cout << "\n";
  }
  return Status::OK();
}

Status CmdSave(Session* session, std::istringstream* args) {
  QUARRY_RETURN_NOT_OK(session->RequireQuarry());
  std::string dir;
  *args >> dir;
  QUARRY_RETURN_NOT_OK(quarry::core::SaveSession(*session->quarry, dir));
  std::cout << "session saved to " << dir << "\n";
  return Status::OK();
}

Status CmdLoad(Session* session, std::istringstream* args) {
  std::string dir;
  *args >> dir;
  if (session->source == nullptr) {
    return Status::InvalidArgument("load-tpch first (the session stores "
                                   "metadata, not source data)");
  }
  auto restored = quarry::core::LoadSession(dir, session->source.get());
  QUARRY_RETURN_NOT_OK(restored.status());
  session->quarry = std::move(*restored);
  std::cout << "session restored ("
            << session->quarry->requirements().size()
            << " requirements)\n";
  return Status::OK();
}

int Run(std::istream& in, bool echo) {
  Session session;
  std::string line;
  while (std::getline(in, line)) {
    std::string trimmed(quarry::Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (echo) std::cout << "> " << trimmed << "\n";
    std::istringstream args(trimmed);
    std::string command;
    args >> command;
    std::string rest(quarry::Trim(trimmed.substr(command.size())));
    Status status = Status::OK();
    if (command == "quit" || command == "exit") break;
    if (command == "load-tpch") {
      status = CmdLoadTpch(&session, &args);
    } else if (command == "analyze") {
      status = CmdAnalyze(&session, rest);
    } else if (command == "suggest") {
      status = CmdSuggest(&session, &args);
    } else if (command == "show") {
      status = CmdShow(&session, &args);
    } else if (command == "alternatives") {
      status = CmdAlternatives(&session, rest);
    } else if (command == "remove") {
      status = CmdRemove(&session, &args);
    } else if (command == "deploy") {
      status = CmdDeploy(&session);
    } else if (command == "query") {
      status = CmdQuery(&session, rest);
    } else if (command == "save") {
      status = CmdSave(&session, &args);
    } else if (command == "load") {
      status = CmdLoad(&session, &args);
    } else {
      status = Status::InvalidArgument("unknown command '" + command + "'");
    }
    if (!status.ok()) std::cout << "error: " << status << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    return Run(file, /*echo=*/true);
  }
  return Run(std::cin, /*echo=*/false);
}
