#ifndef QUARRY_STORAGE_CSV_H_
#define QUARRY_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace quarry::storage {

/// Serializes a table to RFC-4180-style CSV with a header row. NULL cells
/// become empty fields; fields containing the separator, quotes or newlines
/// are quoted with `"` and embedded quotes doubled.
std::string TableToCsv(const Table& table, char sep = ',');

/// Parses CSV text (with header) into an existing empty table whose schema
/// provides the column types. Empty fields load as NULL. Header names must
/// match the schema's column names in order.
Status LoadCsvInto(Table* table, const std::string& csv, char sep = ',');

/// Writes a table to a CSV file on disk. Crash-safe: the file is committed
/// atomically via wal::AtomicWriteFile, so an export interrupted by a crash
/// never leaves a torn file under `path`.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char sep = ',');

/// Reads a whole file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes a string to a file (overwriting). Atomic: tmp + fsync + rename
/// (common/wal.h), with the wal.file.* fault sites riding along.
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace quarry::storage

#endif  // QUARRY_STORAGE_CSV_H_
