file(REMOVE_RECURSE
  "CMakeFiles/retail_test.dir/retail_test.cc.o"
  "CMakeFiles/retail_test.dir/retail_test.cc.o.d"
  "retail_test"
  "retail_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
