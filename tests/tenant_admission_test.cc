// Multi-tenant overload protection (docs/ROBUSTNESS.md §11): the
// TenantRegistry quota gate (token bucket, in-flight share, circuit
// breaker), the priority-aware admission queue (weighted-fair selection,
// aging, preemption, deadline-aware eviction, derived queue timeouts) and
// a two-tenant chaos soak that pits a flooding low-priority tenant against
// a well-behaved one across publish/retire faults, asserting zero quota
// leaks and a full breaker trip / half-open / reset cycle.
//
// Metric instances are process-wide, so every admission-controller test
// uses its own lane label and every tenant test its own tenant id — counter
// deltas then belong to exactly one test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"
#include "core/admission.h"
#include "core/quarry.h"
#include "core/tenant.h"
#include "datagen/tpch.h"
#include "obs/metrics.h"
#include "ontology/tpch_ontology.h"

namespace quarry::core {
namespace {

using req::InformationRequirement;
using storage::Value;

void SleepMillis(int millis) {
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
}

int64_t CounterValue(const std::string& family, const obs::Labels& labels) {
  return obs::MetricsRegistry::Instance().counter(family, "", labels).value();
}

TenantStatus StatusOf(const TenantRegistry& registry, const std::string& id) {
  for (const TenantStatus& t : registry.Snapshot()) {
    if (t.id == id) return t;
  }
  ADD_FAILURE() << "tenant " << id << " not in snapshot";
  return {};
}

// ---------------------------------------------------------------------------
// TenantRegistry: quota gate semantics.
// ---------------------------------------------------------------------------

TEST(TenantRegistryTest, UntenantedAndUnknownTenantsPassThrough) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Register("t_known", {}).ok());

  // No context at all.
  auto lease = registry.Admit(nullptr);
  ASSERT_TRUE(lease.ok());
  EXPECT_FALSE(lease->held());

  // A context without a tenant.
  ExecContext anon;
  lease = registry.Admit(&anon);
  ASSERT_TRUE(lease.ok());
  EXPECT_FALSE(lease->held());

  // A tenant nobody registered: pass through, nothing counted.
  ExecContext ctx;
  ctx.set_tenant("t_stranger");
  lease = registry.Admit(&ctx);
  ASSERT_TRUE(lease.ok());
  EXPECT_FALSE(lease->held());
  EXPECT_FALSE(registry.Has("t_stranger"));
}

TEST(TenantRegistryTest, RegisterValidatesAndReconfiguresInPlace) {
  TenantRegistry registry;
  EXPECT_TRUE(registry.Register("", {}).IsInvalidArgument());
  TenantQuota negative;
  negative.rate_per_sec = -1;
  EXPECT_TRUE(registry.Register("t_neg", negative).IsInvalidArgument());

  TenantQuota quota;
  quota.priority = Priority::kLow;
  ASSERT_TRUE(registry.Register("t_reconf", quota).ok());
  ExecContext ctx;
  ctx.set_tenant("t_reconf");
  auto lease = registry.Admit(&ctx);
  ASSERT_TRUE(lease.ok());
  lease->Complete(Status::OK());

  // Reconfiguring keeps the accounting but applies the new limits.
  quota.priority = Priority::kHigh;
  quota.max_in_flight = 1;
  ASSERT_TRUE(registry.Register("t_reconf", quota).ok());
  TenantStatus status = StatusOf(registry, "t_reconf");
  EXPECT_EQ(status.requests_total, 1);
  EXPECT_EQ(status.admitted_total, 1);
  EXPECT_EQ(status.quota.max_in_flight, 1);

  lease = registry.Admit(&ctx);
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(ctx.priority(), Priority::kHigh);
}

TEST(TenantRegistryTest, StampsPriorityOntoTheContext) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.priority = Priority::kLow;
  ASSERT_TRUE(registry.Register("t_prio", quota).ok());
  ExecContext ctx;
  ctx.set_tenant("t_prio");
  EXPECT_EQ(ctx.priority(), Priority::kNormal);
  auto lease = registry.Admit(&ctx);
  ASSERT_TRUE(lease.ok());
  EXPECT_TRUE(lease->held());
  EXPECT_EQ(ctx.priority(), Priority::kLow);
}

TEST(TenantRegistryTest, TokenBucketShedsBurstAndRefills) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.rate_per_sec = 50.0;  // One token every 20ms.
  quota.burst = 2.0;
  ASSERT_TRUE(registry.Register("t_rate", quota).ok());
  ExecContext ctx;
  ctx.set_tenant("t_rate");

  auto first = registry.Admit(&ctx);
  auto second = registry.Admit(&ctx);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  auto third = registry.Admit(&ctx);
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsOverloaded()) << third.status();
  // The shed carries a machine-readable retry hint derived from the refill
  // rate (docs/ROBUSTNESS.md §11).
  EXPECT_GT(RetryAfterMillis(third.status()), 0.0) << third.status();

  TenantStatus status = StatusOf(registry, "t_rate");
  EXPECT_EQ(status.requests_total, 3);
  EXPECT_EQ(status.admitted_total, 2);
  EXPECT_EQ(status.shed_rate_total, 1);

  // ~5 refill periods later the bucket has tokens again.
  SleepMillis(100);
  auto fourth = registry.Admit(&ctx);
  EXPECT_TRUE(fourth.ok()) << fourth.status();
}

TEST(TenantRegistryTest, InFlightShareShedsUntilALeaseCompletes) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.max_in_flight = 1;
  ASSERT_TRUE(registry.Register("t_share", quota).ok());
  ExecContext ctx;
  ctx.set_tenant("t_share");

  auto held = registry.Admit(&ctx);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(StatusOf(registry, "t_share").in_flight, 1);

  auto blocked = registry.Admit(&ctx);
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsOverloaded()) << blocked.status();
  EXPECT_GT(RetryAfterMillis(blocked.status()), 0.0);
  EXPECT_EQ(StatusOf(registry, "t_share").shed_in_flight_total, 1);

  held->Complete(Status::OK());
  EXPECT_EQ(StatusOf(registry, "t_share").in_flight, 0);
  auto after = registry.Admit(&ctx);
  EXPECT_TRUE(after.ok()) << after.status();
}

TEST(TenantRegistryTest, DroppedLeaseReleasesTheShareNeutrally) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.max_in_flight = 1;
  quota.breaker_failure_threshold = 1;
  ASSERT_TRUE(registry.Register("t_drop", quota).ok());
  ExecContext ctx;
  ctx.set_tenant("t_drop");
  {
    auto lease = registry.Admit(&ctx);
    ASSERT_TRUE(lease.ok());
    // Destroyed without Complete(): quota released, breaker untouched.
  }
  TenantStatus status = StatusOf(registry, "t_drop");
  EXPECT_EQ(status.in_flight, 0);
  EXPECT_EQ(status.breaker, BreakerState::kClosed);
  EXPECT_EQ(status.consecutive_failures, 0);
}

TEST(TenantRegistryTest, BreakerTripsHalfOpensAndRecovers) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.breaker_failure_threshold = 2;
  quota.breaker_cooldown_millis = 80.0;
  ASSERT_TRUE(registry.Register("t_brk", quota).ok());
  ExecContext ctx;
  ctx.set_tenant("t_brk");

  // Two consecutive server-side failures trip the breaker open.
  for (int i = 0; i < 2; ++i) {
    auto lease = registry.Admit(&ctx);
    ASSERT_TRUE(lease.ok()) << lease.status();
    lease->Complete(Status::ExecutionError("backend down"));
  }
  TenantStatus status = StatusOf(registry, "t_brk");
  EXPECT_EQ(status.breaker, BreakerState::kOpen);
  EXPECT_EQ(status.breaker_trips_total, 1);
  EXPECT_GT(status.breaker_open_remaining_millis, 0.0);

  // While open: everything sheds, with the remaining cooldown as the hint.
  auto shed = registry.Admit(&ctx);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsOverloaded()) << shed.status();
  EXPECT_GT(RetryAfterMillis(shed.status()), 0.0);
  EXPECT_EQ(StatusOf(registry, "t_brk").shed_breaker_total, 1);

  // After the cooldown the breaker half-opens and admits a probe.
  SleepMillis(120);
  auto probe = registry.Admit(&ctx);
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_EQ(StatusOf(registry, "t_brk").breaker, BreakerState::kHalfOpen);

  // Only breaker_half_open_probes (default 1) trials pass while probing.
  auto second_probe = registry.Admit(&ctx);
  ASSERT_FALSE(second_probe.ok());
  EXPECT_TRUE(second_probe.status().IsOverloaded());

  // The probe succeeding closes the breaker and resets the streak.
  probe->Complete(Status::OK());
  status = StatusOf(registry, "t_brk");
  EXPECT_EQ(status.breaker, BreakerState::kClosed);
  EXPECT_EQ(status.consecutive_failures, 0);
  auto healthy = registry.Admit(&ctx);
  EXPECT_TRUE(healthy.ok()) << healthy.status();
}

TEST(TenantRegistryTest, BreakerReopensWhenTheProbeFails) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.breaker_failure_threshold = 1;
  quota.breaker_cooldown_millis = 60.0;
  ASSERT_TRUE(registry.Register("t_brk2", quota).ok());
  ExecContext ctx;
  ctx.set_tenant("t_brk2");

  auto lease = registry.Admit(&ctx);
  ASSERT_TRUE(lease.ok());
  lease->Complete(Status::Internal("boom"));
  EXPECT_EQ(StatusOf(registry, "t_brk2").breaker, BreakerState::kOpen);

  SleepMillis(90);
  auto probe = registry.Admit(&ctx);
  ASSERT_TRUE(probe.ok()) << probe.status();
  probe->Complete(Status::DeadlineExceeded("still down"));
  TenantStatus status = StatusOf(registry, "t_brk2");
  EXPECT_EQ(status.breaker, BreakerState::kOpen);
  EXPECT_EQ(status.breaker_trips_total, 2);
}

TEST(TenantRegistryTest, ShedsAndClientErrorsAreNeutralToTheBreaker) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.breaker_failure_threshold = 1;
  ASSERT_TRUE(registry.Register("t_neutral", quota).ok());
  ExecContext ctx;
  ctx.set_tenant("t_neutral");

  for (const Status& outcome :
       {Status::Overloaded("lane full"), Status::Cancelled("caller left"),
        Status::NotFound("no such fact"),
        Status::InvalidArgument("bad query")}) {
    auto lease = registry.Admit(&ctx);
    ASSERT_TRUE(lease.ok()) << lease.status();
    lease->Complete(outcome);
    EXPECT_EQ(StatusOf(registry, "t_neutral").breaker, BreakerState::kClosed)
        << outcome;
  }

  // A real server-side failure still trips at threshold 1.
  auto lease = registry.Admit(&ctx);
  ASSERT_TRUE(lease.ok());
  lease->Complete(Status::ResourceExhausted("budget blown"));
  EXPECT_EQ(StatusOf(registry, "t_neutral").breaker, BreakerState::kOpen);
}

TEST(TenantRegistryTest, SnapshotAgreesWithTheMetricFamilies) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.rate_per_sec = 1000.0;
  quota.burst = 2.0;
  quota.max_in_flight = 1;
  ASSERT_TRUE(registry.Register("t_metrics", quota).ok());
  ExecContext ctx;
  ctx.set_tenant("t_metrics");

  const int64_t base_requests = CounterValue("quarry_tenant_requests_total",
                                             {{"tenant", "t_metrics"}});
  auto held = registry.Admit(&ctx);
  ASSERT_TRUE(held.ok());
  auto shed = registry.Admit(&ctx);  // In-flight share.
  ASSERT_FALSE(shed.ok());
  held->Complete(Status::OK());

  TenantStatus status = StatusOf(registry, "t_metrics");
  EXPECT_EQ(status.requests_total, 2);
  EXPECT_EQ(CounterValue("quarry_tenant_requests_total",
                         {{"tenant", "t_metrics"}}),
            base_requests + 2);
  EXPECT_EQ(CounterValue("quarry_tenant_admitted_total",
                         {{"tenant", "t_metrics"}}),
            status.admitted_total);
  EXPECT_EQ(CounterValue("quarry_tenant_shed_total",
                         {{"reason", "in_flight"}, {"tenant", "t_metrics"}}),
            status.shed_in_flight_total);
}

// ---------------------------------------------------------------------------
// AdmissionController: priority scheduling, preemption, eviction.
// ---------------------------------------------------------------------------

/// Holds the controller's only slot, parks `waiters` in priority order and
/// returns the order their Admits were granted in.
std::vector<int> GrantOrder(AdmissionController* gate,
                            const std::vector<Priority>& waiters) {
  auto first = gate->Admit();
  EXPECT_TRUE(first.ok());
  std::atomic<int> order{0};
  std::vector<int> granted(waiters.size(), -1);
  std::vector<std::thread> threads;
  threads.reserve(waiters.size());
  for (size_t i = 0; i < waiters.size(); ++i) {
    // Park the waiters one at a time so arrival order is deterministic.
    const int before = gate->queue_depth();
    threads.emplace_back([gate, &waiters, &order, &granted, i] {
      ExecContext ctx;
      ctx.set_priority(waiters[i]);
      auto ticket = gate->Admit(&ctx);
      EXPECT_TRUE(ticket.ok()) << ticket.status();
      granted[i] = order.fetch_add(1);
      // Hold briefly so the next grant is a distinct release.
      SleepMillis(5);
    });
    while (gate->queue_depth() <= before) SleepMillis(1);
  }
  first->Release();
  for (std::thread& t : threads) t.join();
  return granted;
}

TEST(AdmissionPriorityTest, StrictPriorityWhenAgingIsDisabled) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 8;
  options.priority_aging_millis = 0.0;  // Strict priority.
  options.lane = "test_strict_prio";
  AdmissionController gate(options);

  // Arrivals: low, normal, high — grants must run high, normal, low.
  std::vector<int> granted =
      GrantOrder(&gate, {Priority::kLow, Priority::kNormal, Priority::kHigh});
  EXPECT_EQ(granted[2], 0);  // High first.
  EXPECT_EQ(granted[1], 1);
  EXPECT_EQ(granted[0], 2);  // Low last.
  EXPECT_EQ(gate.in_flight(), 0);
  EXPECT_EQ(gate.queue_depth(), 0);
}

TEST(AdmissionPriorityTest, EqualPrioritiesKeepFifoOrder) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 8;
  options.lane = "test_fifo";
  AdmissionController gate(options);
  std::vector<int> granted = GrantOrder(
      &gate, {Priority::kNormal, Priority::kNormal, Priority::kNormal});
  EXPECT_EQ(granted[0], 0);
  EXPECT_EQ(granted[1], 1);
  EXPECT_EQ(granted[2], 2);
}

TEST(AdmissionPriorityTest, AgedLowPriorityWaiterOvertakesAFreshHighOne) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 8;
  options.priority_aging_millis = 40.0;  // One class per 40ms waited.
  options.lane = "test_aging";
  AdmissionController gate(options);

  auto held = gate.Admit();
  ASSERT_TRUE(held.ok());
  std::atomic<int> order{0};
  int low_rank = -1, high_rank = -1;

  ExecContext low_ctx;
  low_ctx.set_priority(Priority::kLow);
  std::thread low([&] {
    auto ticket = gate.Admit(&low_ctx);
    EXPECT_TRUE(ticket.ok());
    low_rank = order.fetch_add(1);
  });
  while (gate.queue_depth() < 1) SleepMillis(1);
  // Let the low waiter age past 2 classes * 40ms before high arrives.
  SleepMillis(200);

  ExecContext high_ctx;
  high_ctx.set_priority(Priority::kHigh);
  std::thread high([&] {
    auto ticket = gate.Admit(&high_ctx);
    EXPECT_TRUE(ticket.ok());
    high_rank = order.fetch_add(1);
    SleepMillis(5);
  });
  while (gate.queue_depth() < 2) SleepMillis(1);

  held->Release();
  low.join();
  high.join();
  EXPECT_EQ(low_rank, 0) << "aged low-priority waiter should win the slot";
  EXPECT_EQ(high_rank, 1);
}

TEST(AdmissionPreemptTest, FullQueueArrivalEvictsTheNewestLowerPriority) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 1;
  options.priority_aging_millis = 0.0;
  options.lane = "test_preempt";
  AdmissionController gate(options);
  const obs::Labels preempted = {{"lane", "test_preempt"},
                                 {"reason", "preempted"}};
  const int64_t evicted_before =
      CounterValue("quarry_admission_evicted_total", preempted);

  auto held = gate.Admit();
  ASSERT_TRUE(held.ok());

  Status low_outcome;
  ExecContext low_ctx;
  low_ctx.set_priority(Priority::kLow);
  std::thread low([&] {
    auto ticket = gate.Admit(&low_ctx);
    low_outcome = ticket.status();
  });
  while (gate.queue_depth() < 1) SleepMillis(1);

  // Queue full. A high-priority arrival evicts the parked low waiter and
  // takes its queue spot instead of being shed.
  ExecContext high_ctx;
  high_ctx.set_priority(Priority::kHigh);
  std::thread high([&] {
    auto ticket = gate.Admit(&high_ctx);
    EXPECT_TRUE(ticket.ok()) << ticket.status();
  });
  low.join();
  EXPECT_TRUE(low_outcome.IsOverloaded()) << low_outcome;
  EXPECT_GT(RetryAfterMillis(low_outcome), 0.0) << low_outcome;
  EXPECT_EQ(CounterValue("quarry_admission_evicted_total", preempted),
            evicted_before + 1);

  held->Release();
  high.join();

  // The reverse never happens: a low arrival cannot evict a parked high
  // waiter — with the queue full again it is shed as queue_full.
  auto held2 = gate.Admit();
  ASSERT_TRUE(held2.ok());
  std::thread parked_high([&] {
    ExecContext ctx;
    ctx.set_priority(Priority::kHigh);
    auto ticket = gate.Admit(&ctx);
    EXPECT_TRUE(ticket.ok());
  });
  while (gate.queue_depth() < 1) SleepMillis(1);
  ExecContext low2;
  low2.set_priority(Priority::kLow);
  auto shed = gate.Admit(&low2);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsOverloaded());
  EXPECT_EQ(CounterValue("quarry_admission_evicted_total", preempted),
            evicted_before + 1)
      << "low arrival must not preempt a high waiter";
  held2->Release();
  parked_high.join();
}

TEST(AdmissionDeadlineTest, UnreachableDeadlineArrivalIsEvictedUpFront) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 4;
  options.deadline_eviction = true;
  options.eviction_min_samples = 1;
  options.lane = "test_evict";
  AdmissionController gate(options);

  // Seed the wait estimate with one genuinely-queued admission (~60ms).
  {
    auto held = gate.Admit();
    ASSERT_TRUE(held.ok());
    std::thread waiter([&] {
      auto ticket = gate.Admit();
      EXPECT_TRUE(ticket.ok());
    });
    while (gate.queue_depth() < 1) SleepMillis(1);
    SleepMillis(60);
    held->Release();
    waiter.join();
  }
  EXPECT_GT(gate.EstimatedQueueWaitMicros(), 10000.0);

  // A 2ms-deadline arrival cannot cover a ~60ms expected wait: evicted
  // immediately with a retry hint, not parked to die in the queue.
  auto held = gate.Admit();
  ASSERT_TRUE(held.ok());
  ExecContext doomed(Deadline::After(2.0));
  auto evicted = gate.Admit(&doomed);
  ASSERT_FALSE(evicted.ok());
  EXPECT_TRUE(evicted.status().IsOverloaded()) << evicted.status();
  EXPECT_GT(RetryAfterMillis(evicted.status()), 0.0);
  EXPECT_EQ(CounterValue(
                "quarry_admission_evicted_total",
                {{"lane", "test_evict"}, {"reason", "deadline_unreachable"}}),
            1);

  // A bounded-deadline arrival that CAN cover the wait still queues fine.
  ExecContext patient(Deadline::After(60000.0));
  std::thread ok_waiter([&] {
    auto ticket = gate.Admit(&patient);
    EXPECT_TRUE(ticket.ok()) << ticket.status();
  });
  while (gate.queue_depth() < 1) SleepMillis(1);
  held->Release();
  ok_waiter.join();
}

TEST(AdmissionTimeoutTest, QueueTimeoutDerivesFromTheRequestDeadline) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 4;
  options.derive_queue_timeout_from_deadline = true;
  options.deadline_queue_fraction = 0.25;
  options.lane = "test_derived";
  AdmissionController gate(options);

  auto held = gate.Admit();
  ASSERT_TRUE(held.ok());

  // 400ms deadline, fraction 0.25 -> shed as kOverloaded after ~100ms of
  // queueing, well before the deadline itself would have fired as
  // kDeadlineExceeded. The error class is the proof the derived timeout
  // fired first.
  ExecContext ctx(Deadline::After(400.0));
  const auto start = std::chrono::steady_clock::now();
  auto shed = gate.Admit(&ctx);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsOverloaded()) << shed.status();
  EXPECT_GT(RetryAfterMillis(shed.status()), 0.0);
  EXPECT_LT(waited_ms, 390.0) << "should shed before the deadline";
  EXPECT_FALSE(ctx.Check("after shed").IsDeadlineExceeded());

  // An unbounded request under the same options still waits indefinitely
  // (no derived timeout without a deadline): it gets the slot on release.
  std::thread waiter([&] {
    auto ticket = gate.Admit();
    EXPECT_TRUE(ticket.ok());
  });
  while (gate.queue_depth() < 1) SleepMillis(1);
  held->Release();
  waiter.join();
}

TEST(AdmissionWakeupTest, CancellationUnparksTheWaiterPromptly) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 4;
  options.lane = "test_wakeup";
  AdmissionController gate(options);

  auto held = gate.Admit();
  ASSERT_TRUE(held.ok());

  CancellationToken token;
  ExecContext ctx(token, Deadline::Infinite());
  Status outcome;
  double waited_ms = 0;
  std::thread waiter([&] {
    const auto start = std::chrono::steady_clock::now();
    auto ticket = gate.Admit(&ctx);
    waited_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    outcome = ticket.status();
  });
  while (gate.queue_depth() < 1) SleepMillis(1);

  const auto cancel_at = std::chrono::steady_clock::now();
  token.Cancel("caller gave up");
  waiter.join();
  const double unpark_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - cancel_at)
                               .count();
  EXPECT_TRUE(outcome.IsCancelled()) << outcome;
  // Targeted cv wakeup, not a polling slice: the waiter unparks as soon as
  // the cancel callback fires (generous bound for loaded CI hosts).
  EXPECT_LT(unpark_ms, 500.0);
  EXPECT_EQ(gate.queue_depth(), 0);
}

// ---------------------------------------------------------------------------
// Two-tenant chaos soak: flooder vs well-behaved across publish/retire
// faults (the §11 counterpart of serving_soak_test).
// ---------------------------------------------------------------------------

class TenantChaosSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(datagen::PopulateTpch(&src_, {0.001, 43}).ok());
    QuarryConfig config;
    // A tight query lane so lane-level shedding happens alongside the
    // tenant-level quota sheds.
    config.serving.query_admission = {/*max_in_flight=*/2,
                                      /*max_queue_depth=*/2,
                                      /*queue_timeout_millis=*/-1.0,
                                      /*lane=*/""};
    auto quarry = Quarry::Create(ontology::BuildTpchOntology(),
                                 ontology::BuildTpchMappings(), &src_,
                                 std::move(config));
    ASSERT_TRUE(quarry.ok()) << quarry.status();
    quarry_ = std::move(*quarry);

    InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_type"});
    ASSERT_TRUE(quarry_->AddRequirement(ir).ok());

    TenantQuota gold;
    gold.priority = Priority::kHigh;
    ASSERT_TRUE(quarry_->RegisterTenant("soak_gold", gold).ok());

    TenantQuota bronze;
    bronze.priority = Priority::kLow;
    bronze.rate_per_sec = 50.0;
    bronze.burst = 5.0;
    bronze.max_in_flight = 1;
    ASSERT_TRUE(quarry_->RegisterTenant("soak_bronze", bronze).ok());

    TenantQuota mutator;
    mutator.priority = Priority::kHigh;
    ASSERT_TRUE(quarry_->RegisterTenant("soak_mutator", mutator).ok());
  }

  void TearDown() override {
    fault::Injector::Instance().ClearConfigs();
    fault::Injector::Instance().Disable();
  }

  static olap::CubeQuery RevenueByType() {
    olap::CubeQuery query;
    query.fact = "fact_table_revenue";
    query.group_by = {"p_type"};
    query.measures = {{"revenue", md::AggFunc::kSum, "total"}};
    return query;
  }

  void GrowSource(int salt) {
    storage::Table* lineitem = *src_.GetTable("lineitem");
    ASSERT_TRUE(lineitem
                    ->Insert({Value::Int(1), Value::Int(200000 + salt),
                              Value::Int(1), Value::Int(1), Value::Int(3),
                              Value::Double(100.0), Value::Double(0.0),
                              Value::Double(0.0), Value::DateYmd(1995, 6, 1),
                              Value::String("N")})
                    .ok());
  }

  storage::Database src_;
  std::unique_ptr<Quarry> quarry_;
};

TEST_F(TenantChaosSoakTest, FlooderCannotLeakQuotaAcrossFaults) {
  auto deploy = quarry_->DeployServing();
  ASSERT_TRUE(deploy.ok() && deploy->success) << deploy.status();

  fault::Injector::Instance().Enable(131);
  fault::Injector::Instance().Configure("storage.generation.publish",
                                        {/*probability=*/0.2, 0, 0, -1});
  fault::Injector::Instance().Configure("storage.generation.retire",
                                        {/*probability=*/0.3, 0, 0, -1});

  std::atomic<bool> done{false};
  std::mutex errors_mu;
  std::vector<std::string> unexpected;
  std::atomic<int64_t> gold_ok{0}, bronze_ok{0}, sheds{0};
  const olap::CubeQuery query = RevenueByType();

  auto reader = [&](const std::string& tenant, std::atomic<int64_t>* ok) {
    while (!done.load(std::memory_order_acquire)) {
      ExecContext ctx;
      ctx.set_tenant(tenant);
      auto result = quarry_->SubmitQuery(query, {}, &ctx);
      if (result.ok()) {
        ok->fetch_add(1);
      } else if (result.status().IsOverloaded()) {
        sheds.fetch_add(1);
      } else {
        std::lock_guard<std::mutex> lock(errors_mu);
        unexpected.push_back(tenant + ": " + result.status().ToString());
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(reader, "soak_gold", &gold_ok);
  threads.emplace_back(reader, "soak_gold", &gold_ok);
  // Closed-loop flooders: 4 threads against a 50/s, share-1 quota.
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back(reader, "soak_bronze", &bronze_ok);
  }

  // Mutator: churn + refresh under fault injection, tenant-attributed.
  int refresh_failures = 0;
  for (int cycle = 1; cycle <= 15; ++cycle) {
    GrowSource(cycle);
    ExecContext ctx;
    ctx.set_tenant("soak_mutator");
    auto refresh = quarry_->RefreshServing(&ctx);
    if (!refresh.ok()) {
      ++refresh_failures;
      EXPECT_TRUE(refresh.status().IsExecutionError() ||
                  refresh.status().IsOverloaded())
          << refresh.status();
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Disable();

  EXPECT_TRUE(unexpected.empty()) << unexpected.front();
  EXPECT_GT(gold_ok.load(), 0);

  // Zero quota leaks: every lease returned, every request accounted for.
  for (const TenantStatus& t : quarry_->tenants().Snapshot()) {
    EXPECT_EQ(t.in_flight, 0) << t.id << " leaked quota";
    EXPECT_EQ(t.requests_total,
              t.admitted_total + t.shed_rate_total + t.shed_in_flight_total +
                  t.shed_breaker_total)
        << t.id;
    // The per-tenant metric families agree with the registry's own view.
    EXPECT_EQ(CounterValue("quarry_tenant_requests_total",
                           {{"tenant", t.id}}),
              t.requests_total)
        << t.id;
    EXPECT_EQ(CounterValue("quarry_tenant_admitted_total",
                           {{"tenant", t.id}}),
              t.admitted_total)
        << t.id;
  }

  // The flooder burned its own quota: 4 closed-loop threads against a
  // 50/s, share-1 bucket must shed at the tenant gate. The well-behaved
  // tenants never shed there.
  TenantStatus bronze = StatusOf(quarry_->tenants(), "soak_bronze");
  EXPECT_GT(bronze.shed_rate_total + bronze.shed_in_flight_total, 0);
  TenantStatus gold = StatusOf(quarry_->tenants(), "soak_gold");
  EXPECT_EQ(gold.shed_rate_total + gold.shed_in_flight_total +
                gold.shed_breaker_total,
            0);

  // The warehouse survived the churn with nothing pinned or leaked.
  quarry_->warehouse().DrainDeferredRetires();
  storage::GenerationStoreStats stats = quarry_->warehouse().stats();
  EXPECT_EQ(stats.active_pins, 0);
  EXPECT_LE(stats.live_generations, 2);

  // --- Deterministic breaker cycle on the mutator tenant -----------------
  // Reconfigure keeps accounting; give the mutator a 2-failure breaker.
  TenantQuota brittle;
  brittle.priority = Priority::kHigh;
  brittle.breaker_failure_threshold = 2;
  brittle.breaker_cooldown_millis = 150.0;
  ASSERT_TRUE(quarry_->RegisterTenant("soak_mutator", brittle).ok());

  // Every publish now fails: two refreshes trip the breaker open.
  fault::Injector::Instance().Enable(132);
  fault::Injector::Instance().Configure("storage.generation.publish",
                                        {0.0, 0, /*fail_from_hit=*/1, -1});
  for (int i = 0; i < 2; ++i) {
    GrowSource(1000 + i);
    ExecContext ctx;
    ctx.set_tenant("soak_mutator");
    auto refresh = quarry_->RefreshServing(&ctx);
    ASSERT_FALSE(refresh.ok());
    EXPECT_TRUE(refresh.status().IsExecutionError()) << refresh.status();
  }
  TenantStatus mutator = StatusOf(quarry_->tenants(), "soak_mutator");
  EXPECT_EQ(mutator.breaker, BreakerState::kOpen);
  EXPECT_GE(mutator.breaker_trips_total, 1);

  // Open breaker sheds the next refresh before it does any work.
  {
    ExecContext ctx;
    ctx.set_tenant("soak_mutator");
    auto refresh = quarry_->RefreshServing(&ctx);
    ASSERT_FALSE(refresh.ok());
    EXPECT_TRUE(refresh.status().IsOverloaded()) << refresh.status();
    EXPECT_GT(RetryAfterMillis(refresh.status()), 0.0);
  }

  // Cooldown elapses, the faults are gone: the half-open probe succeeds
  // and the breaker resets to closed.
  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Disable();
  SleepMillis(200);
  {
    ExecContext ctx;
    ctx.set_tenant("soak_mutator");
    auto refresh = quarry_->RefreshServing(&ctx);
    ASSERT_TRUE(refresh.ok()) << refresh.status();
  }
  mutator = StatusOf(quarry_->tenants(), "soak_mutator");
  EXPECT_EQ(mutator.breaker, BreakerState::kClosed);
  EXPECT_EQ(mutator.consecutive_failures, 0);

  // Queries still flow end to end after the whole ordeal.
  ExecContext ctx;
  ctx.set_tenant("soak_gold");
  auto result = quarry_->SubmitQuery(RevenueByType(), {}, &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
}

}  // namespace
}  // namespace quarry::core
