# Empty dependencies file for quarry_mdschema.
# This may be replaced when dependencies are built.
