#ifndef QUARRY_COMMON_STATUS_H_
#define QUARRY_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace quarry {

/// \brief Machine-readable classification of an error.
///
/// Quarry does not throw exceptions across public API boundaries; every
/// fallible operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a value that violates a precondition.
  kNotFound,          ///< A named entity (concept, table, node, ...) is absent.
  kAlreadyExists,     ///< Creation would collide with an existing entity.
  kParseError,        ///< Malformed input text (XML, JSON, SQL, expression).
  kValidationError,   ///< A design violates MD integrity constraints.
  kUnsatisfiable,     ///< A requirement cannot be satisfied by a design.
  kExecutionError,    ///< An ETL flow or SQL statement failed at run time.
  kUnsupported,       ///< Feature is recognized but not implemented.
  kInternal,          ///< Invariant breakage inside Quarry itself.
  kCancelled,          ///< The request's CancellationToken was cancelled.
  kDeadlineExceeded,   ///< The request's Deadline expired before completion.
  kOverloaded,         ///< Admission control shed the request under load.
  kResourceExhausted,  ///< A resource budget / structural limit was hit.
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus a diagnostic message.
///
/// The class is cheap to copy in the OK case (empty message) and supports the
/// usual Arrow/RocksDB-style usage:
///
/// \code
///   Status s = DoThing();
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ValidationError(std::string msg) {
    return Status(StatusCode::kValidationError, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsValidationError() const {
    return code_ == StatusCode::kValidationError;
  }
  bool IsUnsatisfiable() const { return code_ == StatusCode::kUnsatisfiable; }
  bool IsExecutionError() const {
    return code_ == StatusCode::kExecutionError;
  }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Appends context to the front of the message, keeping the code.
  /// Useful when propagating an error up through layered components.
  Status WithContext(const std::string& context) const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Appends a machine-parsable " (retry-after-ms=N)" hint to a non-OK
/// status. N is `millis` rounded up to a whole millisecond, minimum 1, so
/// shed responses always carry an actionable backoff (docs/ROBUSTNESS.md
/// §11). OK statuses and already-hinted statuses pass through unchanged.
Status WithRetryAfterMillis(Status status, double millis);

/// Parses the retry-after hint out of a status message; -1 when absent.
double RetryAfterMillis(const Status& status);

/// Propagates a non-OK Status out of the calling function.
#define QUARRY_RETURN_NOT_OK(expr)                   \
  do {                                               \
    ::quarry::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace quarry

#endif  // QUARRY_COMMON_STATUS_H_
