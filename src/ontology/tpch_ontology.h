#ifndef QUARRY_ONTOLOGY_TPCH_ONTOLOGY_H_
#define QUARRY_ONTOLOGY_TPCH_ONTOLOGY_H_

#include "ontology/mapping.h"
#include "ontology/ontology.h"

namespace quarry::ontology {

/// \brief The TPC-H domain ontology from the paper's running example
/// (Fig. 2 shows its graphical rendering in the Requirements Elicitor).
///
/// Concepts: Region, Nation, Supplier, Customer, Part, Partsupp, Orders,
/// Lineitem. Associations carry the natural multiplicities (e.g. every
/// Lineitem belongs to exactly one Orders — MANY_TO_ONE), which is what the
/// Interpreter's MD validation and the Elicitor's suggestions key off.
Ontology BuildTpchOntology();

/// Source schema mappings grounding BuildTpchOntology() in the tables
/// produced by quarry::datagen::PopulateTpch.
SourceMapping BuildTpchMappings();

}  // namespace quarry::ontology

#endif  // QUARRY_ONTOLOGY_TPCH_ONTOLOGY_H_
