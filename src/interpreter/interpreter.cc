#include "interpreter/interpreter.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/str_util.h"
#include "common/timer.h"
#include "etl/expr.h"
#include "mdschema/validator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace quarry::interpreter {

using etl::Expr;
using etl::Flow;
using etl::Node;
using etl::OpType;
using ontology::ConceptMapping;
using ontology::DataProperty;
using ontology::PathStep;
using req::InformationRequirement;
using storage::Value;

namespace {

/// Rewrites every column reference (an ontology property id) to its mapped
/// source column.
Result<Expr::Ptr> RewriteToColumns(const Expr::Ptr& expr,
                                   const ontology::SourceMapping& mapping) {
  switch (expr->kind()) {
    case Expr::Kind::kLiteral:
      return expr;
    case Expr::Kind::kColumn: {
      QUARRY_ASSIGN_OR_RETURN(auto pm, mapping.ForProperty(expr->column()));
      return Expr::Column(pm.column);
    }
    case Expr::Kind::kUnary: {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr arg,
                              RewriteToColumns(expr->args()[0], mapping));
      return Expr::Unary(expr->op(), arg);
    }
    case Expr::Kind::kBinary: {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr lhs,
                              RewriteToColumns(expr->args()[0], mapping));
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr rhs,
                              RewriteToColumns(expr->args()[1], mapping));
      return Expr::Binary(expr->op(), lhs, rhs);
    }
  }
  return Status::Internal("corrupt expression");
}

const char* EtlAggName(md::AggFunc f) {
  switch (f) {
    case md::AggFunc::kSum:
      return "SUM";
    case md::AggFunc::kAvg:
      return "AVG";
    case md::AggFunc::kMin:
      return "MIN";
    case md::AggFunc::kMax:
      return "MAX";
    case md::AggFunc::kCount:
      return "COUNT";
  }
  return "SUM";
}

}  // namespace

std::string Interpreter::DimTableName(const std::string& concept_id) {
  return "dim_" + concept_id;
}

std::string Interpreter::FactTableName(const InformationRequirement& ir) {
  std::string base = ir.name.empty() ? ir.id : ir.name;
  if (StartsWith(base, "fact")) return base;
  return "fact_table_" + base;
}

Result<PartialDesign> Interpreter::Interpret(
    const InformationRequirement& ir, const ExecContext* ctx) const {
  QUARRY_NAMED_SPAN(span, "interpreter.interpret");
  QUARRY_SPAN_ATTR(span, "ir_id", ir.id);
  if (RequestId(ctx) != 0) {
    QUARRY_SPAN_ATTR(span, "request_id",
                     static_cast<int64_t>(RequestId(ctx)));
  }
  Timer timer;
  Result<PartialDesign> result = InterpretImpl(ir, ctx);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  reg.counter("quarry_interpreter_requirements_total",
              "Information requirements handed to the interpreter")
      .Increment();
  reg.histogram("quarry_interpreter_micros",
                "Requirement interpretation latency in microseconds")
      .Observe(timer.ElapsedMicros());
  if (!result.ok()) {
    reg.counter("quarry_interpreter_failures_total",
                "Requirements the interpreter rejected")
        .Increment();
    QUARRY_SPAN_ATTR(span, "error", result.status().message());
  } else {
    QUARRY_SPAN_ATTR(span, "flow_nodes",
                     static_cast<int64_t>(result->flow.nodes().size()));
    QUARRY_SPAN_ATTR(span, "facts",
                     static_cast<int64_t>(result->schema.facts().size()));
  }
  return result;
}

Result<PartialDesign> Interpreter::InterpretImpl(
    const InformationRequirement& ir, const ExecContext* ctx) const {
  QUARRY_RETURN_NOT_OK(
      CheckContext(ctx, "interpreter requirement '" + ir.id + "'"));
  if (ir.id.empty()) {
    return Status::InvalidArgument("requirement has no id");
  }
  if (ir.measures.empty()) {
    return Status::Unsatisfiable("requirement '" + ir.id +
                                 "' requests no measures");
  }
  if (ir.dimensions.empty()) {
    return Status::Unsatisfiable("requirement '" + ir.id +
                                 "' requests no dimensions");
  }

  // ---- resolve the focus concept ----------------------------------------
  std::string focus = ir.focus_concept;
  if (focus.empty()) {
    // Derive from the first measure's first property.
    QUARRY_ASSIGN_OR_RETURN(Expr::Ptr e,
                            etl::ParseExpr(ir.measures[0].expression));
    auto columns = e->ReferencedColumns();
    if (columns.empty()) {
      return Status::Unsatisfiable(
          "requirement '" + ir.id +
          "' has a constant measure and no explicit focus concept");
    }
    QUARRY_ASSIGN_OR_RETURN(DataProperty p,
                            onto_->GetProperty(*columns.begin()));
    focus = p.concept_id;
  }
  QUARRY_RETURN_NOT_OK(onto_->GetConcept(focus).status());

  // ---- tag concepts and find functional paths ---------------------------
  std::map<std::string, std::vector<PathStep>> paths;
  auto need_concept = [&](const std::string& concept_id) -> Status {
    if (paths.count(concept_id) > 0) return Status::OK();
    auto path = onto_->FindFunctionalPath(focus, concept_id);
    if (!path.ok()) {
      return path.status().WithContext(
          "requirement '" + ir.id + "' violates summarizability");
    }
    paths[concept_id] = std::move(*path);
    return Status::OK();
  };
  QUARRY_RETURN_NOT_OK(need_concept(focus));

  // Group requested dimension attributes per owning concept.
  std::map<std::string, std::vector<DataProperty>> dim_attrs;
  for (const req::DimensionSpec& d : ir.dimensions) {
    QUARRY_ASSIGN_OR_RETURN(DataProperty p, onto_->GetProperty(d.property_id));
    QUARRY_RETURN_NOT_OK(need_concept(p.concept_id));
    auto& attrs = dim_attrs[p.concept_id];
    if (std::none_of(attrs.begin(), attrs.end(),
                     [&](const DataProperty& e) { return e.id == p.id; })) {
      attrs.push_back(p);
    }
  }

  QUARRY_RETURN_NOT_OK(
      CheckContext(ctx, "interpreter measures for '" + ir.id + "'"));

  // Parse measures, resolve their properties and rewrite to source columns.
  struct MeasureInfo {
    req::MeasureSpec spec;
    std::string column_expression;
  };
  std::vector<MeasureInfo> measures;
  std::set<std::string> measure_ids;
  for (const req::MeasureSpec& m : ir.measures) {
    if (!measure_ids.insert(m.id).second) {
      return Status::InvalidArgument("duplicate measure id '" + m.id +
                                     "' in requirement '" + ir.id + "'");
    }
    QUARRY_ASSIGN_OR_RETURN(Expr::Ptr expr, etl::ParseExpr(m.expression));
    for (const std::string& property_id : expr->ReferencedColumns()) {
      QUARRY_ASSIGN_OR_RETURN(DataProperty p,
                              onto_->GetProperty(property_id));
      if (!p.is_numeric()) {
        return Status::ValidationError("measure '" + m.id +
                                       "' uses non-numeric property '" +
                                       property_id + "'");
      }
      QUARRY_RETURN_NOT_OK(need_concept(p.concept_id));
    }
    QUARRY_ASSIGN_OR_RETURN(Expr::Ptr rewritten,
                            RewriteToColumns(expr, *mapping_));
    measures.push_back({m, rewritten->ToString()});
  }

  // Slicers: resolve property, type the literal, build predicate text.
  struct SlicerInfo {
    std::string column;
    std::string predicate;
  };
  std::vector<SlicerInfo> slicers;
  for (const req::Slicer& s : ir.slicers) {
    QUARRY_ASSIGN_OR_RETURN(DataProperty p, onto_->GetProperty(s.property_id));
    QUARRY_RETURN_NOT_OK(need_concept(p.concept_id));
    QUARRY_ASSIGN_OR_RETURN(auto pm, mapping_->ForProperty(s.property_id));
    QUARRY_ASSIGN_OR_RETURN(Value literal, Value::Parse(s.value, p.type));
    Expr::Ptr predicate = Expr::Binary(s.op, Expr::Column(pm.column),
                                       Expr::Literal(std::move(literal)));
    slicers.push_back({pm.column, predicate->ToString()});
  }

  // ---- partial MD schema --------------------------------------------------
  QUARRY_RETURN_NOT_OK(
      CheckContext(ctx, "interpreter MD schema for '" + ir.id + "'"));
  md::MdSchema schema(ir.id);
  for (const auto& [concept_id, attrs] : dim_attrs) {
    md::Dimension dim;
    dim.name = concept_id;
    dim.requirement_ids = {ir.id};
    md::Level level;
    level.name = concept_id;
    level.concept_id = concept_id;
    level.requirement_ids = {ir.id};
    for (const DataProperty& p : attrs) {
      QUARRY_ASSIGN_OR_RETURN(auto pm, mapping_->ForProperty(p.id));
      level.attributes.push_back({pm.column, p.type, p.id});
    }
    dim.levels.push_back(std::move(level));
    QUARRY_RETURN_NOT_OK(schema.AddDimension(std::move(dim)));
  }
  md::Fact fact;
  fact.name = FactTableName(ir);
  fact.concept_id = focus;
  fact.requirement_ids = {ir.id};
  for (const MeasureInfo& m : measures) {
    md::Measure measure;
    measure.name = m.spec.id;
    measure.expression = m.spec.expression;  // Property-id form in xMD.
    measure.aggregation = m.spec.aggregation;
    measure.requirement_ids = {ir.id};
    fact.measures.push_back(std::move(measure));
  }
  for (const auto& [concept_id, attrs] : dim_attrs) {
    fact.dimension_refs.push_back({concept_id, concept_id});
  }
  QUARRY_RETURN_NOT_OK(schema.AddFact(std::move(fact)));
  QUARRY_RETURN_NOT_OK(md::CheckSound(schema, onto_));

  // ---- partial ETL flow ----------------------------------------------------
  QUARRY_RETURN_NOT_OK(
      CheckContext(ctx, "interpreter ETL flow for '" + ir.id + "'"));
  Flow flow(ir.id);
  auto trace = [&](Node node) {
    node.requirement_ids = {ir.id};
    return node;
  };
  // Shared DATASTORE_/EXTRACTION_ pair per source table.
  auto ensure_extraction = [&](const std::string& table)
      -> Result<std::string> {
    std::string ds_id = "DATASTORE_" + table;
    std::string ex_id = "EXTRACTION_" + table;
    if (!flow.HasNode(ds_id)) {
      Node ds;
      ds.id = ds_id;
      ds.type = OpType::kDatastore;
      ds.params["table"] = table;
      QUARRY_RETURN_NOT_OK(flow.AddNode(trace(std::move(ds))));
      Node ex;
      ex.id = ex_id;
      ex.type = OpType::kExtraction;
      ex.params["table"] = table;
      QUARRY_RETURN_NOT_OK(flow.AddNode(trace(std::move(ex))));
      QUARRY_RETURN_NOT_OK(flow.AddEdge(ds_id, ex_id));
    }
    return ex_id;
  };

  QUARRY_ASSIGN_OR_RETURN(ConceptMapping focus_map,
                          mapping_->ForConcept(focus));
  QUARRY_ASSIGN_OR_RETURN(std::string current,
                          ensure_extraction(focus_map.table));

  // Left-deep join tree over the union of all functional paths; shorter
  // paths first so every step's source concept is already joined.
  std::vector<std::pair<std::string, const std::vector<PathStep>*>> ordered;
  for (const auto& [concept_id, path] : paths) {
    ordered.emplace_back(concept_id, &path);
  }
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    if (a.second->size() != b.second->size()) {
      return a.second->size() < b.second->size();
    }
    return a.first < b.first;
  });
  std::set<std::string> joined{focus};
  for (const auto& [concept_id, path] : ordered) {
    for (const PathStep& step : *path) {
      if (joined.count(step.to_concept) > 0) continue;
      QUARRY_ASSIGN_OR_RETURN(auto assoc_map,
                              mapping_->ForAssociation(step.association_id));
      QUARRY_ASSIGN_OR_RETURN(ConceptMapping to_map,
                              mapping_->ForConcept(step.to_concept));
      QUARRY_ASSIGN_OR_RETURN(std::string ex_to,
                              ensure_extraction(to_map.table));
      Node join;
      join.id = "JOIN_" + step.association_id;
      join.type = OpType::kJoin;
      join.params["left"] = Join(
          step.forward ? assoc_map.from_columns : assoc_map.to_columns, ",");
      join.params["right"] = Join(
          step.forward ? assoc_map.to_columns : assoc_map.from_columns, ",");
      QUARRY_RETURN_NOT_OK(flow.AddNode(trace(std::move(join))));
      QUARRY_RETURN_NOT_OK(flow.AddEdge(current, "JOIN_" +
                                                     step.association_id));
      QUARRY_RETURN_NOT_OK(
          flow.AddEdge(ex_to, "JOIN_" + step.association_id));
      current = "JOIN_" + step.association_id;
      joined.insert(step.to_concept);
    }
  }

  // Slicer selections (after the join tree; the integrator pushes down).
  for (size_t i = 0; i < slicers.size(); ++i) {
    Node sel;
    sel.id = "SELECTION_" + std::to_string(i) + "_" + slicers[i].column;
    sel.type = OpType::kSelection;
    sel.params["predicate"] = slicers[i].predicate;
    std::string id = sel.id;
    QUARRY_RETURN_NOT_OK(flow.AddNode(trace(std::move(sel))));
    QUARRY_RETURN_NOT_OK(flow.AddEdge(current, id));
    current = id;
  }

  // Measure computations.
  for (const MeasureInfo& m : measures) {
    Node fn;
    fn.id = "FUNCTION_" + m.spec.id;
    fn.type = OpType::kFunction;
    fn.params["column"] = m.spec.id;
    fn.params["expr"] = m.column_expression;
    std::string id = fn.id;
    QUARRY_RETURN_NOT_OK(flow.AddNode(trace(std::move(fn))));
    QUARRY_RETURN_NOT_OK(flow.AddEdge(current, id));
    current = id;
  }

  // Fact branch: project grain + measures, aggregate, load.
  std::vector<std::string> grain_columns;
  for (const auto& [concept_id, attrs] : dim_attrs) {
    QUARRY_ASSIGN_OR_RETURN(ConceptMapping cm,
                            mapping_->ForConcept(concept_id));
    for (const std::string& key : cm.key_columns) {
      if (std::find(grain_columns.begin(), grain_columns.end(), key) ==
          grain_columns.end()) {
        grain_columns.push_back(key);
      }
    }
  }
  std::string fact_table = FactTableName(ir);
  {
    std::vector<std::string> projected = grain_columns;
    std::vector<std::string> agg_parts;
    for (const MeasureInfo& m : measures) {
      projected.push_back(m.spec.id);
      agg_parts.push_back(std::string(EtlAggName(m.spec.aggregation)) + "(" +
                          m.spec.id + ") AS " + m.spec.id);
    }
    Node proj;
    proj.id = "PROJECT_" + fact_table;
    proj.type = OpType::kProjection;
    proj.params["columns"] = Join(projected, ",");
    QUARRY_RETURN_NOT_OK(flow.AddNode(trace(std::move(proj))));
    QUARRY_RETURN_NOT_OK(flow.AddEdge(current, "PROJECT_" + fact_table));

    Node agg;
    agg.id = "AGG_" + fact_table;
    agg.type = OpType::kAggregation;
    agg.params["group"] = Join(grain_columns, ",");
    agg.params["aggs"] = Join(agg_parts, ";");
    QUARRY_RETURN_NOT_OK(flow.AddNode(trace(std::move(agg))));
    QUARRY_RETURN_NOT_OK(
        flow.AddEdge("PROJECT_" + fact_table, "AGG_" + fact_table));

    Node load;
    load.id = "LOAD_" + fact_table;
    load.type = OpType::kLoader;
    load.params["table"] = fact_table;
    load.params["keys"] = Join(grain_columns, ",");
    QUARRY_RETURN_NOT_OK(flow.AddNode(trace(std::move(load))));
    QUARRY_RETURN_NOT_OK(
        flow.AddEdge("AGG_" + fact_table, "LOAD_" + fact_table));
  }

  // Dimension branches: straight from each concept's own extraction.
  for (const auto& [concept_id, attrs] : dim_attrs) {
    QUARRY_ASSIGN_OR_RETURN(ConceptMapping cm,
                            mapping_->ForConcept(concept_id));
    QUARRY_ASSIGN_OR_RETURN(std::string ex_id, ensure_extraction(cm.table));
    std::vector<std::string> projected = cm.key_columns;
    for (const DataProperty& p : attrs) {
      QUARRY_ASSIGN_OR_RETURN(auto pm, mapping_->ForProperty(p.id));
      if (std::find(projected.begin(), projected.end(), pm.column) ==
          projected.end()) {
        projected.push_back(pm.column);
      }
    }
    std::string dim_table = DimTableName(concept_id);
    Node proj;
    proj.id = "PROJECT_" + dim_table;
    proj.type = OpType::kProjection;
    proj.params["columns"] = Join(projected, ",");
    QUARRY_RETURN_NOT_OK(flow.AddNode(trace(std::move(proj))));
    QUARRY_RETURN_NOT_OK(flow.AddEdge(ex_id, "PROJECT_" + dim_table));
    Node load;
    load.id = "LOAD_" + dim_table;
    load.type = OpType::kLoader;
    load.params["table"] = dim_table;
    load.params["keys"] = Join(cm.key_columns, ",");
    QUARRY_RETURN_NOT_OK(flow.AddNode(trace(std::move(load))));
    QUARRY_RETURN_NOT_OK(
        flow.AddEdge("PROJECT_" + dim_table, "LOAD_" + dim_table));
  }

  QUARRY_RETURN_NOT_OK(
      flow.Validate().WithContext("generated flow for '" + ir.id + "'"));
  if (ctx != nullptr && ctx->budget().max_flow_nodes > 0 &&
      static_cast<int64_t>(flow.nodes().size()) >
          ctx->budget().max_flow_nodes) {
    return Status::ResourceExhausted(
        "generated flow for '" + ir.id + "' has " +
        std::to_string(flow.nodes().size()) + " nodes, over the budget of " +
        std::to_string(ctx->budget().max_flow_nodes));
  }
  return PartialDesign{std::move(schema), std::move(flow)};
}

}  // namespace quarry::interpreter
