// Demo scenario "Design deployment" (paper §3): after the involved parties
// agree on a design, Quarry generates the executables for the chosen
// platforms — a PostgreSQL-dialect DDL script and a Pentaho-PDI-style
// transformation — deploys them on the embedded engines, and archives all
// metadata. Also demonstrates the metadata layer's plug-in exporters and
// its on-disk persistence (the MongoDB stand-in).

#include <filesystem>
#include <iostream>

#include "core/quarry.h"
#include "datagen/tpch.h"
#include "ontology/tpch_ontology.h"
#include "storage/csv.h"
#include "storage/sql.h"

namespace {

using quarry::core::Quarry;
using quarry::req::InformationRequirement;

int Fail(const quarry::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

}  // namespace

int main() {
  quarry::storage::Database source("tpch");
  if (auto s = quarry::datagen::PopulateTpch(&source, {0.01, 41}); !s.ok()) {
    return Fail(s);
  }
  auto quarry = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                               quarry::ontology::BuildTpchMappings(),
                               &source);
  if (!quarry.ok()) return Fail(quarry.status());

  InformationRequirement revenue;
  revenue.id = "ir_revenue";
  revenue.name = "revenue";
  revenue.focus_concept = "Lineitem";
  revenue.measures.push_back(
      {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
       quarry::md::AggFunc::kSum});
  revenue.dimensions.push_back({"Part.p_brand"});
  revenue.dimensions.push_back({"Orders.o_orderdate"});
  if (auto o = (*quarry)->AddRequirement(revenue); !o.ok()) {
    return Fail(o.status());
  }

  InformationRequirement netprofit;
  netprofit.id = "ir_netprofit";
  netprofit.name = "netprofit";
  netprofit.focus_concept = "Lineitem";
  netprofit.measures.push_back(
      {"netprofit",
       "Lineitem.l_extendedprice * (1 - Lineitem.l_discount) - "
       "Partsupp.ps_supplycost * Lineitem.l_quantity",
       quarry::md::AggFunc::kSum});
  netprofit.dimensions.push_back({"Part.p_brand"});
  if (auto o = (*quarry)->AddRequirement(netprofit); !o.ok()) {
    return Fail(o.status());
  }

  // --- platform executables -------------------------------------------------
  auto sql = (*quarry)->ExportSchema("sql");
  if (!sql.ok()) return Fail(sql.status());
  auto ktr = (*quarry)->ExportFlow("pdi");
  if (!ktr.ok()) return Fail(ktr.status());
  std::cout << "=== MD schema (SQL, RDBMS) ===\n" << *sql;
  std::cout << "=== ETL process (Pentaho PDI ktr, excerpt) ===\n"
            << ktr->substr(0, 900) << "...\n\n";

  // --- deployment on the embedded engines -----------------------------------
  quarry::storage::Database warehouse;
  auto deployment = (*quarry)->Deploy(&warehouse);
  if (!deployment.ok()) return Fail(deployment.status());
  std::cout << "deployed tables:";
  for (const std::string& name : warehouse.TableNames()) {
    std::cout << " " << name << "("
              << (*warehouse.GetTable(name))->num_rows() << ")";
  }
  std::cout << "\nreferential integrity: "
            << (deployment->referential_integrity_ok ? "OK" : "BROKEN")
            << "\n\n";

  // --- expert tuning hook: indexes over the deployed schema ----------------
  // (paper §2.4: "validated DW designs are available for additional tunings
  // by an expert user (e.g., indexes)")
  auto report = quarry::storage::ExecuteSql(
      &warehouse, "CREATE INDEX idx_rev_part ON fact_table_revenue "
                  "(p_partkey);");
  if (!report.ok()) return Fail(report.status());
  std::cout << "expert tuning: added " << report->indexes_created
            << " index on fact_table_revenue(p_partkey)\n";

  // --- export the warehouse + archive the metadata repository ---------------
  std::filesystem::path out_dir =
      std::filesystem::temp_directory_path() / "quarry_deployment_demo";
  std::filesystem::remove_all(out_dir);
  std::filesystem::create_directories(out_dir);
  for (const std::string& name : warehouse.TableNames()) {
    auto s = quarry::storage::WriteCsvFile(**warehouse.GetTable(name),
                                           (out_dir / (name + ".csv")));
    if (!s.ok()) return Fail(s);
  }
  if (auto s = (*quarry)->repository().store().SaveToDirectory(out_dir);
      !s.ok()) {
    return Fail(s);
  }
  std::cout << "exported warehouse CSVs + metadata repository to " << out_dir
            << "\nmetadata collections:";
  for (const std::string& name :
       (*quarry)->repository().store().CollectionNames()) {
    std::cout << " " << name;
  }
  std::cout << "\n\ndeployment demo finished OK\n";
  return 0;
}
