#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "datagen/tpch.h"
#include "etl/cost_model.h"
#include "etl/equivalence.h"
#include "etl/exec/executor.h"
#include "etl/flow.h"
#include "etl/schema_inference.h"
#include "storage/database.h"

namespace quarry::etl {
namespace {

using storage::Database;
using storage::Row;
using storage::Table;
using storage::Value;

// Builds a small hand-made source database for precise operator checks.
std::unique_ptr<Database> MakeTinySource() {
  auto db = std::make_unique<Database>("src");
  storage::TableSchema sales("sales");
  EXPECT_TRUE(sales.AddColumn({"id", storage::DataType::kInt64, false}).ok());
  EXPECT_TRUE(
      sales.AddColumn({"product", storage::DataType::kString, true}).ok());
  EXPECT_TRUE(sales.AddColumn({"qty", storage::DataType::kInt64, true}).ok());
  EXPECT_TRUE(
      sales.AddColumn({"price", storage::DataType::kDouble, true}).ok());
  Table* t = *db->CreateTable(sales);
  EXPECT_TRUE(t->InsertAll({
                   {Value::Int(1), Value::String("a"), Value::Int(2),
                    Value::Double(10.0)},
                   {Value::Int(2), Value::String("b"), Value::Int(5),
                    Value::Double(4.0)},
                   {Value::Int(3), Value::String("a"), Value::Int(1),
                    Value::Double(10.0)},
                   {Value::Int(4), Value::String("c"), Value::Null(),
                    Value::Double(2.5)},
               })
                  .ok());
  storage::TableSchema products("products");
  EXPECT_TRUE(
      products.AddColumn({"prod_name", storage::DataType::kString, false})
          .ok());
  EXPECT_TRUE(
      products.AddColumn({"category", storage::DataType::kString, true})
          .ok());
  Table* p = *db->CreateTable(products);
  EXPECT_TRUE(p->InsertAll({
                   {Value::String("a"), Value::String("tools")},
                   {Value::String("b"), Value::String("toys")},
               })
                  .ok());
  return db;
}

Node MakeNode(const std::string& id, OpType type,
              std::map<std::string, std::string> params) {
  Node node;
  node.id = id;
  node.type = type;
  node.params = std::move(params);
  return node;
}

// Chains nodes linearly after a datastore+extraction prologue and a loader
// epilogue, runs the flow, and returns the loaded table.
Result<const Table*> RunPipeline(Database* src, Database* target,
                                 std::vector<Node> middle,
                                 const std::string& source_table = "sales",
                                 const std::string& keys = "") {
  Flow flow("t");
  QUARRY_RETURN_NOT_OK(flow.AddNode(MakeNode(
      "ds", OpType::kDatastore, {{"table", source_table}})));
  QUARRY_RETURN_NOT_OK(flow.AddNode(MakeNode("ex", OpType::kExtraction,
                                             {{"table", source_table}})));
  QUARRY_RETURN_NOT_OK(flow.AddEdge("ds", "ex"));
  std::string prev = "ex";
  for (Node& node : middle) {
    std::string id = node.id;
    QUARRY_RETURN_NOT_OK(flow.AddNode(std::move(node)));
    QUARRY_RETURN_NOT_OK(flow.AddEdge(prev, id));
    prev = id;
  }
  QUARRY_RETURN_NOT_OK(flow.AddNode(MakeNode(
      "load", OpType::kLoader, {{"table", "out"}, {"keys", keys}})));
  QUARRY_RETURN_NOT_OK(flow.AddEdge(prev, "load"));
  Executor executor(src, target);
  QUARRY_RETURN_NOT_OK(executor.Run(flow).status());
  QUARRY_ASSIGN_OR_RETURN(Table * out, target->GetTable("out"));
  return static_cast<const Table*>(out);
}

TEST(ExecutorTest, ExtractionAndLoadCopiesTable) {
  auto src = MakeTinySource();
  Database target("dw");
  auto out = RunPipeline(src.get(), &target, {});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ((*out)->num_rows(), 4u);
  EXPECT_EQ((*out)->schema().num_columns(), 4u);
}

TEST(ExecutorTest, SelectionFilters) {
  auto src = MakeTinySource();
  Database target("dw");
  auto out = RunPipeline(
      src.get(), &target,
      {MakeNode("sel", OpType::kSelection, {{"predicate", "qty >= 2"}})});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ((*out)->num_rows(), 2u);  // NULL qty row excluded too
}

TEST(ExecutorTest, ProjectionReordersColumns) {
  auto src = MakeTinySource();
  Database target("dw");
  auto out = RunPipeline(src.get(), &target,
                         {MakeNode("pr", OpType::kProjection,
                                   {{"columns", "price,product"}})});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ((*out)->schema().columns()[0].name, "price");
  EXPECT_EQ((*out)->schema().columns()[1].name, "product");
  EXPECT_EQ((*out)->rows()[0][1].as_string(), "a");
}

TEST(ExecutorTest, FunctionComputesDerivedColumn) {
  auto src = MakeTinySource();
  Database target("dw");
  auto out = RunPipeline(
      src.get(), &target,
      {MakeNode("fn", OpType::kFunction,
                {{"column", "amount"}, {"expr", "qty * price"}})});
  ASSERT_TRUE(out.ok()) << out.status();
  auto idx = (*out)->schema().ColumnIndex("amount");
  ASSERT_TRUE(idx.has_value());
  EXPECT_DOUBLE_EQ((*out)->rows()[0][*idx].as_double(), 20.0);
  EXPECT_TRUE((*out)->rows()[3][*idx].is_null());  // NULL qty propagates
}

TEST(ExecutorTest, AggregationComputesAllFunctions) {
  auto src = MakeTinySource();
  Database target("dw");
  auto out = RunPipeline(
      src.get(), &target,
      {MakeNode("ag", OpType::kAggregation,
                {{"group", "product"},
                 {"aggs",
                  "SUM(qty) AS total;AVG(price) AS avg_price;COUNT(*) AS n;"
                  "MIN(qty) AS lo;MAX(qty) AS hi;COUNT(qty) AS nq"}})});
  ASSERT_TRUE(out.ok()) << out.status();
  const Table& t = **out;
  ASSERT_EQ(t.num_rows(), 3u);
  // Row for product 'a': qty 2 and 1.
  auto pos = t.ScanEquals("product", Value::String("a"));
  ASSERT_EQ(pos.size(), 1u);
  const Row& a = t.rows()[pos[0]];
  EXPECT_EQ(a[1].as_int(), 3);             // SUM
  EXPECT_DOUBLE_EQ(a[2].as_double(), 10);  // AVG price
  EXPECT_EQ(a[3].as_int(), 2);             // COUNT(*)
  EXPECT_EQ(a[4].as_int(), 1);             // MIN
  EXPECT_EQ(a[5].as_int(), 2);             // MAX
  // Product 'c' has NULL qty: COUNT(qty)=0, SUM NULL.
  auto cpos = t.ScanEquals("product", Value::String("c"));
  ASSERT_EQ(cpos.size(), 1u);
  const Row& c = t.rows()[cpos[0]];
  EXPECT_TRUE(c[1].is_null());
  EXPECT_EQ(c[3].as_int(), 1);  // COUNT(*) counts the row
  EXPECT_EQ(c[6].as_int(), 0);  // COUNT(qty) skips NULL
}

TEST(ExecutorTest, SortOrdersRows) {
  auto src = MakeTinySource();
  Database target("dw");
  auto out = RunPipeline(src.get(), &target,
                         {MakeNode("so", OpType::kSort,
                                   {{"by", "qty"}, {"desc", "true"}})});
  ASSERT_TRUE(out.ok()) << out.status();
  // NULL sorts first ascending, so descending it is last.
  EXPECT_EQ((*out)->rows()[0][2].as_int(), 5);
  EXPECT_TRUE((*out)->rows()[3][2].is_null());
}

TEST(ExecutorTest, SurrogateKeyAssignsDenseIds) {
  auto src = MakeTinySource();
  Database target("dw");
  auto out = RunPipeline(src.get(), &target,
                         {MakeNode("sk", OpType::kSurrogateKey,
                                   {{"column", "pid"}, {"keys", "product"}})});
  ASSERT_TRUE(out.ok()) << out.status();
  auto idx = (*out)->schema().ColumnIndex("pid");
  ASSERT_TRUE(idx.has_value());
  // products a,b,a,c -> ids 1,2,1,3
  EXPECT_EQ((*out)->rows()[0][*idx].as_int(), 1);
  EXPECT_EQ((*out)->rows()[1][*idx].as_int(), 2);
  EXPECT_EQ((*out)->rows()[2][*idx].as_int(), 1);
  EXPECT_EQ((*out)->rows()[3][*idx].as_int(), 3);
}

TEST(ExecutorTest, InnerJoinMatchesAndDropsNulls) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow("j");
  ASSERT_TRUE(flow.AddNode(MakeNode("s", OpType::kDatastore,
                                    {{"table", "sales"}}))
                  .ok());
  ASSERT_TRUE(flow.AddNode(MakeNode("p", OpType::kDatastore,
                                    {{"table", "products"}}))
                  .ok());
  ASSERT_TRUE(flow.AddNode(MakeNode("j", OpType::kJoin,
                                    {{"left", "product"},
                                     {"right", "prod_name"}}))
                  .ok());
  ASSERT_TRUE(
      flow.AddNode(MakeNode("l", OpType::kLoader, {{"table", "out"}})).ok());
  ASSERT_TRUE(flow.AddEdge("s", "j").ok());
  ASSERT_TRUE(flow.AddEdge("p", "j").ok());
  ASSERT_TRUE(flow.AddEdge("j", "l").ok());
  Executor executor(src.get(), &target);
  auto report = executor.Run(flow);
  ASSERT_TRUE(report.ok()) << report.status();
  const Table& out = **target.GetTable("out");
  EXPECT_EQ(out.num_rows(), 3u);  // product 'c' has no match
  EXPECT_EQ(out.schema().num_columns(), 6u);
}

TEST(ExecutorTest, LeftJoinKeepsUnmatched) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow("j");
  ASSERT_TRUE(flow.AddNode(MakeNode("s", OpType::kDatastore,
                                    {{"table", "sales"}}))
                  .ok());
  ASSERT_TRUE(flow.AddNode(MakeNode("p", OpType::kDatastore,
                                    {{"table", "products"}}))
                  .ok());
  ASSERT_TRUE(flow.AddNode(MakeNode("j", OpType::kJoin,
                                    {{"left", "product"},
                                     {"right", "prod_name"},
                                     {"type", "left"}}))
                  .ok());
  ASSERT_TRUE(
      flow.AddNode(MakeNode("l", OpType::kLoader, {{"table", "out"}})).ok());
  ASSERT_TRUE(flow.AddEdge("s", "j").ok());
  ASSERT_TRUE(flow.AddEdge("p", "j").ok());
  ASSERT_TRUE(flow.AddEdge("j", "l").ok());
  Executor executor(src.get(), &target);
  ASSERT_TRUE(executor.Run(flow).ok());
  const Table& out = **target.GetTable("out");
  EXPECT_EQ(out.num_rows(), 4u);
  auto cpos = out.ScanEquals("product", Value::String("c"));
  ASSERT_EQ(cpos.size(), 1u);
  EXPECT_TRUE(out.rows()[cpos[0]][5].is_null());  // category NULL-padded
}

TEST(ExecutorTest, UnionConcatenates) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow("u");
  for (const char* id : {"a", "b"}) {
    ASSERT_TRUE(flow.AddNode(MakeNode(id, OpType::kDatastore,
                                      {{"table", "sales"}}))
                    .ok());
  }
  ASSERT_TRUE(flow.AddNode(MakeNode("u", OpType::kUnion, {})).ok());
  ASSERT_TRUE(
      flow.AddNode(MakeNode("l", OpType::kLoader, {{"table", "out"}})).ok());
  ASSERT_TRUE(flow.AddEdge("a", "u").ok());
  ASSERT_TRUE(flow.AddEdge("b", "u").ok());
  ASSERT_TRUE(flow.AddEdge("u", "l").ok());
  Executor executor(src.get(), &target);
  ASSERT_TRUE(executor.Run(flow).ok());
  EXPECT_EQ((*target.GetTable("out"))->num_rows(), 8u);
}

TEST(ExecutorTest, LoaderWithKeysIsIdempotent) {
  auto src = MakeTinySource();
  Database target("dw");
  auto out1 = RunPipeline(src.get(), &target, {}, "sales", "id");
  ASSERT_TRUE(out1.ok()) << out1.status();
  EXPECT_EQ((*out1)->num_rows(), 4u);
  // Re-running the same load writes nothing new.
  auto out2 = RunPipeline(src.get(), &target, {}, "sales", "id");
  ASSERT_TRUE(out2.ok()) << out2.status();
  EXPECT_EQ((*out2)->num_rows(), 4u);
}

TEST(ExecutorTest, DeltaLoadAfterSourceGrowth) {
  // Incremental refresh: re-running a flow after the source grew loads
  // only the new rows (keyed loaders skip/merge existing keys).
  auto src = MakeTinySource();
  Database target("dw");
  auto out1 = RunPipeline(src.get(), &target, {}, "sales", "id");
  ASSERT_TRUE(out1.ok());
  EXPECT_EQ((*out1)->num_rows(), 4u);
  storage::Table* sales = *src->GetTable("sales");
  ASSERT_TRUE(sales
                  ->Insert({Value::Int(5), Value::String("d"), Value::Int(9),
                            Value::Double(1.25)})
                  .ok());
  auto out2 = RunPipeline(src.get(), &target, {}, "sales", "id");
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ((*out2)->num_rows(), 5u);
  auto hits = (*out2)->ScanEquals("id", Value::Int(5));
  ASSERT_EQ(hits.size(), 1u);
}

TEST(ExecutorTest, EmptyLoadDefersTableCreation) {
  auto src = MakeTinySource();
  Database target("dw");
  // A selection that matches nothing: the loader must not create a
  // typeless table.
  auto out = RunPipeline(
      src.get(), &target,
      {MakeNode("sel", OpType::kSelection, {{"predicate", "qty > 999"}})},
      "sales", "id");
  EXPECT_TRUE(out.status().IsNotFound());  // "out" never created
  // A later non-empty load creates it with proper types.
  auto out2 = RunPipeline(src.get(), &target, {}, "sales", "id");
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ((*out2)->schema().columns()[0].type, storage::DataType::kInt64);
}

TEST(ExecutorTest, ReportCountsRowsAndLoads) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow("t");
  ASSERT_TRUE(flow.AddNode(MakeNode("ds", OpType::kDatastore,
                                    {{"table", "sales"}}))
                  .ok());
  ASSERT_TRUE(flow.AddNode(MakeNode("ex", OpType::kExtraction, {})).ok());
  ASSERT_TRUE(flow.AddNode(MakeNode("ld", OpType::kLoader,
                                    {{"table", "out"}}))
                  .ok());
  ASSERT_TRUE(flow.AddEdge("ds", "ex").ok());
  ASSERT_TRUE(flow.AddEdge("ex", "ld").ok());
  Executor executor(src.get(), &target);
  auto report = executor.Run(flow);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->loaded.at("out"), 4);
  EXPECT_EQ(report->nodes.size(), 3u);
  EXPECT_EQ(report->rows_processed, 8);  // 0 + 4 + 4
  EXPECT_GE(report->total_millis, 0.0);
}

TEST(ExecutorTest, ErrorsCarryNodeContext) {
  auto src = MakeTinySource();
  Database target("dw");
  auto out = RunPipeline(src.get(), &target,
                         {MakeNode("sel", OpType::kSelection,
                                   {{"predicate", "ghost > 1"}})});
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("sel"), std::string::npos);
}

// --- equivalence rules -------------------------------------------------------

TableColumns ColumnsOf(const Database& db) {
  TableColumns out;
  for (const std::string& name : db.TableNames()) {
    std::vector<std::string> cols;
    for (const storage::Column& c : (*db.GetTable(name))->schema().columns()) {
      cols.push_back(c.name);
    }
    out[name] = std::move(cols);
  }
  return out;
}

// Flow: lineitem x part join, selection on part columns above the join.
Flow MakeJoinWithLateSelection() {
  Flow flow("f");
  EXPECT_TRUE(flow.AddNode(MakeNode("dsl", OpType::kDatastore,
                                    {{"table", "lineitem"}}))
                  .ok());
  EXPECT_TRUE(flow.AddNode(MakeNode("dsp", OpType::kDatastore,
                                    {{"table", "part"}}))
                  .ok());
  EXPECT_TRUE(flow.AddNode(MakeNode("j", OpType::kJoin,
                                    {{"left", "l_partkey"},
                                     {"right", "p_partkey"}}))
                  .ok());
  EXPECT_TRUE(flow.AddNode(MakeNode("sel", OpType::kSelection,
                                    {{"predicate", "p_type = 'SMALL'"}}))
                  .ok());
  EXPECT_TRUE(flow.AddNode(MakeNode("ld", OpType::kLoader,
                                    {{"table", "out"}}))
                  .ok());
  EXPECT_TRUE(flow.AddEdge("dsl", "j").ok());
  EXPECT_TRUE(flow.AddEdge("dsp", "j").ok());
  EXPECT_TRUE(flow.AddEdge("j", "sel").ok());
  EXPECT_TRUE(flow.AddEdge("sel", "ld").ok());
  return flow;
}

TEST(EquivalenceTest, PushSelectionBelowJoin) {
  Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.001, 3}).ok());
  Flow flow = MakeJoinWithLateSelection();
  auto pushed = PushSelectionDown(&flow, ColumnsOf(src));
  ASSERT_TRUE(pushed.ok()) << pushed.status();
  EXPECT_TRUE(*pushed);
  // Selection now sits between dsp and the join.
  EXPECT_EQ(flow.Predecessors("sel"), (std::vector<std::string>{"dsp"}));
  EXPECT_EQ(flow.Successors("sel"), (std::vector<std::string>{"j"}));
  EXPECT_EQ(flow.Successors("j"), (std::vector<std::string>{"ld"}));
  // No second push possible.
  auto again = PushSelectionDown(&flow, ColumnsOf(src));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST(EquivalenceTest, PushPreservesResults) {
  Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.001, 3}).ok());
  Flow original = MakeJoinWithLateSelection();
  Flow rewritten = original.Clone();
  auto n = Normalize(&rewritten, ColumnsOf(src));
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_GE(*n, 1);

  Database t1("a"), t2("b");
  Executor e1(&src, &t1), e2(&src, &t2);
  auto r1 = e1.Run(original);
  auto r2 = e2.Run(rewritten);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  const Table& o1 = **t1.GetTable("out");
  const Table& o2 = **t2.GetTable("out");
  ASSERT_EQ(o1.num_rows(), o2.num_rows());
  // The rewritten flow processes fewer rows (the point of the rule).
  EXPECT_LT(r2->rows_processed, r1->rows_processed);
}

TEST(EquivalenceTest, CanonicalSelectionOrderConverges) {
  Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.001, 3}).ok());
  // Two flows applying the same two selections in opposite orders.
  auto make = [&](bool reversed) {
    Flow flow("f");
    EXPECT_TRUE(flow.AddNode(MakeNode("ds", OpType::kDatastore,
                                      {{"table", "lineitem"}}))
                    .ok());
    std::string p1 = "l_quantity > 10";
    std::string p2 = "l_discount < 0.05";
    if (reversed) std::swap(p1, p2);
    EXPECT_TRUE(flow.AddNode(MakeNode("s1", OpType::kSelection,
                                      {{"predicate", p1}}))
                    .ok());
    EXPECT_TRUE(flow.AddNode(MakeNode("s2", OpType::kSelection,
                                      {{"predicate", p2}}))
                    .ok());
    EXPECT_TRUE(flow.AddNode(MakeNode("ld", OpType::kLoader,
                                      {{"table", "out"}}))
                    .ok());
    EXPECT_TRUE(flow.AddEdge("ds", "s1").ok());
    EXPECT_TRUE(flow.AddEdge("s1", "s2").ok());
    EXPECT_TRUE(flow.AddEdge("s2", "ld").ok());
    return flow;
  };
  Flow a = make(false), b = make(true);
  ASSERT_TRUE(Normalize(&a, ColumnsOf(src)).ok());
  ASSERT_TRUE(Normalize(&b, ColumnsOf(src)).ok());
  // After normalization both s1 nodes carry the same predicate.
  EXPECT_EQ(a.GetNode("s1").value()->params.at("predicate"),
            b.GetNode("s1").value()->params.at("predicate"));
  EXPECT_EQ(a.GetNode("s2").value()->params.at("predicate"),
            b.GetNode("s2").value()->params.at("predicate"));
}

TEST(EquivalenceTest, MergeAdjacentSelectionsPreservesSemantics) {
  Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.001, 3}).ok());
  Flow flow("f");
  ASSERT_TRUE(flow.AddNode(MakeNode("ds", OpType::kDatastore,
                                    {{"table", "lineitem"}}))
                  .ok());
  ASSERT_TRUE(flow.AddNode(MakeNode("s1", OpType::kSelection,
                                    {{"predicate", "l_quantity > 10"}}))
                  .ok());
  ASSERT_TRUE(flow.AddNode(MakeNode("s2", OpType::kSelection,
                                    {{"predicate", "l_discount < 0.05"}}))
                  .ok());
  ASSERT_TRUE(flow.AddNode(MakeNode("ld", OpType::kLoader,
                                    {{"table", "out"}}))
                  .ok());
  ASSERT_TRUE(flow.AddEdge("ds", "s1").ok());
  ASSERT_TRUE(flow.AddEdge("s1", "s2").ok());
  ASSERT_TRUE(flow.AddEdge("s2", "ld").ok());

  Flow merged = flow.Clone();
  auto did = MergeAdjacentSelections(&merged);
  ASSERT_TRUE(did.ok()) << did.status();
  EXPECT_TRUE(*did);
  EXPECT_EQ(merged.num_nodes(), 3u);

  Database t1("a"), t2("b");
  ASSERT_TRUE(Executor(&src, &t1).Run(flow).ok());
  ASSERT_TRUE(Executor(&src, &t2).Run(merged).ok());
  EXPECT_EQ((*t1.GetTable("out"))->num_rows(),
            (*t2.GetTable("out"))->num_rows());
}

TEST(EquivalenceTest, RedundantProjectionRemoved) {
  Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.001, 3}).ok());
  Flow flow("f");
  ASSERT_TRUE(flow.AddNode(MakeNode("ds", OpType::kDatastore,
                                    {{"table", "part"}}))
                  .ok());
  ASSERT_TRUE(
      flow.AddNode(MakeNode(
              "pr", OpType::kProjection,
              {{"columns", "p_partkey,p_name,p_brand,p_type,p_retailprice"}}))
          .ok());
  ASSERT_TRUE(flow.AddNode(MakeNode("ld", OpType::kLoader,
                                    {{"table", "out"}}))
                  .ok());
  ASSERT_TRUE(flow.AddEdge("ds", "pr").ok());
  ASSERT_TRUE(flow.AddEdge("pr", "ld").ok());
  auto removed = RemoveRedundantProjection(&flow, ColumnsOf(src));
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_TRUE(*removed);
  EXPECT_FALSE(flow.HasNode("pr"));
  EXPECT_EQ(flow.Successors("ds"), (std::vector<std::string>{"ld"}));
}

TEST(EquivalenceTest, EarlyProjectionsPruneUnusedColumns) {
  Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.001, 3}).ok());
  Flow flow = MakeJoinWithLateSelection();
  auto inserted = InsertEarlyProjections(&flow, ColumnsOf(src));
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  // A pipeline aggregating two of lineitem's ten columns: the optimizer
  // must narrow right after the extraction.
  Flow narrow("n");
  ASSERT_TRUE(narrow.AddNode(MakeNode("ds", OpType::kDatastore,
                                      {{"table", "lineitem"}}))
                  .ok());
  ASSERT_TRUE(narrow.AddNode(MakeNode("ex", OpType::kExtraction,
                                      {{"table", "lineitem"}}))
                  .ok());
  ASSERT_TRUE(narrow.AddNode(MakeNode("ag", OpType::kAggregation,
                                      {{"group", "l_partkey"},
                                       {"aggs", "SUM(l_quantity) AS q"}}))
                  .ok());
  ASSERT_TRUE(
      narrow.AddNode(MakeNode("ld", OpType::kLoader, {{"table", "out"}}))
          .ok());
  ASSERT_TRUE(narrow.AddEdge("ds", "ex").ok());
  ASSERT_TRUE(narrow.AddEdge("ex", "ag").ok());
  ASSERT_TRUE(narrow.AddEdge("ag", "ld").ok());
  auto n = InsertEarlyProjections(&narrow, ColumnsOf(src));
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 1);
  EXPECT_TRUE(narrow.HasNode("EARLYPROJ_ex"));
  // The inserted projection keeps exactly the two needed columns.
  EXPECT_EQ(narrow.GetNode("EARLYPROJ_ex").value()->params.at("columns"),
            "l_partkey,l_quantity");
  // Idempotent.
  auto again = InsertEarlyProjections(&narrow, ColumnsOf(src));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0);
  // Semantics preserved.
  Database t1("a"), t2("b");
  Flow baseline("b");
  ASSERT_TRUE(baseline.AddNode(MakeNode("ds", OpType::kDatastore,
                                        {{"table", "lineitem"}}))
                  .ok());
  ASSERT_TRUE(baseline.AddNode(MakeNode("ex", OpType::kExtraction,
                                        {{"table", "lineitem"}}))
                  .ok());
  ASSERT_TRUE(baseline.AddNode(MakeNode("ag", OpType::kAggregation,
                                        {{"group", "l_partkey"},
                                         {"aggs",
                                          "SUM(l_quantity) AS q"}}))
                  .ok());
  ASSERT_TRUE(
      baseline.AddNode(MakeNode("ld", OpType::kLoader, {{"table", "out"}}))
          .ok());
  ASSERT_TRUE(baseline.AddEdge("ds", "ex").ok());
  ASSERT_TRUE(baseline.AddEdge("ex", "ag").ok());
  ASSERT_TRUE(baseline.AddEdge("ag", "ld").ok());
  ASSERT_TRUE(Executor(&src, &t1).Run(narrow).ok());
  ASSERT_TRUE(Executor(&src, &t2).Run(baseline).ok());
  EXPECT_EQ((*t1.GetTable("out"))->num_rows(),
            (*t2.GetTable("out"))->num_rows());
}

TEST(EquivalenceTest, EarlyProjectionsPreserveIntegratedFlowResults) {
  Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.002, 21}).ok());
  // Use a realistic interpreted flow via the join-with-selection shape.
  Flow flow = MakeJoinWithLateSelection();
  Flow optimized = flow.Clone();
  ASSERT_TRUE(quarry::etl::Normalize(&optimized, ColumnsOf(src)).ok());
  ASSERT_TRUE(InsertEarlyProjections(&optimized, ColumnsOf(src)).ok());
  Database t1("a"), t2("b");
  ASSERT_TRUE(Executor(&src, &t1).Run(flow).ok());
  ASSERT_TRUE(Executor(&src, &t2).Run(optimized).ok());
  EXPECT_EQ((*t1.GetTable("out"))->num_rows(),
            (*t2.GetTable("out"))->num_rows());
}

TEST(EquivalenceTest, CostModelAgreesWithMeasuredRowReduction) {
  // The configurable cost model must rank flow variants the same way the
  // engine measures them: the normalized (selection-pushed) flow is both
  // estimated and measured cheaper.
  Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.002, 13}).ok());
  std::map<std::string, int64_t> rows;
  for (const std::string& name : src.TableNames()) {
    rows[name] = static_cast<int64_t>((*src.GetTable(name))->num_rows());
  }
  Flow original = MakeJoinWithLateSelection();
  Flow normalized = original.Clone();
  ASSERT_TRUE(quarry::etl::Normalize(&normalized, ColumnsOf(src)).ok());

  auto est_original = EstimateCost(original, rows);
  auto est_normalized = EstimateCost(normalized, rows);
  ASSERT_TRUE(est_original.ok());
  ASSERT_TRUE(est_normalized.ok());
  EXPECT_LT(est_normalized->total_cost, est_original->total_cost);

  Database t1("a"), t2("b");
  auto run_original = Executor(&src, &t1).Run(original);
  auto run_normalized = Executor(&src, &t2).Run(normalized);
  ASSERT_TRUE(run_original.ok());
  ASSERT_TRUE(run_normalized.ok());
  EXPECT_LT(run_normalized->rows_processed, run_original->rows_processed);
  // Same prediction direction as measurement: the model is usable as the
  // integrator's quality factor.
}

TEST(EquivalenceTest, PushSkippedWhenJoinHasOtherConsumers) {
  Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.001, 3}).ok());
  Flow flow = MakeJoinWithLateSelection();
  // Attach a second consumer to the join: pushing would now change what the
  // other branch sees, so the rule must not fire on the join.
  ASSERT_TRUE(flow.AddNode(MakeNode("ld2", OpType::kLoader,
                                    {{"table", "out2"}}))
                  .ok());
  ASSERT_TRUE(flow.AddEdge("j", "ld2").ok());
  auto pushed = PushSelectionDown(&flow, ColumnsOf(src));
  ASSERT_TRUE(pushed.ok()) << pushed.status();
  EXPECT_FALSE(*pushed);
}

// ---------------------------------------------------------------------------
// Retry backoff determinism (docs/ROBUSTNESS.md: retries must be replayable).

TEST(RetryBackoffTest, SameSeedYieldsTheIdenticalDelaySequence) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_millis = 2.0;
  policy.max_backoff_millis = 50.0;
  policy.jitter_fraction = 0.4;
  policy.jitter_seed = 42;

  auto sequence = [&policy]() {
    Prng prng(policy.jitter_seed);
    std::vector<double> delays;
    for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
      delays.push_back(RetryBackoffMillis(policy, attempt, &prng));
    }
    return delays;
  };
  std::vector<double> first = sequence();
  ASSERT_EQ(first.size(), 9u);
  EXPECT_EQ(sequence(), first);  // bitwise-identical replay, not just close

  // A different seed must actually change the jittered delays.
  policy.jitter_seed = 43;
  EXPECT_NE(sequence(), first);
}

TEST(RetryBackoffTest, BoundsHoldThroughMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.base_backoff_millis = 3.0;
  policy.max_backoff_millis = 48.0;
  policy.jitter_fraction = 0.5;
  policy.jitter_seed = 7;

  Prng prng(policy.jitter_seed);
  double previous_cap = 0.0;
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    double delay = RetryBackoffMillis(policy, attempt, &prng);
    double cap = std::min(3.0 * std::pow(2.0, attempt - 1), 48.0);
    EXPECT_GE(delay, (1.0 - policy.jitter_fraction) * cap) << attempt;
    EXPECT_LE(delay, cap) << attempt;
    EXPECT_GE(cap, previous_cap);  // schedule never shrinks
    previous_cap = cap;
  }
  // Deep into the schedule the cap has saturated at max_backoff_millis.
  Prng tail(policy.jitter_seed);
  for (int attempt = 20; attempt < 24; ++attempt) {
    EXPECT_LE(RetryBackoffMillis(policy, attempt, &tail), 48.0);
  }
}

}  // namespace
}  // namespace quarry::etl
