# Empty dependencies file for quarry_datagen.
# This may be replaced when dependencies are built.
