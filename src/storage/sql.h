#ifndef QUARRY_STORAGE_SQL_H_
#define QUARRY_STORAGE_SQL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/database.h"

namespace quarry::storage {

/// \brief Outcome of executing a SQL script.
struct SqlExecutionReport {
  int statements = 0;
  int tables_created = 0;
  int tables_dropped = 0;
  int indexes_created = 0;
  int64_t rows_inserted = 0;
};

/// \brief Executes a PostgreSQL-flavoured DDL/DML script against `db`.
///
/// Supported statements (the subset the Design Deployer emits, Fig. 3,
/// plus INSERT for tests and examples):
///
///   CREATE DATABASE name;                      -- names the catalog
///   CREATE TABLE name (col TYPE [NOT NULL], ...,
///                      PRIMARY KEY (cols),
///                      FOREIGN KEY (cols) REFERENCES t (cols));
///   DROP TABLE [IF EXISTS] name;
///   CREATE INDEX name ON table (cols);
///   INSERT INTO table VALUES (lit, ...), (lit, ...);
///
/// Types: BIGINT, INT/INTEGER/SMALLINT, DOUBLE PRECISION, FLOAT, REAL,
/// NUMERIC/DECIMAL(p,s), VARCHAR(n), CHAR(n), TEXT, DATE, BOOLEAN.
/// Literals: numbers, 'strings' ('' escapes a quote), NULL, TRUE, FALSE,
/// DATE 'YYYY-MM-DD'.
///
/// Statements run transactionally per statement (a failed statement leaves
/// earlier statements applied and aborts the script).
Result<SqlExecutionReport> ExecuteSql(Database* db, std::string_view script);

/// Renders a TableSchema back to a CREATE TABLE statement (used by tests to
/// check DDL round-trips and by the deployer for reporting).
std::string SchemaToDdl(const TableSchema& schema);

}  // namespace quarry::storage

#endif  // QUARRY_STORAGE_SQL_H_
