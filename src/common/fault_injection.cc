#include "common/fault_injection.h"

#include "obs/metrics.h"

namespace quarry::fault {

namespace {

// Check() only reaches these while the injector is enabled (test/matrix
// runs), so the registry lookup per call is acceptable there.
void CountHit(const std::string& site) {
  obs::MetricsRegistry::Instance()
      .counter("quarry_fault_site_hits_total",
               "Times execution reached a QUARRY_FAULT_POINT while the "
               "injector was enabled",
               {{"site", site}})
      .Increment();
}

void CountFailure(const std::string& site) {
  obs::MetricsRegistry::Instance()
      .counter("quarry_fault_site_failures_total",
               "Faults actually injected at a site", {{"site", site}})
      .Increment();
}

}  // namespace

Injector& Injector::Instance() {
  static Injector* injector = new Injector();
  return *injector;
}

void Injector::Enable(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  prng_ = Prng(seed);
  states_.clear();
  failure_log_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Injector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void Injector::Configure(const std::string& site, SiteConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  configs_[site] = config;
}

void Injector::ClearConfigs() {
  std::lock_guard<std::mutex> lock(mu_);
  configs_.clear();
}

Status Injector::Check(std::string_view site) {
  if (!enabled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  std::string key(site);
  SiteState& state = states_[key];
  ++state.hits;
  CountHit(key);
  auto it = configs_.find(key);
  if (it == configs_.end()) return Status::OK();
  const SiteConfig& config = it->second;
  if (config.max_failures >= 0 && state.failures >= config.max_failures) {
    return Status::OK();
  }
  bool fire = false;
  if (config.trigger_on_hit > 0 && state.hits == config.trigger_on_hit) {
    fire = true;
  }
  if (config.fail_from_hit > 0 && state.hits >= config.fail_from_hit) {
    fire = true;
  }
  // The draw happens even when a hit trigger already fired so that the
  // PRNG consumption (and thus the failure sequence of *other* sites) does
  // not depend on which trigger matched here.
  if (config.probability > 0.0 && prng_.Chance(config.probability)) {
    fire = true;
  }
  if (!fire) return Status::OK();
  ++state.failures;
  CountFailure(key);
  failure_log_.push_back(key + "@" + std::to_string(state.hits));
  return Status::ExecutionError("injected fault at '" + key + "' (hit " +
                                std::to_string(state.hits) + ")");
}

std::vector<std::string> Injector::HitSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(states_.size());
  for (const auto& [site, state] : states_) out.push_back(site);
  return out;
}

int64_t Injector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(site);
  return it == states_.end() ? 0 : it->second.hits;
}

int64_t Injector::FailureCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(site);
  return it == states_.end() ? 0 : it->second.failures;
}

std::vector<std::string> Injector::FailureLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failure_log_;
}

Status Check(std::string_view site) {
  return Injector::Instance().Check(site);
}

}  // namespace quarry::fault
