file(REMOVE_RECURSE
  "CMakeFiles/analyst_session.dir/analyst_session.cpp.o"
  "CMakeFiles/analyst_session.dir/analyst_session.cpp.o.d"
  "analyst_session"
  "analyst_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyst_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
