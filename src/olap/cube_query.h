#ifndef QUARRY_OLAP_CUBE_QUERY_H_
#define QUARRY_OLAP_CUBE_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "etl/exec/executor.h"
#include "mdschema/md_schema.h"
#include "ontology/mapping.h"
#include "storage/database.h"

namespace quarry::olap {

/// One requested aggregate of a cube query.
struct QueryMeasure {
  std::string measure;            ///< Measure (= fact column) name.
  md::AggFunc function = md::AggFunc::kSum;
  std::string alias;              ///< Output column ("" -> measure name).
};

/// \brief A roll-up query over a deployed star schema (paper §2.4: after
/// deployment "the deployed design solutions are then available for
/// further user-preferred tunings and use").
///
/// The query names a fact, a set of dimension attributes to group by
/// (qualified as "<Dimension>.<Level>.<attribute>" or just the attribute
/// name when unambiguous), measures to aggregate, and optional filter
/// predicates over dimension attributes or fact columns (expression
/// syntax of etl::ParseExpr).
struct CubeQuery {
  std::string fact;
  std::vector<std::string> group_by;   ///< Dimension attribute names.
  std::vector<QueryMeasure> measures;
  std::vector<std::string> filters;    ///< Conjunctive predicates.
};

/// What a profiled Execute hands back besides the dataset: the executor's
/// raw per-node report plus the EXPLAIN ANALYZE plan tree built from the
/// *compiled* flow — so profile output names the real plan nodes
/// ("q_fact", "q_join_<concept>", "q_agg", ...), not a reconstruction.
struct QueryProfile {
  etl::ExecutionReport report;
  std::vector<obs::ProfileNode> plan;  ///< etl::BuildProfileTrees output.
};

/// \brief Compiles cube queries into ETL-engine plans over the warehouse.
///
/// The engine doubles as the query executor: a cube query becomes a flow of
/// Datastore/Join/Selection/Projection/Aggregation nodes over the deployed
/// tables (fact joined with the dimension tables providing the requested
/// attributes), executed by etl::Executor. This exercises exactly the
/// OLAP-style access path the paper's deployment scenario demonstrates.
class CubeQueryEngine {
 public:
  /// `schema` is the deployed MD schema; `mapping` resolves level concepts
  /// to dim-table keys; `warehouse` holds the deployed tables. All must
  /// outlive the engine.
  CubeQueryEngine(const md::MdSchema* schema,
                  const ontology::SourceMapping* mapping,
                  const storage::Database* warehouse)
      : schema_(schema), mapping_(mapping), warehouse_(warehouse) {}

  /// Runs the query; the result is an in-memory dataset (group columns in
  /// request order, then aggregates). `ctx` (nullable) carries the
  /// request's cancellation token / deadline / budgets into the executing
  /// flow exactly like every ETL run does (docs/ROBUSTNESS.md §7): each
  /// operator pre-checks it, row loops poll it every
  /// etl::Executor::kCancelBatchRows rows, and a lifecycle error
  /// (kCancelled / kDeadlineExceeded / kResourceExhausted) surfaces
  /// unretried — a long scan cannot outlive its request.
  ///
  /// `profile` (nullable) receives the executor's per-node stats and the
  /// EXPLAIN ANALYZE plan tree of the compiled flow; it is filled on
  /// success and on execution failure alike (compile failures leave it
  /// empty — there is no plan to report).
  Result<etl::Dataset> Execute(const CubeQuery& query,
                               const ExecContext* ctx = nullptr,
                               QueryProfile* profile = nullptr) const;

  /// The flow the query compiles to (exposed for tests / EXPLAIN).
  Result<etl::Flow> Compile(const CubeQuery& query) const;

 private:
  const md::MdSchema* schema_;
  const ontology::SourceMapping* mapping_;
  const storage::Database* warehouse_;
};

}  // namespace quarry::olap

#endif  // QUARRY_OLAP_CUBE_QUERY_H_
