#include "olap/cube_query.h"

#include <gtest/gtest.h>

#include <map>

#include "core/quarry.h"
#include "datagen/tpch.h"
#include "ontology/tpch_ontology.h"

namespace quarry::olap {
namespace {

using req::InformationRequirement;
using storage::Value;

class CubeQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(datagen::PopulateTpch(&src_, {0.005, 31}).ok());
    auto quarry = core::Quarry::Create(ontology::BuildTpchOntology(),
                                       ontology::BuildTpchMappings(), &src_);
    ASSERT_TRUE(quarry.ok()) << quarry.status();
    quarry_ = std::move(*quarry);
    InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_type"});
    ir.dimensions.push_back({"Supplier.s_name"});
    ASSERT_TRUE(quarry_->AddRequirement(ir).ok());
    ASSERT_TRUE(quarry_->Deploy(&warehouse_).ok());
    engine_ = std::make_unique<CubeQueryEngine>(
        &quarry_->schema(), &quarry_->mapping(), &warehouse_);
  }

  storage::Database src_;
  std::unique_ptr<core::Quarry> quarry_;
  storage::Database warehouse_;
  std::unique_ptr<CubeQueryEngine> engine_;
};

TEST_F(CubeQueryTest, RollUpByDimensionAttribute) {
  CubeQuery query;
  query.fact = "fact_table_revenue";
  query.group_by = {"p_type"};
  query.measures = {{"revenue", md::AggFunc::kSum, "total_revenue"}};
  auto result = engine_->Execute(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->columns,
            (std::vector<std::string>{"p_type", "total_revenue"}));
  // TPC-H part types: 5 distinct values.
  EXPECT_LE(result->rows.size(), 5u);
  EXPECT_GT(result->rows.size(), 0u);
  // The roll-up preserves the grand total.
  double rolled_up = 0;
  for (const storage::Row& row : result->rows) {
    rolled_up += row[1].as_double();
  }
  double fact_total = 0;
  const storage::Table& fact = **warehouse_.GetTable("fact_table_revenue");
  auto rev = *fact.schema().ColumnIndex("revenue");
  for (const storage::Row& row : fact.rows()) {
    fact_total += row[rev].as_double();
  }
  EXPECT_NEAR(rolled_up, fact_total, 1e-6 * std::abs(fact_total));
}

TEST_F(CubeQueryTest, GroupByFactColumnNeedsNoJoin) {
  CubeQuery query;
  query.fact = "fact_table_revenue";
  query.group_by = {"p_partkey"};  // fact-local (grain column)
  query.measures = {{"revenue", md::AggFunc::kSum, ""}};
  auto flow = engine_->Compile(query);
  ASSERT_TRUE(flow.ok()) << flow.status();
  for (const auto& [id, node] : flow->nodes()) {
    EXPECT_NE(node.type, etl::OpType::kJoin) << id;
  }
  auto result = engine_->Execute(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->rows.size(), 0u);
}

TEST_F(CubeQueryTest, SliceWithDimensionFilter) {
  CubeQuery all;
  all.fact = "fact_table_revenue";
  all.group_by = {"p_type"};
  all.measures = {{"revenue", md::AggFunc::kSum, ""}};
  auto unsliced = engine_->Execute(all);
  ASSERT_TRUE(unsliced.ok());

  CubeQuery sliced = all;
  sliced.filters = {"p_type = 'SMALL'"};
  auto result = engine_->Execute(sliced);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].as_string(), "SMALL");
  EXPECT_LT(result->rows.size(), unsliced->rows.size());
}

TEST_F(CubeQueryTest, MultipleMeasuresAndFunctions) {
  CubeQuery query;
  query.fact = "fact_table_revenue";
  query.group_by = {"p_type"};
  query.measures = {{"revenue", md::AggFunc::kSum, "sum_rev"},
                    {"revenue", md::AggFunc::kAvg, "avg_rev"},
                    {"revenue", md::AggFunc::kMax, "max_rev"},
                    {"revenue", md::AggFunc::kCount, "n"}};
  auto result = engine_->Execute(query);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->columns.size(), 5u);
  for (const storage::Row& row : result->rows) {
    double sum = row[1].as_double();
    double avg = row[2].as_double();
    double max = row[3].as_double();
    int64_t n = row[4].as_int();
    EXPECT_GT(n, 0);
    EXPECT_NEAR(avg, sum / static_cast<double>(n), 1e-9 * std::abs(sum));
    EXPECT_LE(avg, max + 1e-9);
  }
}

TEST_F(CubeQueryTest, TwoDimensionGroupBy) {
  CubeQuery query;
  query.fact = "fact_table_revenue";
  query.group_by = {"p_type", "s_name"};
  query.measures = {{"revenue", md::AggFunc::kSum, ""}};
  auto result = engine_->Execute(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->columns.size(), 3u);
  // Finer grain -> at least as many rows as the single-dim roll-up.
  CubeQuery coarse = query;
  coarse.group_by = {"p_type"};
  auto coarse_result = engine_->Execute(coarse);
  ASSERT_TRUE(coarse_result.ok());
  EXPECT_GE(result->rows.size(), coarse_result->rows.size());
}

TEST_F(CubeQueryTest, ErrorsAreDescriptive) {
  CubeQuery bad_fact;
  bad_fact.fact = "fact_ghost";
  bad_fact.measures = {{"revenue", md::AggFunc::kSum, ""}};
  EXPECT_TRUE(engine_->Execute(bad_fact).status().IsNotFound());

  CubeQuery bad_measure;
  bad_measure.fact = "fact_table_revenue";
  bad_measure.measures = {{"ghost", md::AggFunc::kSum, ""}};
  EXPECT_TRUE(engine_->Execute(bad_measure).status().IsNotFound());

  CubeQuery bad_column;
  bad_column.fact = "fact_table_revenue";
  bad_column.group_by = {"no_such_attribute"};
  bad_column.measures = {{"revenue", md::AggFunc::kSum, ""}};
  EXPECT_TRUE(engine_->Execute(bad_column).status().IsNotFound());

  CubeQuery no_measures;
  no_measures.fact = "fact_table_revenue";
  EXPECT_TRUE(engine_->Execute(no_measures).status().IsInvalidArgument());
}

TEST_F(CubeQueryTest, ResultMatchesDirectSourceComputation) {
  // Cross-check the whole pipeline: cube result == aggregating the source
  // tables directly (lineitem joined part on the fly).
  CubeQuery query;
  query.fact = "fact_table_revenue";
  query.group_by = {"p_type"};
  query.measures = {{"revenue", md::AggFunc::kSum, ""}};
  auto result = engine_->Execute(query);
  ASSERT_TRUE(result.ok());

  std::map<std::string, double> expected;
  const storage::Table& lineitem = **src_.GetTable("lineitem");
  const storage::Table& part = **src_.GetTable("part");
  std::map<int64_t, std::string> part_type;
  for (const storage::Row& row : part.rows()) {
    part_type[row[0].as_int()] = row[3].as_string();
  }
  auto li_part = *lineitem.schema().ColumnIndex("l_partkey");
  auto li_price = *lineitem.schema().ColumnIndex("l_extendedprice");
  auto li_disc = *lineitem.schema().ColumnIndex("l_discount");
  for (const storage::Row& row : lineitem.rows()) {
    expected[part_type.at(row[li_part].as_int())] +=
        row[li_price].as_double() * (1.0 - row[li_disc].as_double());
  }
  ASSERT_EQ(result->rows.size(), expected.size());
  for (const storage::Row& row : result->rows) {
    double want = expected.at(row[0].as_string());
    EXPECT_NEAR(row[1].as_double(), want, 1e-6 * std::abs(want))
        << row[0].as_string();
  }
}

}  // namespace
}  // namespace quarry::olap
