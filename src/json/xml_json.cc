#include "json/xml_json.h"

namespace quarry::json {

Value XmlToJson(const xml::Element& element) {
  Object obj;
  obj.emplace_back("tag", Value(element.name()));
  if (!element.attributes().empty()) {
    Object attrs;
    for (const auto& [k, v] : element.attributes()) {
      attrs.emplace_back(k, Value(v));
    }
    obj.emplace_back("attrs", Value(std::move(attrs)));
  }
  if (!element.text().empty()) {
    obj.emplace_back("text", Value(element.text()));
  }
  if (!element.children().empty()) {
    Array children;
    children.reserve(element.children().size());
    for (const auto& child : element.children()) {
      children.push_back(XmlToJson(*child));
    }
    obj.emplace_back("children", Value(std::move(children)));
  }
  return Value(std::move(obj));
}

Result<std::unique_ptr<xml::Element>> JsonToXml(const Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("XML-JSON value must be an object");
  }
  const Value* tag = value.Find("tag");
  if (tag == nullptr || !tag->is_string()) {
    return Status::InvalidArgument("XML-JSON object lacks a string 'tag'");
  }
  auto element = std::make_unique<xml::Element>(tag->as_string());
  if (const Value* attrs = value.Find("attrs"); attrs != nullptr) {
    if (!attrs->is_object()) {
      return Status::InvalidArgument("'attrs' must be an object");
    }
    for (const auto& [k, v] : attrs->as_object()) {
      if (!v.is_string()) {
        return Status::InvalidArgument("attribute '" + k +
                                       "' must be a string");
      }
      element->SetAttr(k, v.as_string());
    }
  }
  if (const Value* text = value.Find("text"); text != nullptr) {
    if (!text->is_string()) {
      return Status::InvalidArgument("'text' must be a string");
    }
    element->set_text(text->as_string());
  }
  if (const Value* children = value.Find("children"); children != nullptr) {
    if (!children->is_array()) {
      return Status::InvalidArgument("'children' must be an array");
    }
    for (const Value& child : children->as_array()) {
      QUARRY_ASSIGN_OR_RETURN(auto child_element, JsonToXml(child));
      element->Adopt(std::move(child_element));
    }
  }
  return element;
}

}  // namespace quarry::json
