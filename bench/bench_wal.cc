// Durability-layer benchmarks (docs/ROBUSTNESS.md §6, BENCH_durability.json):
// WAL append throughput with and without the per-record fsync, snapshot
// (checkpoint) cost as the collection grows, and cold-start recovery time as
// a function of the WAL length replayed over the last snapshot.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/wal.h"
#include "docstore/document_store.h"
#include "json/json.h"

namespace {

namespace fs = std::filesystem;

using quarry::docstore::DocumentStore;
using quarry::docstore::RecoveryStats;

std::string FreshDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

quarry::json::Value Doc(int64_t n, size_t payload_bytes) {
  quarry::json::Object doc;
  doc.emplace_back("n", quarry::json::Value(n));
  doc.emplace_back("payload",
                   quarry::json::Value(std::string(payload_bytes, 'x')));
  return quarry::json::Value(std::move(doc));
}

/// Append throughput without fsync: the raw framing + write(2) cost.
void BM_WalAppend(benchmark::State& state) {
  const size_t payload_size = static_cast<size_t>(state.range(0));
  std::string dir = FreshDir("quarry_bench_wal_append");
  auto writer = quarry::wal::Writer::Open(dir + "/bench.log");
  if (!writer.ok()) std::abort();
  const std::string payload(payload_size, 'q');
  for (auto _ : state) {
    if (!(*writer)->Append(payload).ok()) std::abort();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload_size));
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(1024)->Arg(8192);

/// The durable-acknowledgment path: one Append + one fsync per record, as
/// every DocumentStore mutation pays it.
void BM_WalAppendSync(benchmark::State& state) {
  const size_t payload_size = static_cast<size_t>(state.range(0));
  std::string dir = FreshDir("quarry_bench_wal_sync");
  auto writer = quarry::wal::Writer::Open(dir + "/bench.log");
  if (!writer.ok()) std::abort();
  const std::string payload(payload_size, 'q');
  for (auto _ : state) {
    if (!(*writer)->Append(payload).ok()) std::abort();
    if (!(*writer)->Sync().ok()) std::abort();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload_size));
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppendSync)->Arg(64)->Arg(1024)->Arg(8192);

/// Checkpoint (atomic snapshot + WAL rotation) cost vs collection size.
void BM_SnapshotCheckpoint(benchmark::State& state) {
  const int64_t docs = state.range(0);
  std::string dir = FreshDir("quarry_bench_snapshot");
  auto store = DocumentStore::Open(dir);
  if (!store.ok()) std::abort();
  for (int64_t i = 0; i < docs; ++i) {
    if (!store->GetOrCreate("bench")
             ->Upsert("doc-" + std::to_string(i), Doc(i, 128))
             .ok()) {
      std::abort();
    }
  }
  for (auto _ : state) {
    if (!store->SaveToDirectory(dir).ok()) std::abort();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * docs);
  fs::remove_all(dir);
}
BENCHMARK(BM_SnapshotCheckpoint)->Arg(100)->Arg(1000)->Arg(5000);

/// Cold-start recovery: reopen a durable directory whose WAL holds
/// `range(0)` unsnapshotted mutations; recovery replays them all.
void BM_ColdStartRecovery(benchmark::State& state) {
  const int64_t wal_records = state.range(0);
  std::string dir = FreshDir("quarry_bench_recovery");
  {
    auto store = DocumentStore::Open(dir);
    if (!store.ok()) std::abort();
    for (int64_t i = 0; i < wal_records; ++i) {
      if (!store->GetOrCreate("bench")
               ->Upsert("doc-" + std::to_string(i), Doc(i, 128))
               .ok()) {
        std::abort();
      }
    }
  }  // dies without a checkpoint: everything must come back from the WAL
  RecoveryStats stats;
  for (auto _ : state) {
    auto recovered = DocumentStore::LoadFromDirectory(dir, &stats);
    if (!recovered.ok()) std::abort();
    if (stats.wal_records_replayed < wal_records) std::abort();
    benchmark::DoNotOptimize(recovered->Fingerprint());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          stats.wal_records_replayed);
  fs::remove_all(dir);
}
BENCHMARK(BM_ColdStartRecovery)->Arg(100)->Arg(1000)->Arg(5000);

/// Recovery from a snapshot (rotated, empty WAL) for the same data volume —
/// the payoff of checkpointing, compared against BM_ColdStartRecovery.
void BM_ColdStartFromSnapshot(benchmark::State& state) {
  const int64_t docs = state.range(0);
  std::string dir = FreshDir("quarry_bench_recovery_snapshot");
  {
    auto store = DocumentStore::Open(dir);
    if (!store.ok()) std::abort();
    for (int64_t i = 0; i < docs; ++i) {
      if (!store->GetOrCreate("bench")
               ->Upsert("doc-" + std::to_string(i), Doc(i, 128))
               .ok()) {
        std::abort();
      }
    }
    if (!store->SaveToDirectory(dir).ok()) std::abort();
  }
  RecoveryStats stats;
  for (auto _ : state) {
    auto recovered = DocumentStore::LoadFromDirectory(dir, &stats);
    if (!recovered.ok()) std::abort();
    if (stats.wal_records_replayed != 0) std::abort();
    benchmark::DoNotOptimize(recovered->Fingerprint());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * docs);
  fs::remove_all(dir);
}
BENCHMARK(BM_ColdStartFromSnapshot)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Durability layer: WAL append/sync, checkpoint, recovery "
              "(docs/ROBUSTNESS.md §6)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
