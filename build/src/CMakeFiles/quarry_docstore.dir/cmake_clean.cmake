file(REMOVE_RECURSE
  "CMakeFiles/quarry_docstore.dir/docstore/document_store.cc.o"
  "CMakeFiles/quarry_docstore.dir/docstore/document_store.cc.o.d"
  "libquarry_docstore.a"
  "libquarry_docstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_docstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
