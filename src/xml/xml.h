#ifndef QUARRY_XML_XML_H_
#define QUARRY_XML_XML_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace quarry::xml {

/// \brief A node of an XML document tree.
///
/// Quarry's interchange formats (xRQ, xMD, xLM, ktr, and the ontology
/// serialization) are element-structured: character data only ever appears
/// as the sole content of a leaf element. The DOM therefore stores, per
/// element, an ordered list of child elements plus a single `text` string
/// accumulating the character data (including CDATA) that appears directly
/// inside the element.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;
  Element(Element&&) = default;
  Element& operator=(Element&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  /// Attributes in document order.
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  /// Sets (or overwrites) an attribute.
  void SetAttr(const std::string& key, std::string value);

  /// True if the attribute is present.
  bool HasAttr(const std::string& key) const;

  /// Attribute value, or `fallback` when absent.
  std::string AttrOr(const std::string& key, std::string fallback = "") const;

  /// Child elements in document order.
  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }

  /// Appends a child element and returns a handle to it.
  Element* AddChild(std::string name);

  /// Appends a child leaf element carrying only text.
  Element* AddTextChild(std::string name, std::string text);

  /// Adopts an existing element as the last child.
  Element* Adopt(std::unique_ptr<Element> child);

  /// First child with the given tag name, or nullptr.
  const Element* FirstChild(std::string_view name) const;
  Element* FirstChild(std::string_view name);

  /// All children with the given tag name, in document order.
  std::vector<const Element*> Children(std::string_view name) const;

  /// Text of the first child with the given tag name ("" when absent).
  std::string ChildText(std::string_view name) const;

  /// Number of elements in the subtree rooted here (including this one).
  size_t SubtreeSize() const;

  /// Deep copy.
  std::unique_ptr<Element> Clone() const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// \brief Structural limits enforced while parsing (docs/ROBUSTNESS.md §7).
///
/// Both parsers (XML here, JSON in json/json.h) refuse pathological inputs
/// — a "billion-tags" nesting bomb or an oversized upload — with a
/// structured kResourceExhausted instead of unbounded recursion or
/// allocation. The defaults are far above anything Quarry's interchange
/// formats produce; 0 disables a limit.
struct ParseLimits {
  size_t max_depth = 128;        ///< Deepest allowed element nesting.
  size_t max_input_bytes = 64u << 20;  ///< Largest accepted document.
};

/// \brief Parses an XML document and returns its root element.
///
/// Supports: the XML declaration, comments, CDATA sections, the five
/// predefined entities, and decimal/hex character references. DTDs and
/// processing instructions are skipped. Namespaces are kept verbatim in
/// tag/attribute names.
///
/// Malformed documents return kParseError; documents breaking `limits`
/// return kResourceExhausted.
Result<std::unique_ptr<Element>> Parse(std::string_view input,
                                       const ParseLimits& limits = {});

/// \brief Serializes a tree to text.
///
/// With `pretty` the output is indented two spaces per level; leaf elements
/// holding only text are kept on one line so the output matches the style of
/// the snippets in the Quarry paper.
std::string Write(const Element& root, bool pretty = true);

/// Escapes the five predefined XML entities in character data.
std::string EscapeText(std::string_view text);

/// True when the two trees are structurally identical (same names,
/// attributes, trimmed text and child sequence).
bool DeepEqual(const Element& a, const Element& b);

}  // namespace quarry::xml

#endif  // QUARRY_XML_XML_H_
