#include "json/json.h"

#include <gtest/gtest.h>

#include "common/prng.h"
#include "json/xml_json.h"
#include "xml/xml.h"

namespace quarry::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->as_bool());
  EXPECT_FALSE(Parse("false")->as_bool());
  EXPECT_EQ(Parse("42")->as_int(), 42);
  EXPECT_EQ(Parse("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(Parse("3.5")->as_double(), 3.5);
  EXPECT_DOUBLE_EQ(Parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, IntegerVsDoubleDistinction) {
  EXPECT_TRUE(Parse("10")->is_int());
  EXPECT_TRUE(Parse("10.0")->is_double());
  EXPECT_DOUBLE_EQ(Parse("10")->as_double(), 10.0);
}

TEST(JsonParseTest, NestedStructure) {
  auto r = Parse(R"({"kind":"xmd","ids":[1,2,3],"meta":{"ok":true}})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->GetString("kind"), "xmd");
  const Value* ids = r->Find("ids");
  ASSERT_NE(ids, nullptr);
  ASSERT_EQ(ids->as_array().size(), 3u);
  EXPECT_EQ(ids->as_array()[2].as_int(), 3);
  const Value* meta = r->Find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_TRUE(meta->Find("ok")->as_bool());
}

TEST(JsonParseTest, StringEscapes) {
  auto r = Parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParseTest, Errors) {
  EXPECT_TRUE(Parse("").status().IsParseError());
  EXPECT_TRUE(Parse("{").status().IsParseError());
  EXPECT_TRUE(Parse("[1,]").status().IsParseError());
  EXPECT_TRUE(Parse("{\"a\":1,}").status().IsParseError());
  EXPECT_TRUE(Parse("\"unterminated").status().IsParseError());
  EXPECT_TRUE(Parse("tru").status().IsParseError());
  EXPECT_TRUE(Parse("1 2").status().IsParseError());
}

TEST(JsonWriteTest, CompactOutput) {
  Object obj;
  obj.emplace_back("a", Value(1));
  obj.emplace_back("b", Value(Array{Value(true), Value(nullptr)}));
  EXPECT_EQ(Write(Value(std::move(obj))), R"({"a":1,"b":[true,null]})");
}

TEST(JsonWriteTest, PreservesKeyOrder) {
  auto v = Parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(Write(*v), R"({"z":1,"a":2,"m":3})");
}

TEST(JsonWriteTest, EscapesControlCharacters) {
  std::string out = Write(Value(std::string("line1\nline2\x01")));
  EXPECT_EQ(out, "\"line1\\nline2\\u0001\"");
}

TEST(JsonValueTest, SetOverwritesAndAppends) {
  Value v;
  v.Set("a", Value(1));
  v.Set("b", Value(2));
  v.Set("a", Value(3));
  EXPECT_EQ(v.as_object().size(), 2u);
  EXPECT_EQ(v.Find("a")->as_int(), 3);
}

TEST(JsonRoundtripTest, ParseWriteParseIsStable) {
  const char* doc =
      R"({"_id":"ir-1","kind":"xrq","doc":{"tag":"cube","children":[)"
      R"({"tag":"measures","text":"revenue"}]},"n":-12,"d":0.25})";
  auto v1 = Parse(doc);
  ASSERT_TRUE(v1.ok()) << v1.status();
  std::string w1 = Write(*v1);
  auto v2 = Parse(w1);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v1, *v2);
  EXPECT_EQ(w1, Write(*v2));
}

TEST(XmlJsonBridgeTest, SimpleConversion) {
  auto root = xml::Parse("<cube id=\"c1\"><measures>revenue</measures></cube>");
  ASSERT_TRUE(root.ok());
  Value v = XmlToJson(**root);
  EXPECT_EQ(v.GetString("tag"), "cube");
  EXPECT_EQ(v.Find("attrs")->GetString("id"), "c1");
  auto back = JsonToXml(v);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(xml::DeepEqual(**root, **back));
}

TEST(XmlJsonBridgeTest, RejectsMalformedValues) {
  EXPECT_TRUE(JsonToXml(Value(1)).status().IsInvalidArgument());
  EXPECT_TRUE(JsonToXml(*Parse(R"({"noTag":1})")).status().IsInvalidArgument());
  EXPECT_TRUE(
      JsonToXml(*Parse(R"({"tag":"a","attrs":{"k":1}})")).status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      JsonToXml(*Parse(R"({"tag":"a","children":{}})")).status()
          .IsInvalidArgument());
}

// Property: random XML trees survive XML -> JSON -> XML (the paper's
// "generic XML-JSON-XML parser" guarantee for the metadata repository).
class XmlJsonRoundtripProperty : public ::testing::TestWithParam<uint64_t> {};

void BuildRandomTree(quarry::Prng* rng, int depth, xml::Element* node) {
  int attrs = static_cast<int>(rng->Uniform(0, 2));
  for (int i = 0; i < attrs; ++i) {
    node->SetAttr("a" + std::to_string(i), rng->Word(6));
  }
  if (depth >= 3 || rng->Chance(0.4)) {
    node->set_text(rng->Word(10));
    return;
  }
  int kids = static_cast<int>(rng->Uniform(1, 3));
  for (int i = 0; i < kids; ++i) {
    BuildRandomTree(rng, depth + 1, node->AddChild("tag" + rng->Word(3)));
  }
}

TEST_P(XmlJsonRoundtripProperty, TreeSurvivesBridge) {
  quarry::Prng rng(GetParam() * 977 + 13);
  xml::Element root("root");
  BuildRandomTree(&rng, 0, &root);
  Value mid = XmlToJson(root);
  // The JSON leg itself must round-trip through text.
  auto reparsed = Parse(Write(mid));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(mid, *reparsed);
  auto back = JsonToXml(*reparsed);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(xml::DeepEqual(root, **back));
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlJsonRoundtripProperty,
                         ::testing::Range<uint64_t>(0, 25));

// ---- hostile-input hardening (ParseLimits) --------------------------------

TEST(JsonLimitsTest, DeepNestingBombIsRefusedNotOverflowed) {
  // 100k unclosed arrays would blow the stack in a naive recursive
  // parser; the depth limit turns it into a structured error.
  std::string bomb(100000, '[');
  auto parsed = json::Parse(bomb);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsResourceExhausted()) << parsed.status();
  EXPECT_NE(parsed.status().message().find("depth"), std::string::npos);
}

TEST(JsonLimitsTest, DepthJustUnderTheLimitParses) {
  ParseLimits limits;
  limits.max_depth = 8;
  std::string doc = std::string(8, '[') + std::string(8, ']');
  EXPECT_TRUE(json::Parse(doc, limits).ok());
  auto over = json::Parse("[" + doc + "]", limits);
  ASSERT_FALSE(over.ok());
  EXPECT_TRUE(over.status().IsResourceExhausted()) << over.status();
}

TEST(JsonLimitsTest, MixedObjectArrayNestingCountsBoth) {
  ParseLimits limits;
  limits.max_depth = 4;
  EXPECT_TRUE(json::Parse(R"({"a":[{"b":1}]})", limits).ok());
  auto over = json::Parse(R"({"a":[{"b":[{"c":1}]}]})", limits);
  ASSERT_FALSE(over.ok());
  EXPECT_TRUE(over.status().IsResourceExhausted()) << over.status();
}

TEST(JsonLimitsTest, OversizedInputIsRefusedUpfront) {
  ParseLimits limits;
  limits.max_input_bytes = 8;
  auto parsed = json::Parse(R"({"key": "far past eight bytes"})", limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsResourceExhausted()) << parsed.status();
  EXPECT_TRUE(json::Parse("[1,2]", limits).ok());
}

TEST(JsonLimitsTest, TruncatedDocumentIsAParseError) {
  for (const char* doc : {"{\"a\": 1", "[1, 2", "\"unterminated", "{\"a\":"}) {
    auto parsed = json::Parse(doc);
    ASSERT_FALSE(parsed.ok()) << doc;
    EXPECT_TRUE(parsed.status().IsParseError()) << parsed.status();
  }
}

}  // namespace
}  // namespace quarry::json
