// Observability demo: watch a full IR -> deploy lifecycle through the
// tracing + metrics layer (docs/OBSERVABILITY.md).
//
// Runs the retail domain end to end with the span recorder on, then shows
// the three views the obs layer gives you: the recorded span tree (what a
// trace viewer would render), a few headline metrics, and the exported
// telemetry files (trace.json for Perfetto / chrome://tracing,
// metrics.prom for Prometheus tooling, metrics.json for scripts).
//
// For the table-formatted per-stage report, see tools/trace_report.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/quarry.h"
#include "datagen/retail.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using quarry::core::Quarry;
using quarry::obs::MetricsRegistry;
using quarry::obs::SpanRecord;
using quarry::obs::TraceRecorder;

int Fail(const quarry::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp/quarry_telemetry";

  // Source + semantic layers, as in the other examples.
  quarry::storage::Database source("retail");
  quarry::datagen::RetailConfig config;
  config.scale_factor = 0.01;
  if (auto s = quarry::datagen::PopulateRetail(&source, config); !s.ok()) {
    return Fail(s);
  }
  auto q = Quarry::Create(quarry::datagen::BuildRetailOntology(),
                          quarry::datagen::BuildRetailMappings(), &source);
  if (!q.ok()) return Fail(q.status());

  // Everything from here on is recorded.
  Quarry::Telemetry().StartTracing();

  auto outcome = (*q)->AddRequirementFromQuery(
      "ANALYZE turnover ON Sale "
      "MEASURE turnover = Sale.sl_amount * (1 - Sale.sl_discount) SUM "
      "BY Product.pr_category, Store.st_city "
      "WHERE Customer.cu_segment = 'LOYALTY'");
  if (!outcome.ok()) return Fail(outcome.status());

  quarry::storage::Database warehouse("dw");
  auto report = (*q)->DeployResilient(&warehouse);
  if (!report.ok()) return Fail(report.status());
  if (!report->success) {
    std::cerr << "deployment did not commit\n";
    return 1;
  }

  Quarry::Telemetry().StopTracing();

  // View 1: the span tree. Spans carry a per-thread nesting depth, so the
  // indentation below is exactly what Perfetto renders as nested tracks.
  std::vector<SpanRecord> spans = TraceRecorder::Instance().Snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  std::printf("-- trace: %zu spans --\n", spans.size());
  for (const SpanRecord& span : spans) {
    std::printf("%*s%-*s %9.1f us\n", 2 * span.depth, "",
                40 - 2 * static_cast<int>(span.depth), span.name.c_str(),
                span.dur_us);
  }

  // View 2: a few headline metrics, straight from the registry.
  MetricsRegistry& reg = MetricsRegistry::Instance();
  std::printf("\n-- metrics (excerpt of %zu families) --\n",
              reg.FamilyNames().size());
  std::printf("rows into operators : %lld\n",
              static_cast<long long>(
                  reg.counter("quarry_etl_rows_in_total").value()));
  std::printf("rows out of operators: %lld\n",
              static_cast<long long>(
                  reg.counter("quarry_etl_rows_out_total").value()));
  std::printf("design complexity    : %.0f (naive union %.0f)\n",
              reg.gauge("quarry_integrator_md_complexity").value(),
              reg.gauge("quarry_integrator_md_complexity_naive_union")
                  .value());
  std::printf("deploys committed    : %lld\n",
              static_cast<long long>(
                  reg.counter("quarry_deploy_success_total").value()));

  // View 3: exported files.
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (auto s = Quarry::Telemetry().WriteTo(out_dir); !s.ok()) return Fail(s);
  std::printf(
      "\nwrote %s/{trace.json,metrics.prom,metrics.json}\n"
      "open trace.json at https://ui.perfetto.dev (or chrome://tracing)\n",
      out_dir.c_str());
  return 0;
}
