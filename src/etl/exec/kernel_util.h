#ifndef QUARRY_ETL_EXEC_KERNEL_UTIL_H_
#define QUARRY_ETL_EXEC_KERNEL_UTIL_H_

// Internal helpers shared by the row-at-a-time operator kernels
// (executor.cc) and the vectorized chunk kernels (vectorized.cc). Both
// modes must agree exactly — the aggregation accumulate/finalize logic in
// particular lives here so SUM's int/double widening, first-seen group
// order and NULL handling cannot drift apart between them.

#include <algorithm>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/str_util.h"
#include "etl/flow.h"
#include "storage/value.h"

namespace quarry::etl::kernel {

inline std::vector<std::string> SplitNonEmpty(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& part : Split(text, ',')) {
    std::string trimmed(Trim(part));
    if (!trimmed.empty()) out.push_back(std::move(trimmed));
  }
  return out;
}

inline Result<std::vector<size_t>> ColumnPositions(
    const std::vector<std::string>& columns,
    const std::vector<std::string>& wanted, const std::string& node_id) {
  std::vector<size_t> out;
  out.reserve(wanted.size());
  for (const std::string& name : wanted) {
    auto it = std::find(columns.begin(), columns.end(), name);
    if (it == columns.end()) {
      return Status::ExecutionError("node '" + node_id +
                                    "': unknown column '" + name + "'");
    }
    out.push_back(static_cast<size_t>(it - columns.begin()));
  }
  return out;
}

struct RowKeyHash {
  size_t operator()(const storage::Row& r) const {
    return storage::HashRow(r);
  }
};
struct RowKeyEq {
  bool operator()(const storage::Row& a, const storage::Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].SameAs(b[i])) return false;
    }
    return true;
  }
};

inline storage::Row ExtractKey(const storage::Row& row,
                               const std::vector<size_t>& positions) {
  storage::Row key;
  key.reserve(positions.size());
  for (size_t p : positions) key.push_back(row[p]);
  return key;
}

inline std::string Param(const Node& node, const std::string& key) {
  auto it = node.params.find(key);
  return it == node.params.end() ? "" : it->second;
}

/// Running state of one aggregate.
struct AggState {
  double sum = 0;
  int64_t int_sum = 0;
  bool all_int = true;
  bool any = false;
  int64_t count = 0;
  storage::Value min, max;
};

/// Folds one COUNT(*) observation.
inline void AccumulateAggStar(AggState* st) {
  ++st->count;
  st->any = true;
}

/// Folds one column value; NULLs are skipped per SQL aggregate semantics.
inline void AccumulateAgg(AggState* st, const storage::Value& v) {
  if (v.is_null()) return;
  ++st->count;
  if (v.is_numeric()) {
    st->sum += v.as_double();
    if (v.is_int()) {
      st->int_sum += v.as_int();
    } else {
      st->all_int = false;
    }
  }
  if (!st->any || v.Compare(st->min) < 0) st->min = v;
  if (!st->any || v.Compare(st->max) > 0) st->max = v;
  st->any = true;
}

/// The aggregate's output value: COUNT of an empty group is 0, every other
/// function NULLs out; SUM stays INT while every input was INT.
inline storage::Value FinalizeAgg(const std::string& function,
                                  const AggState& st) {
  using storage::Value;
  if (function == "COUNT") return Value::Int(st.count);
  if (!st.any) return Value::Null();
  if (function == "SUM") {
    return st.all_int ? Value::Int(st.int_sum) : Value::Double(st.sum);
  }
  if (function == "AVG") {
    return Value::Double(st.sum / static_cast<double>(st.count));
  }
  if (function == "MIN") return st.min;
  return st.max;
}

}  // namespace quarry::etl::kernel

#endif  // QUARRY_ETL_EXEC_KERNEL_UTIL_H_
