// Experiment S2b (EXPERIMENTS.md): the paper's headline ETL quality factor
// — "the benefits of integrated DW design solutions (e.g., reduced overall
// execution time for integrated ETL processes)" (paper §3, scenario 2).
//
// For a stream of N requirements with low/high source overlap, we compare
// executing each requirement's ETL flow separately against executing the
// unified flow produced by the ETL Process Integrator, on the embedded
// engine over TPC-H data. Reported: measured wall time, rows processed
// (the engine-level work metric), the cost model's estimates, and speedup.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "common/timer.h"
#include "datagen/tpch.h"
#include "etl/equivalence.h"
#include "etl/exec/executor.h"
#include "integrator/etl_integrator.h"
#include "interpreter/interpreter.h"
#include "ontology/tpch_ontology.h"
#include "requirements/workload.h"

namespace {

using quarry::etl::Executor;
using quarry::etl::Flow;
using quarry::integrator::EtlIntegrator;
using quarry::interpreter::Interpreter;

struct Env {
  quarry::storage::Database source;
  quarry::ontology::Ontology onto = quarry::ontology::BuildTpchOntology();
  quarry::ontology::SourceMapping mapping =
      quarry::ontology::BuildTpchMappings();
  quarry::etl::TableColumns columns;
  std::map<std::string, int64_t> rows;

  explicit Env(double sf) {
    auto s = quarry::datagen::PopulateTpch(&source, {sf, 1234});
    if (!s.ok()) std::abort();
    for (const std::string& name : source.TableNames()) {
      std::vector<std::string> cols;
      for (const auto& c : (*source.GetTable(name))->schema().columns()) {
        cols.push_back(c.name);
      }
      columns[name] = cols;
      rows[name] = static_cast<int64_t>((*source.GetTable(name))->num_rows());
    }
  }
};

Env& SharedEnv() {
  static Env* env = new Env(0.01);
  return *env;
}

std::vector<Flow> InterpretWorkload(const Env& env, int n, double overlap) {
  Interpreter interpreter(&env.onto, &env.mapping);
  quarry::req::WorkloadConfig config;
  config.num_requirements = n;
  config.overlap = overlap;
  config.seed = 99;
  std::vector<Flow> flows;
  for (const auto& ir : quarry::req::GenerateTpchWorkload(config)) {
    auto design = interpreter.Interpret(ir);
    if (!design.ok()) std::abort();
    flows.push_back(std::move(design->flow));
  }
  return flows;
}

void PrintSeries() {
  Env& env = SharedEnv();
  std::printf(
      "S2b: overall ETL execution time, integrated vs separate "
      "(TPC-H sf=0.01)\n");
  std::printf("%7s %4s | %12s %12s %8s | %12s %12s | %10s %10s\n", "overlap",
              "N", "sep_ms", "unif_ms", "speedup", "sep_rows", "unif_rows",
              "est_sep", "est_unif");
  for (double overlap : {0.2, 0.8}) {
    for (int n : {2, 4, 6, 8}) {
      std::vector<Flow> flows = InterpretWorkload(env, n, overlap);
      EtlIntegrator integrator(env.columns, env.rows);
      Flow unified("unified");
      double est_sep = 0, est_unif = 0;
      for (const Flow& flow : flows) {
        auto report = integrator.Integrate(&unified, flow);
        if (!report.ok()) std::abort();
        est_sep = report->cost_separate;
        est_unif = report->cost_unified;
      }
      // Median of three runs each: wall time on a shared 1-core box is
      // noisy and a single outlier would misstate the comparison.
      auto median3 = [](double a, double b, double c) {
        return std::max(std::min(a, b), std::min(std::max(a, b), c));
      };
      double sep_samples[3];
      int64_t sep_rows = 0;
      for (double& sample : sep_samples) {
        quarry::Timer t_sep;
        quarry::storage::Database dw("sep");
        sep_rows = 0;
        for (const Flow& flow : flows) {
          auto report = Executor(&env.source, &dw).Run(flow);
          if (!report.ok()) std::abort();
          sep_rows += report->rows_processed;
        }
        sample = t_sep.ElapsedMillis();
      }
      double sep_ms = median3(sep_samples[0], sep_samples[1],
                              sep_samples[2]);
      double unif_samples[3];
      int64_t unif_rows = 0;
      for (double& sample : unif_samples) {
        quarry::Timer t_unif;
        quarry::storage::Database dw("unif");
        auto report = Executor(&env.source, &dw).Run(unified);
        if (!report.ok()) std::abort();
        unif_rows = report->rows_processed;
        sample = t_unif.ElapsedMillis();
      }
      double unif_ms = median3(unif_samples[0], unif_samples[1],
                               unif_samples[2]);
      std::printf(
          "%7.1f %4d | %12.1f %12.1f %7.2fx | %12lld %12lld | %10.0f "
          "%10.0f\n",
          overlap, n, sep_ms, unif_ms, sep_ms / unif_ms,
          static_cast<long long>(sep_rows), static_cast<long long>(unif_rows),
          est_sep, est_unif);
    }
  }
  std::printf("\n");
}

void BM_IntegrateOneFlow(benchmark::State& state) {
  Env& env = SharedEnv();
  std::vector<Flow> flows =
      InterpretWorkload(env, static_cast<int>(state.range(0)), 0.8);
  for (auto _ : state) {
    EtlIntegrator integrator(env.columns, env.rows);
    Flow unified("unified");
    for (const Flow& flow : flows) {
      auto report = integrator.Integrate(&unified, flow);
      if (!report.ok()) std::abort();
      benchmark::DoNotOptimize(report->nodes_reused);
    }
    state.counters["unified_nodes"] =
        static_cast<double>(unified.num_nodes());
  }
}
BENCHMARK(BM_IntegrateOneFlow)->Arg(2)->Arg(4)->Arg(8);

void BM_NormalizePartialFlow(benchmark::State& state) {
  Env& env = SharedEnv();
  std::vector<Flow> flows = InterpretWorkload(env, 1, 0.5);
  for (auto _ : state) {
    Flow copy = flows[0].Clone();
    auto rewrites = quarry::etl::Normalize(&copy, env.columns);
    if (!rewrites.ok()) std::abort();
    benchmark::DoNotOptimize(*rewrites);
  }
}
BENCHMARK(BM_NormalizePartialFlow);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
