#ifndef QUARRY_CORE_TENANT_H_
#define QUARRY_CORE_TENANT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"

namespace quarry::obs {
class Counter;
class Gauge;
}  // namespace quarry::obs

namespace quarry::core {

/// \brief Per-tenant admission quota (docs/ROBUSTNESS.md §11).
///
/// Zero-valued knobs disable the corresponding limit, so a registered
/// tenant with a default quota only gains a priority class and accounting.
struct TenantQuota {
  /// Scheduling class stamped onto every admitted request's ExecContext;
  /// the admission lanes use it for weighted-fair ordering.
  Priority priority = Priority::kNormal;
  /// Token-bucket refill rate in requests/second. 0 = unlimited.
  double rate_per_sec = 0.0;
  /// Bucket capacity (burst allowance). <= 0 derives max(rate_per_sec, 1).
  double burst = 0.0;
  /// Concurrent requests this tenant may hold across all lanes. 0 =
  /// unlimited.
  int max_in_flight = 0;
  /// Circuit breaker: consecutive server-side failures that trip the
  /// breaker open. 0 disables the breaker.
  int breaker_failure_threshold = 0;
  /// How long a tripped breaker sheds this tenant before probing again.
  double breaker_cooldown_millis = 1000.0;
  /// Concurrent trial requests allowed through a half-open breaker.
  int breaker_half_open_probes = 1;
};

/// Circuit-breaker state of one tenant (docs/ROBUSTNESS.md §11).
enum class BreakerState : int {
  kClosed = 0,    ///< Healthy; requests flow, failures are counted.
  kHalfOpen = 1,  ///< Probing: a bounded number of trial requests pass.
  kOpen = 2,      ///< Tripped: everything sheds until the cooldown elapses.
};

const char* BreakerStateName(BreakerState state);

/// Point-in-time view of one tenant for /tenantz and tests.
struct TenantStatus {
  std::string id;
  TenantQuota quota;
  double tokens = 0.0;   ///< Current token-bucket fill.
  int in_flight = 0;     ///< Leases currently held.
  int64_t requests_total = 0;
  int64_t admitted_total = 0;
  int64_t shed_rate_total = 0;
  int64_t shed_in_flight_total = 0;
  int64_t shed_breaker_total = 0;
  BreakerState breaker = BreakerState::kClosed;
  double breaker_open_remaining_millis = 0.0;  ///< > 0 only while open.
  int consecutive_failures = 0;
  int64_t breaker_trips_total = 0;
};

/// \brief Multi-tenant admission gate: token-bucket rate limits, in-flight
/// shares, priority classes and a per-tenant circuit breaker
/// (docs/ROBUSTNESS.md §11).
///
/// Sits in front of the lane AdmissionControllers: every Quarry entry point
/// asks the registry first, so one flooding tenant burns its own quota —
/// shed with kOverloaded + a retry-after hint — before it can touch the
/// shared lanes. Requests without a tenant id, or with an unregistered one,
/// pass through ungated (single-tenant deployments pay nothing).
///
/// The breaker watches each tenant's own outcomes: server-side failures
/// (execution/internal errors, deadline and budget blowups) trip it open
/// after `breaker_failure_threshold` consecutive hits; after the cooldown
/// it half-opens and lets `breaker_half_open_probes` trials through — one
/// success closes it, one failure re-opens it. Sheds and cancellations are
/// neutral: they neither trip nor heal the breaker.
class TenantRegistry {
 public:
  struct TenantState;

  /// \brief One admitted request's hold on its tenant's quota. Move-only.
  ///
  /// Complete(status) releases the in-flight share and feeds the breaker
  /// with the request outcome; destroying an uncompleted lease releases
  /// with a neutral outcome (no breaker effect).
  class Lease {
   public:
    Lease() = default;
    ~Lease() { Finish(nullptr); }
    Lease(Lease&& other) noexcept
        : registry_(other.registry_), state_(other.state_),
          probe_(other.probe_) {
      other.registry_ = nullptr;
      other.state_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Finish(nullptr);
        registry_ = other.registry_;
        state_ = other.state_;
        probe_ = other.probe_;
        other.registry_ = nullptr;
        other.state_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    /// True when this lease actually holds tenant quota (false for the
    /// pass-through lease untenanted requests get).
    bool held() const { return registry_ != nullptr; }

    /// Reports the request outcome and releases the quota; idempotent.
    void Complete(const Status& status) { Finish(&status); }

   private:
    friend class TenantRegistry;
    Lease(TenantRegistry* registry, TenantState* state)
        : registry_(registry), state_(state) {}
    void Finish(const Status* status);
    TenantRegistry* registry_ = nullptr;
    TenantState* state_ = nullptr;
    bool probe_ = false;  ///< This lease is a half-open breaker probe.
  };

  TenantRegistry();
  ~TenantRegistry();
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Registers (or reconfigures) a tenant. Reconfiguring keeps the tenant's
  /// accounting and breaker state but applies the new limits.
  Status Register(const std::string& id, const TenantQuota& quota);

  bool Has(const std::string& id) const;

  /// Admission check for `ctx`'s tenant. Grants a Lease, or sheds with
  /// kOverloaded + a retry-after hint (rate quota, in-flight share, or open
  /// breaker). Stamps the tenant's priority class onto `ctx`. Untenanted or
  /// unregistered tenants pass through with an empty lease.
  Result<Lease> Admit(const ExecContext* ctx);

  /// Point-in-time view of every tenant, sorted by id (for /tenantz).
  std::vector<TenantStatus> Snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  void RefillLocked(TenantState& s, Clock::time_point now);
  void CompleteLocked(TenantState& s, const Status* status);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
};

}  // namespace quarry::core

#endif  // QUARRY_CORE_TENANT_H_
