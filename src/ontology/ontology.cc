#include "ontology/ontology.h"

#include <algorithm>
#include <deque>
#include <set>

namespace quarry::ontology {

const char* MultiplicityToString(Multiplicity m) {
  switch (m) {
    case Multiplicity::kOneToOne:
      return "ONE_TO_ONE";
    case Multiplicity::kManyToOne:
      return "MANY_TO_ONE";
    case Multiplicity::kOneToMany:
      return "ONE_TO_MANY";
    case Multiplicity::kManyToMany:
      return "MANY_TO_MANY";
  }
  return "UNKNOWN";
}

Result<Multiplicity> MultiplicityFromString(const std::string& text) {
  if (text == "ONE_TO_ONE") return Multiplicity::kOneToOne;
  if (text == "MANY_TO_ONE") return Multiplicity::kManyToOne;
  if (text == "ONE_TO_MANY") return Multiplicity::kOneToMany;
  if (text == "MANY_TO_MANY") return Multiplicity::kManyToMany;
  return Status::ParseError("unknown multiplicity '" + text + "'");
}

Status Ontology::AddConcept(const std::string& id,
                            const std::string& parent_id) {
  if (concepts_.count(id) > 0) {
    return Status::AlreadyExists("concept '" + id + "'");
  }
  if (!parent_id.empty() && concepts_.count(parent_id) == 0) {
    return Status::NotFound("parent concept '" + parent_id + "'");
  }
  concepts_.emplace(id, Concept{id, parent_id});
  return Status::OK();
}

Status Ontology::AddDataProperty(const std::string& concept_id,
                                 const std::string& name,
                                 storage::DataType type) {
  if (concepts_.count(concept_id) == 0) {
    return Status::NotFound("concept '" + concept_id + "'");
  }
  std::string id = concept_id + "." + name;
  if (properties_.count(id) > 0) {
    return Status::AlreadyExists("property '" + id + "'");
  }
  properties_.emplace(id, DataProperty{id, concept_id, name, type});
  properties_by_concept_[concept_id].push_back(id);
  return Status::OK();
}

Status Ontology::AddAssociation(const std::string& id, const std::string& from,
                                const std::string& to,
                                Multiplicity multiplicity) {
  if (associations_.count(id) > 0) {
    return Status::AlreadyExists("association '" + id + "'");
  }
  if (concepts_.count(from) == 0) {
    return Status::NotFound("concept '" + from + "'");
  }
  if (concepts_.count(to) == 0) {
    return Status::NotFound("concept '" + to + "'");
  }
  associations_.emplace(id, Association{id, from, to, multiplicity});
  associations_by_concept_[from].push_back(id);
  if (to != from) associations_by_concept_[to].push_back(id);
  return Status::OK();
}

bool Ontology::HasConcept(const std::string& id) const {
  return concepts_.count(id) > 0;
}

Result<Concept> Ontology::GetConcept(const std::string& id) const {
  auto it = concepts_.find(id);
  if (it == concepts_.end()) return Status::NotFound("concept '" + id + "'");
  return it->second;
}

Result<DataProperty> Ontology::GetProperty(
    const std::string& property_id) const {
  auto it = properties_.find(property_id);
  if (it == properties_.end()) {
    return Status::NotFound("property '" + property_id + "'");
  }
  return it->second;
}

Result<Association> Ontology::GetAssociation(const std::string& id) const {
  auto it = associations_.find(id);
  if (it == associations_.end()) {
    return Status::NotFound("association '" + id + "'");
  }
  return it->second;
}

std::vector<Concept> Ontology::concepts() const {
  std::vector<Concept> out;
  out.reserve(concepts_.size());
  for (const auto& [id, c] : concepts_) out.push_back(c);
  return out;
}

std::vector<Association> Ontology::associations() const {
  std::vector<Association> out;
  out.reserve(associations_.size());
  for (const auto& [id, a] : associations_) out.push_back(a);
  return out;
}

std::vector<DataProperty> Ontology::PropertiesOf(
    const std::string& concept_id) const {
  std::vector<DataProperty> out;
  // Own properties first, then walk up the taxonomy.
  std::string current = concept_id;
  std::set<std::string> visited;
  while (!current.empty() && visited.insert(current).second) {
    auto bucket = properties_by_concept_.find(current);
    if (bucket != properties_by_concept_.end()) {
      for (const std::string& id : bucket->second) {
        out.push_back(properties_.at(id));
      }
    }
    auto it = concepts_.find(current);
    current = it == concepts_.end() ? "" : it->second.parent_id;
  }
  return out;
}

std::vector<Association> Ontology::AssociationsOf(
    const std::string& concept_id) const {
  std::vector<Association> out;
  auto bucket = associations_by_concept_.find(concept_id);
  if (bucket == associations_by_concept_.end()) return out;
  for (const std::string& id : bucket->second) {
    out.push_back(associations_.at(id));
  }
  return out;
}

bool Ontology::IsSubclassOf(const std::string& descendant,
                            const std::string& ancestor) const {
  std::string current = descendant;
  std::set<std::string> visited;
  while (!current.empty() && visited.insert(current).second) {
    if (current == ancestor) return true;
    auto it = concepts_.find(current);
    current = it == concepts_.end() ? "" : it->second.parent_id;
  }
  return false;
}

std::vector<PathStep> Ontology::FunctionalSteps(
    const std::string& from) const {
  std::vector<PathStep> steps;
  auto bucket = associations_by_concept_.find(from);
  if (bucket == associations_by_concept_.end()) return steps;
  for (const std::string& id : bucket->second) {
    const Association& a = associations_.at(id);
    bool forward_functional = a.multiplicity == Multiplicity::kManyToOne ||
                              a.multiplicity == Multiplicity::kOneToOne;
    bool backward_functional = a.multiplicity == Multiplicity::kOneToMany ||
                               a.multiplicity == Multiplicity::kOneToOne;
    if (a.from_concept == from && forward_functional) {
      steps.push_back({a.id, a.from_concept, a.to_concept, true});
    }
    if (a.to_concept == from && backward_functional) {
      steps.push_back({a.id, a.to_concept, a.from_concept, false});
    }
  }
  return steps;
}

bool Ontology::HasFunctionalStep(const std::string& from,
                                 const std::string& to) const {
  for (const PathStep& step : FunctionalSteps(from)) {
    if (step.to_concept == to) return true;
  }
  return false;
}

Result<std::vector<PathStep>> Ontology::FindFunctionalPath(
    const std::string& from, const std::string& to) const {
  if (concepts_.count(from) == 0) {
    return Status::NotFound("concept '" + from + "'");
  }
  if (concepts_.count(to) == 0) {
    return Status::NotFound("concept '" + to + "'");
  }
  if (from == to) return std::vector<PathStep>{};
  // BFS over functional steps.
  std::map<std::string, PathStep> came_from;
  std::deque<std::string> frontier{from};
  std::set<std::string> visited{from};
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    for (const PathStep& step : FunctionalSteps(current)) {
      if (!visited.insert(step.to_concept).second) continue;
      came_from.emplace(step.to_concept, step);
      if (step.to_concept == to) {
        std::vector<PathStep> path;
        std::string cursor = to;
        while (cursor != from) {
          const PathStep& s = came_from.at(cursor);
          path.push_back(s);
          cursor = s.from_concept;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(step.to_concept);
    }
  }
  return Status::Unsatisfiable("no functional (to-one) path from '" + from +
                               "' to '" + to + "'");
}

std::vector<std::pair<std::string, int>> Ontology::FunctionallyReachable(
    const std::string& from) const {
  std::vector<std::pair<std::string, int>> out;
  std::deque<std::pair<std::string, int>> frontier{{from, 0}};
  std::set<std::string> visited{from};
  while (!frontier.empty()) {
    auto [current, depth] = frontier.front();
    frontier.pop_front();
    for (const PathStep& step : FunctionalSteps(current)) {
      if (!visited.insert(step.to_concept).second) continue;
      out.emplace_back(step.to_concept, depth + 1);
      frontier.emplace_back(step.to_concept, depth + 1);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second < b.second : a.first < b.first;
  });
  return out;
}

std::unique_ptr<xml::Element> Ontology::ToXml() const {
  auto root = std::make_unique<xml::Element>("ontology");
  root->SetAttr("name", name_);
  for (const auto& [id, c] : concepts_) {
    xml::Element* e = root->AddChild("concept");
    e->SetAttr("id", c.id);
    if (!c.parent_id.empty()) e->SetAttr("parent", c.parent_id);
  }
  for (const auto& [id, p] : properties_) {
    xml::Element* e = root->AddChild("property");
    e->SetAttr("id", p.id);
    e->SetAttr("concept", p.concept_id);
    e->SetAttr("name", p.name);
    e->SetAttr("type", storage::DataTypeToString(p.type));
  }
  for (const auto& [id, a] : associations_) {
    xml::Element* e = root->AddChild("association");
    e->SetAttr("id", a.id);
    e->SetAttr("from", a.from_concept);
    e->SetAttr("to", a.to_concept);
    e->SetAttr("multiplicity", MultiplicityToString(a.multiplicity));
  }
  return root;
}

namespace {

Result<storage::DataType> DataTypeFromString(const std::string& text) {
  if (text == "BIGINT") return storage::DataType::kInt64;
  if (text == "DOUBLE PRECISION") return storage::DataType::kDouble;
  if (text == "VARCHAR") return storage::DataType::kString;
  if (text == "DATE") return storage::DataType::kDate;
  if (text == "BOOLEAN") return storage::DataType::kBool;
  return Status::ParseError("unknown data type '" + text + "'");
}

}  // namespace

Result<Ontology> Ontology::FromXml(const xml::Element& root) {
  if (root.name() != "ontology") {
    return Status::ParseError("expected <ontology>, got <" + root.name() +
                              ">");
  }
  Ontology onto(root.AttrOr("name"));
  // Two passes over concepts so parents can appear in any order.
  for (const xml::Element* e : root.Children("concept")) {
    QUARRY_RETURN_NOT_OK(onto.AddConcept(e->AttrOr("id")));
  }
  for (const xml::Element* e : root.Children("concept")) {
    std::string parent = e->AttrOr("parent");
    if (parent.empty()) continue;
    if (onto.concepts_.count(parent) == 0) {
      return Status::ParseError("unknown parent concept '" + parent + "'");
    }
    onto.concepts_[e->AttrOr("id")].parent_id = parent;
  }
  for (const xml::Element* e : root.Children("property")) {
    QUARRY_ASSIGN_OR_RETURN(storage::DataType type,
                            DataTypeFromString(e->AttrOr("type")));
    QUARRY_RETURN_NOT_OK(
        onto.AddDataProperty(e->AttrOr("concept"), e->AttrOr("name"), type));
  }
  for (const xml::Element* e : root.Children("association")) {
    QUARRY_ASSIGN_OR_RETURN(Multiplicity mult,
                            MultiplicityFromString(e->AttrOr("multiplicity")));
    QUARRY_RETURN_NOT_OK(onto.AddAssociation(e->AttrOr("id"), e->AttrOr("from"),
                                             e->AttrOr("to"), mult));
  }
  return onto;
}

}  // namespace quarry::ontology
