
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/requirements/elicitor.cc" "src/CMakeFiles/quarry_requirements.dir/requirements/elicitor.cc.o" "gcc" "src/CMakeFiles/quarry_requirements.dir/requirements/elicitor.cc.o.d"
  "/root/repo/src/requirements/query_parser.cc" "src/CMakeFiles/quarry_requirements.dir/requirements/query_parser.cc.o" "gcc" "src/CMakeFiles/quarry_requirements.dir/requirements/query_parser.cc.o.d"
  "/root/repo/src/requirements/requirement.cc" "src/CMakeFiles/quarry_requirements.dir/requirements/requirement.cc.o" "gcc" "src/CMakeFiles/quarry_requirements.dir/requirements/requirement.cc.o.d"
  "/root/repo/src/requirements/workload.cc" "src/CMakeFiles/quarry_requirements.dir/requirements/workload.cc.o" "gcc" "src/CMakeFiles/quarry_requirements.dir/requirements/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quarry_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_mdschema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_etl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
