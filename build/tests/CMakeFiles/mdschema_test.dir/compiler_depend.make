# Empty compiler generated dependencies file for mdschema_test.
# This may be replaced when dependencies are built.
