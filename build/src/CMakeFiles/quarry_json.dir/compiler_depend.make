# Empty compiler generated dependencies file for quarry_json.
# This may be replaced when dependencies are built.
