file(REMOVE_RECURSE
  "CMakeFiles/quarry_interpreter.dir/interpreter/interpreter.cc.o"
  "CMakeFiles/quarry_interpreter.dir/interpreter/interpreter.cc.o.d"
  "libquarry_interpreter.a"
  "libquarry_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
