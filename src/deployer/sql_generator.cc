#include "deployer/sql_generator.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"

namespace quarry::deployer {

using md::Dimension;
using md::DimensionRef;
using md::Fact;
using md::Level;
using md::MdSchema;
using storage::DataType;

namespace {

const char* SqlType(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "double precision";
    case DataType::kString:
      return "VARCHAR(255)";
    case DataType::kDate:
      return "DATE";
    case DataType::kBool:
      return "BOOLEAN";
  }
  return "VARCHAR(255)";
}

/// Type of a natural key column, looked up in the mapped source table.
Result<DataType> KeyColumnType(const storage::Database& source,
                               const std::string& table,
                               const std::string& column) {
  QUARRY_ASSIGN_OR_RETURN(const storage::Table* t, source.GetTable(table));
  QUARRY_ASSIGN_OR_RETURN(storage::Column c, t->schema().GetColumn(column));
  return c.type;
}

}  // namespace

Result<std::string> GenerateSql(const MdSchema& schema,
                                const ontology::SourceMapping& mapping,
                                const storage::Database& source,
                                const std::string& database_name) {
  std::string sql = "CREATE DATABASE " + database_name + ";\n\n";

  // One table per dimension level, emitted once per distinct concept.
  std::set<std::string> emitted_concepts;
  for (const Dimension& dim : schema.dimensions()) {
    for (const Level& level : dim.levels) {
      if (!emitted_concepts.insert(level.concept_id).second) continue;
      QUARRY_ASSIGN_OR_RETURN(auto cm, mapping.ForConcept(level.concept_id));
      std::vector<std::string> items;
      for (const std::string& key : cm.key_columns) {
        QUARRY_ASSIGN_OR_RETURN(DataType type,
                                KeyColumnType(source, cm.table, key));
        items.push_back("  " + key + " " + SqlType(type) + " NOT NULL");
      }
      for (const md::LevelAttribute& attr : level.attributes) {
        if (std::find(cm.key_columns.begin(), cm.key_columns.end(),
                      attr.name) != cm.key_columns.end()) {
          continue;  // Attribute coincides with a key column.
        }
        items.push_back("  " + attr.name + " " + SqlType(attr.type));
      }
      items.push_back("  PRIMARY KEY( " + Join(cm.key_columns, ", ") + " )");
      sql += "CREATE TABLE dim_" + level.concept_id + " (\n" +
             Join(items, ",\n") + "\n);\n\n";
    }
  }

  // Fact tables (after dimensions so FOREIGN KEY targets exist).
  for (const Fact& fact : schema.facts()) {
    std::vector<std::string> items;
    std::vector<std::string> pk;
    std::vector<std::string> fks;
    std::set<std::string> seen_columns;
    for (const DimensionRef& ref : fact.dimension_refs) {
      QUARRY_ASSIGN_OR_RETURN(const Dimension* dim,
                              schema.GetDimension(ref.dimension));
      const Level* level = dim->FindLevel(ref.level);
      if (level == nullptr) {
        return Status::ValidationError("fact '" + fact.name +
                                       "' references missing level '" +
                                       ref.level + "'");
      }
      QUARRY_ASSIGN_OR_RETURN(auto cm, mapping.ForConcept(level->concept_id));
      for (const std::string& key : cm.key_columns) {
        if (!seen_columns.insert(key).second) continue;
        QUARRY_ASSIGN_OR_RETURN(DataType type,
                                KeyColumnType(source, cm.table, key));
        items.push_back("  " + key + " " + SqlType(type) + " NOT NULL");
        pk.push_back(key);
      }
      fks.push_back("  FOREIGN KEY( " + Join(cm.key_columns, ", ") +
                    " ) REFERENCES dim_" + level->concept_id + "( " +
                    Join(cm.key_columns, ", ") + " )");
    }
    for (const md::Measure& measure : fact.measures) {
      const char* type = measure.aggregation == md::AggFunc::kCount
                             ? "BIGINT"
                             : "double precision";
      items.push_back("  " + measure.name + " " + type);
    }
    if (!pk.empty()) {
      items.push_back("  PRIMARY KEY( " + Join(pk, ", ") + " )");
    }
    for (const std::string& fk : fks) items.push_back(fk);
    sql += "CREATE TABLE " + fact.name + " (\n" + Join(items, ",\n") +
           "\n);\n\n";
  }
  return sql;
}

}  // namespace quarry::deployer
