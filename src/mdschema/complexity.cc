#include "mdschema/complexity.h"

namespace quarry::md {

ComplexityReport StructuralComplexity(const MdSchema& schema,
                                      const ComplexityWeights& weights) {
  ComplexityReport report;
  for (const Fact& fact : schema.facts()) {
    ++report.facts;
    report.measures += static_cast<int>(fact.measures.size());
    report.fact_dimension_edges +=
        static_cast<int>(fact.dimension_refs.size());
  }
  for (const Dimension& dim : schema.dimensions()) {
    ++report.dimensions;
    report.levels += static_cast<int>(dim.levels.size());
    if (!dim.levels.empty()) {
      report.rollup_edges += static_cast<int>(dim.levels.size()) - 1;
    }
    for (const Level& level : dim.levels) {
      report.attributes += static_cast<int>(level.attributes.size());
    }
  }
  report.score = weights.fact * report.facts +
                 weights.dimension * report.dimensions +
                 weights.level * report.levels +
                 weights.attribute * report.attributes +
                 weights.measure * report.measures +
                 weights.fact_dimension_edge * report.fact_dimension_edges +
                 weights.rollup_edge * report.rollup_edges;
  return report;
}

}  // namespace quarry::md
