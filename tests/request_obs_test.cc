// Request-scoped observability (docs/OBSERVABILITY.md §"HTTP endpoints &
// request profiles"): request-id minting and uniqueness under the wavefront
// scheduler, EXPLAIN ANALYZE profile trees whose per-node row counts match
// the executor's metrics exactly, request-id span attribution, the
// structured event log's slow-request promotion and ring wrap-around.
//
// Carries the `tsan` label: the concurrency cases re-run under
// -DQUARRY_SANITIZE=thread via tools/run_tsan.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/quarry.h"
#include "datagen/retail.h"
#include "json/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/request_log.h"
#include "obs/trace.h"

namespace quarry::core {
namespace {

class RequestObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRecorder::Instance().Stop();
    obs::MetricsRegistry::Instance().ResetForTest();
    obs::RequestLog::Instance().ResetForTest();
  }
  void TearDown() override { obs::TraceRecorder::Instance().Stop(); }

  // A serving Quarry over the retail demo: two requirements deployed into a
  // published warehouse generation, ETL on the wavefront scheduler.
  std::unique_ptr<Quarry> MakeServingQuarry(int max_workers = 4) {
    Status populated = datagen::PopulateRetail(&source_, datagen::RetailConfig{});
    EXPECT_TRUE(populated.ok()) << populated.ToString();
    QuarryConfig config;
    config.etl_exec.max_workers = max_workers;
    auto q = Quarry::Create(datagen::BuildRetailOntology(),
                            datagen::BuildRetailMappings(), &source_,
                            std::move(config));
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    const char* requirements[] = {
        "ANALYZE turnover ON Sale "
        "MEASURE turnover = Sale.sl_amount * (1 - Sale.sl_discount) SUM "
        "BY Product.pr_category, Store.st_city",
        "ANALYZE units_by_region ON Sale "
        "MEASURE units = Sale.sl_units SUM BY Region.rr_name",
    };
    for (const char* text : requirements) {
      auto outcome = (*q)->SubmitRequirementFromQuery(text);
      EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
    auto deployed = (*q)->DeployServing();
    EXPECT_TRUE(deployed.ok()) << deployed.status().ToString();
    EXPECT_TRUE(deployed->success);
    return std::move(*q);
  }

  static olap::CubeQuery TurnoverByCategory() {
    olap::CubeQuery query;
    query.fact = "fact_table_turnover";
    query.group_by = {"pr_category"};
    query.measures.push_back({"turnover", md::AggFunc::kSum, "total"});
    return query;
  }

  storage::Database source_;
};

// Every entry point mints a fresh id: queries racing the wavefront executor
// and serving refreshes never share one, and every completion lands in the
// event log exactly once.
TEST_F(RequestObsTest, RequestIdsUniqueAcrossConcurrentSubmissions) {
  auto quarry = MakeServingQuarry(/*max_workers=*/4);
  obs::RequestLog::Instance().ResetForTest();  // Drop the setup records.

  constexpr int kQueryThreads = 6;
  constexpr int kQueriesPerThread = 4;
  constexpr int kRefreshes = 2;

  std::mutex mu;
  std::vector<uint64_t> query_ids;
  std::vector<std::thread> threads;
  threads.reserve(kQueryThreads + 1);
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto result = quarry->SubmitQuery(TurnoverByCategory());
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        query_ids.push_back(result->request_id);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kRefreshes; ++i) {
      auto refreshed = quarry->RefreshServing();
      ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
    }
  });
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(query_ids.size(),
            static_cast<size_t>(kQueryThreads * kQueriesPerThread));
  std::set<uint64_t> unique_query_ids(query_ids.begin(), query_ids.end());
  EXPECT_EQ(unique_query_ids.size(), query_ids.size());
  EXPECT_EQ(unique_query_ids.count(0), 0u);

  // The event log saw one record per completion — queries + refreshes —
  // each under its own id.
  const auto records = obs::RequestLog::Instance().Snapshot();
  ASSERT_EQ(records.size(), static_cast<size_t>(kQueryThreads *
                                                    kQueriesPerThread +
                                                kRefreshes));
  std::set<uint64_t> record_ids;
  for (const auto& record : records) {
    EXPECT_NE(record.id, 0u);
    EXPECT_TRUE(record_ids.insert(record.id).second)
        << "duplicate request id " << record.id;
    EXPECT_EQ(record.status, "ok");
  }
}

// The acceptance bar of the profile tree: per-node rows_in/rows_out summed
// over the EXPLAIN ANALYZE plan equal the executor's row counters for the
// same run, exactly.
TEST_F(RequestObsTest, ProfileRowCountsMatchExecutorMetricsExactly) {
  auto quarry = MakeServingQuarry(/*max_workers=*/1);

  // Reset after setup so the counters cover exactly one query execution.
  obs::MetricsRegistry::Instance().ResetForTest();
  auto result = quarry->SubmitQuery(TurnoverByCategory());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->profile.roots.empty());

  int64_t profile_rows_in = 0;
  int64_t profile_rows_out = 0;
  std::vector<const obs::ProfileNode*> stack;
  for (const auto& root : result->profile.roots) stack.push_back(&root);
  while (!stack.empty()) {
    const obs::ProfileNode* node = stack.back();
    stack.pop_back();
    profile_rows_in += node->rows_in;
    profile_rows_out += node->rows_out;
    for (const auto& child : node->children) stack.push_back(&child);
  }

  EXPECT_EQ(profile_rows_in, obs::MetricsRegistry::Instance()
                                 .counter("quarry_etl_rows_in_total")
                                 .value());
  EXPECT_EQ(profile_rows_out, obs::MetricsRegistry::Instance()
                                  .counter("quarry_etl_rows_out_total")
                                  .value());
  EXPECT_GT(profile_rows_out, 0);

  // The profile header fields are attributed to this request.
  EXPECT_EQ(result->profile.request_id, result->request_id);
  EXPECT_EQ(result->profile.kind, "query");
  EXPECT_EQ(result->profile.lane, "query");
  EXPECT_EQ(result->profile.generation, result->generation);
  EXPECT_GT(result->profile.total_micros, 0.0);
}

// ToText names the real compiled plan nodes (the cube_query.h TODO), and
// ToJson round-trips through the in-tree parser.
TEST_F(RequestObsTest, ProfileRenderersNameRealPlanNodes) {
  auto quarry = MakeServingQuarry(/*max_workers=*/1);
  auto result = quarry->SubmitQuery(TurnoverByCategory());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::string text = result->profile.ToText();
  EXPECT_NE(text.find("q_fact"), std::string::npos) << text;
  EXPECT_NE(text.find("q_agg"), std::string::npos) << text;
  EXPECT_NE(text.find("q_result"), std::string::npos) << text;
  EXPECT_NE(text.find("kind=query"), std::string::npos) << text;

  auto parsed = json::Parse(result->profile.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  bool found_plan = false;
  for (const auto& [key, value] : parsed->as_object()) {
    if (key == "plan") {
      found_plan = true;
      EXPECT_FALSE(value.as_array().empty());
    }
  }
  EXPECT_TRUE(found_plan);
}

// Opting out of profile collection leaves the plan empty but still
// attributes the request.
TEST_F(RequestObsTest, CollectProfileOptOut) {
  auto quarry = MakeServingQuarry(/*max_workers=*/1);
  QueryOptions options;
  options.collect_profile = false;
  auto result = quarry->SubmitQuery(TurnoverByCategory(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->profile.roots.empty());
  EXPECT_NE(result->request_id, 0u);
}

#ifndef QUARRY_DISABLE_TRACING
// Spans emitted while serving a query carry the request id end to end: the
// etl.run span of the query's flow is stamped with QueryResult::request_id.
TEST_F(RequestObsTest, SpansCarryRequestId) {
  auto quarry = MakeServingQuarry(/*max_workers=*/1);

  obs::TraceRecorder::Instance().Start();
  auto result = quarry->SubmitQuery(TurnoverByCategory());
  obs::TraceRecorder::Instance().Stop();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  bool found = false;
  for (const auto& span : obs::TraceRecorder::Instance().Snapshot()) {
    if (span.name != "etl.run") continue;
    for (const auto& attr : span.attrs) {
      if (attr.key == "request_id" &&
          attr.value == std::to_string(result->request_id)) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << "no etl.run span stamped with request id "
                     << result->request_id;
}
#endif  // QUARRY_DISABLE_TRACING

// The slow-request threshold decides which event-log records keep their
// full profile JSON.
TEST_F(RequestObsTest, SlowThresholdPromotesProfiles) {
  auto quarry = MakeServingQuarry(/*max_workers=*/1);
  auto& log = obs::RequestLog::Instance();

  log.set_slow_threshold_micros(0.0);  // Everything is "slow".
  ASSERT_TRUE(quarry->SubmitQuery(TurnoverByCategory()).ok());
  auto records = log.Snapshot();
  ASSERT_FALSE(records.empty());
  const auto& promoted = records.back();
  EXPECT_EQ(promoted.kind, "query");
  ASSERT_FALSE(promoted.profile_json.empty());
  auto parsed = json::Parse(promoted.profile_json);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(promoted.slowest_ops.empty());
  EXPECT_LE(promoted.slowest_ops.size(), 3u);
  // Slowest-first ordering.
  for (size_t i = 1; i < promoted.slowest_ops.size(); ++i) {
    EXPECT_GE(promoted.slowest_ops[i - 1].micros,
              promoted.slowest_ops[i].micros);
  }

  log.set_slow_threshold_micros(1e12);  // Nothing is.
  ASSERT_TRUE(quarry->SubmitQuery(TurnoverByCategory()).ok());
  records = log.Snapshot();
  EXPECT_TRUE(records.back().profile_json.empty());
  // The JSONL drain stays parseable either way.
  auto lines = log.ToJsonl();
  size_t start = 0;
  while (start < lines.size()) {
    size_t end = lines.find('\n', start);
    if (end == std::string::npos) end = lines.size();
    const std::string line = lines.substr(start, end - start);
    if (!line.empty()) {
      auto parsed_line = json::Parse(line);
      EXPECT_TRUE(parsed_line.ok()) << line;
    }
    start = end + 1;
  }
}

// Failed requests are recorded with their status-code name and counted in
// the failure family.
TEST_F(RequestObsTest, FailuresAreRecordedWithStatus) {
  auto quarry = MakeServingQuarry(/*max_workers=*/1);
  obs::RequestLog::Instance().ResetForTest();

  olap::CubeQuery bogus;
  bogus.fact = "no_such_fact";
  bogus.measures.push_back({"x", md::AggFunc::kSum, "x"});
  auto result = quarry->SubmitQuery(bogus);
  EXPECT_FALSE(result.ok());

  const auto records = obs::RequestLog::Instance().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, "query");
  EXPECT_NE(records[0].status, "ok");
  EXPECT_GE(obs::MetricsRegistry::Instance()
                .counter("quarry_request_failures_total", "",
                         {{"kind", "query"}})
                .value(),
            1);
}

// The ring keeps the newest `capacity` records, oldest first, and the
// monotonic total survives wrap-around.
TEST_F(RequestObsTest, EventLogRingWrapsAround) {
  obs::RequestLog log(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    obs::RequestRecord record;
    record.id = i;
    record.kind = "query";
    log.Record(std::move(record));
  }
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.capacity(), 4u);
  const auto records = log.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].id, 7u + i);  // 7, 8, 9, 10 — oldest first.
  }
}

// Concurrent writers on a tiny ring: no torn records, every retained record
// is one of the written ones (tsan exercises the per-slot locking).
TEST_F(RequestObsTest, EventLogConcurrentWriters) {
  obs::RequestLog log(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::RequestRecord record;
        record.id = static_cast<uint64_t>(t * kPerThread + i + 1);
        record.kind = "query";
        record.status = "ok";
        record.profile_json = "{\"request_id\":" + std::to_string(record.id) +
                              "}";
        log.set_slow_threshold_micros(0.0);
        log.Record(std::move(record));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(log.total_recorded(),
            static_cast<uint64_t>(kThreads * kPerThread));
  const auto records = log.Snapshot();
  EXPECT_EQ(records.size(), 8u);
  for (const auto& record : records) {
    EXPECT_GE(record.id, 1u);
    EXPECT_LE(record.id, static_cast<uint64_t>(kThreads * kPerThread));
    // A record is internally consistent (not stitched from two writers).
    EXPECT_EQ(record.profile_json,
              "{\"request_id\":" + std::to_string(record.id) + "}");
  }
}

}  // namespace
}  // namespace quarry::core
