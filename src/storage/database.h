#ifndef QUARRY_STORAGE_DATABASE_H_
#define QUARRY_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace quarry::storage {

/// \brief A catalog of tables — the embedded stand-in for the PostgreSQL
/// instance the Quarry paper deploys MD schemas to.
class Database {
 public:
  Database() = default;
  explicit Database(std::string name) : name_(std::move(name)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Creates a table; referenced FK tables must already exist.
  Result<Table*> CreateTable(TableSchema schema);

  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// Table names in lexicographic order.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

  /// Total rows across all tables.
  size_t TotalRows() const;

  /// Verifies every foreign key: each referencing value combination must
  /// exist in the referenced table. Returns the first violation.
  Status CheckReferentialIntegrity() const;

  // -- recovery support (see docs/ROBUSTNESS.md) ----------------------------

  /// Deep copy of the whole catalog (schemas, rows, indexes). Transactional
  /// deployment snapshots the target before mutating it.
  std::unique_ptr<Database> Clone() const;

  /// Resets this database to the snapshot's state (name and tables).
  void RestoreFrom(const Database& snapshot);

  /// Replaces (or inserts) one table wholesale, bypassing FK admission
  /// checks — only for restoring a Clone()d snapshot of this database.
  void RestoreTable(std::unique_ptr<Table> table);

  /// Removes a table without status or fault-injection accounting — only
  /// for recovery paths undoing a partially-applied mutation (a regular
  /// DropTable could itself draw an injected fault mid-rollback).
  void EraseTable(const std::string& name) { tables_.erase(name); }

  /// Deterministic content hash over every table's schema and rows. Equal
  /// state yields equal fingerprints, so rollback tests can assert the
  /// target is bit-identical to its pre-deploy snapshot.
  uint64_t Fingerprint() const;

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace quarry::storage

#endif  // QUARRY_STORAGE_DATABASE_H_
