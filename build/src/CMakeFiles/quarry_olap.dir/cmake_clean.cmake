file(REMOVE_RECURSE
  "CMakeFiles/quarry_olap.dir/olap/cube_query.cc.o"
  "CMakeFiles/quarry_olap.dir/olap/cube_query.cc.o.d"
  "libquarry_olap.a"
  "libquarry_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
