file(REMOVE_RECURSE
  "libquarry_mdschema.a"
)
