#!/usr/bin/env bash
# Chaos-soak driver for the snapshot-isolated serving path
# (docs/ROBUSTNESS.md §9): runs the serving suite — GenerationStore
# semantics, the publish/retire fault matrix, the torn-read regression, and
# the multi-threaded reader-vs-refresh soak — at full size in an
# ASan-instrumented build, so a leaked generation or a pin released twice is
# a hard failure, not a silent one.
#
# Usage: tools/run_soak.sh [build-dir] [readers] [cycles]
#   build-dir  defaults to build-asan (shared with run_crash_matrix.sh)
#   readers    concurrent query threads       (default 8,  env QUARRY_SOAK_READERS)
#   cycles     source-churn + refresh rounds  (default 50, env QUARRY_SOAK_CYCLES)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
readers="${2:-${QUARRY_SOAK_READERS:-8}}"
cycles="${3:-${QUARRY_SOAK_CYCLES:-50}}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQUARRY_SANITIZE=address
cmake --build "${build_dir}" -j

export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"
export QUARRY_SOAK_READERS="${readers}"
export QUARRY_SOAK_CYCLES="${cycles}"

if ! ctest --test-dir "${build_dir}" -L serving -N | grep -q 'Total Tests: [1-9]'; then
  echo "run_soak: no tests carry the 'serving' label" >&2
  exit 1
fi

echo "==== serving soak: ${readers} readers x ${cycles} refresh cycles ===="
ctest --test-dir "${build_dir}" -L serving --output-on-failure
echo "==== serving soak passed ===="
