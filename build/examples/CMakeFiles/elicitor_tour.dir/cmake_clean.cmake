file(REMOVE_RECURSE
  "CMakeFiles/elicitor_tour.dir/elicitor_tour.cpp.o"
  "CMakeFiles/elicitor_tour.dir/elicitor_tour.cpp.o.d"
  "elicitor_tour"
  "elicitor_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elicitor_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
