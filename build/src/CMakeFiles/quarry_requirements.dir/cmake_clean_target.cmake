file(REMOVE_RECURSE
  "libquarry_requirements.a"
)
