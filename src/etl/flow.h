#ifndef QUARRY_ETL_FLOW_H_
#define QUARRY_ETL_FLOW_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace quarry::etl {

/// Operator vocabulary of the logical ETL model (xLM). The set mirrors the
/// node types visible in the paper's Figures 3-4 (Datastore, Extraction,
/// Selection, Projection, Join, Aggregation, Function, Loader) plus the
/// usual flow-algebra extras (Sort, Union, SurrogateKey).
enum class OpType {
  kDatastore,     ///< Handle to a source table. params: table
  kExtraction,    ///< Reads rows from its datastore input. params: table
  kSelection,     ///< Filter. params: predicate (expression text)
  kProjection,    ///< Column pruning. params: columns ("a,b,c")
  kJoin,          ///< Equi-join. params: left, right (column lists), type
  kAggregation,   ///< Group-by. params: group ("a,b"),
                  ///<   aggs ("SUM(x) AS sx;AVG(y) AS ay")
  kFunction,      ///< Derived column. params: column, expr
  kSort,          ///< params: by ("a,b"), desc ("true"/"false")
  kUnion,         ///< Bag union of compatible inputs.
  kSurrogateKey,  ///< Dense int key per distinct key combo.
                  ///<   params: column, keys ("a,b")
  kLoader,        ///< Writes to a target table. params: table, keys
};

const char* OpTypeToString(OpType type);
Result<OpType> OpTypeFromString(const std::string& text);

/// How many inputs an operator consumes (-1 = variadic, >=2).
int OpArity(OpType type);

/// \brief A node of an ETL flow.
struct Node {
  std::string id;    ///< Unique within the flow (the paper uses names).
  OpType type = OpType::kExtraction;
  std::map<std::string, std::string> params;
  /// Which information requirements this node serves (design trace; drives
  /// incremental removal — paper scenario "accommodating changes").
  std::set<std::string> requirement_ids;

  /// Canonical "what this operator does" string: type + sorted params.
  /// Two nodes with equal signatures and equal inputs compute the same
  /// dataset — the reuse test of the ETL Process Integrator.
  std::string Signature() const;
};

struct Edge {
  std::string from;
  std::string to;
  bool operator==(const Edge&) const = default;
};

/// \brief A logical ETL process: a DAG of operator nodes (xLM's <design>).
class Flow {
 public:
  Flow() = default;
  explicit Flow(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- construction ---------------------------------------------------------

  /// Adds a node; id must be new.
  Status AddNode(Node node);

  /// Connects two existing nodes (duplicate edges rejected).
  Status AddEdge(const std::string& from, const std::string& to);

  /// Removes a node and every incident edge.
  Status RemoveNode(const std::string& id);

  Status RemoveEdge(const std::string& from, const std::string& to);

  /// Replaces the edge from->to with new_from->new_to *at the same
  /// position* in the edge list. Edge order is semantically load-bearing
  /// (a Join's first incoming edge is its left input), so graph rewrites
  /// must use this instead of RemoveEdge+AddEdge.
  Status ReplaceEdge(const std::string& from, const std::string& to,
                     const std::string& new_from, const std::string& new_to);

  // -- access ---------------------------------------------------------------

  bool HasNode(const std::string& id) const { return nodes_.count(id) > 0; }
  Result<const Node*> GetNode(const std::string& id) const;
  Result<Node*> GetMutableNode(const std::string& id);

  const std::map<std::string, Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Ids of nodes feeding `id`, in edge insertion order (join semantics
  /// depend on input order: first edge = left input).
  std::vector<std::string> Predecessors(const std::string& id) const;
  std::vector<std::string> Successors(const std::string& id) const;

  /// Successor adjacency of every node (edge insertion order per node) in
  /// one O(edges) pass — the per-id Successors() is O(edges) per call,
  /// which the wavefront scheduler would turn into O(V·E).
  std::map<std::string, std::vector<std::string>> SuccessorLists() const;

  /// Incoming-edge count of every node in one O(edges) pass; the
  /// scheduler's dependency counters start from these.
  std::map<std::string, size_t> InDegrees() const;

  /// Nodes with no incoming / outgoing edges.
  std::vector<std::string> SourceIds() const;
  std::vector<std::string> SinkIds() const;

  /// Topological order; fails with ValidationError on a cycle.
  Result<std::vector<std::string>> TopologicalOrder() const;

  /// Structural sanity: arities match OpArity, sources are datastores,
  /// sinks are loaders, graph is acyclic and connected-enough (every
  /// non-source node reachable from a source).
  Status Validate() const;

  /// Deep copy.
  Flow Clone() const;

  /// Union of requirement ids across all nodes.
  std::set<std::string> RequirementIds() const;

  /// Removes `requirement_id` from every node's trace and deletes nodes
  /// whose trace becomes empty (with their edges). Returns removed count.
  size_t PruneRequirement(const std::string& requirement_id);

 private:
  std::string name_;
  std::map<std::string, Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace quarry::etl

#endif  // QUARRY_ETL_FLOW_H_
