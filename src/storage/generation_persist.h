#ifndef QUARRY_STORAGE_GENERATION_PERSIST_H_
#define QUARRY_STORAGE_GENERATION_PERSIST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/database.h"
#include "storage/table.h"

namespace quarry::storage::persist {

/// \brief Crash-consistent on-disk persistence of warehouse generations
/// (docs/ROBUSTNESS.md §10) — the relational twin of the docstore's
/// generation-stamped snapshot scheme (§6.3).
///
/// On-disk layout under a store directory:
///
///   <dir>/gen-<id>/t<k>.seg       per-table segment (CRC32-framed binary)
///   <dir>/gen-<id>/annex.seg      opaque annex payload (optional)
///   <dir>/gen-<id>/MANIFEST.json  the commit record — written LAST
///
/// Commit protocol: every file is written with wal::AtomicWriteFile (tmp +
/// fsync + rename + parent-dir fsync), and the manifest is written only
/// after every segment it names is durable, so the manifest's appearance IS
/// the commit point. A crash anywhere earlier leaves a directory without a
/// manifest — a torn publish that recovery detects and discards in O(1).
/// A directory WITH a manifest that fails validation (bad magic, CRC or
/// fingerprint mismatch, undecodable annex) is not a crash artifact but
/// corruption: recovery quarantines it (rename to gen-<id>.quarantined)
/// and falls back to the next-newest intact generation.

/// What one recovery pass over a store directory found and did. Mirrors
/// docstore::RecoveryStats for the warehouse side of the durability story.
struct QuarantinedGeneration {
  uint64_t id = 0;
  std::string path;    ///< Where the quarantined directory was moved.
  std::string reason;  ///< First validation failure.
};

struct GenerationRecoveryStats {
  uint64_t generations_scanned = 0;  ///< gen-<id> directories examined.
  uint64_t torn_discarded = 0;       ///< Manifest-less dirs removed (crash).
  uint64_t older_removed = 0;        ///< Intact but superseded dirs removed.
  uint64_t recovered_generation = 0;  ///< Id republished; 0 = none intact.
  uint64_t recovered_fingerprint = 0;
  uint64_t tables_loaded = 0;
  uint64_t rows_loaded = 0;
  bool annex_recovered = false;
  std::vector<QuarantinedGeneration> quarantined;  ///< Corruption, not crash.

  std::string ToString() const;
};

/// A generation read back from disk.
struct LoadedGeneration {
  uint64_t id = 0;  ///< 0 = nothing intact on disk.
  std::unique_ptr<Database> db;
  uint64_t fingerprint = 0;
  std::string annex_bytes;
  /// Highest generation id seen on disk, intact or not — the store resumes
  /// id allocation above it so a discarded torn publish never collides.
  uint64_t max_seen_id = 0;
};

/// Name of a generation's directory inside the store directory.
std::string GenerationDirName(uint64_t id);

/// Serializes one table (schema + rows) into the CRC32-framed segment
/// format. Deterministic: equal table state yields equal bytes.
std::string SerializeTable(const Table& table);

/// Inverse of SerializeTable. Corruption (bad magic/version/CRC, truncated
/// payload) reads as kParseError.
Result<std::unique_ptr<Table>> DeserializeTable(std::string_view bytes);

/// Two-phase commit of one generation into `<store_dir>/gen-<id>/`.
/// Leftovers of an earlier failed attempt at the same id are removed first,
/// so a retried publish reuses the id cleanly. Fault sites, one per
/// persistence step: "storage.generation.persist.segment" (clean failure
/// before a segment write), "storage.generation.persist.segment.torn"
/// (plants a genuinely truncated segment, then fails — what a non-atomic
/// writer would leave behind), ".annex", ".manifest" (the commit write) and
/// ".sync" (after commit, before the store-dir fsync — the one window where
/// an unacknowledged publish may still survive the crash, like a WAL record
/// written but not fsynced).
Status PersistGeneration(const std::string& store_dir, uint64_t id,
                         const Database& db, uint64_t fingerprint,
                         std::string_view annex_bytes);

/// Reads one committed generation back, validating manifest, per-segment
/// CRCs and the recomputed database fingerprint. Validation failures are
/// kParseError/kValidationError (recovery quarantines); IO failures —
/// including the "storage.generation.recover.read" fault site — surface as
/// other codes (recovery aborts and can simply be re-run, like a crash
/// during recovery).
Result<LoadedGeneration> LoadGeneration(const std::string& store_dir,
                                        uint64_t id);

/// Deletes a retired generation's directory. Fault site
/// "storage.generation.persist.remove" models the deletion failing; the
/// store then parks the generation on its deferred-retire list.
Status RemoveGenerationDir(const std::string& store_dir, uint64_t id);

/// Extra per-candidate validation during recovery (e.g. decoding the annex
/// into a schema). A non-OK status quarantines the candidate.
using GenerationValidator = std::function<Status(const LoadedGeneration&)>;

/// The startup recovery pass: scans `store_dir`, discards torn publishes,
/// quarantines corrupt generations, removes intact-but-superseded ones and
/// returns the newest intact generation (id 0 when the directory holds
/// none — the store then serves empty). Idempotent and restartable: a
/// crash mid-recovery (fault sites "storage.generation.recover.scan",
/// ".read", ".cleanup") loses no intact generation; re-running converges.
Result<LoadedGeneration> RecoverNewestGeneration(
    const std::string& store_dir, const GenerationValidator& validate,
    GenerationRecoveryStats* stats);

}  // namespace quarry::storage::persist

#endif  // QUARRY_STORAGE_GENERATION_PERSIST_H_
