#ifndef QUARRY_CORE_METADATA_REPOSITORY_H_
#define QUARRY_CORE_METADATA_REPOSITORY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "docstore/document_store.h"
#include "xml/xml.h"

namespace quarry::core {

/// \brief The Communication & Metadata layer (paper §2.5).
///
/// Stores the XML artifacts exchanged between Quarry's components — xRQ
/// requirements, xMD schemas, xLM flows, ontologies, source mappings — in a
/// document store (the MongoDB stand-in) through the generic XML-JSON-XML
/// bridge, and offers plug-in export parsers for external notations (the
/// paper names SQL and Apache Pig Latin as examples).
class MetadataRepository {
 public:
  MetadataRepository() = default;

  MetadataRepository(const MetadataRepository&) = delete;
  MetadataRepository& operator=(const MetadataRepository&) = delete;
  MetadataRepository(MetadataRepository&&) = default;
  MetadataRepository& operator=(MetadataRepository&&) = default;

  /// Stores (or replaces) an XML artifact under `collection`/`id`.
  /// The document is persisted as {"_id": id, "kind": collection,
  /// "doc": <XML-as-JSON>}.
  Status StoreXml(const std::string& collection, const std::string& id,
                  const xml::Element& doc);

  /// Fetches an artifact back as XML.
  Result<std::unique_ptr<xml::Element>> FetchXml(
      const std::string& collection, const std::string& id) const;

  Status Remove(const std::string& collection, const std::string& id);

  /// Ids stored in a collection (empty when the collection is absent).
  std::vector<std::string> Ids(const std::string& collection) const;

  /// An exporter renders a stored XML artifact in an external notation.
  using Exporter = std::function<Result<std::string>(const xml::Element&)>;

  /// Registers a named export parser (e.g. "sql", "pdi").
  Status RegisterExporter(const std::string& name, Exporter exporter);

  /// Runs a registered exporter over an artifact.
  Result<std::string> Export(const std::string& name,
                             const xml::Element& doc) const;

  std::vector<std::string> ExporterNames() const;

  /// An importer parses an external notation into an XML artifact (e.g.
  /// the textual ANALYZE ... BY ... notation into an xRQ cube).
  using Importer =
      std::function<Result<std::unique_ptr<xml::Element>>(std::string_view)>;

  /// Registers a named import parser.
  Status RegisterImporter(const std::string& name, Importer importer);

  /// Runs a registered importer over external text.
  Result<std::unique_ptr<xml::Element>> Import(const std::string& name,
                                               std::string_view text) const;

  std::vector<std::string> ImporterNames() const;

  /// Makes the repository crash-safe on `dir`: checkpoints the current
  /// state and routes every subsequent artifact write through a fsynced
  /// write-ahead log (docs/ROBUSTNESS.md §6).
  Status EnableDurability(const std::string& dir);

  /// True when artifact writes ride the durable (WAL-backed) path.
  bool durable() const { return store_.durable(); }

  /// Direct access to the underlying document store (persistence, tests).
  docstore::DocumentStore& store() { return store_; }
  const docstore::DocumentStore& store() const { return store_; }

 private:
  docstore::DocumentStore store_;
  std::map<std::string, Exporter> exporters_;
  std::map<std::string, Importer> importers_;
};

}  // namespace quarry::core

#endif  // QUARRY_CORE_METADATA_REPOSITORY_H_
