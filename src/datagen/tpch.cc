#include "datagen/tpch.h"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "common/prng.h"

namespace quarry::datagen {

using storage::Column;
using storage::Database;
using storage::DataType;
using storage::ForeignKey;
using storage::Row;
using storage::Table;
using storage::TableSchema;
using storage::Value;

namespace {

constexpr std::array<const char*, 5> kRegions = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

// Nation -> region index, per the TPC-H spec.
constexpr std::array<std::pair<const char*, int>, 25> kNations = {{
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"SPAIN", 3},
}};

constexpr std::array<const char*, 5> kSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};

constexpr std::array<const char*, 6> kPartAdjectives = {
    "spring", "forest", "metallic", "polished", "antique", "misty"};
constexpr std::array<const char*, 6> kPartNouns = {
    "steel", "copper", "brass", "nickel", "tin", "chrome"};
constexpr std::array<const char*, 5> kPartTypes = {
    "STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY"};

int64_t ScaleCount(double sf, int64_t base, int64_t floor_count) {
  return std::max<int64_t>(floor_count,
                           static_cast<int64_t>(sf * static_cast<double>(base)));
}

struct Counts {
  int64_t supplier;
  int64_t customer;
  int64_t part;
  int64_t orders;
};

Counts ComputeCounts(const TpchConfig& config) {
  return Counts{
      ScaleCount(config.scale_factor, 10'000, 10),
      ScaleCount(config.scale_factor, 150'000, 30),
      ScaleCount(config.scale_factor, 200'000, 40),
      ScaleCount(config.scale_factor, 1'500'000, 150),
  };
}

Status CreateSchemas(Database* db) {
  auto add = [&](TableSchema schema) -> Status {
    return db->CreateTable(std::move(schema)).status();
  };

  TableSchema region("region");
  QUARRY_RETURN_NOT_OK(region.AddColumn({"r_regionkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(region.AddColumn({"r_name", DataType::kString, false}));
  QUARRY_RETURN_NOT_OK(region.SetPrimaryKey({"r_regionkey"}));
  QUARRY_RETURN_NOT_OK(add(std::move(region)));

  TableSchema nation("nation");
  QUARRY_RETURN_NOT_OK(nation.AddColumn({"n_nationkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(nation.AddColumn({"n_name", DataType::kString, false}));
  QUARRY_RETURN_NOT_OK(nation.AddColumn({"n_regionkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(nation.SetPrimaryKey({"n_nationkey"}));
  QUARRY_RETURN_NOT_OK(
      nation.AddForeignKey({{"n_regionkey"}, "region", {"r_regionkey"}}));
  QUARRY_RETURN_NOT_OK(add(std::move(nation)));

  TableSchema supplier("supplier");
  QUARRY_RETURN_NOT_OK(supplier.AddColumn({"s_suppkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(supplier.AddColumn({"s_name", DataType::kString, false}));
  QUARRY_RETURN_NOT_OK(supplier.AddColumn({"s_nationkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(supplier.AddColumn({"s_acctbal", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(supplier.SetPrimaryKey({"s_suppkey"}));
  QUARRY_RETURN_NOT_OK(
      supplier.AddForeignKey({{"s_nationkey"}, "nation", {"n_nationkey"}}));
  QUARRY_RETURN_NOT_OK(add(std::move(supplier)));

  TableSchema customer("customer");
  QUARRY_RETURN_NOT_OK(customer.AddColumn({"c_custkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(customer.AddColumn({"c_name", DataType::kString, false}));
  QUARRY_RETURN_NOT_OK(customer.AddColumn({"c_nationkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(customer.AddColumn({"c_acctbal", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(
      customer.AddColumn({"c_mktsegment", DataType::kString, true}));
  QUARRY_RETURN_NOT_OK(customer.SetPrimaryKey({"c_custkey"}));
  QUARRY_RETURN_NOT_OK(
      customer.AddForeignKey({{"c_nationkey"}, "nation", {"n_nationkey"}}));
  QUARRY_RETURN_NOT_OK(add(std::move(customer)));

  TableSchema part("part");
  QUARRY_RETURN_NOT_OK(part.AddColumn({"p_partkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(part.AddColumn({"p_name", DataType::kString, false}));
  QUARRY_RETURN_NOT_OK(part.AddColumn({"p_brand", DataType::kString, true}));
  QUARRY_RETURN_NOT_OK(part.AddColumn({"p_type", DataType::kString, true}));
  QUARRY_RETURN_NOT_OK(part.AddColumn({"p_retailprice", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(part.SetPrimaryKey({"p_partkey"}));
  QUARRY_RETURN_NOT_OK(add(std::move(part)));

  TableSchema partsupp("partsupp");
  QUARRY_RETURN_NOT_OK(partsupp.AddColumn({"ps_partkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(partsupp.AddColumn({"ps_suppkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(
      partsupp.AddColumn({"ps_availqty", DataType::kInt64, true}));
  QUARRY_RETURN_NOT_OK(
      partsupp.AddColumn({"ps_supplycost", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(partsupp.SetPrimaryKey({"ps_partkey", "ps_suppkey"}));
  QUARRY_RETURN_NOT_OK(
      partsupp.AddForeignKey({{"ps_partkey"}, "part", {"p_partkey"}}));
  QUARRY_RETURN_NOT_OK(
      partsupp.AddForeignKey({{"ps_suppkey"}, "supplier", {"s_suppkey"}}));
  QUARRY_RETURN_NOT_OK(add(std::move(partsupp)));

  TableSchema orders("orders");
  QUARRY_RETURN_NOT_OK(orders.AddColumn({"o_orderkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(orders.AddColumn({"o_custkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(
      orders.AddColumn({"o_orderstatus", DataType::kString, true}));
  QUARRY_RETURN_NOT_OK(
      orders.AddColumn({"o_totalprice", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(orders.AddColumn({"o_orderdate", DataType::kDate, true}));
  QUARRY_RETURN_NOT_OK(orders.SetPrimaryKey({"o_orderkey"}));
  QUARRY_RETURN_NOT_OK(
      orders.AddForeignKey({{"o_custkey"}, "customer", {"c_custkey"}}));
  QUARRY_RETURN_NOT_OK(add(std::move(orders)));

  TableSchema lineitem("lineitem");
  QUARRY_RETURN_NOT_OK(
      lineitem.AddColumn({"l_orderkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(
      lineitem.AddColumn({"l_linenumber", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(lineitem.AddColumn({"l_partkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(lineitem.AddColumn({"l_suppkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(
      lineitem.AddColumn({"l_quantity", DataType::kInt64, true}));
  QUARRY_RETURN_NOT_OK(
      lineitem.AddColumn({"l_extendedprice", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(
      lineitem.AddColumn({"l_discount", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(lineitem.AddColumn({"l_tax", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(lineitem.AddColumn({"l_shipdate", DataType::kDate, true}));
  QUARRY_RETURN_NOT_OK(
      lineitem.AddColumn({"l_returnflag", DataType::kString, true}));
  QUARRY_RETURN_NOT_OK(lineitem.SetPrimaryKey({"l_orderkey", "l_linenumber"}));
  QUARRY_RETURN_NOT_OK(
      lineitem.AddForeignKey({{"l_orderkey"}, "orders", {"o_orderkey"}}));
  QUARRY_RETURN_NOT_OK(
      lineitem.AddForeignKey({{"l_partkey"}, "part", {"p_partkey"}}));
  QUARRY_RETURN_NOT_OK(
      lineitem.AddForeignKey({{"l_suppkey"}, "supplier", {"s_suppkey"}}));
  QUARRY_RETURN_NOT_OK(add(std::move(lineitem)));

  return Status::OK();
}

}  // namespace

int64_t ExpectedRows(const std::string& table, const TpchConfig& config) {
  Counts counts = ComputeCounts(config);
  if (table == "region") return 5;
  if (table == "nation") return 25;
  if (table == "supplier") return counts.supplier;
  if (table == "customer") return counts.customer;
  if (table == "part") return counts.part;
  if (table == "partsupp") return counts.part * 2;
  if (table == "orders") return counts.orders;
  if (table == "lineitem") return counts.orders * 4;  // mean of 1..7
  return 0;
}

Status PopulateTpch(Database* db, const TpchConfig& config) {
  if (config.scale_factor <= 0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  QUARRY_RETURN_NOT_OK(CreateSchemas(db));
  Prng rng(config.seed);
  Counts counts = ComputeCounts(config);

  Table* region = *db->GetTable("region");
  for (int i = 0; i < static_cast<int>(kRegions.size()); ++i) {
    QUARRY_RETURN_NOT_OK(
        region->Insert({Value::Int(i), Value::String(kRegions[i])}));
  }

  Table* nation = *db->GetTable("nation");
  for (int i = 0; i < static_cast<int>(kNations.size()); ++i) {
    QUARRY_RETURN_NOT_OK(nation->Insert({Value::Int(i),
                                         Value::String(kNations[i].first),
                                         Value::Int(kNations[i].second)}));
  }

  Table* supplier = *db->GetTable("supplier");
  for (int64_t i = 1; i <= counts.supplier; ++i) {
    QUARRY_RETURN_NOT_OK(supplier->Insert(
        {Value::Int(i), Value::String("Supplier#" + std::to_string(i)),
         Value::Int(rng.Uniform(0, 24)),
         Value::Double(rng.Uniform(-99999, 999999) / 100.0)}));
  }

  Table* customer = *db->GetTable("customer");
  for (int64_t i = 1; i <= counts.customer; ++i) {
    QUARRY_RETURN_NOT_OK(customer->Insert(
        {Value::Int(i), Value::String("Customer#" + std::to_string(i)),
         Value::Int(rng.Uniform(0, 24)),
         Value::Double(rng.Uniform(-99999, 999999) / 100.0),
         Value::String(kSegments[rng.Uniform(0, 4)])}));
  }

  Table* part = *db->GetTable("part");
  for (int64_t i = 1; i <= counts.part; ++i) {
    std::string name = std::string(kPartAdjectives[rng.Uniform(0, 5)]) + " " +
                       kPartNouns[rng.Uniform(0, 5)] + " " +
                       std::to_string(i);
    QUARRY_RETURN_NOT_OK(part->Insert(
        {Value::Int(i), Value::String(std::move(name)),
         Value::String("Brand#" + std::to_string(rng.Uniform(1, 5)) +
                       std::to_string(rng.Uniform(1, 5))),
         Value::String(kPartTypes[rng.Uniform(0, 4)]),
         Value::Double(900.0 + static_cast<double>(i % 1000))}));
  }

  // Each part gets 2 suppliers (TPC-H uses 4; 2 keeps tiny scales joinable).
  // Remember them so lineitems reference a valid (part, supplier) offer and
  // the Lineitem->Partsupp association joins without loss.
  Table* partsupp = *db->GetTable("partsupp");
  std::vector<std::array<int64_t, 2>> suppliers_of_part(
      static_cast<size_t>(counts.part) + 1);
  for (int64_t p = 1; p <= counts.part; ++p) {
    int64_t s1 = rng.Uniform(1, counts.supplier);
    int64_t s2 = s1 % counts.supplier + 1;
    suppliers_of_part[static_cast<size_t>(p)] = {s1, s2};
    for (int64_t s : {s1, s2}) {
      QUARRY_RETURN_NOT_OK(partsupp->Insert(
          {Value::Int(p), Value::Int(s), Value::Int(rng.Uniform(1, 9999)),
           Value::Double(rng.Uniform(100, 100000) / 100.0)}));
    }
  }

  const int32_t kStartDate = storage::DaysFromCivil(1992, 1, 1);
  const int32_t kEndDate = storage::DaysFromCivil(1998, 8, 2);
  Table* orders = *db->GetTable("orders");
  Table* lineitem = *db->GetTable("lineitem");
  for (int64_t o = 1; o <= counts.orders; ++o) {
    int32_t order_date =
        static_cast<int32_t>(rng.Uniform(kStartDate, kEndDate));
    int64_t lines = rng.Uniform(1, 7);
    double total = 0;
    for (int64_t l = 1; l <= lines; ++l) {
      int64_t partkey = rng.Uniform(1, counts.part);
      int64_t quantity = rng.Uniform(1, 50);
      double extended =
          static_cast<double>(quantity) * (900.0 + static_cast<double>(partkey % 1000));
      double discount = static_cast<double>(rng.Uniform(0, 10)) / 100.0;
      double tax = static_cast<double>(rng.Uniform(0, 8)) / 100.0;
      total += extended * (1.0 - discount) * (1.0 + tax);
      int64_t suppkey =
          suppliers_of_part[static_cast<size_t>(partkey)][rng.Uniform(0, 1)];
      QUARRY_RETURN_NOT_OK(lineitem->Insert(
          {Value::Int(o), Value::Int(l), Value::Int(partkey),
           Value::Int(suppkey), Value::Int(quantity),
           Value::Double(extended), Value::Double(discount),
           Value::Double(tax),
           Value::Date(order_date + static_cast<int32_t>(rng.Uniform(1, 121))),
           Value::String(rng.Chance(0.25) ? "R" : (rng.Chance(0.5) ? "A"
                                                                   : "N"))}));
    }
    QUARRY_RETURN_NOT_OK(orders->Insert(
        {Value::Int(o), Value::Int(rng.Uniform(1, counts.customer)),
         Value::String(rng.Chance(0.5) ? "O" : "F"), Value::Double(total),
         Value::Date(order_date)}));
  }
  return Status::OK();
}

}  // namespace quarry::datagen
