#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "obs/request_log.h"

namespace quarry::obs {
namespace {

const char* StatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Counter& ShedTotal() {
  static Counter& c = MetricsRegistry::Instance().counter(
      "quarry_http_shed_total",
      "Connections shed with an immediate 503 because the pending queue "
      "was full");
  return c;
}

Histogram& RequestMicros() {
  static Histogram& h = MetricsRegistry::Instance().histogram(
      "quarry_http_request_micros",
      "HTTP request service latency (read + dispatch + write), microseconds",
      LatencyBucketsMicros());
  return h;
}

Counter& RequestsTotalFor(const std::string& path) {
  return MetricsRegistry::Instance().counter(
      "quarry_http_requests_total", "HTTP requests dispatched, by path",
      {{"path", path}});
}

Counter& ResponsesTotalFor(int code) {
  return MetricsRegistry::Instance().counter(
      "quarry_http_responses_total", "HTTP responses written, by status code",
      {{"code", std::to_string(code)}});
}

/// Sends the whole buffer, tolerating short writes; best effort (the peer
/// may have gone away — that is its problem, not ours).
void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

std::string RenderResponse(int code, const std::string& content_type,
                           const std::string& body, bool include_body,
                           int retry_after_seconds = 0) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                    StatusText(code) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (retry_after_seconds > 0) {
    // Backpressure surfaced end-to-end (docs/ROBUSTNESS.md §11): shed
    // responses tell well-behaved clients when to come back.
    out += "Retry-After: " + std::to_string(retry_after_seconds) + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  if (include_body) out += body;
  return out;
}

void SendError(int fd, int code, const std::string& message,
               int retry_after_seconds = 0) {
  ResponsesTotalFor(code).Increment();
  SendAll(fd, RenderResponse(code, "text/plain; charset=utf-8", message + "\n",
                             /*include_body=*/true, retry_after_seconds));
}

}  // namespace

HttpExporter::HttpExporter(HttpExporterOptions options)
    : options_(std::move(options)) {
  // Eager registration (zero-registration convention): every family and the
  // full status-code label set expose zeros from the first scrape on.
  ShedTotal();
  RequestMicros();
  for (int code : {200, 400, 404, 405, 408, 431, 500, 503}) {
    ResponsesTotalFor(code);
  }
  RequestsTotalFor("other");

  AddHandler("/metrics", [](const Request&) {
    Response resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = MetricsRegistry::Instance().PrometheusText();
    return resp;
  });
  AddHandler("/metrics.json", [](const Request&) {
    Response resp;
    resp.content_type = "application/json";
    resp.body = MetricsRegistry::Instance().JsonSnapshot();
    return resp;
  });
  AddHandler("/requestz", [](const Request&) {
    const RequestLog& log = RequestLog::Instance();
    Response resp;
    resp.content_type = "application/json";
    std::string body = "{\"slow_threshold_micros\":" +
                       std::to_string(static_cast<int64_t>(
                           log.slow_threshold_micros()));
    body += ",\"total_recorded\":" + std::to_string(log.total_recorded());
    body += ",\"records\":[";
    bool first = true;
    for (const RequestRecord& record : log.Snapshot()) {
      if (!first) body += ",";
      first = false;
      body += record.ToJson();
    }
    body += "]}";
    resp.body = std::move(body);
    return resp;
  });
}

HttpExporter::~HttpExporter() { Stop(); }

void HttpExporter::AddHandler(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
  RequestsTotalFor(path);  // Expose a zero before the first hit.
}

bool HttpExporter::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) return true;

  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 16) < 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  int workers = options_.worker_threads > 0 ? options_.worker_threads : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock the acceptor: shutdown makes a blocking accept return.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Anything still queued is turned away, not silently dropped.
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int fd : pending_) {
    SendError(fd, 503, "shutting down", /*retry_after_seconds=*/1);
    ::close(fd);
  }
  pending_.clear();
}

void HttpExporter::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // Listener is gone; nothing left to accept.
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (static_cast<int>(pending_.size()) >=
          options_.max_pending_connections) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      ShedTotal().Increment();
      SendError(fd, 503, "overloaded", /*retry_after_seconds=*/1);
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void HttpExporter::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) return;  // Stopping and drained.
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void HttpExporter::ServeConnection(int fd) {
  auto start = std::chrono::steady_clock::now();
  auto finish = [&] {
    RequestMicros().Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
    ::close(fd);
  };

  if (options_.read_timeout_millis > 0) {
    timeval tv{};
    tv.tv_sec = options_.read_timeout_millis / 1000;
    tv.tv_usec = (options_.read_timeout_millis % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  // Collect the request head (request line + headers). Bodies are neither
  // expected nor read — every route is a GET.
  std::string head;
  bool complete = false;
  char buf[1024];
  while (head.size() <= options_.max_request_bytes) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        SendError(fd, 408, "timed out reading request");
        finish();
        return;
      }
      if (errno == EINTR) continue;
      finish();  // Peer error; nothing to say to it.
      return;
    }
    if (n == 0) break;  // Peer closed before completing the head.
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  if (head.size() > options_.max_request_bytes) {
    SendError(fd, 431, "request head too large");
    finish();
    return;
  }
  if (!complete) {
    SendError(fd, 400, "incomplete request");
    finish();
    return;
  }

  // Parse "METHOD SP target SP HTTP/x.y".
  size_t line_end = head.find_first_of("\r\n");
  std::string line = head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? sp1 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    SendError(fd, 400, "malformed request line");
    finish();
    return;
  }
  Request request;
  request.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') {
    SendError(fd, 400, "malformed request target");
    finish();
    return;
  }
  size_t qmark = target.find('?');
  request.path = target.substr(0, qmark);
  if (qmark != std::string::npos) request.query = target.substr(qmark + 1);

  if (request.method != "GET" && request.method != "HEAD") {
    SendError(fd, 405, "only GET and HEAD are served");
    finish();
    return;
  }

  auto it = handlers_.find(request.path);
  RequestsTotalFor(it == handlers_.end() ? "other" : request.path)
      .Increment();
  if (it == handlers_.end()) {
    SendError(fd, 404, "no such endpoint");
    finish();
    return;
  }

  Response response;
  try {
    response = it->second(request);
  } catch (...) {
    SendError(fd, 500, "handler failed");
    finish();
    return;
  }
  ResponsesTotalFor(response.code).Increment();
  SendAll(fd, RenderResponse(response.code, response.content_type,
                             response.body,
                             /*include_body=*/request.method != "HEAD",
                             response.retry_after_seconds));
  finish();
}

}  // namespace quarry::obs
