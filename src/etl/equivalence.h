#ifndef QUARRY_ETL_EQUIVALENCE_H_
#define QUARRY_ETL_EQUIVALENCE_H_

#include "common/result.h"
#include "etl/flow.h"
#include "etl/schema_inference.h"

namespace quarry::etl {

/// \brief Generic equivalence rules over logical ETL flows (paper §2.3:
/// "ETL Process Integrator aligns the order of ETL operations by applying
/// generic equivalence rules").
///
/// Each rule performs at most one semantics-preserving rewrite per call and
/// reports whether it changed the flow; Normalize drives them to a fixpoint
/// so that two flows computing the same result converge to the same shape —
/// which is what lets the integrator discover the largest overlap.
///
/// Safety: a node is only moved past another when it is that node's sole
/// consumer, so no other branch of the DAG observes a changed dataset.

/// Moves one Selection below its upstream Join (onto the side whose columns
/// cover the predicate) or below a row-preserving unary operator (Function,
/// Sort, SurrogateKey, Projection) that doesn't produce a referenced column.
Result<bool> PushSelectionDown(Flow* flow, const TableColumns& sources);

/// Reorders a pair of directly adjacent Selections so the lexicographically
/// smaller predicate runs first (deterministic canonical order; selections
/// commute).
Result<bool> CanonicalizeSelectionOrder(Flow* flow);

/// Fuses a chain of two adjacent Selections into one with an AND predicate
/// (kept out of Normalize: it merges requirement traces, which the
/// integrator prefers to keep separate; exposed for the ablation bench).
Result<bool> MergeAdjacentSelections(Flow* flow);

/// Drops a Projection whose output equals its input's columns.
Result<bool> RemoveRedundantProjection(Flow* flow,
                                       const TableColumns& sources);

/// Applies {PushSelectionDown, CanonicalizeSelectionOrder,
/// RemoveRedundantProjection} to a fixpoint. Returns the number of rewrites
/// applied.
Result<int> Normalize(Flow* flow, const TableColumns& sources);

/// Column-liveness optimization: computes, backwards from the sinks, which
/// columns each operator's consumers actually need, and inserts a narrow
/// Projection directly after every Extraction whose table provides more.
/// Loaders conservatively require their whole input (their target binding
/// is resolved at run time). Idempotent; returns the number of projections
/// inserted. Kept out of Normalize — it changes flow shape, so the
/// deployer applies it at execution-plan time instead (see the A4 ablation
/// for the measured effect).
Result<int> InsertEarlyProjections(Flow* flow, const TableColumns& sources);

}  // namespace quarry::etl

#endif  // QUARRY_ETL_EQUIVALENCE_H_
