// Experiment M1 (EXPERIMENTS.md): the Communication & Metadata layer
// (paper §2.5) — parse/serialize throughput of the three interchange
// formats (xRQ, xMD, xLM), the generic XML-JSON-XML bridge, and metadata
// repository store/fetch round trips.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/metadata_repository.h"
#include "etl/xlm.h"
#include "interpreter/interpreter.h"
#include "json/xml_json.h"
#include "mdschema/md_schema.h"
#include "ontology/tpch_ontology.h"
#include "requirements/requirement.h"
#include "requirements/workload.h"
#include "xml/xml.h"

namespace {

using quarry::interpreter::Interpreter;

/// A realistic artifact corpus: the partial designs of an 8-IR workload.
struct Corpus {
  quarry::ontology::Ontology onto = quarry::ontology::BuildTpchOntology();
  quarry::ontology::SourceMapping mapping =
      quarry::ontology::BuildTpchMappings();
  std::vector<quarry::req::InformationRequirement> irs;
  std::vector<quarry::md::MdSchema> schemas;
  std::vector<quarry::etl::Flow> flows;
  std::vector<std::string> xrq_texts, xmd_texts, xlm_texts;

  Corpus() {
    Interpreter interpreter(&onto, &mapping);
    quarry::req::WorkloadConfig config;
    config.num_requirements = 8;
    config.overlap = 0.5;
    config.seed = 19;
    for (const auto& ir : quarry::req::GenerateTpchWorkload(config)) {
      auto design = interpreter.Interpret(ir);
      if (!design.ok()) std::abort();
      irs.push_back(ir);
      xrq_texts.push_back(quarry::xml::Write(*quarry::req::ToXrq(ir)));
      xmd_texts.push_back(quarry::xml::Write(*design->schema.ToXml()));
      xlm_texts.push_back(
          quarry::xml::Write(*quarry::etl::FlowToXlm(design->flow)));
      schemas.push_back(std::move(design->schema));
      flows.push_back(std::move(design->flow));
    }
  }
};

Corpus& SharedCorpus() {
  static Corpus* corpus = new Corpus();
  return *corpus;
}

void PrintSeries() {
  Corpus& corpus = SharedCorpus();
  size_t xrq = 0, xmd = 0, xlm = 0;
  for (size_t i = 0; i < corpus.irs.size(); ++i) {
    xrq += corpus.xrq_texts[i].size();
    xmd += corpus.xmd_texts[i].size();
    xlm += corpus.xlm_texts[i].size();
  }
  std::printf("M1: metadata-layer corpus (8 partial designs)\n");
  std::printf("  xRQ total %zu bytes, xMD total %zu bytes, xLM total %zu "
              "bytes\n\n",
              xrq, xmd, xlm);
}

void BM_ParseXrq(benchmark::State& state) {
  Corpus& corpus = SharedCorpus();
  size_t bytes = 0;
  for (auto _ : state) {
    for (const std::string& text : corpus.xrq_texts) {
      auto doc = quarry::xml::Parse(text);
      if (!doc.ok()) std::abort();
      auto ir = quarry::req::FromXrq(**doc);
      if (!ir.ok()) std::abort();
      benchmark::DoNotOptimize(ir->measures.size());
      bytes += text.size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ParseXrq);

void BM_ParseXmd(benchmark::State& state) {
  Corpus& corpus = SharedCorpus();
  size_t bytes = 0;
  for (auto _ : state) {
    for (const std::string& text : corpus.xmd_texts) {
      auto doc = quarry::xml::Parse(text);
      if (!doc.ok()) std::abort();
      auto schema = quarry::md::MdSchema::FromXml(**doc);
      if (!schema.ok()) std::abort();
      benchmark::DoNotOptimize(schema->facts().size());
      bytes += text.size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ParseXmd);

void BM_ParseXlm(benchmark::State& state) {
  Corpus& corpus = SharedCorpus();
  size_t bytes = 0;
  for (auto _ : state) {
    for (const std::string& text : corpus.xlm_texts) {
      auto doc = quarry::xml::Parse(text);
      if (!doc.ok()) std::abort();
      auto flow = quarry::etl::FlowFromXlm(**doc);
      if (!flow.ok()) std::abort();
      benchmark::DoNotOptimize(flow->num_nodes());
      bytes += text.size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ParseXlm);

void BM_SerializeXlm(benchmark::State& state) {
  Corpus& corpus = SharedCorpus();
  for (auto _ : state) {
    for (const quarry::etl::Flow& flow : corpus.flows) {
      std::string text = quarry::xml::Write(*quarry::etl::FlowToXlm(flow));
      benchmark::DoNotOptimize(text.size());
    }
  }
}
BENCHMARK(BM_SerializeXlm);

void BM_XmlJsonXmlBridge(benchmark::State& state) {
  Corpus& corpus = SharedCorpus();
  auto doc = quarry::xml::Parse(corpus.xlm_texts[0]);
  if (!doc.ok()) std::abort();
  for (auto _ : state) {
    quarry::json::Value mid = quarry::json::XmlToJson(**doc);
    std::string json_text = quarry::json::Write(mid);
    auto reparsed = quarry::json::Parse(json_text);
    if (!reparsed.ok()) std::abort();
    auto back = quarry::json::JsonToXml(*reparsed);
    if (!back.ok()) std::abort();
    benchmark::DoNotOptimize((*back)->SubtreeSize());
  }
}
BENCHMARK(BM_XmlJsonXmlBridge);

void BM_RepositoryStoreFetch(benchmark::State& state) {
  Corpus& corpus = SharedCorpus();
  auto doc = quarry::xml::Parse(corpus.xmd_texts[0]);
  if (!doc.ok()) std::abort();
  quarry::core::MetadataRepository repository;
  int i = 0;
  for (auto _ : state) {
    std::string id = "doc-" + std::to_string(i++ % 64);
    if (!repository.StoreXml("bench", id, **doc).ok()) std::abort();
    auto fetched = repository.FetchXml("bench", id);
    if (!fetched.ok()) std::abort();
    benchmark::DoNotOptimize((*fetched)->SubtreeSize());
  }
}
BENCHMARK(BM_RepositoryStoreFetch);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
