#include "core/quarry.h"

#include <chrono>
#include <utility>

#include "deployer/pdi_generator.h"
#include "deployer/sql_generator.h"
#include "etl/xlm.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "requirements/query_parser.h"
#include "xml/xml.h"

namespace quarry::core {

namespace {

/// RAII marker of "a build of the next generation is in flight" — the
/// precondition for degrading a shed query to a stale read (§9.3).
class BuildInFlight {
 public:
  explicit BuildInFlight(std::atomic<int>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  ~BuildInFlight() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  BuildInFlight(const BuildInFlight&) = delete;
  BuildInFlight& operator=(const BuildInFlight&) = delete;

 private:
  std::atomic<int>* counter_;
};

}  // namespace

Quarry::Quarry(ontology::Ontology onto, ontology::SourceMapping mapping,
               const storage::Database* source, QuarryConfig config)
    : onto_(std::make_unique<ontology::Ontology>(std::move(onto))),
      mapping_(std::make_unique<ontology::SourceMapping>(std::move(mapping))),
      source_(source),
      config_(std::move(config)),
      warehouse_(config_.database_name) {
  elicitor_ = std::make_unique<req::Elicitor>(onto_.get());
  interpreter_ =
      std::make_unique<interpreter::Interpreter>(onto_.get(), mapping_.get());
  etl::TableColumns columns;
  std::map<std::string, int64_t> rows;
  for (const std::string& name : source_->TableNames()) {
    const storage::Table& table = **source_->GetTable(name);
    std::vector<std::string> cols;
    for (const storage::Column& c : table.schema().columns()) {
      cols.push_back(c.name);
    }
    columns[name] = std::move(cols);
    rows[name] = static_cast<int64_t>(table.num_rows());
  }
  design_ = std::make_unique<integrator::DesignIntegrator>(
      onto_.get(), std::move(columns), std::move(rows), config_.md_options,
      config_.etl_cost);
  admission_ = std::make_unique<AdmissionController>(config_.admission);
  // Serving lanes (§9.4): the lane names are fixed here — they are metric
  // identities (quarry_admission_*{lane=...}), not configuration. The
  // design lane keeps whatever the caller set (empty by default, i.e. the
  // unlabeled pre-lane identities).
  AdmissionOptions query_opts = config_.serving.query_admission;
  query_opts.lane = "query";
  query_admission_ = std::make_unique<AdmissionController>(query_opts);
  AdmissionOptions stale_opts = config_.serving.stale_admission;
  stale_opts.lane = "stale";
  stale_admission_ = std::make_unique<AdmissionController>(stale_opts);

  auto& registry = obs::MetricsRegistry::Instance();
  // Both modes registered eagerly so dashboards see explicit zeros.
  queries_fresh_total_ = &registry.counter(
      "quarry_serving_queries_total",
      "Cube queries served from a pinned warehouse generation, by mode.",
      {{"mode", "fresh"}});
  queries_stale_total_ = &registry.counter(
      "quarry_serving_queries_total",
      "Cube queries served from a pinned warehouse generation, by mode.",
      {{"mode", "stale"}});
  query_micros_ = &registry.histogram(
      "quarry_serving_query_micros",
      "End-to-end latency of served cube queries (pin + compile + execute).",
      obs::LatencyBucketsMicros());
}

Result<std::unique_ptr<Quarry>> Quarry::Create(
    ontology::Ontology onto, ontology::SourceMapping mapping,
    const storage::Database* source, QuarryConfig config) {
  if (source == nullptr) {
    return Status::InvalidArgument("source database is null");
  }
  QUARRY_RETURN_NOT_OK(
      mapping.Validate(onto).WithContext("source schema mappings"));
  auto quarry = std::unique_ptr<Quarry>(
      new Quarry(std::move(onto), std::move(mapping), source,
                 std::move(config)));

  // Persist the semantic metadata (paper §2.5: the repository holds domain
  // ontologies and source schema mappings).
  QUARRY_RETURN_NOT_OK(quarry->repository_.StoreXml(
      "ontologies", quarry->onto_->name(), *quarry->onto_->ToXml()));
  QUARRY_RETURN_NOT_OK(quarry->repository_.StoreXml(
      "mappings", quarry->onto_->name(), *quarry->mapping_->ToXml()));

  // Built-in export parsers.
  const storage::Database* source_db = quarry->source_;
  const ontology::SourceMapping* mapping_ptr = quarry->mapping_.get();
  std::string db_name = quarry->config_.database_name;
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "sql", [source_db, mapping_ptr, db_name](const xml::Element& doc)
                 -> Result<std::string> {
        QUARRY_ASSIGN_OR_RETURN(md::MdSchema schema, md::MdSchema::FromXml(doc));
        return deployer::GenerateSql(schema, *mapping_ptr, *source_db,
                                     db_name);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "pdi", [db_name](const xml::Element& doc) -> Result<std::string> {
        QUARRY_ASSIGN_OR_RETURN(etl::Flow flow, etl::FlowFromXlm(doc));
        return deployer::GeneratePdiText(flow, db_name);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "xmd", [](const xml::Element& doc) -> Result<std::string> {
        return xml::Write(doc);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "xlm", [](const xml::Element& doc) -> Result<std::string> {
        return xml::Write(doc);
      }));
  // Built-in import parsers (paper §2.5: "plug-in capabilities for adding
  // import and export parsers").
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterImporter(
      "arq",
      [](std::string_view text) -> Result<std::unique_ptr<xml::Element>> {
        QUARRY_ASSIGN_OR_RETURN(req::InformationRequirement ir,
                                req::ParseRequirementQuery(text));
        return req::ToXrq(ir);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterImporter(
      "xrq",
      [](std::string_view text) -> Result<std::unique_ptr<xml::Element>> {
        return xml::Parse(text);
      }));
  return quarry;
}

Status Quarry::EnableDurability(const std::string& dir) {
  return repository_.EnableDurability(dir);
}

Status Quarry::EnableServingDurability(const std::string& dir) {
  // The annex persisted with each generation is the serialized xMD
  // document; recovery parses it back into the immutable schema snapshot
  // that SubmitQuery compiles cube queries against.
  storage::GenerationStore::AnnexDecoder decoder =
      [](const std::string& bytes) -> Result<std::shared_ptr<const void>> {
    QUARRY_ASSIGN_OR_RETURN(auto root, xml::Parse(bytes));
    QUARRY_ASSIGN_OR_RETURN(md::MdSchema schema, md::MdSchema::FromXml(*root));
    return std::shared_ptr<const void>(
        std::make_shared<const md::MdSchema>(std::move(schema)));
  };
  return warehouse_.EnableDurability(dir, std::move(decoder),
                                     &recovery_report_.warehouse);
}

std::string RecoveryReport::ToString() const {
  return "metadata{" + metadata.ToString() + "} warehouse{" +
         warehouse.ToString() + "}";
}

Status Quarry::RefreshUnifiedArtifacts() {
  QUARRY_RETURN_NOT_OK(repository_.StoreXml("unified_xmd", "unified",
                                            *design_->schema().ToXml()));
  QUARRY_RETURN_NOT_OK(repository_.StoreXml("unified_xlm", "unified",
                                            *etl::FlowToXlm(design_->flow())));
  return Status::OK();
}

Result<integrator::IntegrationOutcome> Quarry::AddRequirement(
    const req::InformationRequirement& ir, const ExecContext* ctx) {
  QUARRY_NAMED_SPAN(span, "quarry.add_requirement");
  QUARRY_SPAN_ATTR(span, "ir_id", ir.id);
  QUARRY_ASSIGN_OR_RETURN(interpreter::PartialDesign partial,
                          interpreter_->Interpret(ir, ctx));
  QUARRY_ASSIGN_OR_RETURN(integrator::IntegrationOutcome outcome,
                          design_->AddRequirement(ir, partial, ctx));
  // Record every artifact of this step.
  QUARRY_SPAN("quarry.store_artifacts");
  QUARRY_RETURN_NOT_OK(repository_.StoreXml("xrq", ir.id, *req::ToXrq(ir)));
  QUARRY_RETURN_NOT_OK(
      repository_.StoreXml("partial_xmd", ir.id, *partial.schema.ToXml()));
  QUARRY_RETURN_NOT_OK(
      repository_.StoreXml("partial_xlm", ir.id,
                           *etl::FlowToXlm(partial.flow)));
  QUARRY_RETURN_NOT_OK(RefreshUnifiedArtifacts());
  return outcome;
}

Result<integrator::IntegrationOutcome> Quarry::AddRequirementFromQuery(
    std::string_view query_text, const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(auto xrq, repository_.Import("arq", query_text));
  QUARRY_ASSIGN_OR_RETURN(req::InformationRequirement ir,
                          req::FromXrq(*xrq));
  return AddRequirement(ir, ctx);
}

Status Quarry::RemoveRequirement(const std::string& ir_id) {
  QUARRY_RETURN_NOT_OK(design_->RemoveRequirement(ir_id));
  (void)repository_.Remove("xrq", ir_id);
  (void)repository_.Remove("partial_xmd", ir_id);
  (void)repository_.Remove("partial_xlm", ir_id);
  return RefreshUnifiedArtifacts();
}

Result<integrator::IntegrationOutcome> Quarry::ChangeRequirement(
    const req::InformationRequirement& ir, const ExecContext* ctx) {
  QUARRY_RETURN_NOT_OK(
      CheckContext(ctx, "change of requirement '" + ir.id + "'"));
  QUARRY_RETURN_NOT_OK(design_->RemoveRequirement(ir.id));
  return AddRequirement(ir, ctx);
}

Result<deployer::DeploymentReport> Quarry::Deploy(storage::Database* target) {
  if (target == nullptr) {
    return Status::InvalidArgument("target database is null");
  }
  deployer::Deployer dep(source_, target);
  return dep.Deploy(design_->schema(), design_->flow(), *mapping_,
                    config_.database_name);
}

Result<deployer::DeploymentOutcome> Quarry::DeployResilient(
    storage::Database* target, deployer::DeployOptions options) {
  // Admission-gated like every other design-mutating entry point (§7): the
  // direct call and SubmitDeploy pass the same single gate. (Only the
  // legacy non-transactional Deploy() stays ungated.)
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(options.context));
  std::lock_guard<std::mutex> lock(submit_mu_);
  return DeployResilientInternal(target, std::move(options));
}

Result<deployer::DeploymentOutcome> Quarry::DeployResilientInternal(
    storage::Database* target, deployer::DeployOptions options) {
  if (target == nullptr) {
    return Status::InvalidArgument("target database is null");
  }
  options.database_name = config_.database_name;
  options.metadata = &repository_.store();
  // The instance-wide scheduler config applies unless this deployment's
  // options already ask for parallelism themselves.
  if (options.exec.max_workers <= 1) options.exec = config_.etl_exec;
  deployer::Deployer dep(source_, target);
  return dep.DeployTransactional(design_->schema(), design_->flow(),
                                 *mapping_, options);
}

Result<etl::ExecutionReport> Quarry::Refresh(storage::Database* target,
                                             const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(ctx));
  std::lock_guard<std::mutex> lock(submit_mu_);
  return RefreshInternal(target, ctx);
}

Result<etl::ExecutionReport> Quarry::RefreshInternal(storage::Database* target,
                                                     const ExecContext* ctx) {
  if (target == nullptr) {
    return Status::InvalidArgument("target database is null");
  }
  QUARRY_SPAN("quarry.refresh");
  deployer::Deployer dep(source_, target);
  return dep.Refresh(design_->flow(), {}, ctx, config_.etl_exec);
}

Result<integrator::IntegrationOutcome> Quarry::SubmitRequirement(
    const req::InformationRequirement& ir, const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(ctx));
  std::lock_guard<std::mutex> lock(submit_mu_);
  return AddRequirement(ir, ctx);
}

Result<integrator::IntegrationOutcome> Quarry::SubmitRequirementFromQuery(
    std::string_view query_text, const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(ctx));
  std::lock_guard<std::mutex> lock(submit_mu_);
  return AddRequirementFromQuery(query_text, ctx);
}

Status Quarry::SubmitRemoveRequirement(const std::string& ir_id,
                                       const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(ctx));
  std::lock_guard<std::mutex> lock(submit_mu_);
  QUARRY_RETURN_NOT_OK(CheckContext(ctx, "removal of '" + ir_id + "'"));
  return RemoveRequirement(ir_id);
}

Result<deployer::DeploymentOutcome> Quarry::SubmitDeploy(
    storage::Database* target, deployer::DeployOptions options,
    const ExecContext* ctx) {
  // DeployResilient admits + locks itself — forwarding keeps one gate pass.
  options.context = ctx;
  return DeployResilient(target, std::move(options));
}

Result<etl::ExecutionReport> Quarry::SubmitRefresh(storage::Database* target,
                                                   const ExecContext* ctx) {
  return Refresh(target, ctx);
}

Result<deployer::DeploymentOutcome> Quarry::DeployServing(
    deployer::DeployOptions options, const ExecContext* ctx) {
  if (ctx != nullptr) options.context = ctx;
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(options.context));
  std::lock_guard<std::mutex> lock(submit_mu_);
  return DeployServingInternal(std::move(options));
}

Result<deployer::DeploymentOutcome> Quarry::DeployServingInternal(
    deployer::DeployOptions options) {
  QUARRY_NAMED_SPAN(span, "quarry.deploy_serving");
  BuildInFlight build(&serving_builds_in_flight_);
  std::unique_ptr<storage::Database> scratch = warehouse_.BeginEmptyBuild();
  options.target_is_scratch = true;
  QUARRY_ASSIGN_OR_RETURN(
      deployer::DeploymentOutcome outcome,
      DeployResilientInternal(scratch.get(), std::move(options)));
  // A failed build never publishes: the scratch dies with this scope and
  // the currently-served generation is untouched. Best-effort partials do
  // publish — the stale lane and the metadata record mark them degraded.
  if (!outcome.success && !outcome.partial) return outcome;
  // The schema snapshot is published atomically with the data so queries
  // never read a schema newer (or older) than the tables they scan. Its
  // serialized form rides along so a durable store can persist it and
  // recovery can serve queries straight from disk (§10).
  auto annex = std::make_shared<const md::MdSchema>(design_->schema());
  const std::string annex_bytes = xml::Write(*annex->ToXml());
  Result<uint64_t> published =
      warehouse_.Publish(std::move(scratch), std::move(annex), annex_bytes);
  if (published.ok()) {
    outcome.published_generation = *published;
  }
  if (!published.ok()) {
    // O(1) rollback: nothing to restore — the built scratch is simply
    // discarded and readers keep the previously published generation.
    deployer::DeploymentFailure failure;
    failure.stage = "publish";
    failure.rolled_back = true;
    failure.cause = published.status();
    outcome.success = false;
    outcome.partial = false;
    outcome.failure = std::move(failure);
  }
  return outcome;
}

Result<etl::ExecutionReport> Quarry::RefreshServing(const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(ctx));
  std::lock_guard<std::mutex> lock(submit_mu_);
  if (!warehouse_.has_generation()) {
    return Status::NotFound(
        "no published warehouse generation to refresh — run DeployServing "
        "first");
  }
  QUARRY_SPAN("quarry.refresh_serving");
  BuildInFlight build(&serving_builds_in_flight_);
  // Clone-merge-publish: readers keep serving generation N from their pins
  // while the loaders merge the source delta into the clone.
  std::unique_ptr<storage::Database> scratch = warehouse_.BeginBuild();
  deployer::Deployer dep(source_, scratch.get());
  QUARRY_ASSIGN_OR_RETURN(
      etl::ExecutionReport report,
      dep.Refresh(design_->flow(), {}, ctx, config_.etl_exec));
  auto annex = std::make_shared<const md::MdSchema>(design_->schema());
  const std::string annex_bytes = xml::Write(*annex->ToXml());
  QUARRY_RETURN_NOT_OK(
      warehouse_.Publish(std::move(scratch), std::move(annex), annex_bytes)
          .status());
  return report;
}

Result<QueryResult> Quarry::SubmitQuery(const olap::CubeQuery& query,
                                        const QueryOptions& opts,
                                        const ExecContext* ctx) {
  Result<AdmissionController::Ticket> ticket = query_admission_->Admit(ctx);
  if (ticket.ok()) {
    return ExecutePinnedQuery(query, /*stale=*/false, ctx);
  }
  // Graceful degradation (§9.3): under overload while a publish is pending,
  // an opted-in caller may still be served generation N-1 through the
  // bounded stale lane instead of being turned away.
  if (ticket.status().IsOverloaded() && opts.allow_stale &&
      serving_builds_in_flight_.load(std::memory_order_relaxed) > 0) {
    Result<AdmissionController::Ticket> stale_ticket =
        stale_admission_->Admit(ctx);
    if (stale_ticket.ok()) {
      Result<QueryResult> stale =
          ExecutePinnedQuery(query, /*stale=*/true, ctx);
      // Nothing to degrade onto (single published generation): surface the
      // original overload, not the fallback's NotFound.
      if (stale.ok() || !stale.status().IsNotFound()) return stale;
    }
  }
  return ticket.status();
}

Result<QueryResult> Quarry::ExecutePinnedQuery(const olap::CubeQuery& query,
                                               bool stale,
                                               const ExecContext* ctx) {
  QUARRY_NAMED_SPAN(span, "quarry.submit_query");
  const auto start = std::chrono::steady_clock::now();
  QUARRY_ASSIGN_OR_RETURN(
      storage::GenerationStore::Pin pin,
      stale ? warehouse_.AcquirePrevious() : warehouse_.Acquire());
  QUARRY_SPAN_ATTR(span, "generation", std::to_string(pin.generation()));
  // The schema snapshot travels with the generation — reading the live
  // design_->schema() here would race with concurrent requirement changes.
  auto schema = std::static_pointer_cast<const md::MdSchema>(pin.annex());
  if (schema == nullptr) {
    return Status::Internal("generation " + std::to_string(pin.generation()) +
                            " was published without a schema annex");
  }
  olap::CubeQueryEngine engine(schema.get(), mapping_.get(), &pin.db());
  QUARRY_ASSIGN_OR_RETURN(etl::Dataset data, engine.Execute(query, ctx));
  (stale ? queries_stale_total_ : queries_fresh_total_)->Increment();
  query_micros_->Observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  QueryResult result;
  result.data = std::move(data);
  result.generation = pin.generation();
  result.stale = stale;
  return result;
}

Result<std::string> Quarry::ExportSchema(const std::string& format) const {
  return repository_.Export(format, *design_->schema().ToXml());
}

Result<std::string> Quarry::ExportFlow(const std::string& format) const {
  return repository_.Export(format, *etl::FlowToXlm(design_->flow()));
}

}  // namespace quarry::core
