#include "ontology/ontology.h"

#include <gtest/gtest.h>

#include "ontology/mapping.h"
#include "ontology/tpch_ontology.h"
#include "xml/xml.h"

namespace quarry::ontology {
namespace {

using storage::DataType;

TEST(OntologyTest, AddAndLookupConcepts) {
  Ontology onto("o");
  ASSERT_TRUE(onto.AddConcept("A").ok());
  ASSERT_TRUE(onto.AddConcept("B", "A").ok());
  EXPECT_TRUE(onto.HasConcept("A"));
  EXPECT_TRUE(onto.AddConcept("A").IsAlreadyExists());
  EXPECT_TRUE(onto.AddConcept("C", "nope").IsNotFound());
  EXPECT_EQ(onto.GetConcept("B")->parent_id, "A");
  EXPECT_TRUE(onto.GetConcept("zzz").status().IsNotFound());
}

TEST(OntologyTest, SubclassTransitivity) {
  Ontology onto("o");
  ASSERT_TRUE(onto.AddConcept("Thing").ok());
  ASSERT_TRUE(onto.AddConcept("Agent", "Thing").ok());
  ASSERT_TRUE(onto.AddConcept("Person", "Agent").ok());
  EXPECT_TRUE(onto.IsSubclassOf("Person", "Thing"));
  EXPECT_TRUE(onto.IsSubclassOf("Person", "Person"));
  EXPECT_FALSE(onto.IsSubclassOf("Thing", "Person"));
}

TEST(OntologyTest, PropertiesIncludeInherited) {
  Ontology onto("o");
  ASSERT_TRUE(onto.AddConcept("Base").ok());
  ASSERT_TRUE(onto.AddConcept("Derived", "Base").ok());
  ASSERT_TRUE(onto.AddDataProperty("Base", "name", DataType::kString).ok());
  ASSERT_TRUE(onto.AddDataProperty("Derived", "extra", DataType::kInt64).ok());
  auto props = onto.PropertiesOf("Derived");
  ASSERT_EQ(props.size(), 2u);
  EXPECT_EQ(props[0].id, "Derived.extra");
  EXPECT_EQ(props[1].id, "Base.name");
}

TEST(OntologyTest, PropertyRequiresConcept) {
  Ontology onto("o");
  EXPECT_TRUE(
      onto.AddDataProperty("nope", "x", DataType::kString).IsNotFound());
}

TEST(OntologyTest, AssociationEndpointsChecked) {
  Ontology onto("o");
  ASSERT_TRUE(onto.AddConcept("A").ok());
  EXPECT_TRUE(onto.AddAssociation("a1", "A", "B", Multiplicity::kManyToOne)
                  .IsNotFound());
  ASSERT_TRUE(onto.AddConcept("B").ok());
  EXPECT_TRUE(
      onto.AddAssociation("a1", "A", "B", Multiplicity::kManyToOne).ok());
  EXPECT_TRUE(onto.AddAssociation("a1", "A", "B", Multiplicity::kManyToOne)
                  .IsAlreadyExists());
}

TEST(OntologyTest, FunctionalStepRespectsMultiplicity) {
  Ontology onto("o");
  for (const char* c : {"A", "B", "C", "D", "E"}) {
    ASSERT_TRUE(onto.AddConcept(c).ok());
  }
  ASSERT_TRUE(
      onto.AddAssociation("ab", "A", "B", Multiplicity::kManyToOne).ok());
  ASSERT_TRUE(
      onto.AddAssociation("ac", "A", "C", Multiplicity::kOneToMany).ok());
  ASSERT_TRUE(
      onto.AddAssociation("ad", "A", "D", Multiplicity::kManyToMany).ok());
  ASSERT_TRUE(
      onto.AddAssociation("ae", "A", "E", Multiplicity::kOneToOne).ok());
  EXPECT_TRUE(onto.HasFunctionalStep("A", "B"));
  EXPECT_FALSE(onto.HasFunctionalStep("B", "A"));
  EXPECT_FALSE(onto.HasFunctionalStep("A", "C"));
  EXPECT_TRUE(onto.HasFunctionalStep("C", "A"));  // inverse of one-to-many
  EXPECT_FALSE(onto.HasFunctionalStep("A", "D"));
  EXPECT_FALSE(onto.HasFunctionalStep("D", "A"));
  EXPECT_TRUE(onto.HasFunctionalStep("A", "E"));
  EXPECT_TRUE(onto.HasFunctionalStep("E", "A"));
}

TEST(OntologyTest, FindFunctionalPathMultiHop) {
  Ontology onto = BuildTpchOntology();
  auto path = onto.FindFunctionalPath("Lineitem", "Region");
  ASSERT_TRUE(path.ok()) << path.status();
  // Lineitem -> Supplier|Orders... shortest to Region is 3 hops
  // (Lineitem->Supplier->Nation->Region).
  EXPECT_EQ(path->size(), 3u);
  EXPECT_EQ(path->front().from_concept, "Lineitem");
  EXPECT_EQ(path->back().to_concept, "Region");
  for (const PathStep& step : *path) EXPECT_TRUE(step.forward);
}

TEST(OntologyTest, NoFunctionalPathAgainstArrows) {
  Ontology onto = BuildTpchOntology();
  // Region is the "one" side everywhere: nothing is functionally reachable
  // from it.
  auto path = onto.FindFunctionalPath("Region", "Lineitem");
  EXPECT_TRUE(path.status().IsUnsatisfiable());
  EXPECT_TRUE(onto.FunctionallyReachable("Region").empty());
}

TEST(OntologyTest, PathToSelfIsEmpty) {
  Ontology onto = BuildTpchOntology();
  auto path = onto.FindFunctionalPath("Part", "Part");
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->empty());
}

TEST(OntologyTest, FunctionallyReachableFromLineitemCoversStarDimensions) {
  Ontology onto = BuildTpchOntology();
  auto reachable = onto.FunctionallyReachable("Lineitem");
  std::map<std::string, int> hops;
  for (const auto& [id, h] : reachable) hops[id] = h;
  EXPECT_EQ(hops["Orders"], 1);
  EXPECT_EQ(hops["Part"], 1);
  EXPECT_EQ(hops["Supplier"], 1);
  EXPECT_EQ(hops["Partsupp"], 1);
  EXPECT_EQ(hops["Customer"], 2);
  EXPECT_EQ(hops["Nation"], 2);
  EXPECT_EQ(hops["Region"], 3);
  EXPECT_EQ(reachable.size(), 7u);
}

TEST(OntologyTest, XmlRoundtrip) {
  Ontology onto = BuildTpchOntology();
  auto xml_form = onto.ToXml();
  auto parsed = Ontology::FromXml(*xml_form);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_concepts(), onto.num_concepts());
  EXPECT_EQ(parsed->num_properties(), onto.num_properties());
  EXPECT_EQ(parsed->num_associations(), onto.num_associations());
  EXPECT_TRUE(xml::DeepEqual(*xml_form, *parsed->ToXml()));
  // Graph semantics survive the roundtrip.
  EXPECT_TRUE(parsed->HasFunctionalStep("Lineitem", "Orders"));
  EXPECT_EQ(parsed->GetProperty("Lineitem.l_discount")->type,
            DataType::kDouble);
}

TEST(OntologyTest, XmlRoundtripThroughText) {
  Ontology onto = BuildTpchOntology();
  std::string text = xml::Write(*onto.ToXml());
  auto doc = xml::Parse(text);
  ASSERT_TRUE(doc.ok());
  auto parsed = Ontology::FromXml(**doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_associations(), onto.num_associations());
}

TEST(OntologyTest, FromXmlRejectsBadDocuments) {
  auto bad_root = xml::Parse("<notOntology/>");
  ASSERT_TRUE(bad_root.ok());
  EXPECT_TRUE(Ontology::FromXml(**bad_root).status().IsParseError());
  auto bad_mult = xml::Parse(
      "<ontology name=\"x\"><concept id=\"A\"/><concept id=\"B\"/>"
      "<association id=\"ab\" from=\"A\" to=\"B\" multiplicity=\"WAT\"/>"
      "</ontology>");
  ASSERT_TRUE(bad_mult.ok());
  EXPECT_TRUE(Ontology::FromXml(**bad_mult).status().IsParseError());
}

TEST(MappingTest, TpchMappingsValidateAgainstOntology) {
  Ontology onto = BuildTpchOntology();
  SourceMapping mapping = BuildTpchMappings();
  EXPECT_TRUE(mapping.Validate(onto).ok());
  auto cm = mapping.ForConcept("Lineitem");
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->table, "lineitem");
  EXPECT_EQ(cm->key_columns.size(), 2u);
  auto am = mapping.ForAssociation("lineitem_partsupp");
  ASSERT_TRUE(am.ok());
  EXPECT_EQ(am->from_columns.size(), 2u);
}

TEST(MappingTest, ValidateCatchesUnknownConcept) {
  Ontology onto("o");
  ASSERT_TRUE(onto.AddConcept("A").ok());
  SourceMapping mapping;
  ASSERT_TRUE(mapping.MapConcept("Ghost", "t", {"k"}).ok());
  EXPECT_TRUE(mapping.Validate(onto).IsValidationError());
}

TEST(MappingTest, ValidateCatchesUnmappedConceptOfMappedProperty) {
  Ontology onto("o");
  ASSERT_TRUE(onto.AddConcept("A").ok());
  ASSERT_TRUE(onto.AddDataProperty("A", "x", DataType::kInt64).ok());
  SourceMapping mapping;
  ASSERT_TRUE(mapping.MapProperty("A.x", "t", "x").ok());
  EXPECT_TRUE(mapping.Validate(onto).IsValidationError());
}

TEST(MappingTest, XmlRoundtrip) {
  SourceMapping mapping = BuildTpchMappings();
  auto xml_form = mapping.ToXml();
  auto parsed = SourceMapping::FromXml(*xml_form);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(xml::DeepEqual(*xml_form, *parsed->ToXml()));
  EXPECT_EQ(parsed->ForProperty("Part.p_name")->column, "p_name");
}

TEST(MappingTest, ArityChecks) {
  SourceMapping mapping;
  EXPECT_TRUE(mapping.MapConcept("A", "t", {}).IsInvalidArgument());
  EXPECT_TRUE(mapping.MapAssociation("a", {"x"}, {"y", "z"})
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace quarry::ontology
