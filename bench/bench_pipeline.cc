// Experiments F1 + S1 (EXPERIMENTS.md): the end-to-end pipeline of paper
// Figure 1 and the "DW design" demo scenario — per-requirement stage
// timings (interpret, integrate, verify) for the incremental design of a
// warehouse from a stream of requirements, ending in deployment.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/timer.h"
#include "core/quarry.h"
#include "datagen/tpch.h"
#include "mdschema/complexity.h"
#include "ontology/tpch_ontology.h"
#include "requirements/workload.h"

namespace {

using quarry::core::Quarry;

quarry::storage::Database& SharedSource() {
  static quarry::storage::Database* db = [] {
    auto* d = new quarry::storage::Database("tpch");
    if (!quarry::datagen::PopulateTpch(d, {0.01, 77}).ok()) std::abort();
    return d;
  }();
  return *db;
}

void PrintSeries() {
  std::printf(
      "F1/S1: end-to-end incremental DW design (TPC-H sf=0.01, 6 IRs)\n");
  auto quarry = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                               quarry::ontology::BuildTpchMappings(),
                               &SharedSource());
  if (!quarry.ok()) std::abort();
  quarry::req::WorkloadConfig config;
  config.num_requirements = 6;
  config.overlap = 0.6;
  config.seed = 21;
  std::printf("%-10s | %10s | %6s %6s | %10s %8s | %9s\n", "step",
              "add_ms", "facts", "dims", "complexity", "nodes",
              "reused");
  for (const auto& ir : quarry::req::GenerateTpchWorkload(config)) {
    quarry::Timer t;
    auto outcome = (*quarry)->AddRequirement(ir);
    double ms = t.ElapsedMillis();
    if (!outcome.ok()) std::abort();
    std::printf("%-10s | %10.2f | %6zu %6zu | %10.1f %8zu | %9d\n",
                ir.id.c_str(), ms, (*quarry)->schema().facts().size(),
                (*quarry)->schema().dimensions().size(),
                quarry::md::StructuralComplexity((*quarry)->schema()).score,
                (*quarry)->flow().num_nodes(), outcome->etl.nodes_reused);
  }
  quarry::Timer t_deploy;
  quarry::storage::Database warehouse;
  auto deployment = (*quarry)->Deploy(&warehouse);
  if (!deployment.ok()) std::abort();
  std::printf(
      "deploy     | %10.2f | tables=%d etl_rows=%lld integrity=%s\n",
      t_deploy.ElapsedMillis(), deployment->tables_created,
      static_cast<long long>(deployment->etl.rows_processed),
      deployment->referential_integrity_ok ? "OK" : "BROKEN");
  std::printf("\n");
}

void BM_AddRequirementIncremental(benchmark::State& state) {
  quarry::req::WorkloadConfig config;
  config.num_requirements = static_cast<int>(state.range(0));
  config.overlap = 0.6;
  config.seed = 21;
  auto workload = quarry::req::GenerateTpchWorkload(config);
  for (auto _ : state) {
    auto quarry = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                                 quarry::ontology::BuildTpchMappings(),
                                 &SharedSource());
    if (!quarry.ok()) std::abort();
    for (const auto& ir : workload) {
      auto outcome = (*quarry)->AddRequirement(ir);
      if (!outcome.ok()) std::abort();
    }
    benchmark::DoNotOptimize((*quarry)->flow().num_nodes());
  }
  state.counters["requirements"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AddRequirementIncremental)->Arg(2)->Arg(4)->Arg(8);

void BM_RemoveRequirement(benchmark::State& state) {
  quarry::req::WorkloadConfig config;
  config.num_requirements = 6;
  config.overlap = 0.6;
  config.seed = 21;
  auto workload = quarry::req::GenerateTpchWorkload(config);
  for (auto _ : state) {
    state.PauseTiming();
    auto quarry = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                                 quarry::ontology::BuildTpchMappings(),
                                 &SharedSource());
    if (!quarry.ok()) std::abort();
    for (const auto& ir : workload) {
      if (!(*quarry)->AddRequirement(ir).ok()) std::abort();
    }
    state.ResumeTiming();
    if (!(*quarry)->RemoveRequirement(workload[2].id).ok()) std::abort();
    benchmark::DoNotOptimize((*quarry)->requirements().size());
  }
}
BENCHMARK(BM_RemoveRequirement);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
