# Empty dependencies file for quarry_etl.
# This may be replaced when dependencies are built.
