file(REMOVE_RECURSE
  "libquarry_core.a"
)
