#ifndef QUARRY_DOCSTORE_DOCUMENT_STORE_H_
#define QUARRY_DOCSTORE_DOCUMENT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/wal.h"
#include "json/json.h"

namespace quarry::docstore {

/// A collection file (or the snapshot manifest) that startup recovery set
/// aside instead of crashing on (docs/ROBUSTNESS.md §6.3).
struct QuarantinedFile {
  std::string file;    ///< File name relative to the store directory.
  std::string reason;  ///< Why it could not be loaded.
};

/// \brief What startup recovery did (surfaced through core::Quarry).
struct RecoveryStats {
  bool manifest_found = false;       ///< Snapshot manifest was present.
  int64_t snapshot_files_loaded = 0;
  int64_t wal_records_replayed = 0;
  uint64_t wal_tail_bytes_discarded = 0;  ///< Torn-tail bytes dropped.
  bool wal_torn_tail = false;
  int64_t orphan_files_removed = 0;  ///< Uncommitted snapshot leftovers.
  std::vector<QuarantinedFile> quarantined;

  /// One-line structured report ("recovery: replayed=3 torn_bytes=17 ...").
  std::string ToString() const;
};

/// Durability attachment of a store: the directory, the current snapshot
/// generation and the open WAL writer. Shared (not copied) with every
/// collection so the attachment survives moves of the owning store;
/// Clone()d stores never inherit it.
struct DurabilityState {
  std::string dir;
  int64_t generation = 0;
  std::unique_ptr<wal::Writer> writer;
};

/// \brief A collection of JSON documents keyed by a string `_id`.
///
/// Mirrors the slice of MongoDB the Quarry paper's Communication & Metadata
/// layer uses: insert/get/upsert/remove plus equality queries over
/// top-level fields. Documents are stored in insertion order.
///
/// When the owning DocumentStore is durable, every mutation is appended to
/// the write-ahead log and fsynced *before* it is applied in memory, so an
/// acknowledged mutation is never lost and a failed append leaves the
/// in-memory state matching the durable state.
class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  /// Copies the documents but never the durability attachment — a copy
  /// (Clone/RestoreFrom snapshots) must not write to the original's WAL.
  Collection(const Collection& other)
      : name_(other.name_),
        docs_(other.docs_),
        order_(other.order_),
        next_id_(other.next_id_) {}
  Collection& operator=(const Collection&) = delete;

  const std::string& name() const { return name_; }
  size_t size() const { return order_.size(); }

  /// Inserts a document; assigns the first free sequential `_id` when
  /// absent (skipping ids already present, so inserting into a reloaded
  /// collection never collides). Returns the id. Fails when a document
  /// with the same id already exists.
  Result<std::string> Insert(json::Value document);

  /// Fetches a document by id.
  Result<json::Value> Get(const std::string& id) const;

  /// Inserts or replaces the document with the given id (the `_id` field
  /// is set to `id`).
  Status Upsert(const std::string& id, json::Value document);

  Status Remove(const std::string& id);

  bool Contains(const std::string& id) const { return docs_.count(id) > 0; }

  /// Documents whose top-level `field` equals `value`, in insertion order.
  std::vector<json::Value> Find(const std::string& field,
                                const json::Value& value) const;

  /// All ids in insertion order.
  std::vector<std::string> Ids() const { return order_; }

  /// Routes subsequent mutations through the store's WAL (pass nullptr to
  /// detach). Installed by DocumentStore; not part of the public surface.
  void AttachDurability(std::shared_ptr<DurabilityState> durability) {
    durability_ = std::move(durability);
  }

 private:
  friend class DocumentStore;  // logs collection create/drop records

  /// Appends one mutation record to the WAL and fsyncs it. A no-op when
  /// the collection is not durable.
  Status LogMutation(const char* op, const std::string& id,
                     const json::Value* document);

  std::string name_;
  std::map<std::string, json::Value> docs_;
  std::vector<std::string> order_;
  int64_t next_id_ = 1;
  std::shared_ptr<DurabilityState> durability_;
};

/// \brief A named set of collections with optional directory persistence —
/// the repo's MongoDB stand-in (see DESIGN.md §2).
///
/// Persistence is crash-safe (docs/ROBUSTNESS.md §6): SaveToDirectory
/// writes generation-stamped collection files and commits them with an
/// atomic manifest rename; EnableDurability additionally appends every
/// subsequent mutation to a CRC-framed WAL with an fsync per mutation, and
/// LoadFromDirectory replays that WAL over the last committed snapshot,
/// discarding a torn tail and quarantining corrupt collection files.
class DocumentStore {
 public:
  DocumentStore() = default;

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;
  DocumentStore(DocumentStore&&) = default;
  DocumentStore& operator=(DocumentStore&&) = default;

  /// Returns the collection, creating it when absent. On a durable store a
  /// creation is logged to the WAL best-effort (a failed append only loses
  /// a still-empty collection; the first put re-creates it on replay).
  Collection* GetOrCreate(const std::string& name);

  Result<Collection*> Get(const std::string& name);
  Result<const Collection*> Get(const std::string& name) const;

  Status Drop(const std::string& name);

  std::vector<std::string> CollectionNames() const;

  /// Atomically snapshots every collection into `dir` (which must exist):
  /// each collection goes to `<name>.<generation>.json`, and the snapshot
  /// becomes visible only when `MANIFEST.json` is atomically renamed into
  /// place. A crash at any point leaves the previous committed snapshot
  /// (plus WAL) fully intact. When the store is durable and `dir` is its
  /// durable directory, the WAL is rotated (truncated) as part of the
  /// commit and superseded snapshot/WAL files are removed.
  Status SaveToDirectory(const std::string& dir) const;

  /// Loads the committed snapshot of `dir` and replays its WAL over it.
  /// Corrupt or unparseable collection files are quarantined (renamed to
  /// `<file>.quarantined`) and reported via `stats` instead of failing the
  /// whole load; a torn WAL tail is discarded. Directories written by
  /// pre-manifest versions (bare `<name>.json` files) load as before.
  static Result<DocumentStore> LoadFromDirectory(const std::string& dir);
  static Result<DocumentStore> LoadFromDirectory(const std::string& dir,
                                                 RecoveryStats* stats);

  /// Makes this store durable on `dir`: checkpoints the current state
  /// (SaveToDirectory) and opens a fresh WAL that every subsequent
  /// mutation is appended + fsynced to before being applied.
  Status EnableDurability(const std::string& dir);

  /// Recovery + durability in one step: LoadFromDirectory(dir, stats)
  /// followed by EnableDurability(dir) — the standard way to open a
  /// crash-safe metadata directory.
  static Result<DocumentStore> Open(const std::string& dir,
                                    RecoveryStats* stats = nullptr);

  bool durable() const { return durability_ != nullptr; }
  const std::string& durable_dir() const {
    static const std::string kEmpty;
    return durability_ ? durability_->dir : kEmpty;
  }

  // -- recovery support (see docs/ROBUSTNESS.md) ----------------------------

  /// Deep copy of every collection. Transactional deployment snapshots the
  /// metadata store alongside the target database. The copy is never
  /// durable, whatever the original was.
  DocumentStore Clone() const;

  /// Resets this store to the snapshot's state. A durable store re-checkpoints
  /// itself best-effort afterwards (rollback must not fail on a disk error;
  /// the next successful checkpoint repairs durability).
  void RestoreFrom(const DocumentStore& snapshot);

  /// Deterministic content hash over collection names, document order and
  /// serialized documents (rollback tests assert the restored store is
  /// bit-identical to its pre-deploy snapshot).
  uint64_t Fingerprint() const;

 private:
  static Result<DocumentStore> LoadFromDirectoryImpl(const std::string& dir,
                                                     RecoveryStats* stats);
  Status SaveToDirectoryImpl(const std::string& dir) const;

  std::map<std::string, std::unique_ptr<Collection>> collections_;
  /// Shared with every collection; contents are mutated through the
  /// shared_ptr even from const snapshot paths (WAL rotation).
  std::shared_ptr<DurabilityState> durability_;
};

}  // namespace quarry::docstore

#endif  // QUARRY_DOCSTORE_DOCUMENT_STORE_H_
