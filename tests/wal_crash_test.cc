#include "common/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "docstore/document_store.h"
#include "json/json.h"

namespace quarry {
namespace {

namespace fs = std::filesystem;

using fault::Injector;
using fault::SiteConfig;

std::string TempDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void AppendRawBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

json::Value Doc(const std::string& kind, int64_t n) {
  json::Object doc;
  doc.emplace_back("kind", json::Value(kind));
  doc.emplace_back("n", json::Value(n));
  return json::Value(std::move(doc));
}

class WalCrashTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Injector::Instance().Disable();
    Injector::Instance().ClearConfigs();
  }
};

// ---------------------------------------------------------------------------
// WAL file format.

TEST_F(WalCrashTest, Crc32MatchesTheIeeeCheckValue) {
  EXPECT_EQ(wal::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(wal::Crc32("", 0), 0u);
  // Sensitivity: one flipped bit changes the checksum.
  EXPECT_NE(wal::Crc32("123456788", 9), 0xCBF43926u);
}

TEST_F(WalCrashTest, WriterRoundtripsRecordsIncludingBinaryPayloads) {
  std::string dir = TempDir("quarry_wal_roundtrip");
  std::string path = dir + "/test.log";
  std::vector<std::string> payloads = {
      "{\"op\":\"put\"}", "", std::string("bin\0ary\xff\x01", 9),
      std::string(5000, 'x')};
  {
    auto writer = wal::Writer::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const std::string& p : payloads) {
      ASSERT_TRUE((*writer)->Append(p).ok());
    }
    ASSERT_TRUE((*writer)->Sync().ok());
    EXPECT_EQ((*writer)->records_appended(), 4);
  }
  auto log = wal::ReadLog(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->records, payloads);
  EXPECT_FALSE(log->torn_tail);
  EXPECT_EQ(log->tail_bytes_discarded, 0u);
  EXPECT_EQ(log->valid_bytes, fs::file_size(path));
  fs::remove_all(dir);
}

TEST_F(WalCrashTest, ReadLogRejectsMissingAndForeignFiles) {
  std::string dir = TempDir("quarry_wal_badfiles");
  EXPECT_TRUE(wal::ReadLog(dir + "/absent.log").status().IsNotFound());

  // Wrong magic: corruption, not a crash artifact -> ParseError.
  AppendRawBytes(dir + "/foreign.log", "NOTAWALFILE.....");
  EXPECT_TRUE(wal::ReadLog(dir + "/foreign.log").status().IsParseError());

  // A header cut short by a crash during Writer::Open reads as an empty
  // log with a torn tail, not as an error.
  AppendRawBytes(dir + "/short.log", "QWA");
  auto log = wal::ReadLog(dir + "/short.log");
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->records.empty());
  EXPECT_TRUE(log->torn_tail);
  EXPECT_EQ(log->tail_bytes_discarded, 3u);
  fs::remove_all(dir);
}

TEST_F(WalCrashTest, TornAndCorruptTailsAreDiscardedWithoutLosingRecords) {
  std::string dir = TempDir("quarry_wal_torn");
  std::string path = dir + "/test.log";
  {
    auto writer = wal::Writer::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("first").ok());
    ASSERT_TRUE((*writer)->Append("second").ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  const uint64_t intact_size = fs::file_size(path);

  // A torn frame: a length prefix promising more bytes than the file has.
  AppendRawBytes(path, std::string("\x40\x00\x00\x00????junk", 12));
  auto log = wal::ReadLog(path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->records, (std::vector<std::string>{"first", "second"}));
  EXPECT_TRUE(log->torn_tail);
  EXPECT_EQ(log->tail_bytes_discarded, 12u);
  EXPECT_EQ(log->valid_bytes, intact_size);

  // A complete final frame whose payload was bit-flipped: the CRC rejects
  // it and the two intact records still load.
  std::string data = ReadWholeFile(path);
  data.back() ^= 0x01;
  fs::remove(path);
  AppendRawBytes(path, data);
  log = wal::ReadLog(path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->records, (std::vector<std::string>{"first", "second"}));
  EXPECT_TRUE(log->torn_tail);
  fs::remove_all(dir);
}

TEST_F(WalCrashTest, TornAppendFailStopsTheWriter) {
  std::string dir = TempDir("quarry_wal_failstop");
  std::string path = dir + "/test.log";
  auto writer = wal::Writer::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("acked").ok());
  ASSERT_TRUE((*writer)->Sync().ok());

  Injector::Instance().Configure("wal.append.torn",
                                 SiteConfig{.trigger_on_hit = 1});
  Injector::Instance().Enable(3);
  EXPECT_FALSE((*writer)->Append("torn-record").ok());
  Injector::Instance().Disable();

  // The tail is in an unknown state: appending more records behind it
  // would make them unreadable, so the writer refuses.
  EXPECT_TRUE((*writer)->failed());
  EXPECT_FALSE((*writer)->Append("after-torn").ok());
  EXPECT_FALSE((*writer)->Sync().ok());

  // Recovery sees the acknowledged record and discards the torn bytes.
  auto log = wal::ReadLog(path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->records, (std::vector<std::string>{"acked"}));
  EXPECT_TRUE(log->torn_tail);
  EXPECT_GT(log->tail_bytes_discarded, 0u);
  fs::remove_all(dir);
}

TEST_F(WalCrashTest, AtomicWriteFileIsAllOrNothing) {
  std::string dir = TempDir("quarry_wal_atomic");
  std::string path = dir + "/data.json";
  ASSERT_TRUE(wal::AtomicWriteFile(path, "old-content").ok());
  ASSERT_TRUE(wal::AtomicWriteFile(path, "new-content").ok());
  EXPECT_EQ(ReadWholeFile(path), "new-content");
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // A crash at any point of the protocol leaves the old file untouched.
  for (const char* site : {"wal.file.write", "wal.file.write.torn",
                           "wal.file.sync", "wal.file.rename"}) {
    Injector::Instance().ClearConfigs();
    Injector::Instance().Configure(site, SiteConfig{.fail_from_hit = 1});
    Injector::Instance().Enable(5);
    EXPECT_FALSE(wal::AtomicWriteFile(path, "never-visible").ok()) << site;
    Injector::Instance().Disable();
    EXPECT_EQ(ReadWholeFile(path), "new-content") << site;
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Durable document store: snapshot + WAL + startup recovery.

TEST_F(WalCrashTest, DurableStoreSurvivesReopenViaWalReplay) {
  std::string dir = TempDir("quarry_durable_roundtrip");
  uint64_t fingerprint = 0;
  {
    auto store = docstore::DocumentStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(store->durable());
    ASSERT_TRUE(
        store->GetOrCreate("xrq")->Upsert("ir1", Doc("xrq", 1)).ok());
    ASSERT_TRUE(
        store->GetOrCreate("xrq")->Upsert("ir2", Doc("xrq", 2)).ok());
    ASSERT_TRUE(
        store->GetOrCreate("xmd")->Upsert("unified", Doc("xmd", 3)).ok());
    ASSERT_TRUE(store->GetOrCreate("xrq")->Remove("ir1").ok());
    fingerprint = store->Fingerprint();
  }  // no SaveToDirectory: everything must come back from the WAL

  docstore::RecoveryStats stats;
  auto reopened = docstore::DocumentStore::Open(dir, &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->Fingerprint(), fingerprint);
  EXPECT_TRUE(stats.manifest_found);
  EXPECT_GT(stats.wal_records_replayed, 0);
  EXPECT_FALSE(stats.wal_torn_tail);
  EXPECT_TRUE(stats.quarantined.empty()) << stats.ToString();
  EXPECT_NE(stats.ToString().find("wal_replayed="), std::string::npos);
  fs::remove_all(dir);
}

TEST_F(WalCrashTest, CheckpointRotatesTheWalAndRemovesSupersededFiles) {
  std::string dir = TempDir("quarry_durable_rotate");
  uint64_t fingerprint = 0;
  {
    auto store = docstore::DocumentStore::Open(dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(store->GetOrCreate("xrq")
                      ->Upsert("ir" + std::to_string(i), Doc("xrq", i))
                      .ok());
    }
    ASSERT_TRUE(store->SaveToDirectory(dir).ok());
    fingerprint = store->Fingerprint();
  }

  // The snapshot carries everything; the rotated WAL is empty again.
  docstore::RecoveryStats stats;
  auto reopened = docstore::DocumentStore::Open(dir, &stats);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->Fingerprint(), fingerprint);
  EXPECT_GT(stats.snapshot_files_loaded, 0);
  EXPECT_EQ(stats.wal_records_replayed, 0);

  // Exactly one generation of artifacts remains on disk.
  int wal_files = 0, json_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.find("wal.") == 0) ++wal_files;
    if (name != "MANIFEST.json" && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      ++json_files;
    }
  }
  EXPECT_EQ(wal_files, 1);
  EXPECT_EQ(json_files, 1);  // one collection, one committed file
  fs::remove_all(dir);
}

TEST_F(WalCrashTest, SaveToDirectoryReportsWriteFailures) {
  std::string dir = TempDir("quarry_save_errors");
  docstore::DocumentStore store;
  ASSERT_TRUE(store.GetOrCreate("xrq")->Upsert("ir1", Doc("xrq", 1)).ok());

  // Injected fsync failure (the EIO / full-disk stand-in): the save must
  // surface a non-OK Status instead of silently succeeding.
  Injector::Instance().Configure("wal.file.sync",
                                 SiteConfig{.fail_from_hit = 1});
  Injector::Instance().Enable(9);
  Status failed = store.SaveToDirectory(dir);
  Injector::Instance().Disable();
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.ToString().find("xrq"), std::string::npos) << failed;

  // A failed save never commits: the directory still loads as empty.
  auto loaded = docstore::DocumentStore::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->CollectionNames().empty());
  fs::remove_all(dir);
}

TEST_F(WalCrashTest, LegacyDirectoriesQuarantineCorruptCollections) {
  // Pre-manifest layout: bare <name>.json files, one of them corrupt. The
  // load must keep the good collection, set the bad file aside and report
  // it — one corrupt collection must not take down the repository.
  std::string dir = TempDir("quarry_legacy_quarantine");
  AppendRawBytes(dir + "/good.json",
                 "[{\"_id\": \"a\", \"n\": 1}, {\"_id\": \"b\", \"n\": 2}]");
  AppendRawBytes(dir + "/bad.json", "{\"truncated\": [1, 2");
  AppendRawBytes(dir + "/not_an_array.json", "{\"_id\": \"a\"}");
  AppendRawBytes(dir + "/notes.txt", "ignored");

  docstore::RecoveryStats stats;
  auto store = docstore::DocumentStore::LoadFromDirectory(dir, &stats);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->CollectionNames(), std::vector<std::string>{"good"});
  EXPECT_EQ((*store->Get("good"))->size(), 2u);
  ASSERT_EQ(stats.quarantined.size(), 2u) << stats.ToString();
  EXPECT_FALSE(stats.manifest_found);
  // The evidence is kept beside the store for post-mortems.
  EXPECT_TRUE(fs::exists(dir + "/bad.json.quarantined"));
  EXPECT_FALSE(fs::exists(dir + "/bad.json"));
  fs::remove_all(dir);
}

TEST_F(WalCrashTest, ManifestModeQuarantinesACorruptSnapshotFile) {
  std::string dir = TempDir("quarry_manifest_quarantine");
  {
    auto store = docstore::DocumentStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->GetOrCreate("xrq")->Upsert("ir1", Doc("xrq", 1)).ok());
    ASSERT_TRUE(store->GetOrCreate("xmd")->Upsert("u", Doc("xmd", 2)).ok());
    ASSERT_TRUE(store->SaveToDirectory(dir).ok());
  }
  // Flip bytes in one committed collection file (disk damage, not a torn
  // write — AtomicWriteFile rules the latter out).
  std::string victim;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.find("xrq.") == 0) victim = entry.path().string();
  }
  ASSERT_FALSE(victim.empty());
  fs::remove(victim);
  AppendRawBytes(victim, "###corrupt###");

  docstore::RecoveryStats stats;
  auto recovered = docstore::DocumentStore::LoadFromDirectory(dir, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->Get("xmd").ok());
  EXPECT_FALSE(recovered->Get("xrq").ok());
  ASSERT_EQ(stats.quarantined.size(), 1u) << stats.ToString();
  EXPECT_TRUE(fs::exists(victim + ".quarantined"));
  fs::remove_all(dir);
}

TEST_F(WalCrashTest, TornFinalWalRecordIsDiscardedOnRecovery) {
  std::string dir = TempDir("quarry_torn_recovery");
  uint64_t acked = 0;
  std::string wal_path;
  {
    auto store = docstore::DocumentStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->GetOrCreate("xrq")->Upsert("ir1", Doc("xrq", 1)).ok());
    ASSERT_TRUE(store->GetOrCreate("xrq")->Upsert("ir2", Doc("xrq", 2)).ok());
    acked = store->Fingerprint();
    for (const auto& entry : fs::directory_iterator(dir)) {
      std::string name = entry.path().filename().string();
      if (name.find("wal.") == 0) wal_path = entry.path().string();
    }
  }
  ASSERT_FALSE(wal_path.empty());
  // The crash artifact: half of a frame at the end of the log.
  AppendRawBytes(wal_path, std::string("\x99\x00\x00\x00\x01\x02half", 10));

  docstore::RecoveryStats stats;
  auto recovered = docstore::DocumentStore::Open(dir, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->Fingerprint(), acked);
  EXPECT_TRUE(stats.wal_torn_tail);
  EXPECT_EQ(stats.wal_tail_bytes_discarded, 10u);
  EXPECT_EQ(stats.wal_records_replayed, 2 + 1);  // newc + two puts
  fs::remove_all(dir);
}

TEST_F(WalCrashTest, RecoveredStoreAssignsFreshAutoIds) {
  std::string dir = TempDir("quarry_autoid");
  {
    auto store = docstore::DocumentStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->GetOrCreate("xrq")->Insert(Doc("xrq", 1)).ok());
    ASSERT_TRUE(store->GetOrCreate("xrq")->Insert(Doc("xrq", 2)).ok());
  }
  auto recovered = docstore::DocumentStore::Open(dir);
  ASSERT_TRUE(recovered.ok());
  // The id counter restarted at 1, but Insert must not collide with the
  // recovered "xrq-1"/"xrq-2".
  auto id = (*recovered->Get("xrq"))->Insert(Doc("xrq", 3));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ((*recovered->Get("xrq"))->size(), 3u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The crash matrix: kill-and-recover at every durability fault site.

/// One step of the canonical metadata workload. `checkpoint` steps only
/// exist on the durable store (the in-memory shadow has no directory);
/// `creates` names the collection the op GetOrCreate()s, whose durably
/// logged "newc" record can survive even when the op itself then fails.
struct ScenarioOp {
  std::string desc;
  bool checkpoint = false;
  std::string creates;
  std::function<Status(docstore::DocumentStore*, const std::string&)> run;
};

std::vector<ScenarioOp> Scenario() {
  auto put = [](const char* coll, const char* id, int64_t n) {
    return ScenarioOp{
        std::string("put ") + coll + "/" + id, false, coll,
        [coll, id, n](docstore::DocumentStore* s, const std::string&) {
          return s->GetOrCreate(coll)->Upsert(id, Doc(coll, n));
        }};
  };
  std::vector<ScenarioOp> ops;
  ops.push_back(put("ontologies", "onto", 1));
  ops.push_back(put("xrq", "ir1", 2));
  ops.push_back(put("xrq", "ir2", 3));
  ops.push_back({"checkpoint-1", true, "",
                 [](docstore::DocumentStore* s, const std::string& dir) {
                   return s->SaveToDirectory(dir);
                 }});
  ops.push_back(put("deployments", "d1", 4));
  ops.push_back({"del xrq/ir1", false, "xrq",
                 [](docstore::DocumentStore* s, const std::string&) {
                   return s->GetOrCreate("xrq")->Remove("ir1");
                 }});
  ops.push_back(put("xrq", "ir3", 5));
  ops.push_back({"dropc deployments", false, "",
                 [](docstore::DocumentStore* s, const std::string&) {
                   return s->Drop("deployments");
                 }});
  ops.push_back(put("xrq", "ir2", 6));  // overwrite
  ops.push_back({"checkpoint-2", true, "",
                 [](docstore::DocumentStore* s, const std::string& dir) {
                   return s->SaveToDirectory(dir);
                 }});
  ops.push_back(put("audit", "a1", 7));
  return ops;
}

/// Kills the workload at the h-th hit of every durability fault site and
/// asserts the recovered store is byte-identical (Fingerprint) to the
/// acknowledged state at the crash point, then converges back to the
/// reference state by re-running the interrupted suffix.
TEST_F(WalCrashTest, CrashMatrixRecoversAckedStateAtEverySite) {
  const std::vector<ScenarioOp> ops = Scenario();
  const std::string dir = TempDir("quarry_crash_matrix");

  // Reference: the workload on a plain in-memory store.
  uint64_t reference_fp = 0;
  {
    docstore::DocumentStore reference;
    for (const ScenarioOp& op : ops) {
      if (op.checkpoint) continue;
      ASSERT_TRUE(op.run(&reference, dir).ok()) << op.desc;
    }
    reference_fp = reference.Fingerprint();
  }

  // Discovery: run the workload once with injection armed but no site
  // configured; the hit counters enumerate the durability fault surface.
  std::map<std::string, int64_t> site_hits;
  {
    fs::remove_all(dir);
    fs::create_directories(dir);
    auto store = docstore::DocumentStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    Injector::Instance().ClearConfigs();
    Injector::Instance().Enable(11);
    for (const ScenarioOp& op : ops) {
      ASSERT_TRUE(op.run(&*store, dir).ok()) << op.desc;
    }
    for (const std::string& site : Injector::Instance().HitSites()) {
      if (site.rfind("wal.", 0) == 0 || site.rfind("docstore.", 0) == 0) {
        site_hits[site] = Injector::Instance().HitCount(site);
      }
    }
    Injector::Instance().Disable();
  }
  // The surface the acceptance criteria name: append, fsync, torn write,
  // snapshot rename/commit.
  ASSERT_TRUE(site_hits.count("wal.append"));
  ASSERT_TRUE(site_hits.count("wal.append.torn"));
  ASSERT_TRUE(site_hits.count("wal.sync"));
  ASSERT_TRUE(site_hits.count("wal.file.rename"));
  ASSERT_TRUE(site_hits.count("wal.file.sync"));
  ASSERT_TRUE(site_hits.count("docstore.snapshot.commit"));

  int crashes = 0;
  for (const auto& [site, hits] : site_hits) {
    std::vector<int64_t> crash_hits;
    for (int64_t h = 1; h <= hits && h <= 4; ++h) crash_hits.push_back(h);
    if (hits > 4) crash_hits.push_back(hits);  // always kill the last hit too
    for (int64_t h : crash_hits) {
      SCOPED_TRACE(site + "@" + std::to_string(h));
      ++crashes;
      Injector::Instance().Disable();
      fs::remove_all(dir);
      fs::create_directories(dir);

      size_t crash_index = ops.size();
      {
        auto opened = docstore::DocumentStore::Open(dir);
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        docstore::DocumentStore store = std::move(*opened);
        Injector::Instance().ClearConfigs();
        Injector::Instance().Configure(
            site, SiteConfig{.trigger_on_hit = h, .max_failures = 1});
        Injector::Instance().Enable(23);
        for (size_t i = 0; i < ops.size(); ++i) {
          if (!ops[i].run(&store, dir).ok()) {
            // The simulated kill: the process stops here mid-operation.
            crash_index = i;
            break;
          }
        }
        Injector::Instance().Disable();
        EXPECT_GE(Injector::Instance().FailureCount(site), 1)
            << "fault never fired";
      }  // the store dies with its WAL unflushed state

      // `shadow` replays exactly the acknowledged operations (injection is
      // off now, so rebuilding it cannot perturb the crashed run's state).
      // Anything the store acked must survive the crash; anything it
      // rejected must not resurrect — with two narrow, principled
      // exceptions modeled below.
      docstore::DocumentStore shadow;
      for (size_t i = 0; i < crash_index; ++i) {
        if (ops[i].checkpoint) continue;
        ASSERT_TRUE(ops[i].run(&shadow, dir).ok()) << ops[i].desc;
      }
      const uint64_t shadow_fp = shadow.Fingerprint();
      uint64_t created_fp = shadow_fp;   // + the failed op's empty collection
      uint64_t inflight_fp = shadow_fp;  // + the failed op applied in full
      if (crash_index < ops.size() && !ops[crash_index].checkpoint) {
        if (!ops[crash_index].creates.empty()) {
          docstore::DocumentStore created = shadow.Clone();
          created.GetOrCreate(ops[crash_index].creates);
          created_fp = created.Fingerprint();
        }
        docstore::DocumentStore inflight = shadow.Clone();
        (void)ops[crash_index].run(&inflight, dir);
        inflight_fp = inflight.Fingerprint();
      }

      docstore::RecoveryStats stats;
      auto recovered = docstore::DocumentStore::Open(dir, &stats);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_TRUE(stats.quarantined.empty()) << stats.ToString();
      const uint64_t recovered_fp = recovered->Fingerprint();
      if (recovered_fp != shadow_fp && recovered_fp != created_fp) {
        // `created_fp`: GetOrCreate durably logged the collection before
        // the mutation inside the same op failed — the empty collection is
        // acknowledged state. Beyond that, crash-before-fsync is the one
        // site where the full record reaches the file but is never
        // acknowledged: recovery may legitimately see it.
        EXPECT_EQ(site, "wal.sync");
        EXPECT_EQ(recovered_fp, inflight_fp);
      }
      if (site == "wal.append.torn" && crash_index < ops.size()) {
        EXPECT_TRUE(stats.wal_torn_tail) << stats.ToString();
        EXPECT_GT(stats.wal_tail_bytes_discarded, 0u);
      }

      // Convergence: re-running the interrupted suffix (all ops are
      // idempotent redo steps) lands on the reference state.
      for (size_t i = crash_index; i < ops.size(); ++i) {
        Status status = ops[i].run(&*recovered, dir);
        EXPECT_TRUE(status.ok() || status.IsNotFound())
            << ops[i].desc << ": " << status.ToString();
      }
      EXPECT_EQ(recovered->Fingerprint(), reference_fp);
    }
  }
  EXPECT_GT(crashes, 25) << "matrix lost coverage";

  // The converged state is itself durable: one more cold start agrees.
  uint64_t final_fp = 0;
  {
    auto final_store = docstore::DocumentStore::Open(dir);
    ASSERT_TRUE(final_store.ok());
    final_fp = final_store->Fingerprint();
  }
  EXPECT_EQ(final_fp, reference_fp);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace quarry
