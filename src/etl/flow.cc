#include "etl/flow.h"

#include <algorithm>
#include <deque>

namespace quarry::etl {

const char* OpTypeToString(OpType type) {
  switch (type) {
    case OpType::kDatastore:
      return "Datastore";
    case OpType::kExtraction:
      return "Extraction";
    case OpType::kSelection:
      return "Selection";
    case OpType::kProjection:
      return "Projection";
    case OpType::kJoin:
      return "Join";
    case OpType::kAggregation:
      return "Aggregation";
    case OpType::kFunction:
      return "Function";
    case OpType::kSort:
      return "Sort";
    case OpType::kUnion:
      return "Union";
    case OpType::kSurrogateKey:
      return "SurrogateKey";
    case OpType::kLoader:
      return "Loader";
  }
  return "Unknown";
}

Result<OpType> OpTypeFromString(const std::string& text) {
  for (OpType t :
       {OpType::kDatastore, OpType::kExtraction, OpType::kSelection,
        OpType::kProjection, OpType::kJoin, OpType::kAggregation,
        OpType::kFunction, OpType::kSort, OpType::kUnion,
        OpType::kSurrogateKey, OpType::kLoader}) {
    if (text == OpTypeToString(t)) return t;
  }
  return Status::ParseError("unknown operator type '" + text + "'");
}

int OpArity(OpType type) {
  switch (type) {
    case OpType::kDatastore:
      return 0;
    case OpType::kJoin:
      return 2;
    case OpType::kUnion:
      return -1;
    default:
      return 1;
  }
}

std::string Node::Signature() const {
  std::string sig = OpTypeToString(type);
  for (const auto& [k, v] : params) {  // std::map: already sorted by key
    sig += "|" + k + "=" + v;
  }
  return sig;
}

Status Flow::AddNode(Node node) {
  if (node.id.empty()) return Status::InvalidArgument("node id is empty");
  if (nodes_.count(node.id) > 0) {
    return Status::AlreadyExists("node '" + node.id + "'");
  }
  nodes_.emplace(node.id, std::move(node));
  return Status::OK();
}

Status Flow::AddEdge(const std::string& from, const std::string& to) {
  if (nodes_.count(from) == 0) return Status::NotFound("node '" + from + "'");
  if (nodes_.count(to) == 0) return Status::NotFound("node '" + to + "'");
  Edge edge{from, to};
  if (std::find(edges_.begin(), edges_.end(), edge) != edges_.end()) {
    return Status::AlreadyExists("edge " + from + " -> " + to);
  }
  edges_.push_back(std::move(edge));
  return Status::OK();
}

Status Flow::RemoveNode(const std::string& id) {
  if (nodes_.erase(id) == 0) return Status::NotFound("node '" + id + "'");
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [&](const Edge& e) {
                                return e.from == id || e.to == id;
                              }),
               edges_.end());
  return Status::OK();
}

Status Flow::RemoveEdge(const std::string& from, const std::string& to) {
  Edge edge{from, to};
  auto it = std::find(edges_.begin(), edges_.end(), edge);
  if (it == edges_.end()) {
    return Status::NotFound("edge " + from + " -> " + to);
  }
  edges_.erase(it);
  return Status::OK();
}

Status Flow::ReplaceEdge(const std::string& from, const std::string& to,
                         const std::string& new_from,
                         const std::string& new_to) {
  if (nodes_.count(new_from) == 0) {
    return Status::NotFound("node '" + new_from + "'");
  }
  if (nodes_.count(new_to) == 0) {
    return Status::NotFound("node '" + new_to + "'");
  }
  Edge replacement{new_from, new_to};
  if (std::find(edges_.begin(), edges_.end(), replacement) != edges_.end()) {
    return Status::AlreadyExists("edge " + new_from + " -> " + new_to);
  }
  auto it = std::find(edges_.begin(), edges_.end(), Edge{from, to});
  if (it == edges_.end()) {
    return Status::NotFound("edge " + from + " -> " + to);
  }
  *it = std::move(replacement);
  return Status::OK();
}

Result<const Node*> Flow::GetNode(const std::string& id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return Status::NotFound("node '" + id + "'");
  return &it->second;
}

Result<Node*> Flow::GetMutableNode(const std::string& id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return Status::NotFound("node '" + id + "'");
  return &it->second;
}

std::vector<std::string> Flow::Predecessors(const std::string& id) const {
  std::vector<std::string> out;
  for (const Edge& e : edges_) {
    if (e.to == id) out.push_back(e.from);
  }
  return out;
}

std::vector<std::string> Flow::Successors(const std::string& id) const {
  std::vector<std::string> out;
  for (const Edge& e : edges_) {
    if (e.from == id) out.push_back(e.to);
  }
  return out;
}

std::map<std::string, std::vector<std::string>> Flow::SuccessorLists() const {
  std::map<std::string, std::vector<std::string>> out;
  for (const auto& [id, node] : nodes_) out[id];
  for (const Edge& e : edges_) out[e.from].push_back(e.to);
  return out;
}

std::map<std::string, size_t> Flow::InDegrees() const {
  std::map<std::string, size_t> out;
  for (const auto& [id, node] : nodes_) out[id] = 0;
  for (const Edge& e : edges_) ++out[e.to];
  return out;
}

std::vector<std::string> Flow::SourceIds() const {
  std::vector<std::string> out;
  for (const auto& [id, node] : nodes_) {
    if (Predecessors(id).empty()) out.push_back(id);
  }
  return out;
}

std::vector<std::string> Flow::SinkIds() const {
  std::vector<std::string> out;
  for (const auto& [id, node] : nodes_) {
    if (Successors(id).empty()) out.push_back(id);
  }
  return out;
}

Result<std::vector<std::string>> Flow::TopologicalOrder() const {
  std::map<std::string, int> in_degree;
  for (const auto& [id, node] : nodes_) in_degree[id] = 0;
  for (const Edge& e : edges_) ++in_degree[e.to];
  std::deque<std::string> ready;
  for (const auto& [id, deg] : in_degree) {
    if (deg == 0) ready.push_back(id);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    std::string id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const std::string& next : Successors(id)) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::ValidationError("flow '" + name_ + "' contains a cycle");
  }
  return order;
}

Status Flow::Validate() const {
  QUARRY_ASSIGN_OR_RETURN(auto order, TopologicalOrder());
  (void)order;
  for (const auto& [id, node] : nodes_) {
    int arity = OpArity(node.type);
    size_t inputs = Predecessors(id).size();
    if (arity == -1) {
      if (inputs < 2) {
        return Status::ValidationError("node '" + id +
                                       "' (Union) needs >= 2 inputs");
      }
    } else if (inputs != static_cast<size_t>(arity)) {
      return Status::ValidationError(
          "node '" + id + "' (" + OpTypeToString(node.type) + ") has " +
          std::to_string(inputs) + " inputs, expects " +
          std::to_string(arity));
    }
    if (Successors(id).empty() && node.type != OpType::kLoader) {
      return Status::ValidationError("sink node '" + id +
                                     "' is not a Loader");
    }
    if (node.type == OpType::kLoader && !Successors(id).empty()) {
      return Status::ValidationError("Loader '" + id + "' has successors");
    }
  }
  return Status::OK();
}

Flow Flow::Clone() const {
  Flow copy(name_);
  copy.nodes_ = nodes_;
  copy.edges_ = edges_;
  return copy;
}

std::set<std::string> Flow::RequirementIds() const {
  std::set<std::string> out;
  for (const auto& [id, node] : nodes_) {
    out.insert(node.requirement_ids.begin(), node.requirement_ids.end());
  }
  return out;
}

size_t Flow::PruneRequirement(const std::string& requirement_id) {
  std::vector<std::string> to_remove;
  for (auto& [id, node] : nodes_) {
    node.requirement_ids.erase(requirement_id);
    if (node.requirement_ids.empty()) to_remove.push_back(id);
  }
  for (const std::string& id : to_remove) {
    (void)RemoveNode(id);
  }
  return to_remove.size();
}

}  // namespace quarry::etl
