#include "core/telemetry.h"

#include <filesystem>
#include <fstream>

namespace quarry::core {

namespace {

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::ExecutionError("cannot open '" + path + "' for writing");
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    return Status::ExecutionError("short write on '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

Status TelemetryHandle::WriteTo(const std::string& dir) const {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("directory '" + dir + "'");
  }
  const std::filesystem::path base(dir);
  std::string error;
  if (!tracer.WriteChromeTrace((base / "trace.json").string(), &error)) {
    return Status::ExecutionError("trace export failed: " + error);
  }
  QUARRY_RETURN_NOT_OK(WriteTextFile((base / "metrics.prom").string(),
                                     metrics.PrometheusText()));
  QUARRY_RETURN_NOT_OK(WriteTextFile((base / "metrics.json").string(),
                                     metrics.JsonSnapshot()));
  return WriteTextFile((base / "requests.jsonl").string(),
                       requests.ToJsonl());
}

TelemetryHandle Telemetry() {
  return TelemetryHandle{obs::TraceRecorder::Instance(),
                         obs::MetricsRegistry::Instance(),
                         obs::RequestLog::Instance()};
}

}  // namespace quarry::core
