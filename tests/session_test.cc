#include "core/session.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "datagen/tpch.h"
#include "ontology/tpch_ontology.h"

namespace quarry::core {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(datagen::PopulateTpch(&src_, {0.005, 37}).ok());
    dir_ = std::filesystem::temp_directory_path() / "quarry_session_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Quarry> MakeQuarryWithRequirements() {
    auto quarry = Quarry::Create(ontology::BuildTpchOntology(),
                                 ontology::BuildTpchMappings(), &src_);
    EXPECT_TRUE(quarry.ok()) << quarry.status();
    EXPECT_TRUE((*quarry)
                    ->AddRequirementFromQuery(
                        "ANALYZE revenue ON Lineitem MEASURE revenue = "
                        "Lineitem.l_extendedprice * (1 - "
                        "Lineitem.l_discount) SUM "
                        "BY Part.p_name, Supplier.s_name")
                    .ok());
    EXPECT_TRUE((*quarry)
                    ->AddRequirementFromQuery(
                        "ANALYZE qty ON Lineitem MEASURE qty = "
                        "Lineitem.l_quantity SUM BY Nation.n_name")
                    .ok());
    return std::move(*quarry);
  }

  storage::Database src_;
  std::filesystem::path dir_;
};

TEST_F(SessionTest, SaveThenLoadRebuildsIdenticalDesign) {
  auto original = MakeQuarryWithRequirements();
  ASSERT_TRUE(SaveSession(*original, dir_).ok());

  auto restored = LoadSession(dir_, &src_);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->requirements().size(), 2u);
  EXPECT_TRUE(xml::DeepEqual(*original->schema().ToXml(),
                             *(*restored)->schema().ToXml()));
  // The restored instance is fully operational.
  storage::Database dw;
  auto deployment = (*restored)->Deploy(&dw);
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  EXPECT_TRUE(deployment->referential_integrity_ok);
}

TEST_F(SessionTest, LoadDetectsDivergingSourceData) {
  auto original = MakeQuarryWithRequirements();
  ASSERT_TRUE(SaveSession(*original, dir_).ok());
  // A fresh source with a different seed rebuilds the same *logical*
  // design (schemas don't depend on data), so loading still succeeds...
  storage::Database other_src;
  ASSERT_TRUE(datagen::PopulateTpch(&other_src, {0.005, 99}).ok());
  auto restored = LoadSession(dir_, &other_src);
  EXPECT_TRUE(restored.ok()) << restored.status();
}

TEST_F(SessionTest, LoadFailsOnMissingDirectoryOrMetadata) {
  EXPECT_TRUE(
      LoadSession("/nonexistent/quarry", &src_).status().IsNotFound());
  // Directory exists but holds no ontology.
  EXPECT_TRUE(LoadSession(dir_, &src_).status().IsNotFound());
}

TEST_F(SessionTest, SessionRoundtripAfterEvolution) {
  auto original = MakeQuarryWithRequirements();
  ASSERT_TRUE(original->RemoveRequirement("qty").ok());
  ASSERT_TRUE(original
                  ->AddRequirementFromQuery(
                      "ANALYZE tax ON Lineitem MEASURE avg_tax = "
                      "Lineitem.l_tax AVG BY Part.p_brand")
                  .ok());
  ASSERT_TRUE(SaveSession(*original, dir_).ok());
  auto restored = LoadSession(dir_, &src_);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->requirements().size(), 2u);
  EXPECT_TRUE((*restored)->requirements().count("tax") > 0);
  EXPECT_FALSE((*restored)->requirements().count("qty") > 0);
  EXPECT_TRUE(xml::DeepEqual(*original->schema().ToXml(),
                             *(*restored)->schema().ToXml()));
}

TEST_F(SessionTest, DurableSessionSurvivesKillWithoutASave) {
  // A durable session WAL-logs every design step, so a kill after
  // EnableDurability loses nothing even though SaveSession never ran again.
  {
    auto original = MakeQuarryWithRequirements();
    ASSERT_TRUE(SaveSession(*original, dir_).ok());
    ASSERT_TRUE(original->EnableDurability(dir_.string()).ok());
    ASSERT_TRUE(original
                    ->AddRequirementFromQuery(
                        "ANALYZE tax ON Lineitem MEASURE avg_tax = "
                        "Lineitem.l_tax AVG BY Part.p_brand")
                    .ok());
  }  // no SaveSession: the "tax" artifacts exist only in the WAL

  docstore::RecoveryStats stats;
  auto restored = OpenDurableSession(dir_.string(), &src_, {}, &stats);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->requirements().size(), 3u);
  EXPECT_TRUE((*restored)->requirements().count("tax") > 0);
  EXPECT_TRUE(stats.manifest_found);
  EXPECT_GT(stats.wal_records_replayed, 0);
  EXPECT_EQ((*restored)->recovery_stats().wal_records_replayed,
            stats.wal_records_replayed);
  EXPECT_TRUE((*restored)->repository().store().durable());
}

}  // namespace
}  // namespace quarry::core
