// Unit tests for the columnar storage layer (DESIGN.md §8): ValueSegment's
// exact Value round-trip (the property the three-way differential harness
// rests on), Gather, Chunk selection-vector composition, and the
// row-splitting helpers MakeChunk / ChunkRows / Table::ScanChunks.

#include "storage/chunk.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/database.h"
#include "storage/value.h"

namespace quarry::storage {
namespace {

std::vector<Row> SampleRows() {
  // One column per runtime type, with NULL holes, over 5 rows.
  std::vector<Row> rows;
  rows.push_back({Value::Int(1), Value::Double(1.5), Value::String("a"),
                  Value::Bool(true), Value::Date(100)});
  rows.push_back({Value::Null(), Value::Double(-2.5), Value::Null(),
                  Value::Bool(false), Value::Null()});
  rows.push_back({Value::Int(3), Value::Null(), Value::String(""),
                  Value::Null(), Value::Date(-7)});
  rows.push_back({Value::Int(-4), Value::Double(0.0), Value::String("dd"),
                  Value::Bool(true), Value::Date(0)});
  rows.push_back({Value::Int(5), Value::Double(99.75), Value::String("e"),
                  Value::Bool(false), Value::Date(20000)});
  return rows;
}

void ExpectSameValue(const Value& got, const Value& want) {
  EXPECT_EQ(got.is_null(), want.is_null());
  EXPECT_TRUE(got.SameAs(want)) << got.ToString() << " vs "
                                << want.ToString();
}

TEST(ValueSegmentTest, TypedColumnsRoundTripExactly) {
  std::vector<Row> rows = SampleRows();
  const ValueSegment::Rep want_rep[] = {
      ValueSegment::Rep::kInt64, ValueSegment::Rep::kDouble,
      ValueSegment::Rep::kString, ValueSegment::Rep::kBool,
      ValueSegment::Rep::kDate};
  for (size_t c = 0; c < 5; ++c) {
    ValueSegment seg = ValueSegment::FromRows(rows, c, 0, rows.size());
    EXPECT_EQ(seg.rep(), want_rep[c]) << "column " << c;
    ASSERT_EQ(seg.size(), rows.size());
    EXPECT_TRUE(seg.has_nulls()) << "column " << c;
    for (size_t r = 0; r < rows.size(); ++r) {
      ExpectSameValue(seg.At(r), rows[r][c]);
      EXPECT_EQ(seg.IsNull(r), rows[r][c].is_null());
    }
  }
}

TEST(ValueSegmentTest, NoNullsMeansNoMask) {
  std::vector<Row> rows;
  for (int i = 0; i < 4; ++i) rows.push_back({Value::Int(i)});
  ValueSegment seg = ValueSegment::FromRows(rows, 0, 0, rows.size());
  EXPECT_FALSE(seg.has_nulls());
  for (size_t r = 0; r < rows.size(); ++r) EXPECT_FALSE(seg.IsNull(r));
}

TEST(ValueSegmentTest, MixedTypeColumnFallsBackToValues) {
  // A SUM output whose groups split between Int and Double is the canonical
  // mixed column; the segment must keep the exact per-row runtime type.
  std::vector<Row> rows;
  rows.push_back({Value::Int(1)});
  rows.push_back({Value::Double(2.0)});
  rows.push_back({Value::Null()});
  rows.push_back({Value::String("x")});
  ValueSegment seg = ValueSegment::FromRows(rows, 0, 0, rows.size());
  EXPECT_EQ(seg.rep(), ValueSegment::Rep::kMixed);
  for (size_t r = 0; r < rows.size(); ++r) {
    ExpectSameValue(seg.At(r), rows[r][0]);
  }
  EXPECT_TRUE(seg.At(0).is_int());
  EXPECT_TRUE(seg.At(1).is_double());  // 2.0 stays Double, not Int
}

TEST(ValueSegmentTest, AllNullSegmentRoundTrips) {
  std::vector<Row> rows;
  for (int i = 0; i < 3; ++i) rows.push_back({Value::Null()});
  ValueSegment seg = ValueSegment::FromRows(rows, 0, 0, rows.size());
  EXPECT_TRUE(seg.has_nulls());
  for (size_t r = 0; r < 3; ++r) EXPECT_TRUE(seg.At(r).is_null());
}

TEST(ValueSegmentTest, FromValuesOwnsComputedVector) {
  std::vector<Value> values = {Value::Int(7), Value::Null(), Value::Int(9)};
  ValueSegment seg = ValueSegment::FromValues(std::move(values));
  EXPECT_EQ(seg.rep(), ValueSegment::Rep::kInt64);
  ASSERT_EQ(seg.size(), 3u);
  EXPECT_EQ(seg.At(0).as_int(), 7);
  EXPECT_TRUE(seg.At(1).is_null());
  EXPECT_EQ(seg.At(2).as_int(), 9);
}

TEST(ValueSegmentTest, SubrangeAndGather) {
  std::vector<Row> rows = SampleRows();
  ValueSegment seg = ValueSegment::FromRows(rows, 0, 1, 4);  // rows 1..3
  ASSERT_EQ(seg.size(), 3u);
  EXPECT_TRUE(seg.At(0).is_null());
  EXPECT_EQ(seg.At(1).as_int(), 3);
  EXPECT_EQ(seg.At(2).as_int(), -4);

  ValueSegment full = ValueSegment::FromRows(rows, 2, 0, rows.size());
  ValueSegment picked = full.Gather({4, 0, 0, 1});
  EXPECT_EQ(picked.rep(), full.rep());
  ASSERT_EQ(picked.size(), 4u);
  EXPECT_EQ(picked.At(0).as_string(), "e");
  EXPECT_EQ(picked.At(1).as_string(), "a");
  EXPECT_EQ(picked.At(2).as_string(), "a");
  EXPECT_TRUE(picked.At(3).is_null());
}

TEST(ChunkTest, SelectionVectorRemapsLiveRows) {
  std::vector<Row> rows = SampleRows();
  Chunk full = MakeChunk(rows, 5, 0, rows.size());
  EXPECT_EQ(full.num_columns(), 5u);
  EXPECT_EQ(full.capacity(), 5u);
  EXPECT_EQ(full.num_rows(), 5u);
  EXPECT_FALSE(full.has_selection());
  EXPECT_EQ(full.PhysicalRow(3), 3u);

  auto sel = std::make_shared<const std::vector<uint32_t>>(
      std::vector<uint32_t>{4, 2, 0});
  Chunk filtered(full.segments(), sel);
  EXPECT_EQ(filtered.capacity(), 5u);
  EXPECT_EQ(filtered.num_rows(), 3u);
  EXPECT_EQ(filtered.PhysicalRow(0), 4u);
  ExpectSameValue(filtered.ValueAt(0, 0), rows[4][0]);
  ExpectSameValue(filtered.ValueAt(0, 1), rows[2][0]);
  ExpectSameValue(filtered.ValueAt(0, 2), rows[0][0]);

  std::vector<Row> out;
  filtered.AppendRowsTo(&out);
  ASSERT_EQ(out.size(), 3u);
  for (size_t c = 0; c < 5; ++c) {
    ExpectSameValue(out[0][c], rows[4][c]);
    ExpectSameValue(out[1][c], rows[2][c]);
    ExpectSameValue(out[2][c], rows[0][c]);
  }
}

TEST(ChunkTest, ProjectionSharesSegments) {
  std::vector<Row> rows = SampleRows();
  Chunk full = MakeChunk(rows, 5, 0, rows.size());
  // A projection is a pointer copy: same underlying segment objects.
  Chunk projected({full.segment_ptr(2), full.segment_ptr(0)},
                  full.selection());
  EXPECT_EQ(projected.num_columns(), 2u);
  EXPECT_EQ(&projected.segment(0), &full.segment(2));
  EXPECT_EQ(&projected.segment(1), &full.segment(0));
}

TEST(ChunkTest, ChunkRowsSplitsWithPartialLastChunk) {
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({Value::Int(i)});

  std::vector<Chunk> chunks = ChunkRows(rows, 1, 4);
  ASSERT_EQ(chunks.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(chunks[0].num_rows(), 4u);
  EXPECT_EQ(chunks[1].num_rows(), 4u);
  EXPECT_EQ(chunks[2].num_rows(), 2u);
  EXPECT_EQ(chunks[2].ValueAt(0, 1).as_int(), 9);

  EXPECT_EQ(ChunkRows(rows, 1, 1).size(), 10u);    // singletons
  EXPECT_EQ(ChunkRows(rows, 1, 100).size(), 1u);   // one oversized chunk
  EXPECT_EQ(ChunkRows(rows, 1, 0).size(), 10u);    // sizes < 1 act like 1
  EXPECT_TRUE(ChunkRows({}, 1, 4).empty());        // empty input, no chunks

  // Round-trip: re-materializing every chunk reproduces the input exactly.
  std::vector<Row> out;
  for (const Chunk& chunk : chunks) chunk.AppendRowsTo(&out);
  ASSERT_EQ(out.size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ExpectSameValue(out[r][0], rows[r][0]);
  }
}

TEST(ChunkTest, TableScanChunksMatchesRows) {
  Database db("src");
  TableSchema schema("t");
  ASSERT_TRUE(schema.AddColumn({"id", DataType::kInt64, false}).ok());
  ASSERT_TRUE(schema.AddColumn({"s", DataType::kString, true}).ok());
  Table* table = *db.CreateTable(std::move(schema));
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(table
                    ->Insert({Value::Int(i),
                              i % 2 == 0 ? Value::String("x")
                                         : Value::Null()})
                    .ok());
  }
  std::vector<Chunk> chunks = table->ScanChunks(3);
  ASSERT_EQ(chunks.size(), 3u);  // 3 + 3 + 1
  std::vector<Row> out;
  for (const Chunk& chunk : chunks) chunk.AppendRowsTo(&out);
  ASSERT_EQ(out.size(), table->rows().size());
  for (size_t r = 0; r < out.size(); ++r) {
    for (size_t c = 0; c < 2; ++c) {
      ExpectSameValue(out[r][c], table->rows()[r][c]);
    }
  }
}

}  // namespace
}  // namespace quarry::storage
