#ifndef QUARRY_OBS_PROFILE_H_
#define QUARRY_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace quarry::obs {

/// \brief One plan node of a per-request profile tree (EXPLAIN ANALYZE
/// style, docs/OBSERVABILITY.md §"HTTP endpoints & request profiles").
///
/// The executor folds its per-node ExecutionReport stats into this shape;
/// children are the node's inputs (predecessors in the flow), so the tree
/// reads top-down from the sink: "this Loader was fed by this Aggregation,
/// which was fed by ...".
struct ProfileNode {
  std::string id;      ///< Flow node id (e.g. "q_agg", "q_join_Product").
  std::string op;      ///< Operator type name (e.g. "Aggregation").
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  double wall_micros = 0.0;
  int attempts = 1;    ///< >1 when the node was retried after a fault.
  std::vector<ProfileNode> children;  ///< Inputs of this node.
};

/// \brief A request's complete EXPLAIN ANALYZE profile: attribution
/// (request id, kind, admission lane, generation served), end-to-end
/// timing, and the per-plan-node tree.
///
/// Returned inline in results (core::QueryResult::profile) and rendered by
/// ToText() for humans / ToJson() for tools. Lives in obs so the executor,
/// the cube engine and the HTTP exporter can all speak it without a
/// dependency on core.
struct RequestProfile {
  uint64_t request_id = 0;
  std::string kind;       ///< "query", "deploy", "refresh", ...
  std::string lane;       ///< Admission lane ("query", "stale", "" = design).
  std::string status = "ok";
  uint64_t generation = 0;  ///< Warehouse generation served / published.
  bool stale = false;
  double admission_wait_micros = 0.0;
  double total_micros = 0.0;
  int64_t rows = 0;       ///< Result rows (queries) / rows processed (ETL).
  std::vector<ProfileNode> roots;  ///< Sink nodes of the executed flow.

  /// Human-readable EXPLAIN ANALYZE rendering: a header line followed by
  /// the indented plan tree, one node per line.
  std::string ToText() const;

  /// Compact single-object JSON rendering (parseable by quarry::json).
  std::string ToJson() const;
};

}  // namespace quarry::obs

#endif  // QUARRY_OBS_PROFILE_H_
