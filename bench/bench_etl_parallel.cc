// Wavefront-scheduler experiments (docs/ROBUSTNESS.md §8,
// BENCH_parallel.json):
//  - wide multi-branch flow (6 independent extract→transform→load chains)
//    executed serially and with 2/4/8 workers — the headline wavefront
//    speedup. On a multi-core host the 4-worker run is expected >= 2x; on
//    a single-vCPU container CPU-bound branches cannot overlap and the
//    interesting number is how little the scheduler loses;
//  - deep chain flow (60 dependent nodes): zero exploitable parallelism by
//    construction, so (parallel - serial) / nodes is the per-node
//    scheduling overhead (thread pool, ready queue, condvar signalling);
//  - latency-bound wide flow: each branch's transform draws one injected
//    transient fault and sleeps through a deterministic 25 ms retry
//    backoff. Workers overlap the sleeps even on one vCPU — the wavefront
//    win that survives any core count.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/prng.h"
#include "etl/exec/executor.h"
#include "etl/flow.h"
#include "storage/database.h"

namespace {

using quarry::Prng;
using quarry::etl::Checkpoint;
using quarry::etl::ExecOptions;
using quarry::etl::Executor;
using quarry::etl::Flow;
using quarry::etl::Node;
using quarry::etl::OpType;
using quarry::etl::RetryPolicy;

Node MakeNode(const std::string& id, OpType type,
              std::map<std::string, std::string> params) {
  Node node;
  node.id = id;
  node.type = type;
  node.params = std::move(params);
  return node;
}

/// Source tables src0..src5 with (id, v, w) and `rows` rows each.
quarry::storage::Database* BuildSource(int tables, int64_t rows) {
  using quarry::storage::DataType;
  using quarry::storage::Value;
  auto* db = new quarry::storage::Database("src");
  Prng prng(117);
  for (int t = 0; t < tables; ++t) {
    quarry::storage::TableSchema schema("src" + std::to_string(t));
    (void)schema.AddColumn({"id", DataType::kInt64, false});
    (void)schema.AddColumn({"v", DataType::kInt64, true});
    (void)schema.AddColumn({"w", DataType::kDouble, true});
    quarry::storage::Table* table = *db->CreateTable(std::move(schema));
    for (int64_t r = 0; r < rows; ++r) {
      (void)table->Insert({Value::Int(r), Value::Int(prng.Uniform(0, 1000)),
                           Value::Double(prng.UniformDouble() * 100.0)});
    }
  }
  return db;
}

quarry::storage::Database& WideSource() {
  static quarry::storage::Database* db = BuildSource(6, 20000);
  return *db;
}

/// Smaller source for the latency-bound scenario: keeps per-branch compute
/// well below the injected 50 ms retry backoff, so the measurement isolates
/// how well workers overlap the waits.
quarry::storage::Database& LatencySource() {
  static quarry::storage::Database* db = BuildSource(6, 5000);
  return *db;
}

/// Six independent branches, one per operator type, so each branch owns a
/// distinct `etl.exec.<OpType>` fault site: extract → transform → load.
Flow BuildWideFlow() {
  Flow flow("wide6");
  auto branch = [&flow](int i, const std::string& table) {
    std::string n = std::to_string(i);
    (void)flow.AddNode(
        MakeNode("ds" + n, OpType::kDatastore, {{"table", table}}));
    (void)flow.AddNode(
        MakeNode("ex" + n, OpType::kExtraction, {{"table", table}}));
    (void)flow.AddEdge("ds" + n, "ex" + n);
    return "ex" + n;
  };
  auto finish = [&flow](int i, const std::string& tail) {
    std::string n = std::to_string(i);
    (void)flow.AddNode(
        MakeNode("load" + n, OpType::kLoader, {{"table", "out" + n}}));
    (void)flow.AddEdge(tail, "load" + n);
  };

  (void)flow.AddNode(MakeNode("sel", OpType::kSelection,
                              {{"predicate", "v >= 500"}}));
  (void)flow.AddEdge(branch(0, "src0"), "sel");
  finish(0, "sel");

  (void)flow.AddNode(
      MakeNode("proj", OpType::kProjection, {{"columns", "id,v"}}));
  (void)flow.AddEdge(branch(1, "src1"), "proj");
  finish(1, "proj");

  (void)flow.AddNode(MakeNode("fn", OpType::kFunction,
                              {{"column", "f0"}, {"expr", "v * 3 + 1"}}));
  (void)flow.AddEdge(branch(2, "src2"), "fn");
  finish(2, "fn");

  (void)flow.AddNode(
      MakeNode("sort", OpType::kSort, {{"by", "v"}, {"desc", "true"}}));
  (void)flow.AddEdge(branch(3, "src3"), "sort");
  finish(3, "sort");

  (void)flow.AddNode(MakeNode(
      "agg", OpType::kAggregation,
      {{"group", "v"}, {"aggs", "SUM(id) AS total"}}));
  (void)flow.AddEdge(branch(4, "src4"), "agg");
  finish(4, "agg");

  (void)flow.AddNode(MakeNode("join", OpType::kJoin,
                              {{"left", "id"},
                               {"right", "id"},
                               {"type", "inner"}}));
  (void)flow.AddEdge(branch(5, "src5"), "join");
  (void)flow.AddEdge(branch(6, "src0"), "join");
  (void)flow.AddNode(
      MakeNode("jproj", OpType::kProjection, {{"columns", "id,v,w"}}));
  (void)flow.AddEdge("join", "jproj");
  finish(5, "jproj");
  return flow;
}

/// 60 dependent selections: the longest path IS the flow, so any time a
/// parallel run loses versus serial is pure scheduler overhead.
Flow BuildChainFlow(int length) {
  Flow flow("chain");
  (void)flow.AddNode(
      MakeNode("ds", OpType::kDatastore, {{"table", "src0"}}));
  (void)flow.AddNode(
      MakeNode("ex", OpType::kExtraction, {{"table", "src0"}}));
  (void)flow.AddEdge("ds", "ex");
  std::string prev = "ex";
  for (int i = 0; i < length; ++i) {
    std::string id = "sel" + std::to_string(i);
    (void)flow.AddNode(
        MakeNode(id, OpType::kSelection, {{"predicate", "v >= 0"}}));
    (void)flow.AddEdge(prev, id);
    prev = id;
  }
  (void)flow.AddNode(
      MakeNode("load", OpType::kLoader, {{"table", "out"}}));
  (void)flow.AddEdge(prev, "load");
  return flow;
}

void RunOrDie(quarry::storage::Database& source, const Flow& flow,
              int workers, const RetryPolicy& retry = {}) {
  quarry::storage::Database target("dw");
  Executor executor(&source, &target);
  ExecOptions options;
  options.max_workers = workers;
  auto report = executor.Run(flow, options, retry, nullptr);
  if (!report.ok()) std::abort();
}

void BM_WideFlow(benchmark::State& state) {
  quarry::storage::Database& source = WideSource();
  Flow flow = BuildWideFlow();
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) RunOrDie(source, flow, workers);
  state.counters["workers"] = workers;
}
BENCHMARK(BM_WideFlow)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_DeepChain(benchmark::State& state) {
  quarry::storage::Database& source = WideSource();
  Flow flow = BuildChainFlow(60);
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) RunOrDie(source, flow, workers);
  state.counters["workers"] = workers;
  state.counters["nodes"] = static_cast<double>(flow.num_nodes());
}
BENCHMARK(BM_DeepChain)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Every branch's transform fails exactly once (fail_from_hit = 1,
/// max_failures = 1 per distinct op-type site) and retries after a
/// deterministic 50 ms jitter-free backoff: the flow is sleep-dominated,
/// and workers overlap the sleeps.
void BM_WideFlowRetryLatency(benchmark::State& state) {
  quarry::storage::Database& source = LatencySource();
  Flow flow = BuildWideFlow();
  const int workers = static_cast<int>(state.range(0));
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.base_backoff_millis = 50.0;
  retry.jitter_fraction = 0.0;
  auto& injector = quarry::fault::Injector::Instance();
  injector.ClearConfigs();
  for (const char* site :
       {"etl.exec.Selection", "etl.exec.Projection", "etl.exec.Function",
        "etl.exec.Sort", "etl.exec.Aggregation", "etl.exec.Join"}) {
    injector.Configure(site, {.fail_from_hit = 1, .max_failures = 1});
  }
  for (auto _ : state) {
    state.PauseTiming();
    injector.Enable(/*seed=*/5);  // resets hit/failure counters
    state.ResumeTiming();
    RunOrDie(source, flow, workers, retry);
  }
  injector.Disable();
  injector.ClearConfigs();
  state.counters["workers"] = workers;
}
BENCHMARK(BM_WideFlowRetryLatency)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace

BENCHMARK_MAIN();
