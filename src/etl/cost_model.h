#ifndef QUARRY_ETL_COST_MODEL_H_
#define QUARRY_ETL_COST_MODEL_H_

#include <map>
#include <string>

#include "common/result.h"
#include "etl/flow.h"

namespace quarry::etl {

/// \brief Configurable cost model for ETL flows (paper §2.3: "configurable
/// cost models that may consider different quality factors of an ETL
/// process, e.g., overall execution time").
///
/// Cost is estimated bottom-up from source cardinalities: each operator
/// charges `weight(op) × input_rows` (Sort charges an extra log factor),
/// and cardinalities propagate with per-operator ratios. The weights are
/// per-row processing charges relative to Extraction = 1.
struct CostModelConfig {
  double selection_selectivity = 0.33;  ///< Output fraction of a Selection.
  double aggregation_ratio = 0.2;       ///< Groups per input row.
  /// Join output scaling. Joins are estimated as foreign-key joins with the
  /// key (dimension) side on the right: output = fanout × left_rows ×
  /// (right_rows / right_base_rows), where right_base_rows is the
  /// cardinality of the datastore the right input descends from — so a
  /// selection pushed onto the build side correctly shrinks the join
  /// output.
  double join_fanout = 1.0;
  std::map<OpType, double> weights = {
      {OpType::kDatastore, 0.0},   {OpType::kExtraction, 1.0},
      {OpType::kSelection, 0.5},   {OpType::kProjection, 0.3},
      {OpType::kJoin, 2.0},        {OpType::kAggregation, 1.5},
      {OpType::kFunction, 0.5},    {OpType::kSort, 1.0},
      {OpType::kUnion, 0.2},       {OpType::kSurrogateKey, 1.0},
      {OpType::kLoader, 1.0},
  };
};

/// Result of estimating one flow.
struct FlowCostEstimate {
  double total_cost = 0;
  /// Estimated input cardinality summed over operators — directly
  /// comparable to ExecutionReport::rows_processed.
  double rows_processed = 0;
  std::map<std::string, double> node_output_rows;
};

/// Estimates `flow` given source-table cardinalities. Unknown tables
/// default to 0 rows (and are reported in the estimate like empty inputs).
Result<FlowCostEstimate> EstimateCost(
    const Flow& flow, const std::map<std::string, int64_t>& table_rows,
    const CostModelConfig& config = CostModelConfig());

}  // namespace quarry::etl

#endif  // QUARRY_ETL_COST_MODEL_H_
