#ifndef QUARRY_REQUIREMENTS_WORKLOAD_H_
#define QUARRY_REQUIREMENTS_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "requirements/requirement.h"

namespace quarry::req {

/// Knobs for the synthetic requirement-stream generator used by the
/// benchmark harness (EXPERIMENTS.md S1/S2a/S2b).
struct WorkloadConfig {
  int num_requirements = 5;
  /// In [0,1]: probability that a requirement draws its dimensions from the
  /// shared "hot" pool (Part/Supplier/Orders) instead of its own picks —
  /// higher overlap means more conformed dimensions and more reusable ETL.
  double overlap = 0.5;
  int dimensions_per_requirement = 2;
  /// Fraction of requirements carrying one slicer.
  double slicer_probability = 0.5;
  uint64_t seed = 42;
};

/// Generates a deterministic stream of valid information requirements over
/// the TPC-H domain ontology (focus Lineitem, unique measure names so
/// same-grain facts merge without definition conflicts).
std::vector<InformationRequirement> GenerateTpchWorkload(
    const WorkloadConfig& config);

}  // namespace quarry::req

#endif  // QUARRY_REQUIREMENTS_WORKLOAD_H_
