#include "core/tenant.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace quarry::core {

namespace {

/// Server-side failure classes the circuit breaker counts. Client mistakes
/// (validation, parse, not-found), sheds and cancellations are neutral.
bool IsBreakerFailure(const Status& status) {
  return status.IsExecutionError() || status.IsInternal() ||
         status.IsDeadlineExceeded() || status.IsResourceExhausted();
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kHalfOpen: return "half_open";
    case BreakerState::kOpen: return "open";
  }
  return "unknown";
}

/// All mutable fields are guarded by TenantRegistry::mu_.
struct TenantRegistry::TenantState {
  std::string id;
  TenantQuota quota;

  double tokens = 0.0;
  Clock::time_point last_refill;

  int in_flight = 0;

  BreakerState breaker = BreakerState::kClosed;
  Clock::time_point open_until;
  int consecutive_failures = 0;
  int half_open_probes_in_flight = 0;

  // Cached metric instances (process-lifetime, see obs/metrics.h).
  obs::Counter* requests_total;
  obs::Counter* admitted_total;
  obs::Counter* shed_rate;
  obs::Counter* shed_in_flight;
  obs::Counter* shed_breaker;
  obs::Counter* breaker_trips;
  obs::Gauge* in_flight_gauge;
  obs::Gauge* tokens_gauge;
  obs::Gauge* breaker_state_gauge;
};

TenantRegistry::TenantRegistry() = default;
TenantRegistry::~TenantRegistry() = default;

Status TenantRegistry::Register(const std::string& id,
                                const TenantQuota& quota) {
  if (id.empty()) {
    return Status::InvalidArgument("tenant id must be non-empty");
  }
  if (quota.rate_per_sec < 0 || quota.max_in_flight < 0 ||
      quota.breaker_failure_threshold < 0 ||
      quota.breaker_cooldown_millis < 0) {
    return Status::InvalidArgument("tenant quota knobs must be >= 0 (tenant " +
                                   id + ")");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  if (it != tenants_.end()) {
    // Reconfigure in place: accounting and breaker state survive.
    it->second->quota = quota;
    it->second->tokens = std::min(
        it->second->tokens,
        quota.burst > 0 ? quota.burst : std::max(quota.rate_per_sec, 1.0));
    return Status::OK();
  }
  auto state = std::make_unique<TenantState>();
  state->id = id;
  state->quota = quota;
  state->tokens = quota.burst > 0 ? quota.burst
                                  : std::max(quota.rate_per_sec, 1.0);
  state->last_refill = Clock::now();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  obs::Labels tenant{{"tenant", id}};
  state->requests_total =
      &reg.counter("quarry_tenant_requests_total",
                   "Requests that reached the tenant registry, by tenant",
                   tenant);
  state->admitted_total =
      &reg.counter("quarry_tenant_admitted_total",
                   "Requests granted a tenant quota lease, by tenant", tenant);
  const std::string shed_help =
      "Requests shed by per-tenant quotas, by tenant and reason";
  state->shed_rate = &reg.counter(
      "quarry_tenant_shed_total", shed_help,
      {{"reason", "rate"}, {"tenant", id}});
  state->shed_in_flight = &reg.counter(
      "quarry_tenant_shed_total", shed_help,
      {{"reason", "in_flight"}, {"tenant", id}});
  state->shed_breaker = &reg.counter(
      "quarry_tenant_shed_total", shed_help,
      {{"reason", "breaker"}, {"tenant", id}});
  state->breaker_trips = &reg.counter(
      "quarry_tenant_breaker_trips_total",
      "Times a tenant's circuit breaker tripped open", tenant);
  state->in_flight_gauge =
      &reg.gauge("quarry_tenant_in_flight",
                 "Quota leases currently held, by tenant", tenant);
  state->tokens_gauge =
      &reg.gauge("quarry_tenant_tokens",
                 "Current token-bucket fill, by tenant", tenant);
  state->breaker_state_gauge = &reg.gauge(
      "quarry_tenant_breaker_state",
      "Circuit-breaker state, by tenant (0=closed, 1=half-open, 2=open)",
      tenant);
  state->tokens_gauge->Set(state->tokens);

  tenants_.emplace(id, std::move(state));
  return Status::OK();
}

bool TenantRegistry::Has(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.count(id) > 0;
}

void TenantRegistry::RefillLocked(TenantState& s, Clock::time_point now) {
  if (s.quota.rate_per_sec <= 0) return;
  const double cap =
      s.quota.burst > 0 ? s.quota.burst : std::max(s.quota.rate_per_sec, 1.0);
  const double elapsed =
      std::chrono::duration<double>(now - s.last_refill).count();
  if (elapsed > 0) {
    s.tokens = std::min(cap, s.tokens + elapsed * s.quota.rate_per_sec);
    s.last_refill = now;
  }
}

Result<TenantRegistry::Lease> TenantRegistry::Admit(const ExecContext* ctx) {
  const std::string& tenant = TenantId(ctx);
  if (tenant.empty()) return Lease();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Lease();  // Unregistered: ungated.
  TenantState& s = *it->second;

  // The tenant's scheduling class rides the context into the lanes.
  if (ctx != nullptr) ctx->set_priority(s.quota.priority);

  s.requests_total->Increment();
  const Clock::time_point now = Clock::now();
  RefillLocked(s, now);

  // Circuit breaker first: while open, nothing else matters.
  bool probe = false;
  if (s.quota.breaker_failure_threshold > 0) {
    if (s.breaker == BreakerState::kOpen) {
      const double remaining =
          std::chrono::duration<double, std::milli>(s.open_until - now)
              .count();
      if (remaining > 0) {
        s.shed_breaker->Increment();
        return WithRetryAfterMillis(
            Status::Overloaded("circuit breaker open for tenant '" + tenant +
                               "'"),
            remaining);
      }
      s.breaker = BreakerState::kHalfOpen;
      s.half_open_probes_in_flight = 0;
      s.breaker_state_gauge->Set(
          static_cast<double>(BreakerState::kHalfOpen));
    }
    if (s.breaker == BreakerState::kHalfOpen) {
      if (s.half_open_probes_in_flight >= s.quota.breaker_half_open_probes) {
        s.shed_breaker->Increment();
        return WithRetryAfterMillis(
            Status::Overloaded("circuit breaker half-open for tenant '" +
                               tenant + "', probe quota in use"),
            s.quota.breaker_cooldown_millis);
      }
      probe = true;
    }
  }

  // In-flight share before the bucket, so a share shed never burns a token.
  if (s.quota.max_in_flight > 0 && s.in_flight >= s.quota.max_in_flight) {
    s.shed_in_flight->Increment();
    return WithRetryAfterMillis(
        Status::Overloaded("tenant '" + tenant + "' in-flight share (" +
                           std::to_string(s.quota.max_in_flight) +
                           ") exhausted"),
        s.quota.rate_per_sec > 0 ? 1000.0 / s.quota.rate_per_sec : 10.0);
  }

  // Token bucket.
  if (s.quota.rate_per_sec > 0) {
    if (s.tokens < 1.0) {
      const double wait_ms =
          (1.0 - s.tokens) / s.quota.rate_per_sec * 1000.0;
      s.shed_rate->Increment();
      s.tokens_gauge->Set(s.tokens);
      return WithRetryAfterMillis(
          Status::Overloaded("tenant '" + tenant +
                             "' rate quota exhausted (" +
                             std::to_string(s.quota.rate_per_sec) +
                             " req/s)"),
          wait_ms);
    }
    s.tokens -= 1.0;
    s.tokens_gauge->Set(s.tokens);
  }

  ++s.in_flight;
  s.in_flight_gauge->Set(static_cast<double>(s.in_flight));
  if (probe) ++s.half_open_probes_in_flight;
  s.admitted_total->Increment();
  Lease lease(this, &s);
  lease.probe_ = probe;
  return lease;
}

void TenantRegistry::CompleteLocked(TenantState& s, const Status* status) {
  if (s.quota.breaker_failure_threshold <= 0 || status == nullptr) return;
  if (status->ok()) {
    s.consecutive_failures = 0;
    if (s.breaker == BreakerState::kHalfOpen) {
      s.breaker = BreakerState::kClosed;
      s.breaker_state_gauge->Set(static_cast<double>(BreakerState::kClosed));
    }
    return;
  }
  if (!IsBreakerFailure(*status)) return;  // Sheds/cancels are neutral.
  ++s.consecutive_failures;
  if (s.breaker == BreakerState::kHalfOpen ||
      (s.breaker == BreakerState::kClosed &&
       s.consecutive_failures >= s.quota.breaker_failure_threshold)) {
    s.breaker = BreakerState::kOpen;
    s.open_until = Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           s.quota.breaker_cooldown_millis));
    s.consecutive_failures = 0;
    s.breaker_trips->Increment();
    s.breaker_state_gauge->Set(static_cast<double>(BreakerState::kOpen));
  }
}

void TenantRegistry::Lease::Finish(const Status* status) {
  if (registry_ == nullptr) return;
  TenantRegistry* registry = registry_;
  TenantState* state = state_;
  registry_ = nullptr;
  state_ = nullptr;
  std::lock_guard<std::mutex> lock(registry->mu_);
  --state->in_flight;
  state->in_flight_gauge->Set(static_cast<double>(state->in_flight));
  if (probe_ && state->half_open_probes_in_flight > 0) {
    --state->half_open_probes_in_flight;
  }
  registry->CompleteLocked(*state, status);
}

std::vector<TenantStatus> TenantRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Clock::time_point now = Clock::now();
  std::vector<TenantStatus> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) {
    const TenantState& s = *state;
    TenantStatus row;
    row.id = id;
    row.quota = s.quota;
    // Recompute the fill without mutating (Snapshot is const).
    if (s.quota.rate_per_sec > 0) {
      const double cap = s.quota.burst > 0
                             ? s.quota.burst
                             : std::max(s.quota.rate_per_sec, 1.0);
      const double elapsed =
          std::chrono::duration<double>(now - s.last_refill).count();
      row.tokens = std::min(cap, s.tokens + elapsed * s.quota.rate_per_sec);
    } else {
      row.tokens = s.tokens;
    }
    row.in_flight = s.in_flight;
    row.requests_total = s.requests_total->value();
    row.admitted_total = s.admitted_total->value();
    row.shed_rate_total = s.shed_rate->value();
    row.shed_in_flight_total = s.shed_in_flight->value();
    row.shed_breaker_total = s.shed_breaker->value();
    row.breaker = s.breaker;
    if (s.breaker == BreakerState::kOpen) {
      row.breaker_open_remaining_millis = std::max(
          0.0,
          std::chrono::duration<double, std::milli>(s.open_until - now)
              .count());
    }
    row.consecutive_failures = s.consecutive_failures;
    row.breaker_trips_total = s.breaker_trips->value();
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace quarry::core
