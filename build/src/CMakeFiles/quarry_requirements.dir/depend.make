# Empty dependencies file for quarry_requirements.
# This may be replaced when dependencies are built.
