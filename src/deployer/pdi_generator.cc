#include "deployer/pdi_generator.h"

#include "etl/xlm.h"

namespace quarry::deployer {

std::unique_ptr<xml::Element> GeneratePdi(const etl::Flow& flow,
                                          const std::string& database_name) {
  auto root = std::make_unique<xml::Element>("transformation");
  xml::Element* info = root->AddChild("info");
  info->AddTextChild("name", flow.name());
  xml::Element* connection = root->AddChild("connection");
  connection->AddTextChild("database", database_name);
  xml::Element* order = root->AddChild("order");
  for (const etl::Edge& edge : flow.edges()) {
    xml::Element* hop = order->AddChild("hop");
    hop->AddTextChild("from", edge.from);
    hop->AddTextChild("to", edge.to);
    hop->AddTextChild("enabled", "Y");
  }
  for (const auto& [id, node] : flow.nodes()) {
    xml::Element* step = root->AddChild("step");
    step->AddTextChild("name", node.id);
    step->AddTextChild("type", etl::EngineOpType(node.type));
    for (const auto& [key, value] : node.params) {
      xml::Element* param = step->AddChild("param");
      param->SetAttr("name", key);
      param->SetAttr("value", value);
    }
  }
  return root;
}

std::string GeneratePdiText(const etl::Flow& flow,
                            const std::string& database_name) {
  return xml::Write(*GeneratePdi(flow, database_name));
}

}  // namespace quarry::deployer
