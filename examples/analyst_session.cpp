// An analyst's session: information requirements phrased in the textual
// ANALYZE notation are imported through the metadata layer's plug-in
// parser, the warehouse is designed + deployed automatically, and the
// analyst then explores it with roll-up cube queries over the deployed
// star schema.

#include <cstdio>
#include <iostream>

#include "core/quarry.h"
#include "datagen/tpch.h"
#include "olap/cube_query.h"
#include "ontology/tpch_ontology.h"

namespace {

int Fail(const quarry::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

void PrintDataset(const quarry::etl::Dataset& data, size_t limit = 8) {
  for (const std::string& column : data.columns) {
    std::printf("%-22s", column.c_str());
  }
  std::printf("\n");
  size_t shown = 0;
  for (const quarry::storage::Row& row : data.rows) {
    if (shown++ == limit) {
      std::printf("  ... (%zu rows total)\n", data.rows.size());
      break;
    }
    for (const quarry::storage::Value& v : row) {
      std::printf("%-22s", v.ToString().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  quarry::storage::Database source("tpch");
  if (auto s = quarry::datagen::PopulateTpch(&source, {0.02, 5}); !s.ok()) {
    return Fail(s);
  }
  auto quarry = quarry::core::Quarry::Create(
      quarry::ontology::BuildTpchOntology(),
      quarry::ontology::BuildTpchMappings(), &source);
  if (!quarry.ok()) return Fail(quarry.status());

  // The analyst writes requirements as text; the "arq" import parser turns
  // them into xRQ and the pipeline does the rest.
  const char* queries[] = {
      "ANALYZE revenue ON Lineitem "
      "MEASURE revenue = Lineitem.l_extendedprice * (1 - "
      "Lineitem.l_discount) SUM "
      "BY Part.p_type, Supplier.s_name",

      "ANALYZE shipped_qty ON Lineitem "
      "MEASURE qty = Lineitem.l_quantity SUM, "
      "avg_tax = Lineitem.l_tax AVG "
      "BY Part.p_type, Supplier.s_name "
      "WHERE Lineitem.l_returnflag = 'N'",
  };
  for (const char* query : queries) {
    auto outcome = (*quarry)->AddRequirementFromQuery(query);
    if (!outcome.ok()) return Fail(outcome.status());
    std::cout << "integrated query (" << outcome->etl.nodes_reused
              << " ETL nodes reused)\n";
  }

  quarry::storage::Database warehouse;
  auto deployment = (*quarry)->Deploy(&warehouse);
  if (!deployment.ok()) return Fail(deployment.status());
  std::cout << "warehouse deployed: " << deployment->tables_created
            << " tables\n\n";

  quarry::olap::CubeQueryEngine olap(&(*quarry)->schema(),
                                     &(*quarry)->mapping(), &warehouse);

  std::cout << "=== revenue by part type ===\n";
  quarry::olap::CubeQuery by_type;
  by_type.fact = "fact_table_revenue";
  by_type.group_by = {"p_type"};
  by_type.measures = {{"revenue", quarry::md::AggFunc::kSum, "total"},
                      {"revenue", quarry::md::AggFunc::kAvg, "avg"}};
  auto r1 = olap.Execute(by_type);
  if (!r1.ok()) return Fail(r1.status());
  PrintDataset(*r1);

  std::cout << "\n=== top suppliers for SMALL parts (filtered slice) ===\n";
  quarry::olap::CubeQuery top_suppliers;
  top_suppliers.fact = "fact_table_revenue";
  top_suppliers.group_by = {"s_name"};
  top_suppliers.measures = {{"revenue", quarry::md::AggFunc::kSum, "total"}};
  top_suppliers.filters = {"p_type = 'SMALL'"};
  auto r2 = olap.Execute(top_suppliers);
  if (!r2.ok()) return Fail(r2.status());
  PrintDataset(*r2, 5);

  std::cout << "\n=== shipped quantity + avg tax (merged fact, same grain) "
               "===\n";
  quarry::olap::CubeQuery shipped;
  shipped.fact = "fact_table_revenue";  // shipped_qty merged into it
  shipped.group_by = {"p_type"};
  shipped.measures = {{"qty", quarry::md::AggFunc::kSum, "shipped"},
                      {"avg_tax", quarry::md::AggFunc::kAvg, "avg_tax"}};
  auto r3 = olap.Execute(shipped);
  if (!r3.ok()) return Fail(r3.status());
  PrintDataset(*r3);

  std::cout << "\nanalyst session finished OK\n";
  return 0;
}
