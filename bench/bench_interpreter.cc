// Experiment F4 (EXPERIMENTS.md): the Requirements Interpreter (paper
// Fig. 4 / §2.2) — translation throughput and output sizes as requirement
// complexity grows (#dimensions, #slicers, multi-hop paths).

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>

#include "common/timer.h"
#include "interpreter/interpreter.h"
#include "ontology/tpch_ontology.h"

namespace {

using quarry::interpreter::Interpreter;
using quarry::req::InformationRequirement;

struct Env {
  quarry::ontology::Ontology onto = quarry::ontology::BuildTpchOntology();
  quarry::ontology::SourceMapping mapping =
      quarry::ontology::BuildTpchMappings();
};

Env& SharedEnv() {
  static Env* env = new Env();
  return *env;
}

constexpr std::array<const char*, 6> kDims = {
    "Part.p_name",    "Supplier.s_name",     "Orders.o_orderdate",
    "Nation.n_name",  "Customer.c_mktsegment", "Region.r_name"};

InformationRequirement MakeIr(int dims, int slicers) {
  InformationRequirement ir;
  ir.id = "ir_bench";
  ir.name = "bench";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
       quarry::md::AggFunc::kSum});
  for (int i = 0; i < dims; ++i) {
    ir.dimensions.push_back({kDims[static_cast<size_t>(i)]});
  }
  if (slicers > 0) ir.slicers.push_back({"Nation.n_name", "=", "SPAIN"});
  if (slicers > 1) {
    ir.slicers.push_back({"Orders.o_orderdate", ">=", "1995-01-01"});
  }
  return ir;
}

void PrintSeries() {
  Env& env = SharedEnv();
  Interpreter interpreter(&env.onto, &env.mapping);
  std::printf(
      "F4: Requirements Interpreter — requirement complexity sweep\n");
  std::printf("%5s %8s | %10s | %10s %10s | %6s %6s\n", "dims", "slicers",
              "time_us", "flow_nodes", "flow_edges", "facts", "schema_dims");
  for (int dims = 1; dims <= 6; ++dims) {
    for (int slicers : {0, 2}) {
      InformationRequirement ir = MakeIr(dims, slicers);
      quarry::Timer t;
      auto design = interpreter.Interpret(ir);
      double us = t.ElapsedMicros();
      if (!design.ok()) std::abort();
      std::printf("%5d %8d | %10.1f | %10zu %10zu | %6zu %6zu\n", dims,
                  slicers, us, design->flow.num_nodes(),
                  design->flow.num_edges(), design->schema.facts().size(),
                  design->schema.dimensions().size());
    }
  }
  std::printf("\n");
}

void BM_InterpretRevenue(benchmark::State& state) {
  Env& env = SharedEnv();
  Interpreter interpreter(&env.onto, &env.mapping);
  InformationRequirement ir = MakeIr(2, 1);
  for (auto _ : state) {
    auto design = interpreter.Interpret(ir);
    if (!design.ok()) std::abort();
    benchmark::DoNotOptimize(design->flow.num_nodes());
  }
}
BENCHMARK(BM_InterpretRevenue);

void BM_InterpretByDimensionCount(benchmark::State& state) {
  Env& env = SharedEnv();
  Interpreter interpreter(&env.onto, &env.mapping);
  InformationRequirement ir = MakeIr(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    auto design = interpreter.Interpret(ir);
    if (!design.ok()) std::abort();
    benchmark::DoNotOptimize(design->schema.dimensions().size());
  }
}
BENCHMARK(BM_InterpretByDimensionCount)->Arg(1)->Arg(3)->Arg(6);

void BM_XrqRoundtrip(benchmark::State& state) {
  InformationRequirement ir = MakeIr(4, 2);
  for (auto _ : state) {
    auto doc = quarry::req::ToXrq(ir);
    auto parsed = quarry::req::FromXrq(*doc);
    if (!parsed.ok()) std::abort();
    benchmark::DoNotOptimize(parsed->dimensions.size());
  }
}
BENCHMARK(BM_XrqRoundtrip);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
