#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace quarry::obs {

namespace {

/// Renders a label set as `{k1="v1",k2="v2"}` (empty string for no labels).
/// Doubles as the instance key inside a family, so equal label sets always
/// hit the same metric object.
std::string LabelString(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"";
    for (char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += "\"";
  }
  out += "}";
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest float rendering that survives JSON / Prometheus parsers
/// (%.17g is exact for doubles; trim to %g when it round-trips).
std::string NumberToString(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  double parsed = std::strtod(buf, nullptr);
  if (parsed != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// JSON has no Inf literal; histogram bucket bounds use a string there.
std::string JsonNumber(double v) {
  if (std::isinf(v) || std::isnan(v)) {
    return "\"" + NumberToString(v) + "\"";
  }
  return NumberToString(v);
}

[[noreturn]] void DieOnTypeClash(const std::string& family) {
  std::fprintf(stderr,
               "obs: metric family '%s' re-registered with a different "
               "type or bucket layout\n",
               family.c_str());
  std::abort();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    out.push_back(bound);
    bound *= factor;
  }
  return out;
}

const std::vector<double>& LatencyBucketsMicros() {
  static const std::vector<double> kBounds =
      ExponentialBuckets(1.0, 4.0, 13);  // 1us .. ~16.8s
  return kBounds;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Family& MetricsRegistry::GetFamily(const std::string& family,
                                                    Kind kind,
                                                    const std::string& help) {
  auto it = families_.find(family);
  if (it == families_.end()) {
    Family f;
    f.kind = kind;
    f.help = help;
    it = families_.emplace(family, std::move(f)).first;
  } else if (it->second.kind != kind) {
    DieOnTypeClash(family);
  }
  if (it->second.help.empty() && !help.empty()) it->second.help = help;
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& family,
                                  const std::string& help,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = GetFamily(family, Kind::kCounter, help);
  std::string key = LabelString(labels);
  auto it = f.counters.find(key);
  if (it == f.counters.end()) {
    it = f.counters.emplace(key, new Counter()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& family,
                              const std::string& help, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = GetFamily(family, Kind::kGauge, help);
  std::string key = LabelString(labels);
  auto it = f.gauges.find(key);
  if (it == f.gauges.end()) {
    it = f.gauges.emplace(key, new Gauge()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& family,
                                      const std::string& help,
                                      const std::vector<double>& bounds,
                                      const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = GetFamily(family, Kind::kHistogram, help);
  const std::vector<double>& effective =
      bounds.empty() ? LatencyBucketsMicros() : bounds;
  if (f.histograms.empty()) {
    f.bounds = effective;
  } else if (f.bounds != effective) {
    DieOnTypeClash(family);
  }
  std::string key = LabelString(labels);
  auto it = f.histograms.find(key);
  if (it == f.histograms.end()) {
    it = f.histograms.emplace(key, new Histogram(effective)).first;
  }
  return *it->second;
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out << "# HELP " << name << " " << family.help << "\n";
    }
    const char* type = family.kind == Kind::kCounter   ? "counter"
                       : family.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    out << "# TYPE " << name << " " << type << "\n";
    switch (family.kind) {
      case Kind::kCounter:
        for (const auto& [labels, counter] : family.counters) {
          out << name << labels << " " << counter->value() << "\n";
        }
        break;
      case Kind::kGauge:
        for (const auto& [labels, gauge] : family.gauges) {
          out << name << labels << " " << NumberToString(gauge->value())
              << "\n";
        }
        break;
      case Kind::kHistogram:
        for (const auto& [labels, histogram] : family.histograms) {
          // Bucket lines carry the instance labels plus `le`; cumulative
          // counts, per the exposition format.
          int64_t cumulative = 0;
          for (size_t i = 0; i <= histogram->bounds().size(); ++i) {
            cumulative += histogram->bucket_count(i);
            std::string le = i < histogram->bounds().size()
                                 ? NumberToString(histogram->bounds()[i])
                                 : "+Inf";
            std::string bucket_labels =
                labels.empty()
                    ? "{le=\"" + le + "\"}"
                    : labels.substr(0, labels.size() - 1) + ",le=\"" + le +
                          "\"}";
            out << name << "_bucket" << bucket_labels << " " << cumulative
                << "\n";
          }
          out << name << "_sum" << labels << " "
              << NumberToString(histogram->sum()) << "\n";
          out << name << "_count" << labels << " " << histogram->count()
              << "\n";
        }
        break;
    }
  }
  return out.str();
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  auto emit_key = [&](const std::string& name, const std::string& labels) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << JsonEscape(name + labels) << "\": ";
  };
  for (const auto& [name, family] : families_) {
    switch (family.kind) {
      case Kind::kCounter:
        for (const auto& [labels, counter] : family.counters) {
          emit_key(name, labels);
          out << counter->value();
        }
        break;
      case Kind::kGauge:
        for (const auto& [labels, gauge] : family.gauges) {
          emit_key(name, labels);
          out << JsonNumber(gauge->value());
        }
        break;
      case Kind::kHistogram:
        for (const auto& [labels, histogram] : family.histograms) {
          emit_key(name, labels);
          out << "{\"count\": " << histogram->count()
              << ", \"sum\": " << JsonNumber(histogram->sum())
              << ", \"buckets\": [";
          for (size_t i = 0; i <= histogram->bounds().size(); ++i) {
            if (i > 0) out << ", ";
            std::string le =
                i < histogram->bounds().size()
                    ? JsonNumber(histogram->bounds()[i])
                    : "\"+Inf\"";
            out << "{\"le\": " << le << ", \"n\": "
                << histogram->bucket_count(i) << "}";
          }
          out << "]}";
        }
        break;
    }
  }
  out << "\n}\n";
  return out.str();
}

std::vector<std::string> MetricsRegistry::FamilyNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) out.push_back(name);
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [labels, counter] : family.counters) counter->Reset();
    for (auto& [labels, gauge] : family.gauges) gauge->Reset();
    for (auto& [labels, histogram] : family.histograms) histogram->Reset();
  }
}

}  // namespace quarry::obs
