// quarry_httpd: stands up a live Quarry serving session with the telemetry
// HTTP listener (docs/OBSERVABILITY.md §"HTTP endpoints & request
// profiles") — the driver behind tools/run_http_smoke.sh and a convenient
// way to poke the endpoints by hand:
//
//   quarry_httpd [--port N]
//   curl http://127.0.0.1:<port>/metrics
//
// It builds the retail demo warehouse (two requirements, DeployServing),
// runs a few profiled cube queries so /requestz has records, prints
// "LISTENING <port>" once the socket is up, and serves until stdin closes
// (or forever when stdin is not readable).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/http_telemetry.h"
#include "core/quarry.h"
#include "datagen/retail.h"
#include "obs/request_log.h"

namespace {

int Fail(const quarry::Status& status, const char* what) {
  std::fprintf(stderr, "quarry_httpd: %s: %s\n", what,
               status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  quarry::obs::HttpExporterOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: quarry_httpd [--port N]\n");
      return 2;
    }
  }

  quarry::storage::Database source;
  quarry::datagen::RetailConfig config;
  if (quarry::Status populated =
          quarry::datagen::PopulateRetail(&source, config);
      !populated.ok()) {
    return Fail(populated, "populating retail source");
  }
  auto q = quarry::core::Quarry::Create(
      quarry::datagen::BuildRetailOntology(),
      quarry::datagen::BuildRetailMappings(), &source);
  if (!q.ok()) return Fail(q.status(), "creating Quarry");

  const char* requirements[] = {
      "ANALYZE turnover ON Sale "
      "MEASURE turnover = Sale.sl_amount * (1 - Sale.sl_discount) SUM "
      "BY Product.pr_category, Store.st_city",
      "ANALYZE units_by_region ON Sale "
      "MEASURE units = Sale.sl_units SUM BY Region.rr_name",
  };
  for (const char* text : requirements) {
    if (auto outcome = (*q)->SubmitRequirementFromQuery(text); !outcome.ok()) {
      return Fail(outcome.status(), "adding requirement");
    }
  }
  if (auto deployed = (*q)->DeployServing(); !deployed.ok()) {
    return Fail(deployed.status(), "deploying serving warehouse");
  }

  // Demo tenants so /tenantz has quota/breaker rows and the warm-up
  // queries carry tenant attribution (docs/ROBUSTNESS.md §11).
  quarry::core::TenantQuota analytics;
  analytics.priority = quarry::Priority::kHigh;
  analytics.breaker_failure_threshold = 5;
  quarry::core::TenantQuota batch;
  batch.priority = quarry::Priority::kLow;
  batch.rate_per_sec = 50.0;
  batch.max_in_flight = 2;
  if (quarry::Status s = (*q)->RegisterTenant("analytics", analytics);
      !s.ok()) {
    return Fail(s, "registering tenant");
  }
  if (quarry::Status s = (*q)->RegisterTenant("batch", batch); !s.ok()) {
    return Fail(s, "registering tenant");
  }

  // Promote every request's profile so /requestz demonstrably carries
  // EXPLAIN ANALYZE trees, then serve a few queries to fill the log.
  quarry::obs::RequestLog::Instance().set_slow_threshold_micros(0.0);
  quarry::olap::CubeQuery query;
  query.fact = "fact_table_turnover";
  query.group_by = {"pr_category"};
  query.measures.push_back({"turnover", quarry::md::AggFunc::kSum, "total"});
  const char* tenants[] = {"analytics", "batch", "analytics"};
  for (const char* tenant : tenants) {
    quarry::ExecContext ctx;
    ctx.set_tenant(tenant);
    if (auto served = (*q)->SubmitQuery(query, {}, &ctx); !served.ok()) {
      return Fail(served.status(), "running warm-up query");
    }
  }

  auto exporter = quarry::core::StartTelemetryServer(q->get(), options);
  if (!exporter.ok()) return Fail(exporter.status(), "starting HTTP server");

  std::printf("LISTENING %d\n", (*exporter)->port());
  std::fflush(stdout);

  // Serve until the driver closes our stdin (EOF) — the shape
  // run_http_smoke.sh relies on for clean teardown.
  char buf[64];
  while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
  }
  (*exporter)->Stop();
  return 0;
}
