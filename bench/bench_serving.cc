// Snapshot-isolated serving experiments (docs/ROBUSTNESS.md §9,
// BENCH_serving.json):
//  - query latency on a pinned generation, quiesced vs under refresh churn
//    (a background thread growing the source and publishing generations as
//    fast as it can) — serve-while-refresh means the p50/p99 gap should be
//    small, and no query ever blocks on a publish;
//  - rollback cost after an injected publish fault: the serving path
//    resumes from the old generation with a pin acquire (O(1), independent
//    of warehouse size), where the legacy in-place path's unit of recovery
//    is a deep clone of the warehouse (O(rows)).
// Every benchmark records the host context (core count, load average) via
// bench_util.h so BENCH_serving.json can say what box the numbers are from.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/fault_injection.h"
#include "core/quarry.h"
#include "datagen/tpch.h"
#include "ontology/tpch_ontology.h"
#include "storage/generation_store.h"

namespace {

using quarry::core::Quarry;
using quarry::core::QueryOptions;
using quarry::storage::Value;
using quarry::bench::PercentileNs;
using quarry::bench::RecordHostInfo;

/// One serving deployment: TPC-H source, a revenue requirement, and a
/// published generation 1. Built fresh per benchmark (churn mutates the
/// source, so sharing one instance would couple the experiments).
struct Scenario {
  explicit Scenario(double scale_factor) : src("tpch") {
    if (!quarry::datagen::PopulateTpch(&src, {scale_factor, 77}).ok()) {
      std::abort();
    }
    auto q = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                            quarry::ontology::BuildTpchMappings(), &src);
    if (!q.ok()) std::abort();
    quarry = std::move(*q);
    quarry::req::InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         quarry::md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_type"});
    ir.dimensions.push_back({"Supplier.s_name"});
    if (!quarry->AddRequirement(ir).ok()) std::abort();
    if (!quarry->DeployServing().ok()) std::abort();
  }

  /// New part + a lineitem selling it, PK-salted so churn rounds never
  /// collide (mirrors the soak harness's source growth).
  void GrowSource(int salt) {
    quarry::storage::Table* part = *src.GetTable("part");
    auto new_partkey = static_cast<int64_t>(part->num_rows()) + 1;
    if (!part->Insert({Value::Int(new_partkey),
                       Value::String("part " + std::to_string(salt)),
                       Value::String("Brand#99"), Value::String("SMALL"),
                       Value::Double(1234.5)})
             .ok()) {
      std::abort();
    }
    quarry::storage::Table* lineitem = *src.GetTable("lineitem");
    if (!lineitem
             ->Insert({Value::Int(1), Value::Int(500000 + salt),
                       Value::Int(new_partkey), Value::Int(1), Value::Int(3),
                       Value::Double(100.0), Value::Double(0.0),
                       Value::Double(0.0), Value::DateYmd(1995, 6, 1),
                       Value::String("N")})
             .ok()) {
      std::abort();
    }
  }

  static quarry::olap::CubeQuery RevenueByType() {
    quarry::olap::CubeQuery query;
    query.fact = "fact_table_revenue";
    query.group_by = {"p_type"};
    query.measures = {{"revenue", quarry::md::AggFunc::kSum, "total"}};
    return query;
  }

  quarry::storage::Database src;
  std::unique_ptr<Quarry> quarry;
};

constexpr double kScaleFactor = 0.01;

/// Reports per-query latency percentiles computed from raw samples —
/// google-benchmark's mean hides exactly the tail the serving path is
/// designed to protect.
void ReportLatency(benchmark::State& state, std::vector<int64_t> samples_ns) {
  state.counters["queries"] = static_cast<double>(samples_ns.size());
  state.counters["p50_us"] =
      static_cast<double>(PercentileNs(samples_ns, 0.50)) / 1e3;
  state.counters["p99_us"] =
      static_cast<double>(PercentileNs(std::move(samples_ns), 0.99)) / 1e3;
  RecordHostInfo(state);
}

// Baseline: query latency against a stable generation, nothing else
// running. Every query pins generation 1.
void BM_QueryQuiesced(benchmark::State& state) {
  Scenario s(kScaleFactor);
  std::vector<int64_t> samples_ns;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto result = s.quarry->SubmitQuery(Scenario::RevenueByType());
    if (!result.ok()) std::abort();
    samples_ns.push_back(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count());
    benchmark::DoNotOptimize(result->data.rows.size());
  }
  ReportLatency(state, std::move(samples_ns));
}
BENCHMARK(BM_QueryQuiesced)->Unit(benchmark::kMicrosecond);

// The serve-while-refresh experiment: a churn thread grows the source and
// publishes generation after generation while this thread queries with
// allow_stale set. Snapshot isolation predicts the latency distribution
// stays close to the quiesced baseline — queries pin a generation and never
// wait for a publish.
void BM_QueryDuringRefresh(benchmark::State& state) {
  Scenario s(kScaleFactor);
  std::atomic<bool> stop{false};
  std::atomic<int> refreshes{0};
  std::thread churn([&] {
    int salt = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      s.GrowSource(++salt);
      if (!s.quarry->RefreshServing().ok()) std::abort();
      refreshes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  QueryOptions opts;
  opts.allow_stale = true;
  std::vector<int64_t> samples_ns;
  int64_t stale_served = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto result = s.quarry->SubmitQuery(Scenario::RevenueByType(), opts);
    if (!result.ok()) std::abort();
    samples_ns.push_back(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count());
    if (result->stale) ++stale_served;
    benchmark::DoNotOptimize(result->data.rows.size());
  }
  stop.store(true, std::memory_order_relaxed);
  churn.join();
  state.counters["refreshes"] = static_cast<double>(refreshes.load());
  state.counters["stale_served"] = static_cast<double>(stale_served);
  ReportLatency(state, std::move(samples_ns));
}
BENCHMARK(BM_QueryDuringRefresh)->Unit(benchmark::kMicrosecond);

// Recovery cost after an injected publish fault, serving path: the store
// is untouched by the failure, so "rollback" is re-acquiring a pin on the
// old generation — a refcount bump under the store mutex, independent of
// warehouse size. Arg is TPC-H scale factor x 1000.
void BM_RollbackServing(benchmark::State& state) {
  Scenario s(static_cast<double>(state.range(0)) / 1000.0);
  auto& warehouse = s.quarry->warehouse();
  const uint64_t generation = warehouse.current_generation();
  quarry::fault::Injector& injector = quarry::fault::Injector::Instance();
  injector.Configure("storage.generation.publish", {1.0, 0, 0, -1});
  injector.Enable(7);
  for (auto _ : state) {
    state.PauseTiming();
    auto scratch = warehouse.BeginBuild();
    if (warehouse.Publish(std::move(scratch)).ok()) std::abort();
    state.ResumeTiming();
    // Post-fault recovery: resume serving from the untouched store.
    auto pin = warehouse.Acquire();
    if (!pin.ok() || pin->generation() != generation) std::abort();
    benchmark::DoNotOptimize(pin->db().num_tables());
  }
  injector.ClearConfigs();
  injector.Disable();
  auto pin = warehouse.Acquire();
  if (!pin.ok()) std::abort();
  int64_t rows = 0;
  for (const auto& name : pin->db().TableNames()) {
    rows += static_cast<int64_t>((*pin->db().GetTable(name))->num_rows());
  }
  state.counters["warehouse_rows"] = static_cast<double>(rows);
  RecordHostInfo(state);
}
// Iterations are pinned: the timed region is microseconds but every
// iteration pays a paused O(rows) scratch build, so letting the harness
// calibrate toward min_time would grind for hours on setup alone.
BENCHMARK(BM_RollbackServing)
    ->Arg(2)
    ->Arg(10)
    ->Iterations(30)
    ->Unit(benchmark::kMicrosecond);

// The legacy contrast: the in-place path's unit of recovery is restoring
// the warehouse from its pre-deploy backup — a deep clone, O(rows). Same
// scales as BM_RollbackServing so the JSON can put the two side by side.
void BM_RollbackLegacyClone(benchmark::State& state) {
  Scenario s(static_cast<double>(state.range(0)) / 1000.0);
  auto pin = s.quarry->warehouse().Acquire();
  if (!pin.ok()) std::abort();
  int64_t rows = 0;
  for (const auto& name : pin->db().TableNames()) {
    rows += static_cast<int64_t>((*pin->db().GetTable(name))->num_rows());
  }
  for (auto _ : state) {
    std::unique_ptr<quarry::storage::Database> restored = pin->db().Clone();
    benchmark::DoNotOptimize(restored->num_tables());
  }
  state.counters["warehouse_rows"] = static_cast<double>(rows);
  RecordHostInfo(state);
}
BENCHMARK(BM_RollbackLegacyClone)
    ->Arg(2)
    ->Arg(10)
    ->Iterations(30)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
