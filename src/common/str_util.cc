#include "common/str_util.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace quarry {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      break;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

namespace {

// Collects lower-cased character bigrams, skipping '_' separators.
std::multiset<std::pair<char, char>> Bigrams(std::string_view text) {
  std::string norm;
  norm.reserve(text.size());
  for (char c : text) {
    if (c == '_') continue;
    norm.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  std::multiset<std::pair<char, char>> grams;
  for (size_t i = 0; i + 1 < norm.size(); ++i) {
    grams.insert({norm[i], norm[i + 1]});
  }
  return grams;
}

}  // namespace

double NameSimilarity(std::string_view a, std::string_view b) {
  if (EqualsIgnoreCase(a, b)) return 1.0;
  auto ga = Bigrams(a);
  auto gb = Bigrams(b);
  if (ga.empty() || gb.empty()) return 0.0;
  size_t common = 0;
  for (const auto& g : ga) {
    auto it = gb.find(g);
    if (it != gb.end()) {
      gb.erase(it);
      ++common;
    }
  }
  return 2.0 * static_cast<double>(common) /
         static_cast<double>(ga.size() + gb.size() + common);
}

}  // namespace quarry
