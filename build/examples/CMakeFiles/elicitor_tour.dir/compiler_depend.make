# Empty compiler generated dependencies file for elicitor_tour.
# This may be replaced when dependencies are built.
