// Observability-layer benchmarks (docs/OBSERVABILITY.md,
// BENCH_observability.json): the cost of one span enter/exit (recorder
// enabled and disabled), counter / histogram increments (cached pointer vs
// registry lookup), and the end-to-end overhead tracing adds to a
// representative ETL run. Build once more with -DQUARRY_DISABLE_TRACING=ON
// and rerun BM_EtlRun to get the compiled-out number.

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/quarry.h"
#include "datagen/retail.h"
#include "etl/exec/executor.h"
#include "etl/flow.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "storage/database.h"

namespace {

using quarry::etl::Executor;
using quarry::etl::Flow;
using quarry::etl::Node;
using quarry::etl::OpType;
using quarry::obs::MetricsRegistry;
using quarry::obs::TraceRecorder;
using quarry::storage::Database;
using quarry::storage::Value;

// ---- span cost ------------------------------------------------------------

void BM_SpanEnabled(benchmark::State& state) {
  TraceRecorder::Instance().Start(1 << 20);
  for (auto _ : state) {
    QUARRY_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
  TraceRecorder::Instance().Stop();
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanEnabledWithAttrs(benchmark::State& state) {
  TraceRecorder::Instance().Start(1 << 20);
  for (auto _ : state) {
    QUARRY_NAMED_SPAN(span, "bench.span");
    QUARRY_SPAN_ATTR(span, "rows_in", int64_t{128});
    QUARRY_SPAN_ATTR(span, "rows_out", int64_t{64});
    benchmark::ClobberMemory();
  }
  TraceRecorder::Instance().Stop();
}
BENCHMARK(BM_SpanEnabledWithAttrs);

/// The cost every instrumented call site pays when nobody is tracing —
/// one relaxed atomic load per span.
void BM_SpanDisabled(benchmark::State& state) {
  TraceRecorder::Instance().Stop();
  for (auto _ : state) {
    QUARRY_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanDisabled);

// ---- metric cost ----------------------------------------------------------

void BM_CounterIncrementCached(benchmark::State& state) {
  quarry::obs::Counter& counter = MetricsRegistry::Instance().counter(
      "bench_cached_counter_total", "bench");
  for (auto _ : state) {
    counter.Increment();
  }
}
BENCHMARK(BM_CounterIncrementCached);

/// Worst case: registry lookup (mutex + map) on every increment. Hot paths
/// avoid this by caching the reference, as every call site in src/ does.
void BM_CounterIncrementLookup(benchmark::State& state) {
  for (auto _ : state) {
    MetricsRegistry::Instance()
        .counter("bench_lookup_counter_total", "bench")
        .Increment();
  }
}
BENCHMARK(BM_CounterIncrementLookup);

void BM_HistogramObserve(benchmark::State& state) {
  quarry::obs::Histogram& histogram = MetricsRegistry::Instance().histogram(
      "bench_histogram_micros", "bench");
  double v = 0;
  for (auto _ : state) {
    histogram.Observe(v);
    v += 1.5;
    if (v > 1e7) v = 0;
  }
}
BENCHMARK(BM_HistogramObserve);

// ---- end-to-end ETL overhead ----------------------------------------------

Node MakeNode(const std::string& id, OpType type,
              std::map<std::string, std::string> params) {
  Node node;
  node.id = id;
  node.type = type;
  node.params = std::move(params);
  return node;
}

std::unique_ptr<Database> MakeSource(int rows) {
  auto db = std::make_unique<Database>("src");
  quarry::storage::TableSchema sales("sales");
  if (!sales.AddColumn({"id", quarry::storage::DataType::kInt64, false}).ok())
    std::abort();
  if (!sales.AddColumn({"product", quarry::storage::DataType::kString, true})
           .ok())
    std::abort();
  if (!sales.AddColumn({"qty", quarry::storage::DataType::kInt64, true}).ok())
    std::abort();
  auto table = db->CreateTable(sales);
  if (!table.ok()) std::abort();
  for (int i = 0; i < rows; ++i) {
    if (!(*table)
             ->Insert({Value::Int(i),
                       Value::String("p" + std::to_string(i % 50)),
                       Value::Int(i % 7)})
             .ok())
      std::abort();
  }
  return db;
}

Flow MakeFlow() {
  Flow flow("bench");
  auto add = [&flow](Node node) {
    if (!flow.AddNode(std::move(node)).ok()) std::abort();
  };
  auto edge = [&flow](const std::string& a, const std::string& b) {
    if (!flow.AddEdge(a, b).ok()) std::abort();
  };
  add(MakeNode("ds", OpType::kDatastore, {{"table", "sales"}}));
  add(MakeNode("ex", OpType::kExtraction, {{"table", "sales"}}));
  add(MakeNode("sel", OpType::kSelection, {{"predicate", "qty >= 1"}}));
  add(MakeNode("fn", OpType::kFunction,
               {{"expr", "qty * 2"}, {"column", "qty2"}}));
  add(MakeNode("ag", OpType::kAggregation,
               {{"group", "product"}, {"aggs", "SUM(qty2) AS total"}}));
  add(MakeNode("load", OpType::kLoader, {{"table", "out"}}));
  edge("ds", "ex");
  edge("ex", "sel");
  edge("sel", "fn");
  edge("fn", "ag");
  edge("ag", "load");
  return flow;
}

/// A representative 6-operator flow over `range(0)` rows; range(1) selects
/// tracing runtime-off (0) or runtime-on (1). The relative delta between
/// the two is the headline overhead number; rebuilding with
/// -DQUARRY_DISABLE_TRACING=ON gives the compiled-out floor.
void BM_EtlRun(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const bool tracing = state.range(1) != 0;
  std::unique_ptr<Database> source = MakeSource(rows);
  Flow flow = MakeFlow();
  if (tracing) {
    TraceRecorder::Instance().Start(1 << 20);
  } else {
    TraceRecorder::Instance().Stop();
  }
  for (auto _ : state) {
    // Restart per iteration so the span buffer never fills and every run
    // records the same number of spans.
    if (tracing) TraceRecorder::Instance().Start(1 << 20);
    Database target("dw");
    Executor executor(source.get(), &target);
    auto report = executor.Run(flow);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report->total_millis);
  }
  TraceRecorder::Instance().Stop();
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_EtlRun)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// ---- request-scoped observability -----------------------------------------

/// Profile-tree assembly alone: BuildProfileTrees over the 6-operator bench
/// flow's execution report — the fixed per-query cost EXPLAIN ANALYZE adds
/// on top of execution.
void BM_BuildProfileTrees(benchmark::State& state) {
  std::unique_ptr<Database> source = MakeSource(1000);
  Flow flow = MakeFlow();
  Database target("dw");
  Executor executor(source.get(), &target);
  auto report = executor.Run(flow);
  if (!report.ok()) std::abort();
  for (auto _ : state) {
    auto roots = quarry::etl::BuildProfileTrees(flow, *report);
    benchmark::DoNotOptimize(roots.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildProfileTrees);

/// One event-log append: slot reservation (one fetch_add) + per-slot mutex
/// fill, with realistic string payloads and the top-3 operator timings.
void BM_RequestLogRecord(benchmark::State& state) {
  quarry::obs::RequestLog log(256);
  uint64_t id = 0;
  for (auto _ : state) {
    quarry::obs::RequestRecord record;
    record.id = ++id;
    record.kind = "query";
    record.lane = "query";
    record.latency_micros = 1234.5;
    record.rows = 42;
    record.slowest_ops = {{"q_agg", 800.0}, {"q_join_product", 300.0},
                          {"q_fact", 100.0}};
    log.Record(std::move(record));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestLogRecord);

/// End-to-end SubmitQuery on a served retail warehouse with tracing
/// runtime-on; range(0) toggles QueryOptions::collect_profile. The relative
/// delta is the EXPLAIN ANALYZE overhead (budget: < 2%).
void BM_SubmitQueryProfile(benchmark::State& state) {
  const bool collect = state.range(0) != 0;
  quarry::storage::Database source;
  if (!quarry::datagen::PopulateRetail(&source, quarry::datagen::RetailConfig{})
           .ok())
    std::abort();
  auto q = quarry::core::Quarry::Create(quarry::datagen::BuildRetailOntology(),
                                        quarry::datagen::BuildRetailMappings(),
                                        &source);
  if (!q.ok()) std::abort();
  if (!(*q)
           ->SubmitRequirementFromQuery(
               "ANALYZE turnover ON Sale "
               "MEASURE turnover = Sale.sl_amount * (1 - Sale.sl_discount) "
               "SUM BY Product.pr_category, Store.st_city")
           .ok())
    std::abort();
  auto deployed = (*q)->DeployServing();
  if (!deployed.ok() || !deployed->success) std::abort();

  quarry::olap::CubeQuery query;
  query.fact = "fact_table_turnover";
  query.group_by = {"pr_category"};
  query.measures.push_back({"turnover", quarry::md::AggFunc::kSum, "total"});
  quarry::core::QueryOptions options;
  options.collect_profile = collect;

  for (auto _ : state) {
    // Restart per iteration so the span buffer never fills (same discipline
    // as BM_EtlRun) — the profile cost is measured with tracing live.
    TraceRecorder::Instance().Start(1 << 20);
    auto result = (*q)->SubmitQuery(query, options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->request_id);
  }
  TraceRecorder::Instance().Stop();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitQueryProfile)
    ->ArgsProduct({{0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// One /metrics scrape round-trip against the exposition server: connect,
/// GET, read-to-close — what a Prometheus scraper costs this process.
void BM_HttpMetricsScrape(benchmark::State& state) {
  quarry::obs::HttpExporter exporter;
  std::string error;
  if (!exporter.Start(&error)) std::abort();
  const int port = exporter.port();
  const std::string wire =
      "GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n";
  for (auto _ : state) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) std::abort();
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      std::abort();
    size_t sent = 0;
    while (sent < wire.size()) {
      ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
      if (n <= 0) std::abort();
      sent += static_cast<size_t>(n);
    }
    size_t total = 0;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      total += static_cast<size_t>(n);
    }
    ::close(fd);
    if (total == 0) std::abort();
    benchmark::DoNotOptimize(total);
  }
  exporter.Stop();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HttpMetricsScrape)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
