file(REMOVE_RECURSE
  "libquarry_etl.a"
)
