#include "etl/xlm.h"

#include "common/str_util.h"

namespace quarry::etl {

const char* EngineOpType(OpType type) {
  switch (type) {
    case OpType::kDatastore:
      return "TableInput";
    case OpType::kExtraction:
      return "TableInput";
    case OpType::kSelection:
      return "FilterRows";
    case OpType::kProjection:
      return "SelectValues";
    case OpType::kJoin:
      return "MergeJoin";
    case OpType::kAggregation:
      return "GroupBy";
    case OpType::kFunction:
      return "Calculator";
    case OpType::kSort:
      return "SortRows";
    case OpType::kUnion:
      return "Append";
    case OpType::kSurrogateKey:
      return "AddSequence";
    case OpType::kLoader:
      return "TableOutput";
  }
  return "Unknown";
}

std::unique_ptr<xml::Element> FlowToXlm(const Flow& flow) {
  auto root = std::make_unique<xml::Element>("design");
  xml::Element* metadata = root->AddChild("metadata");
  metadata->AddTextChild("name", flow.name());
  xml::Element* edges = root->AddChild("edges");
  for (const Edge& e : flow.edges()) {
    xml::Element* edge = edges->AddChild("edge");
    edge->AddTextChild("from", e.from);
    edge->AddTextChild("to", e.to);
    edge->AddTextChild("enabled", "Y");
  }
  xml::Element* nodes = root->AddChild("nodes");
  for (const auto& [id, node] : flow.nodes()) {
    xml::Element* n = nodes->AddChild("node");
    n->AddTextChild("name", node.id);
    n->AddTextChild("type", OpTypeToString(node.type));
    n->AddTextChild("optype", EngineOpType(node.type));
    for (const auto& [key, value] : node.params) {
      xml::Element* param = n->AddChild("param");
      param->SetAttr("name", key);
      param->SetAttr("value", value);
    }
    if (!node.requirement_ids.empty()) {
      std::vector<std::string> ids(node.requirement_ids.begin(),
                                   node.requirement_ids.end());
      n->AddTextChild("requirements", Join(ids, ","));
    }
  }
  return root;
}

Result<Flow> FlowFromXlm(const xml::Element& root) {
  if (root.name() != "design") {
    return Status::ParseError("expected <design>, got <" + root.name() + ">");
  }
  Flow flow;
  if (const xml::Element* metadata = root.FirstChild("metadata");
      metadata != nullptr) {
    flow.set_name(metadata->ChildText("name"));
  }
  const xml::Element* nodes = root.FirstChild("nodes");
  if (nodes == nullptr) return Status::ParseError("missing <nodes>");
  for (const xml::Element* n : nodes->Children("node")) {
    Node node;
    node.id = n->ChildText("name");
    QUARRY_ASSIGN_OR_RETURN(node.type, OpTypeFromString(n->ChildText("type")));
    for (const xml::Element* param : n->Children("param")) {
      node.params[param->AttrOr("name")] = param->AttrOr("value");
    }
    std::string reqs = n->ChildText("requirements");
    if (!reqs.empty()) {
      for (const std::string& id : Split(reqs, ',')) {
        node.requirement_ids.insert(id);
      }
    }
    QUARRY_RETURN_NOT_OK(flow.AddNode(std::move(node)));
  }
  const xml::Element* edges = root.FirstChild("edges");
  if (edges != nullptr) {
    for (const xml::Element* e : edges->Children("edge")) {
      QUARRY_RETURN_NOT_OK(
          flow.AddEdge(e->ChildText("from"), e->ChildText("to")));
    }
  }
  return flow;
}

}  // namespace quarry::etl
