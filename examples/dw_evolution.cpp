// Demo scenario "Accommodating a DW design to changes" (paper §3).
//
// Poses a stream of information requirements against the TPC-H domain,
// showing after each step how the Design Integrator consolidates the
// unified MD schema (structural complexity vs. the naive union) and the
// unified ETL process (operator reuse, estimated cost vs. running the
// flows separately). Then changes one requirement and removes another,
// demonstrating trace-driven pruning with soundness + satisfiability kept.

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/quarry.h"
#include "datagen/tpch.h"
#include "mdschema/complexity.h"
#include "ontology/tpch_ontology.h"

namespace {

using quarry::core::Quarry;
using quarry::md::AggFunc;
using quarry::req::InformationRequirement;

int Fail(const quarry::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

std::vector<InformationRequirement> BusinessRequirements() {
  std::vector<InformationRequirement> irs;
  {
    InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_name"});
    ir.dimensions.push_back({"Supplier.s_name"});
    irs.push_back(ir);
  }
  {
    // Same grain as ir_revenue: the integrator merges the facts.
    InformationRequirement ir;
    ir.id = "ir_discount";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"avg_discount", "Lineitem.l_discount", AggFunc::kAvg});
    ir.dimensions.push_back({"Part.p_name"});
    ir.dimensions.push_back({"Supplier.s_name"});
    irs.push_back(ir);
  }
  {
    // New source (Partsupp), different grain: new fact, conformed dims.
    InformationRequirement ir;
    ir.id = "ir_netprofit";
    ir.name = "netprofit";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"netprofit",
         "Lineitem.l_extendedprice * (1 - Lineitem.l_discount) - "
         "Partsupp.ps_supplycost * Lineitem.l_quantity",
         AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_name"});
    irs.push_back(ir);
  }
  {
    // Nation-grain quantity: the Nation dimension folds into Supplier's
    // hierarchy (stage 3 of the MD Schema Integrator).
    InformationRequirement ir;
    ir.id = "ir_nation_qty";
    ir.name = "qty_by_nation";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back({"qty", "Lineitem.l_quantity", AggFunc::kSum});
    ir.dimensions.push_back({"Nation.n_name"});
    irs.push_back(ir);
  }
  {
    // Order-date analysis sliced to recent, open orders.
    InformationRequirement ir;
    ir.id = "ir_open_orders";
    ir.name = "open_order_value";
    ir.focus_concept = "Orders";
    ir.measures.push_back(
        {"order_value", "Orders.o_totalprice", AggFunc::kSum});
    ir.dimensions.push_back({"Customer.c_mktsegment"});
    ir.slicers.push_back({"Orders.o_orderstatus", "=", "O"});
    ir.slicers.push_back({"Orders.o_orderdate", ">=", "1995-01-01"});
    irs.push_back(ir);
  }
  return irs;
}

}  // namespace

int main() {
  quarry::storage::Database source("tpch");
  if (auto s = quarry::datagen::PopulateTpch(&source, {0.01, 13}); !s.ok()) {
    return Fail(s);
  }
  auto quarry = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                               quarry::ontology::BuildTpchMappings(),
                               &source);
  if (!quarry.ok()) return Fail(quarry.status());

  std::printf("%-16s %6s %6s %10s %10s %8s %10s %10s\n", "requirement",
              "facts", "dims", "cx(naive)", "cx(unif.)", "reused",
              "cost(sep)", "cost(unif)");
  for (const InformationRequirement& ir : BusinessRequirements()) {
    auto outcome = (*quarry)->AddRequirement(ir);
    if (!outcome.ok()) return Fail(outcome.status());
    std::printf("%-16s %6zu %6zu %10.1f %10.1f %8d %10.0f %10.0f\n",
                ir.id.c_str(), (*quarry)->schema().facts().size(),
                (*quarry)->schema().dimensions().size(),
                outcome->md.complexity_naive_union,
                outcome->md.complexity_after, outcome->etl.nodes_reused,
                outcome->etl.cost_separate, outcome->etl.cost_unified);
    for (const std::string& decision : outcome->md.decisions) {
      std::cout << "    . " << decision << "\n";
    }
  }

  // Deploy the 5-requirement design once.
  quarry::storage::Database warehouse;
  auto deployment = (*quarry)->Deploy(&warehouse);
  if (!deployment.ok()) return Fail(deployment.status());
  std::cout << "\ninitial deployment: " << deployment->tables_created
            << " tables, integrity "
            << (deployment->referential_integrity_ok ? "OK" : "BROKEN")
            << ", ETL " << deployment->etl.rows_processed
            << " rows processed\n";

  // --- change: ir_open_orders now also needs the order date dimension ----
  InformationRequirement changed = BusinessRequirements().back();
  changed.dimensions.push_back({"Orders.o_orderdate"});
  auto changed_outcome = (*quarry)->ChangeRequirement(changed);
  if (!changed_outcome.ok()) return Fail(changed_outcome.status());
  std::cout << "\nchanged '" << changed.id << "': fact base now ";
  const quarry::md::Fact& fact =
      **(*quarry)->schema().GetFact("fact_table_open_order_value");
  std::cout << fact.dimension_refs.size() << " dimension refs\n";

  // --- removal: the discount analysis is retired --------------------------
  if (auto s = (*quarry)->RemoveRequirement("ir_discount"); !s.ok()) {
    return Fail(s);
  }
  std::cout << "removed 'ir_discount': fact_table_revenue keeps "
            << (**(*quarry)->schema().GetFact("fact_table_revenue"))
                   .measures.size()
            << " measure(s); " << (*quarry)->requirements().size()
            << " requirements remain, all satisfied\n";

  // Redeploy the evolved design to a fresh warehouse.
  quarry::storage::Database warehouse2;
  auto redeploy = (*quarry)->Deploy(&warehouse2);
  if (!redeploy.ok()) return Fail(redeploy.status());
  std::cout << "redeployment after evolution: " << redeploy->tables_created
            << " tables, integrity "
            << (redeploy->referential_integrity_ok ? "OK" : "BROKEN") << "\n";
  std::cout << "\nevolution demo finished OK\n";
  return 0;
}
