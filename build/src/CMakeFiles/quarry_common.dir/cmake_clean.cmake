file(REMOVE_RECURSE
  "CMakeFiles/quarry_common.dir/common/status.cc.o"
  "CMakeFiles/quarry_common.dir/common/status.cc.o.d"
  "CMakeFiles/quarry_common.dir/common/str_util.cc.o"
  "CMakeFiles/quarry_common.dir/common/str_util.cc.o.d"
  "libquarry_common.a"
  "libquarry_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
