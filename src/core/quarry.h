#ifndef QUARRY_CORE_QUARRY_H_
#define QUARRY_CORE_QUARRY_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/metadata_repository.h"
#include "core/telemetry.h"
#include "deployer/deployer.h"
#include "integrator/design_integrator.h"
#include "interpreter/interpreter.h"
#include "ontology/mapping.h"
#include "ontology/ontology.h"
#include "requirements/elicitor.h"
#include "requirements/requirement.h"
#include "storage/database.h"

namespace quarry::core {

/// Configuration of a Quarry instance.
struct QuarryConfig {
  integrator::MdIntegrationOptions md_options;
  etl::CostModelConfig etl_cost;
  std::string database_name = "demo";
};

/// \brief The end-to-end Quarry system (paper Fig. 1): wires together the
/// Requirements Elicitor, Requirements Interpreter, Design Integrator,
/// Design Deployer and the Communication & Metadata layer.
///
/// Lifecycle:
///   1. Create() over a domain ontology + source mappings + source data.
///   2. elicitor() assists users in phrasing information requirements.
///   3. AddRequirement() interprets the requirement into partial designs,
///      integrates them into the unified design (validating soundness and
///      satisfiability), and records every artifact (xRQ / partial and
///      unified xMD + xLM) in the metadata repository.
///   4. RemoveRequirement() / ChangeRequirement() accommodate evolution.
///   5. Deploy() emits SQL + ktr, creates the DW star schema and runs the
///      unified ETL to populate it.
class Quarry {
 public:
  /// Validates the mapping against the ontology, snapshots source table
  /// statistics for the cost models, registers the built-in exporters
  /// ("sql", "pdi", "xmd", "xlm") and stores ontology + mappings in the
  /// repository. `source` must outlive the instance.
  static Result<std::unique_ptr<Quarry>> Create(
      ontology::Ontology onto, ontology::SourceMapping mapping,
      const storage::Database* source, QuarryConfig config = {});

  /// Process-wide tracing + metrics surfaces (docs/OBSERVABILITY.md):
  /// Quarry::Telemetry().StartTracing() before a run,
  /// Quarry::Telemetry().WriteTo(dir) to export trace.json / metrics.prom /
  /// metrics.json afterwards. Static — telemetry spans every instance.
  static TelemetryHandle Telemetry() { return core::Telemetry(); }

  const ontology::Ontology& ontology() const { return *onto_; }
  const ontology::SourceMapping& mapping() const { return *mapping_; }
  req::Elicitor& elicitor() { return *elicitor_; }
  MetadataRepository& repository() { return repository_; }
  const MetadataRepository& repository() const { return repository_; }

  /// Makes the metadata repository crash-safe on `dir`
  /// (docs/ROBUSTNESS.md §6): the current state is checkpointed and every
  /// subsequent artifact write (AddRequirement, deployment records, ...)
  /// is WAL-logged with an fsync before it is acknowledged.
  Status EnableDurability(const std::string& dir);

  /// What startup recovery did when this instance was restored from a
  /// durable session directory (all-zero for fresh instances).
  const docstore::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }
  void set_recovery_stats(docstore::RecoveryStats stats) {
    recovery_stats_ = std::move(stats);
  }

  const md::MdSchema& schema() const { return design_->schema(); }
  const etl::Flow& flow() const { return design_->flow(); }
  const std::map<std::string, req::InformationRequirement>& requirements()
      const {
    return design_->requirements();
  }

  /// Interprets + integrates a requirement; stores xRQ, the partial xMD and
  /// xLM, and refreshes the unified xMD/xLM in the repository.
  Result<integrator::IntegrationOutcome> AddRequirement(
      const req::InformationRequirement& ir);

  /// Parses the textual "ANALYZE ... MEASURE ... BY ... WHERE ..." notation
  /// (req::ParseRequirementQuery) and adds the resulting requirement.
  Result<integrator::IntegrationOutcome> AddRequirementFromQuery(
      std::string_view query_text);

  /// Removes a requirement and prunes the unified design.
  Status RemoveRequirement(const std::string& ir_id);

  /// Replaces an integrated requirement with a new definition.
  Result<integrator::IntegrationOutcome> ChangeRequirement(
      const req::InformationRequirement& ir);

  /// Deploys the unified design into `target`.
  Result<deployer::DeploymentReport> Deploy(storage::Database* target);

  /// Transactional deployment of the unified design into `target`
  /// (docs/ROBUSTNESS.md): per-node ETL retries, rollback (or best-effort
  /// partial keep) on failure, and a deployment record in the metadata
  /// repository. `options.database_name` and `options.metadata` are
  /// overridden with this instance's configuration and repository store.
  Result<deployer::DeploymentOutcome> DeployResilient(
      storage::Database* target, deployer::DeployOptions options = {});

  /// Incrementally refreshes an already-deployed `target` with whatever
  /// changed in the source since the last Deploy/Refresh (idempotent
  /// loaders skip known keys).
  Result<etl::ExecutionReport> Refresh(storage::Database* target);

  /// Renders the unified MD schema via a registered exporter ("sql","xmd").
  Result<std::string> ExportSchema(const std::string& format) const;

  /// Renders the unified ETL flow via a registered exporter ("pdi","xlm").
  Result<std::string> ExportFlow(const std::string& format) const;

 private:
  Quarry(ontology::Ontology onto, ontology::SourceMapping mapping,
         const storage::Database* source, QuarryConfig config);

  Status RefreshUnifiedArtifacts();

  std::unique_ptr<ontology::Ontology> onto_;
  std::unique_ptr<ontology::SourceMapping> mapping_;
  const storage::Database* source_;
  QuarryConfig config_;
  std::unique_ptr<req::Elicitor> elicitor_;
  std::unique_ptr<interpreter::Interpreter> interpreter_;
  std::unique_ptr<integrator::DesignIntegrator> design_;
  MetadataRepository repository_;
  docstore::RecoveryStats recovery_stats_;
};

}  // namespace quarry::core

#endif  // QUARRY_CORE_QUARRY_H_
