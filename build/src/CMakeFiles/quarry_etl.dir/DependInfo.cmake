
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/etl/cost_model.cc" "src/CMakeFiles/quarry_etl.dir/etl/cost_model.cc.o" "gcc" "src/CMakeFiles/quarry_etl.dir/etl/cost_model.cc.o.d"
  "/root/repo/src/etl/equivalence.cc" "src/CMakeFiles/quarry_etl.dir/etl/equivalence.cc.o" "gcc" "src/CMakeFiles/quarry_etl.dir/etl/equivalence.cc.o.d"
  "/root/repo/src/etl/exec/executor.cc" "src/CMakeFiles/quarry_etl.dir/etl/exec/executor.cc.o" "gcc" "src/CMakeFiles/quarry_etl.dir/etl/exec/executor.cc.o.d"
  "/root/repo/src/etl/expr.cc" "src/CMakeFiles/quarry_etl.dir/etl/expr.cc.o" "gcc" "src/CMakeFiles/quarry_etl.dir/etl/expr.cc.o.d"
  "/root/repo/src/etl/flow.cc" "src/CMakeFiles/quarry_etl.dir/etl/flow.cc.o" "gcc" "src/CMakeFiles/quarry_etl.dir/etl/flow.cc.o.d"
  "/root/repo/src/etl/schema_inference.cc" "src/CMakeFiles/quarry_etl.dir/etl/schema_inference.cc.o" "gcc" "src/CMakeFiles/quarry_etl.dir/etl/schema_inference.cc.o.d"
  "/root/repo/src/etl/xlm.cc" "src/CMakeFiles/quarry_etl.dir/etl/xlm.cc.o" "gcc" "src/CMakeFiles/quarry_etl.dir/etl/xlm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quarry_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
