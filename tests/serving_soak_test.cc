// Chaos soak for the snapshot-isolated serving path (docs/ROBUSTNESS.md §9):
// N reader threads hammer SubmitQuery while one mutator thread churns the
// operational source and publishes refresh generations, with fault
// injection at the publish/retire sites. Invariants checked:
//   - zero torn reads: every query result matches, bit-for-bit in content
//     terms, exactly one published generation (totals are distinct by
//     construction, +100 revenue per churn round);
//   - every generation a reader observed was really published (its
//     fingerprint is on record);
//   - refcounts return to zero once readers release their pins, and the
//     store never leaks a generation (deferred retires drain to <= 2 live);
//   - sheds are bounded to the overload error class; stale reads only ever
//     happen while a build is in flight.
//
// Scale knobs: QUARRY_SOAK_READERS (default 8) and QUARRY_SOAK_CYCLES
// (default 50) — tools/run_soak.sh raises them for longer runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/quarry.h"
#include "datagen/tpch.h"
#include "ontology/tpch_ontology.h"
#include "storage/generation_store.h"

namespace quarry::core {
namespace {

using req::InformationRequirement;
using storage::Value;

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::max(1, std::atoi(value));
}

struct Observation {
  uint64_t generation = 0;
  double total = 0;
  bool stale = false;
};

struct SoakOutcome {
  std::map<uint64_t, double> expected;  ///< generation -> revenue total.
  std::vector<Observation> observations;
  std::vector<std::string> unexpected_errors;
  int64_t successes = 0;
  int64_t sheds = 0;
  int64_t stale_served = 0;
  int64_t refresh_failures = 0;
};

class ServingSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    readers_ = EnvInt("QUARRY_SOAK_READERS", 8);
    cycles_ = EnvInt("QUARRY_SOAK_CYCLES", 50);
    ASSERT_TRUE(datagen::PopulateTpch(&src_, {0.001, 41}).ok());
    QuarryConfig config;
    // A tight query lane so the soak actually exercises shedding and the
    // stale-read degradation, not just the happy path.
    config.serving.query_admission = {/*max_in_flight=*/2,
                                      /*max_queue_depth=*/2,
                                      /*queue_timeout_millis=*/-1.0,
                                      /*lane=*/""};
    auto quarry = Quarry::Create(ontology::BuildTpchOntology(),
                                 ontology::BuildTpchMappings(), &src_,
                                 std::move(config));
    ASSERT_TRUE(quarry.ok()) << quarry.status();
    quarry_ = std::move(*quarry);
    InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_type"});
    ir.dimensions.push_back({"Supplier.s_name"});
    ASSERT_TRUE(quarry_->AddRequirement(ir).ok());
  }

  void TearDown() override {
    fault::Injector::Instance().ClearConfigs();
    fault::Injector::Instance().Disable();
  }

  static olap::CubeQuery RevenueByType() {
    olap::CubeQuery query;
    query.fact = "fact_table_revenue";
    query.group_by = {"p_type"};
    query.measures = {{"revenue", md::AggFunc::kSum, "total"}};
    return query;
  }

  static double Total(const etl::Dataset& data) {
    double total = 0;
    for (const storage::Row& row : data.rows) total += row[1].as_double();
    return total;
  }

  /// Revenue total of one published generation, read from its pinned fact
  /// table directly (not through the query path) — the ground truth a
  /// reader's result must match.
  static double GenerationTotal(const storage::GenerationStore::Pin& pin) {
    const storage::Table& fact = **pin.db().GetTable("fact_table_revenue");
    size_t revenue = *fact.schema().ColumnIndex("revenue");
    double total = 0;
    for (const storage::Row& row : fact.rows()) {
      total += row[revenue].as_double();
    }
    return total;
  }

  void GrowSource(int salt) {
    storage::Table* part = *src_.GetTable("part");
    int64_t new_partkey = static_cast<int64_t>(part->num_rows()) + 1;
    ASSERT_TRUE(part->Insert({Value::Int(new_partkey),
                              Value::String("part " + std::to_string(salt)),
                              Value::String("Brand#99"),
                              Value::String("SMALL"),
                              Value::Double(1234.5)})
                    .ok());
    storage::Table* lineitem = *src_.GetTable("lineitem");
    ASSERT_TRUE(lineitem
                    ->Insert({Value::Int(1), Value::Int(100000 + salt),
                              Value::Int(new_partkey), Value::Int(1),
                              Value::Int(3), Value::Double(100.0),
                              Value::Double(0.0), Value::Double(0.0),
                              Value::DateYmd(1995, 6, 1), Value::String("N")})
                    .ok());
  }

  /// Deploys generation 1, then runs `cycles_` churn+refresh rounds against
  /// `readers_` concurrent query threads. The mutator thread is the only
  /// writer of the source and the only publisher, so the expected-total map
  /// needs no synchronisation with publishes — only with readers (who never
  /// touch it until after the join anyway).
  SoakOutcome RunSoak() {
    SoakOutcome outcome;
    auto deploy = quarry_->DeployServing();
    EXPECT_TRUE(deploy.ok() && deploy->success)
        << deploy.status() << (deploy.ok() && deploy->failure.has_value()
                                   ? deploy->failure->cause.ToString()
                                   : "");
    RecordExpected(&outcome);

    std::atomic<bool> done{false};
    std::mutex errors_mu;
    std::vector<std::thread> threads;
    std::vector<std::vector<Observation>> per_reader(
        static_cast<size_t>(readers_));
    std::atomic<int64_t> sheds{0};
    std::atomic<int64_t> stale_served{0};
    const olap::CubeQuery query = RevenueByType();

    threads.reserve(static_cast<size_t>(readers_));
    for (int r = 0; r < readers_; ++r) {
      threads.emplace_back([&, r] {
        while (!done.load(std::memory_order_acquire)) {
          auto result = quarry_->SubmitQuery(query, {/*allow_stale=*/true});
          if (result.ok()) {
            per_reader[static_cast<size_t>(r)].push_back(
                {result->generation, Total(result->data), result->stale});
            if (result->stale) stale_served.fetch_add(1);
          } else if (result.status().IsOverloaded()) {
            sheds.fetch_add(1);
          } else {
            std::lock_guard<std::mutex> lock(errors_mu);
            outcome.unexpected_errors.push_back(result.status().ToString());
          }
        }
      });
    }

    // Mutator: churn the source, publish the next generation, record its
    // ground-truth total. Runs in this thread.
    for (int cycle = 1; cycle <= cycles_; ++cycle) {
      GrowSource(cycle);
      auto refresh = quarry_->RefreshServing();
      if (refresh.ok()) {
        RecordExpected(&outcome);
      } else {
        ++outcome.refresh_failures;
        // Under injection the only legitimate refresh failure here is the
        // publish fault (ExecutionError from the injector).
        EXPECT_TRUE(refresh.status().IsExecutionError()) << refresh.status();
      }
    }
    done.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();

    for (const auto& observations : per_reader) {
      outcome.successes += static_cast<int64_t>(observations.size());
      outcome.observations.insert(outcome.observations.end(),
                                  observations.begin(), observations.end());
    }
    outcome.sheds = sheds.load();
    outcome.stale_served = stale_served.load();
    return outcome;
  }

  void RecordExpected(SoakOutcome* outcome) {
    auto pin = quarry_->warehouse().Acquire();
    ASSERT_TRUE(pin.ok()) << pin.status();
    outcome->expected[pin->generation()] = GenerationTotal(*pin);
  }

  /// The soak invariants shared by every scenario.
  void CheckInvariants(const SoakOutcome& outcome) {
    EXPECT_TRUE(outcome.unexpected_errors.empty())
        << outcome.unexpected_errors.front();
    // The readers made real progress.
    EXPECT_GE(outcome.successes, static_cast<int64_t>(readers_) * 2);

    // Ground-truth totals are strictly increasing (+100 per churn round),
    // so one total matches EXACTLY one generation — a torn read cannot
    // masquerade as a different generation's result.
    double last = -1;
    for (const auto& [generation, total] : outcome.expected) {
      EXPECT_GT(total, last) << "generation " << generation;
      last = total;
    }

    // Zero torn reads: every observation matches its generation's content.
    for (const Observation& obs : outcome.observations) {
      auto expected = outcome.expected.find(obs.generation);
      ASSERT_NE(expected, outcome.expected.end())
          << "query served unpublished generation " << obs.generation;
      EXPECT_NEAR(obs.total, expected->second, 1e-6 * expected->second)
          << "torn read on generation " << obs.generation
          << (obs.stale ? " (stale)" : "");
      EXPECT_TRUE(
          quarry_->warehouse().PublishedFingerprint(obs.generation).ok());
    }

    // All pins released; nothing leaked once deferred retires drain.
    fault::Injector::Instance().ClearConfigs();
    fault::Injector::Instance().Disable();
    quarry_->warehouse().DrainDeferredRetires();
    storage::GenerationStoreStats stats = quarry_->warehouse().stats();
    EXPECT_EQ(stats.active_pins, 0);
    EXPECT_LE(stats.live_generations, 2);
    EXPECT_EQ(stats.published,
              static_cast<uint64_t>(outcome.expected.size()));
  }

  storage::Database src_;
  std::unique_ptr<Quarry> quarry_;
  int readers_ = 8;
  int cycles_ = 50;
};

TEST_F(ServingSoakTest, CleanSoak) {
  SoakOutcome outcome = RunSoak();
  EXPECT_EQ(outcome.refresh_failures, 0);
  EXPECT_EQ(outcome.expected.size(), static_cast<size_t>(cycles_) + 1);
  CheckInvariants(outcome);
}

TEST_F(ServingSoakTest, SoakWithPublishAndRetireFaults) {
  fault::Injector::Instance().Enable(97);
  fault::Injector::Instance().Configure("storage.generation.publish",
                                        {/*probability=*/0.2, 0, 0, -1});
  fault::Injector::Instance().Configure("storage.generation.retire",
                                        {/*probability=*/0.3, 0, 0, -1});
  SoakOutcome outcome = RunSoak();
  // Publishes that drew the fault failed and rolled back O(1); the rest
  // landed. Both kinds happened at this probability and cycle count.
  EXPECT_GT(outcome.refresh_failures, 0);
  EXPECT_GT(static_cast<int>(outcome.expected.size()), 1);
  EXPECT_EQ(outcome.expected.size(),
            static_cast<size_t>(cycles_) + 1 -
                static_cast<size_t>(outcome.refresh_failures));
  CheckInvariants(outcome);
}

TEST_F(ServingSoakTest, KillAndRecover) {
  // Phase 1: healthy soak half the cycles.
  const int full_cycles = cycles_;
  cycles_ = std::max(2, full_cycles / 2);
  SoakOutcome healthy = RunSoak();
  CheckInvariants(healthy);
  const uint64_t frozen_at = quarry_->warehouse().current_generation();

  // Phase 2: the publish path "dies" — every publish fails from here on.
  // Serving must freeze at the last published generation, not corrupt it.
  fault::Injector::Instance().Enable(101);
  fault::Injector::Instance().Configure("storage.generation.publish",
                                        {0.0, 0, /*fail_from_hit=*/1, -1});
  const uint64_t fp_frozen =
      *quarry_->warehouse().PublishedFingerprint(frozen_at);
  for (int cycle = 0; cycle < 5; ++cycle) {
    GrowSource(100000 + cycle);
    EXPECT_FALSE(quarry_->RefreshServing().ok());
    auto result = quarry_->SubmitQuery(RevenueByType());
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->generation, frozen_at);
  }
  EXPECT_EQ(quarry_->warehouse().current_generation(), frozen_at);
  EXPECT_EQ(quarry_->warehouse().Acquire()->db().Fingerprint(), fp_frozen);

  // Phase 3: recovery — injection stops, publishes resume, no restore step.
  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Disable();
  auto refresh = quarry_->RefreshServing();
  ASSERT_TRUE(refresh.ok()) << refresh.status();
  EXPECT_GT(quarry_->warehouse().current_generation(), frozen_at);
  auto result = quarry_->SubmitQuery(RevenueByType());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->generation, frozen_at);
  storage::GenerationStoreStats stats = quarry_->warehouse().stats();
  EXPECT_EQ(stats.active_pins, 0);
  EXPECT_LE(stats.live_generations, 2);
}

}  // namespace
}  // namespace quarry::core
