#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/wal.h"

namespace quarry::storage {

namespace {

bool NeedsQuoting(const std::string& field, char sep) {
  return field.find(sep) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos ||
         field.find('\r') != std::string::npos;
}

void AppendField(const std::string& field, char sep, std::string* out) {
  if (!NeedsQuoting(field, sep)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

/// Splits one CSV record respecting quoting; advances *pos past the record
/// terminator.
std::vector<std::string> ParseRecord(const std::string& text, size_t* pos,
                                     char sep) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // Swallow; \r\n handled by the \n branch next iteration.
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

}  // namespace

std::string TableToCsv(const Table& table, char sep) {
  std::string out;
  const auto& columns = table.schema().columns();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out.push_back(sep);
    AppendField(columns[i].name, sep, &out);
  }
  out.push_back('\n');
  for (const Row& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(sep);
      if (!row[i].is_null()) AppendField(row[i].ToString(), sep, &out);
    }
    out.push_back('\n');
  }
  return out;
}

Status LoadCsvInto(Table* table, const std::string& csv, char sep) {
  size_t pos = 0;
  if (csv.empty()) return Status::ParseError("empty CSV input");
  std::vector<std::string> header = ParseRecord(csv, &pos, sep);
  const auto& columns = table->schema().columns();
  if (header.size() != columns.size()) {
    return Status::ParseError("CSV header arity " +
                              std::to_string(header.size()) +
                              " != schema arity " +
                              std::to_string(columns.size()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] != columns[i].name) {
      return Status::ParseError("CSV header '" + header[i] +
                                "' != column '" + columns[i].name + "'");
    }
  }
  int line = 1;
  while (pos < csv.size()) {
    std::vector<std::string> fields = ParseRecord(csv, &pos, sep);
    ++line;
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != columns.size()) {
      return Status::ParseError("CSV record arity mismatch at line " +
                                std::to_string(line));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].empty()) {
        row.push_back(Value::Null());
        continue;
      }
      auto v = Value::Parse(fields[i], columns[i].type);
      if (!v.ok()) {
        return v.status().WithContext("CSV line " + std::to_string(line));
      }
      row.push_back(std::move(v).value());
    }
    QUARRY_RETURN_NOT_OK(table->Insert(std::move(row)));
  }
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path, char sep) {
  return WriteFile(path, TableToCsv(table, sep));
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  // Atomic (tmp + fsync + rename): a crash mid-export leaves either the
  // previous file or the complete new one, never a torn prefix.
  return wal::AtomicWriteFile(path, content);
}

}  // namespace quarry::storage
