// Vectorized chunk kernels for the ETL executor (DESIGN.md §8).
//
// Each kernel processes its input as storage::Chunks: a lifecycle check, a
// fault point ("etl.exec.vec.chunk") and a budget charge run once per chunk
// instead of once per node, so cancellation/deadline/budget trips land at
// chunk granularity while totals stay exactly equal to the row path
// (ApproxRowsBytes is linear in rows). Every kernel must produce output
// byte-identical to its row counterpart in executor.cc — identical row
// order, identical Values, identical error statuses. The three-way
// differential harness (tests/etl_parallel_test.cc) enforces this.

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "etl/exec/executor.h"
#include "etl/exec/kernel_util.h"
#include "etl/expr.h"
#include "etl/schema_inference.h"
#include "obs/metrics.h"

namespace quarry::etl {

using storage::Chunk;
using storage::DataType;
using storage::Row;
using storage::Value;
using storage::ValueSegment;
using kernel::AggState;
using kernel::ColumnPositions;
using kernel::ExtractKey;
using kernel::Param;
using kernel::RowKeyEq;
using kernel::RowKeyHash;
using kernel::SplitNonEmpty;

namespace {

obs::Counter& ChunkRowsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_chunk_rows_total",
      "Rows processed by vectorized chunk kernels");
  return c;
}

void CountChunk(const Node& node, int64_t rows) {
  obs::MetricsRegistry::Instance()
      .counter("quarry_etl_chunk_batches_total",
               "Chunks processed by vectorized kernels, by operator type",
               {{"op", OpTypeToString(node.type)}})
      .Increment();
  ChunkRowsCounter().Increment(rows);
}

/// Per-chunk lifecycle gate: the context check uses the same message as the
/// row path's BatchChecker so lifecycle errors read identically, and the
/// fault site lets the fault matrix kill a node mid-stream.
Status ChunkGate(const ExecContext* ctx, const std::string& node_id) {
  if (ctx != nullptr) {
    QUARRY_RETURN_NOT_OK(ctx->Check("node '" + node_id + "'"));
  }
  QUARRY_FAULT_POINT("etl.exec.vec.chunk");
  return Status::OK();
}

/// Budget charges for the rows a kernel emits, chunk by chunk. Finish()
/// keeps row-path parity for nodes that emitted no chunks: the row path
/// always charges once per node, even for zero rows.
class OutputCharger {
 public:
  OutputCharger(const ExecContext* ctx, const std::string& node_id,
                size_t columns)
      : ctx_(ctx), node_id_(node_id), columns_(columns) {}

  Status Charge(int64_t rows) {
    charged_ = true;
    if (ctx_ == nullptr) return Status::OK();
    QUARRY_RETURN_NOT_OK(ctx_->ChargeRows(rows, "node '" + node_id_ + "'"));
    return ctx_->ChargeBytes(
        ApproxRowsBytes(rows, columns_),
        "node '" + node_id_ + "'");
  }

  Status Finish() { return charged_ ? Status::OK() : Charge(0); }

 private:
  const ExecContext* ctx_;
  const std::string& node_id_;
  size_t columns_;
  bool charged_ = false;
};

/// Expression evaluation against a chunk row. A hash map replaces RowView's
/// linear name scan (first occurrence wins, like RowView::Get), values come
/// straight from the segments, and the tree walk mirrors Expr::Eval
/// case-for-case — including AND/OR short-circuiting, so an unknown column
/// in a short-circuited branch stays unnoticed exactly like the row path.
class ChunkEval {
 public:
  explicit ChunkEval(const std::vector<std::string>& columns) {
    for (size_t i = 0; i < columns.size(); ++i) {
      index_.emplace(columns[i], i);  // Keeps the first duplicate, as Get().
    }
  }

  Result<Value> Eval(const Expr& e, const Chunk& chunk, uint32_t phys) const {
    switch (e.kind()) {
      case Expr::Kind::kLiteral:
        return e.literal();
      case Expr::Kind::kColumn: {
        auto it = index_.find(e.column());
        if (it == index_.end()) {
          return Status::NotFound("column '" + e.column() + "' in row");
        }
        return chunk.segment(it->second).At(phys);
      }
      case Expr::Kind::kUnary: {
        QUARRY_ASSIGN_OR_RETURN(Value v, Eval(*e.args()[0], chunk, phys));
        if (e.op() == "-") {
          if (v.is_null()) return Value::Null();
          if (v.is_int()) return Value::Int(-v.as_int());
          if (v.is_double()) return Value::Double(-v.as_double());
          return Status::InvalidArgument("negation of non-numeric value");
        }
        if (e.op() == "NOT") return Value::Bool(!ExprTruthy(v));
        return Status::Internal("unknown unary op '" + e.op() + "'");
      }
      case Expr::Kind::kBinary: {
        if (e.op() == "AND") {
          QUARRY_ASSIGN_OR_RETURN(Value a, Eval(*e.args()[0], chunk, phys));
          if (!ExprTruthy(a)) return Value::Bool(false);
          QUARRY_ASSIGN_OR_RETURN(Value b, Eval(*e.args()[1], chunk, phys));
          return Value::Bool(ExprTruthy(b));
        }
        if (e.op() == "OR") {
          QUARRY_ASSIGN_OR_RETURN(Value a, Eval(*e.args()[0], chunk, phys));
          if (ExprTruthy(a)) return Value::Bool(true);
          QUARRY_ASSIGN_OR_RETURN(Value b, Eval(*e.args()[1], chunk, phys));
          return Value::Bool(ExprTruthy(b));
        }
        QUARRY_ASSIGN_OR_RETURN(Value a, Eval(*e.args()[0], chunk, phys));
        QUARRY_ASSIGN_OR_RETURN(Value b, Eval(*e.args()[1], chunk, phys));
        if (e.op() == "+" || e.op() == "-" || e.op() == "*" ||
            e.op() == "/") {
          return EvalArithmetic(e.op(), a, b);
        }
        return EvalComparison(e.op(), a, b);
      }
    }
    return Status::Internal("corrupt expression");
  }

 private:
  std::unordered_map<std::string, size_t> index_;
};

// ---------------------------------------------------------------------------
// Fast filter path: `col cmp literal` / `col cmp col` predicates over
// numeric or date segments compare on the typed payloads directly. The
// comparison must agree with Value::Compare: exact int64 when both sides
// are INT, sign-of-difference through double otherwise, raw day counts for
// dates. Anything the fast path cannot prove equivalent falls back to
// ChunkEval for that chunk (segment reps can differ chunk to chunk).

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::optional<CmpOp> ParseCmpOp(const std::string& op) {
  if (op == "=") return CmpOp::kEq;
  if (op == "<>") return CmpOp::kNe;
  if (op == "<") return CmpOp::kLt;
  if (op == "<=") return CmpOp::kLe;
  if (op == ">") return CmpOp::kGt;
  if (op == ">=") return CmpOp::kGe;
  return std::nullopt;
}

CmpOp MirrorCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;
  }
}

bool CmpKeep(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::kEq: return cmp == 0;
    case CmpOp::kNe: return cmp != 0;
    case CmpOp::kLt: return cmp < 0;
    case CmpOp::kLe: return cmp <= 0;
    case CmpOp::kGt: return cmp > 0;
    case CmpOp::kGe: return cmp >= 0;
  }
  return false;
}

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

struct FastCompare {
  CmpOp op = CmpOp::kEq;
  size_t lhs_col = 0;
  bool rhs_is_col = false;
  size_t rhs_col = 0;
  Value literal;  // When !rhs_is_col; always non-NULL numeric or date.
};

std::optional<size_t> FirstIndexOf(const std::vector<std::string>& columns,
                                   const std::string& name) {
  auto it = std::find(columns.begin(), columns.end(), name);
  if (it == columns.end()) return std::nullopt;
  return static_cast<size_t>(it - columns.begin());
}

std::optional<FastCompare> TryFastCompare(
    const Expr& pred, const std::vector<std::string>& columns) {
  if (pred.kind() != Expr::Kind::kBinary) return std::nullopt;
  std::optional<CmpOp> op = ParseCmpOp(pred.op());
  if (!op.has_value()) return std::nullopt;
  const Expr& lhs = *pred.args()[0];
  const Expr& rhs = *pred.args()[1];

  auto build = [&](const Expr& col_side, const Expr& other,
                   CmpOp cmp) -> std::optional<FastCompare> {
    std::optional<size_t> ci = FirstIndexOf(columns, col_side.column());
    if (!ci.has_value()) return std::nullopt;  // Generic path errors as Get.
    FastCompare f;
    f.op = cmp;
    f.lhs_col = *ci;
    if (other.kind() == Expr::Kind::kColumn) {
      std::optional<size_t> ri = FirstIndexOf(columns, other.column());
      if (!ri.has_value()) return std::nullopt;
      f.rhs_is_col = true;
      f.rhs_col = *ri;
      return f;
    }
    if (other.kind() != Expr::Kind::kLiteral) return std::nullopt;
    const Value& lit = other.literal();
    if (!lit.is_numeric() && !lit.is_date()) return std::nullopt;
    f.literal = lit;
    return f;
  };

  if (lhs.kind() == Expr::Kind::kColumn) return build(lhs, rhs, *op);
  if (rhs.kind() == Expr::Kind::kColumn &&
      lhs.kind() == Expr::Kind::kLiteral) {
    return build(rhs, lhs, MirrorCmpOp(*op));
  }
  return std::nullopt;
}

bool NumericRep(ValueSegment::Rep rep) {
  return rep == ValueSegment::Rep::kInt64 ||
         rep == ValueSegment::Rep::kDouble;
}

/// True when the fast comparison is provably Value::Compare-equivalent for
/// this chunk's segment representations.
bool FastCompareEligible(const FastCompare& f, const Chunk& chunk) {
  const ValueSegment& ls = chunk.segment(f.lhs_col);
  if (f.rhs_is_col) {
    const ValueSegment& rs = chunk.segment(f.rhs_col);
    return (NumericRep(ls.rep()) && NumericRep(rs.rep())) ||
           (ls.rep() == ValueSegment::Rep::kDate &&
            rs.rep() == ValueSegment::Rep::kDate);
  }
  return (NumericRep(ls.rep()) && f.literal.is_numeric()) ||
         (ls.rep() == ValueSegment::Rep::kDate && f.literal.is_date());
}

double SegDouble(const ValueSegment& s, uint32_t phys) {
  return s.rep() == ValueSegment::Rep::kInt64
             ? static_cast<double>(s.ints()[phys])
             : s.doubles()[phys];
}

/// Fills `sel` with the physical rows of `chunk` passing the fast
/// comparison. NULL on either side never passes (EvalComparison → NULL).
void RunFastCompare(const FastCompare& f, const Chunk& chunk,
                    std::vector<uint32_t>* sel) {
  const ValueSegment& ls = chunk.segment(f.lhs_col);
  const ValueSegment* rs = f.rhs_is_col ? &chunk.segment(f.rhs_col) : nullptr;
  const size_t n = chunk.num_rows();
  const bool date_cmp = ls.rep() == ValueSegment::Rep::kDate;
  const bool int_cmp =
      !date_cmp && ls.rep() == ValueSegment::Rep::kInt64 &&
      (f.rhs_is_col ? rs->rep() == ValueSegment::Rep::kInt64
                    : f.literal.is_int());
  const int64_t lit_int = !f.rhs_is_col && f.literal.is_int()
                              ? f.literal.as_int()
                              : 0;
  const double lit_dbl =
      !f.rhs_is_col && f.literal.is_numeric() ? f.literal.as_double() : 0.0;
  const int32_t lit_date =
      !f.rhs_is_col && f.literal.is_date() ? f.literal.as_date_days() : 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t phys = chunk.PhysicalRow(i);
    if (ls.IsNull(phys) || (rs != nullptr && rs->IsNull(phys))) continue;
    int cmp;
    if (date_cmp) {
      int32_t a = ls.dates()[phys];
      int32_t b = rs != nullptr ? rs->dates()[phys] : lit_date;
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else if (int_cmp) {
      int64_t a = ls.ints()[phys];
      int64_t b = rs != nullptr ? rs->ints()[phys] : lit_int;
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else {
      double a = SegDouble(ls, phys);
      double b = rs != nullptr ? SegDouble(*rs, phys) : lit_dbl;
      cmp = Sign(a - b);
    }
    if (CmpKeep(f.op, cmp)) sel->push_back(phys);
  }
}

/// Group key of `chunk`'s physical row at `positions`.
Row ChunkKey(const Chunk& chunk, const std::vector<size_t>& positions,
             uint32_t phys) {
  Row key;
  key.reserve(positions.size());
  for (size_t p : positions) key.push_back(chunk.segment(p).At(phys));
  return key;
}

/// First non-NULL value's type across the chunks' live rows, in row order —
/// the chunked twin of the row path's InferColumnType.
Result<DataType> InferColumnTypeChunks(const std::vector<Chunk>& chunks,
                                       size_t column) {
  for (const Chunk& chunk : chunks) {
    const ValueSegment& seg = chunk.segment(column);
    for (size_t i = 0; i < chunk.num_rows(); ++i) {
      Value v = seg.At(chunk.PhysicalRow(i));
      if (!v.is_null()) return v.type();
    }
  }
  return DataType::kString;  // All-NULL column: arbitrary but stable.
}

}  // namespace

Result<Dataset> Executor::RunNodeVectorized(
    const Node& node, const std::vector<const Dataset*>& inputs,
    LoaderEffect* loader, const ExecContext* ctx, const ExecOptions& options) {
  auto input = [&](size_t i) -> const Dataset& { return *inputs[i]; };
  switch (node.type) {
    case OpType::kDatastore: {
      QUARRY_ASSIGN_OR_RETURN(const storage::Table* table,
                              source_->GetTable(Param(node, "table")));
      Dataset out;
      out.columnar = true;
      for (const storage::Column& c : table->schema().columns()) {
        out.columns.push_back(c.name);
      }
      OutputCharger charge(ctx, node.id, out.columns.size());
      for (Chunk& chunk : table->ScanChunks(options.chunk_size)) {
        QUARRY_RETURN_NOT_OK(ChunkGate(ctx, node.id));
        CountChunk(node, static_cast<int64_t>(chunk.num_rows()));
        QUARRY_RETURN_NOT_OK(
            charge.Charge(static_cast<int64_t>(chunk.num_rows())));
        out.chunks.push_back(std::move(chunk));
      }
      QUARRY_RETURN_NOT_OK(charge.Finish());
      return out;
    }
    case OpType::kExtraction: {
      const Dataset& in = input(0);
      Dataset out;
      out.columnar = true;
      out.columns = in.columns;
      std::vector<Chunk> scratch;
      OutputCharger charge(ctx, node.id, out.columns.size());
      for (const Chunk& chunk :
           DatasetChunks(in, options.chunk_size, &scratch)) {
        QUARRY_RETURN_NOT_OK(ChunkGate(ctx, node.id));
        CountChunk(node, static_cast<int64_t>(chunk.num_rows()));
        QUARRY_RETURN_NOT_OK(
            charge.Charge(static_cast<int64_t>(chunk.num_rows())));
        out.chunks.push_back(chunk);  // Shares the immutable segments.
      }
      QUARRY_RETURN_NOT_OK(charge.Finish());
      return out;
    }
    case OpType::kSelection: {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr pred,
                              ParseExpr(Param(node, "predicate")));
      const Dataset& in = input(0);
      Dataset out;
      out.columnar = true;
      out.columns = in.columns;
      ChunkEval eval(in.columns);
      std::optional<FastCompare> fast = TryFastCompare(*pred, in.columns);
      std::vector<Chunk> scratch;
      OutputCharger charge(ctx, node.id, out.columns.size());
      for (const Chunk& chunk :
           DatasetChunks(in, options.chunk_size, &scratch)) {
        QUARRY_RETURN_NOT_OK(ChunkGate(ctx, node.id));
        CountChunk(node, static_cast<int64_t>(chunk.num_rows()));
        std::vector<uint32_t> sel;
        if (fast.has_value() && FastCompareEligible(*fast, chunk)) {
          RunFastCompare(*fast, chunk, &sel);
        } else {
          for (size_t i = 0; i < chunk.num_rows(); ++i) {
            const uint32_t phys = chunk.PhysicalRow(i);
            QUARRY_ASSIGN_OR_RETURN(Value v, eval.Eval(*pred, chunk, phys));
            if (ExprTruthy(v)) sel.push_back(phys);
          }
        }
        if (sel.empty()) continue;  // Fully filtered chunks are dropped.
        QUARRY_RETURN_NOT_OK(
            charge.Charge(static_cast<int64_t>(sel.size())));
        if (sel.size() == chunk.num_rows()) {
          out.chunks.push_back(chunk);  // Nothing filtered: reuse as-is.
        } else {
          out.chunks.emplace_back(
              chunk.segments(),
              std::make_shared<const std::vector<uint32_t>>(std::move(sel)));
        }
      }
      QUARRY_RETURN_NOT_OK(charge.Finish());
      return out;
    }
    case OpType::kProjection: {
      std::vector<std::string> keep = SplitNonEmpty(Param(node, "columns"));
      const Dataset& in = input(0);
      QUARRY_ASSIGN_OR_RETURN(auto positions,
                              ColumnPositions(in.columns, keep, node.id));
      Dataset out;
      out.columns = keep;
      out.columnar = !positions.empty();
      std::vector<Chunk> scratch;
      OutputCharger charge(ctx, node.id, out.columns.size());
      for (const Chunk& chunk :
           DatasetChunks(in, options.chunk_size, &scratch)) {
        QUARRY_RETURN_NOT_OK(ChunkGate(ctx, node.id));
        CountChunk(node, static_cast<int64_t>(chunk.num_rows()));
        QUARRY_RETURN_NOT_OK(
            charge.Charge(static_cast<int64_t>(chunk.num_rows())));
        if (positions.empty()) {
          // Zero-column projection: a chunk cannot carry rows without
          // segments, so emit empty Rows like the row path does.
          out.rows.resize(out.rows.size() + chunk.num_rows());
          continue;
        }
        std::vector<Chunk::SegmentPtr> segments;
        segments.reserve(positions.size());
        for (size_t p : positions) segments.push_back(chunk.segment_ptr(p));
        out.chunks.emplace_back(std::move(segments), chunk.selection());
      }
      QUARRY_RETURN_NOT_OK(charge.Finish());
      return out;
    }
    case OpType::kFunction: {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr expr, ParseExpr(Param(node, "expr")));
      std::string column = Param(node, "column");
      if (column.empty()) {
        return Status::ExecutionError("function '" + node.id +
                                      "' lacks a column param");
      }
      const Dataset& in = input(0);
      Dataset out;
      out.columnar = true;
      out.columns = in.columns;
      out.columns.push_back(column);
      ChunkEval eval(in.columns);
      std::vector<Chunk> scratch;
      OutputCharger charge(ctx, node.id, out.columns.size());
      for (const Chunk& chunk :
           DatasetChunks(in, options.chunk_size, &scratch)) {
        QUARRY_RETURN_NOT_OK(ChunkGate(ctx, node.id));
        CountChunk(node, static_cast<int64_t>(chunk.num_rows()));
        // Dead (filtered-out) slots stay NULL and are never evaluated, so
        // an expression that would error on a filtered row doesn't — same
        // as the row path, which never sees that row at all.
        std::vector<Value> values(chunk.capacity());
        for (size_t i = 0; i < chunk.num_rows(); ++i) {
          const uint32_t phys = chunk.PhysicalRow(i);
          QUARRY_ASSIGN_OR_RETURN(Value v, eval.Eval(*expr, chunk, phys));
          values[phys] = std::move(v);
        }
        std::vector<Chunk::SegmentPtr> segments = chunk.segments();
        segments.push_back(std::make_shared<const ValueSegment>(
            ValueSegment::FromValues(std::move(values))));
        QUARRY_RETURN_NOT_OK(
            charge.Charge(static_cast<int64_t>(chunk.num_rows())));
        out.chunks.emplace_back(std::move(segments), chunk.selection());
      }
      QUARRY_RETURN_NOT_OK(charge.Finish());
      return out;
    }
    case OpType::kJoin: {
      if (inputs.size() != 2) {
        return Status::ExecutionError("join '" + node.id +
                                      "' needs exactly 2 inputs");
      }
      const Dataset& left = input(0);
      const Dataset& right = input(1);
      std::vector<std::string> left_keys = SplitNonEmpty(Param(node, "left"));
      std::vector<std::string> right_keys =
          SplitNonEmpty(Param(node, "right"));
      if (left_keys.empty() || left_keys.size() != right_keys.size()) {
        return Status::ExecutionError("join '" + node.id +
                                      "' has mismatched key lists");
      }
      std::string join_type = Param(node, "type");
      if (join_type.empty()) join_type = "inner";
      if (join_type != "inner" && join_type != "left") {
        return Status::ExecutionError(
            "join '" + node.id + "': unsupported type '" + join_type + "'");
      }
      QUARRY_ASSIGN_OR_RETURN(
          auto left_pos, ColumnPositions(left.columns, left_keys, node.id));
      QUARRY_ASSIGN_OR_RETURN(
          auto right_pos,
          ColumnPositions(right.columns, right_keys, node.id));

      // Build on the right input, identically to the row path: the build
      // side is materialized once (row access by index is what probing
      // needs), NULL keys never enter the table.
      std::vector<Row> right_scratch;
      const std::vector<Row>& right_rows = DatasetRows(right, &right_scratch);
      std::unordered_map<Row, std::vector<size_t>, RowKeyHash, RowKeyEq>
          build;
      build.reserve(right_rows.size());
      for (size_t i = 0; i < right_rows.size(); ++i) {
        Row key = ExtractKey(right_rows[i], right_pos);
        bool has_null =
            std::any_of(key.begin(), key.end(),
                        [](const Value& v) { return v.is_null(); });
        if (has_null) continue;  // SQL: NULL keys never match.
        build[std::move(key)].push_back(i);
      }

      Dataset out;
      out.columnar = true;
      out.columns = left.columns;
      out.columns.insert(out.columns.end(), right.columns.begin(),
                         right.columns.end());
      const bool left_join = join_type == "left";
      std::vector<Chunk> scratch;
      OutputCharger charge(ctx, node.id, out.columns.size());
      for (const Chunk& chunk :
           DatasetChunks(left, options.chunk_size, &scratch)) {
        QUARRY_RETURN_NOT_OK(ChunkGate(ctx, node.id));
        CountChunk(node, static_cast<int64_t>(chunk.num_rows()));
        // Probe: one (left physical row, right row index) pair per output
        // row, in probe order — identical to the row path's output order.
        std::vector<uint32_t> left_phys;
        std::vector<int64_t> right_idx;  // -1 = NULL-padded (left join).
        for (size_t i = 0; i < chunk.num_rows(); ++i) {
          const uint32_t phys = chunk.PhysicalRow(i);
          Row key = ChunkKey(chunk, left_pos, phys);
          bool has_null =
              std::any_of(key.begin(), key.end(),
                          [](const Value& v) { return v.is_null(); });
          auto it = has_null ? build.end() : build.find(key);
          if (it == build.end()) {
            if (left_join) {
              left_phys.push_back(phys);
              right_idx.push_back(-1);
            }
            continue;
          }
          for (size_t ridx : it->second) {
            left_phys.push_back(phys);
            right_idx.push_back(static_cast<int64_t>(ridx));
          }
        }
        if (left_phys.empty()) continue;
        std::vector<Chunk::SegmentPtr> segments;
        segments.reserve(out.columns.size());
        for (size_t c = 0; c < left.columns.size(); ++c) {
          segments.push_back(std::make_shared<const ValueSegment>(
              chunk.segment(c).Gather(left_phys)));
        }
        for (size_t c = 0; c < right.columns.size(); ++c) {
          std::vector<Value> col;
          col.reserve(right_idx.size());
          for (int64_t ridx : right_idx) {
            col.push_back(ridx < 0
                              ? Value::Null()
                              : right_rows[static_cast<size_t>(ridx)][c]);
          }
          segments.push_back(std::make_shared<const ValueSegment>(
              ValueSegment::FromValues(std::move(col))));
        }
        QUARRY_RETURN_NOT_OK(
            charge.Charge(static_cast<int64_t>(left_phys.size())));
        out.chunks.emplace_back(std::move(segments));
      }
      QUARRY_RETURN_NOT_OK(charge.Finish());
      return out;
    }
    case OpType::kAggregation: {
      const Dataset& in = input(0);
      std::vector<std::string> group = SplitNonEmpty(Param(node, "group"));
      QUARRY_ASSIGN_OR_RETURN(auto specs, ParseAggSpecs(Param(node, "aggs")));
      QUARRY_ASSIGN_OR_RETURN(auto group_pos,
                              ColumnPositions(in.columns, group, node.id));
      std::vector<int> agg_pos(specs.size(), -1);
      for (size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].input == "*") continue;
        QUARRY_ASSIGN_OR_RETURN(
            auto pos, ColumnPositions(in.columns, {specs[i].input}, node.id));
        agg_pos[i] = static_cast<int>(pos[0]);
      }

      std::unordered_map<Row, std::vector<AggState>, RowKeyHash, RowKeyEq>
          groups;
      std::vector<Row> group_order;  // First-seen order, like the row path.
      std::vector<Chunk> scratch;
      for (const Chunk& chunk :
           DatasetChunks(in, options.chunk_size, &scratch)) {
        QUARRY_RETURN_NOT_OK(ChunkGate(ctx, node.id));
        CountChunk(node, static_cast<int64_t>(chunk.num_rows()));
        for (size_t i = 0; i < chunk.num_rows(); ++i) {
          const uint32_t phys = chunk.PhysicalRow(i);
          Row key = ChunkKey(chunk, group_pos, phys);
          auto [it, inserted] =
              groups.try_emplace(key, std::vector<AggState>(specs.size()));
          if (inserted) group_order.push_back(key);
          std::vector<AggState>& states = it->second;
          for (size_t s = 0; s < specs.size(); ++s) {
            if (specs[s].input == "*") {
              kernel::AccumulateAggStar(&states[s]);
              continue;
            }
            Value v = chunk.segment(static_cast<size_t>(agg_pos[s]))
                          .At(phys);
            kernel::AccumulateAgg(&states[s], v);
          }
        }
      }

      Dataset out;
      out.columns = group;
      for (const AggSpec& s : specs) out.columns.push_back(s.output);
      OutputCharger charge(ctx, node.id, out.columns.size());
      if (out.columns.empty()) {
        // Degenerate no-group no-agg shape: rows without segments cannot
        // live in a chunk, so fall back to (empty) Rows.
        out.rows.resize(group_order.size());
      } else if (!group_order.empty()) {
        std::vector<std::vector<Value>> cols(out.columns.size());
        for (auto& col : cols) col.reserve(group_order.size());
        for (const Row& key : group_order) {
          const std::vector<AggState>& states = groups.at(key);
          for (size_t g = 0; g < group_pos.size(); ++g) {
            cols[g].push_back(key[g]);
          }
          for (size_t s = 0; s < specs.size(); ++s) {
            cols[group_pos.size() + s].push_back(
                kernel::FinalizeAgg(specs[s].function, states[s]));
          }
        }
        std::vector<Chunk::SegmentPtr> segments;
        segments.reserve(cols.size());
        for (auto& col : cols) {
          segments.push_back(std::make_shared<const ValueSegment>(
              ValueSegment::FromValues(std::move(col))));
        }
        out.columnar = true;
        out.chunks.emplace_back(std::move(segments));
      } else {
        out.columnar = true;
      }
      QUARRY_RETURN_NOT_OK(
          charge.Charge(static_cast<int64_t>(group_order.size())));
      return out;
    }
    case OpType::kLoader: {
      const Dataset& data = input(0);
      std::string table_name = Param(node, "table");
      if (table_name.empty()) {
        return Status::ExecutionError("loader '" + node.id +
                                      "' lacks a table param");
      }
      std::vector<std::string> keys = SplitNonEmpty(Param(node, "keys"));
      std::vector<Chunk> scratch;
      const std::vector<Chunk>& chunks =
          DatasetChunks(data, options.chunk_size, &scratch);
      int64_t total_rows = 0;
      for (const Chunk& c : chunks) {
        total_rows += static_cast<int64_t>(c.num_rows());
      }
      auto charge_rows = [&](int64_t rows) -> Status {
        if (ctx == nullptr) return Status::OK();
        return ctx->ChargeRows(rows, "node '" + node.id + "'");
      };
      if (!target_->HasTable(table_name) && total_rows == 0) {
        // No rows and no pre-created table: defer creation, exactly like
        // the row kernel (see executor.cc for the rationale).
        QUARRY_RETURN_NOT_OK(charge_rows(0));
        loader->table = table_name;
        loader->fired = true;  // rows stays 0
        Dataset out;
        out.columns = data.columns;
        return out;
      }
      if (!target_->HasTable(table_name)) {
        storage::TableSchema schema(table_name);
        for (size_t c = 0; c < data.columns.size(); ++c) {
          QUARRY_ASSIGN_OR_RETURN(DataType type,
                                  InferColumnTypeChunks(chunks, c));
          QUARRY_RETURN_NOT_OK(
              schema.AddColumn({data.columns[c], type, true}));
        }
        if (!keys.empty()) QUARRY_RETURN_NOT_OK(schema.SetPrimaryKey(keys));
        QUARRY_RETURN_NOT_OK(
            target_->CreateTable(std::move(schema)).status());
      }
      QUARRY_ASSIGN_OR_RETURN(storage::Table * table,
                              target_->GetTable(table_name));
      for (size_t c = 0; c < data.columns.size(); ++c) {
        if (table->schema().ColumnIndex(data.columns[c]).has_value()) {
          continue;
        }
        QUARRY_ASSIGN_OR_RETURN(DataType type,
                                InferColumnTypeChunks(chunks, c));
        QUARRY_RETURN_NOT_OK(
            table->AddColumn({data.columns[c], type, true}));
      }
      std::vector<int> positions;  // per target column; -1 = NULL
      for (const storage::Column& c : table->schema().columns()) {
        auto it =
            std::find(data.columns.begin(), data.columns.end(), c.name);
        positions.push_back(
            it == data.columns.end()
                ? -1
                : static_cast<int>(it - data.columns.begin()));
      }
      std::vector<size_t> key_positions;
      if (!keys.empty()) {
        QUARRY_ASSIGN_OR_RETURN(
            auto kp, ColumnPositions(data.columns, keys, node.id));
        key_positions = kp;
      }
      int64_t written = 0;
      std::unordered_map<Row, size_t, RowKeyHash, RowKeyEq> existing_rows;
      if (!key_positions.empty()) {
        std::vector<size_t> tk;
        for (const std::string& k : keys) {
          tk.push_back(*table->schema().ColumnIndex(k));
        }
        for (size_t r = 0; r < table->num_rows(); ++r) {
          existing_rows.emplace(ExtractKey(table->rows()[r], tk), r);
        }
      }
      for (const Chunk& chunk : chunks) {
        QUARRY_RETURN_NOT_OK(ChunkGate(ctx, node.id));
        CountChunk(node, static_cast<int64_t>(chunk.num_rows()));
        for (size_t i = 0; i < chunk.num_rows(); ++i) {
          const uint32_t phys = chunk.PhysicalRow(i);
          Row row;
          row.reserve(data.columns.size());
          for (size_t c = 0; c < data.columns.size(); ++c) {
            row.push_back(chunk.segment(c).At(phys));
          }
          if (!key_positions.empty()) {
            Row key = ExtractKey(row, key_positions);
            auto it = existing_rows.find(key);
            if (it != existing_rows.end()) {
              // Merge: fill NULL cells the dataset can provide.
              size_t target_row = it->second;
              for (size_t c = 0; c < positions.size(); ++c) {
                if (positions[c] < 0) continue;
                const Value& incoming =
                    row[static_cast<size_t>(positions[c])];
                if (incoming.is_null()) continue;
                if (!table->rows()[target_row][c].is_null()) continue;
                QUARRY_RETURN_NOT_OK(
                    table->SetCell(target_row, c, incoming));
              }
              continue;
            }
            Row out;
            out.reserve(positions.size());
            for (int p : positions) {
              out.push_back(p < 0 ? Value::Null()
                                  : row[static_cast<size_t>(p)]);
            }
            QUARRY_RETURN_NOT_OK(table->Insert(std::move(out)));
            existing_rows.emplace(std::move(key), table->num_rows() - 1);
            ++written;
            continue;
          }
          Row out;
          out.reserve(positions.size());
          for (int p : positions) {
            out.push_back(p < 0 ? Value::Null()
                                : row[static_cast<size_t>(p)]);
          }
          QUARRY_RETURN_NOT_OK(table->Insert(std::move(out)));
          ++written;
        }
        // Loaders charge their input (they are sinks): one charge per
        // chunk written, summing to the row path's rows_in charge.
        QUARRY_RETURN_NOT_OK(
            charge_rows(static_cast<int64_t>(chunk.num_rows())));
      }
      if (chunks.empty()) QUARRY_RETURN_NOT_OK(charge_rows(0));
      // Same mid-write fault site and cadence as the row kernel: fires
      // after all rows landed, before the effect is reported.
      QUARRY_FAULT_POINT("etl.exec.Loader.write");
      loader->table = table_name;
      loader->rows = written;
      loader->fired = true;
      Dataset out;
      out.columns = data.columns;
      return out;  // Loaders are sinks; emit an empty dataset.
    }
    case OpType::kSort:
    case OpType::kUnion:
    case OpType::kSurrogateKey:
      break;  // No chunk kernel; the dispatcher never sends these here.
  }
  return Status::Internal("operator type has no vectorized kernel");
}

}  // namespace quarry::etl
