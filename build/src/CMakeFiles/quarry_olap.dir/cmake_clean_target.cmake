file(REMOVE_RECURSE
  "libquarry_olap.a"
)
