#include "xml/xml.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace quarry::xml {
namespace {

TEST(XmlParseTest, SimpleElement) {
  auto r = Parse("<root/>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->name(), "root");
  EXPECT_TRUE((*r)->children().empty());
}

TEST(XmlParseTest, DeclarationAndWhitespace) {
  auto r = Parse("<?xml version=\"1.0\"?>\n  <a>  </a>\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->name(), "a");
  EXPECT_EQ((*r)->text(), "");
}

TEST(XmlParseTest, Attributes) {
  auto r = Parse("<concept id=\"Part_p_nameATRIBUT\" kind='dim'/>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->AttrOr("id"), "Part_p_nameATRIBUT");
  EXPECT_EQ((*r)->AttrOr("kind"), "dim");
  EXPECT_EQ((*r)->AttrOr("missing", "x"), "x");
  EXPECT_TRUE((*r)->HasAttr("id"));
  EXPECT_FALSE((*r)->HasAttr("missing"));
}

TEST(XmlParseTest, NestedChildrenAndText) {
  const char* doc =
      "<design><metadata>m</metadata><edges><edge>"
      "<from>DATASTORE_Partsupp</from><to>EXTRACTION_Partsupp</to>"
      "<enabled>Y</enabled></edge></edges></design>";
  auto r = Parse(doc);
  ASSERT_TRUE(r.ok()) << r.status();
  const Element& root = **r;
  EXPECT_EQ(root.ChildText("metadata"), "m");
  const Element* edges = root.FirstChild("edges");
  ASSERT_NE(edges, nullptr);
  auto edge_list = edges->Children("edge");
  ASSERT_EQ(edge_list.size(), 1u);
  EXPECT_EQ(edge_list[0]->ChildText("from"), "DATASTORE_Partsupp");
  EXPECT_EQ(edge_list[0]->ChildText("enabled"), "Y");
}

TEST(XmlParseTest, EntityDecoding) {
  auto r = Parse("<f>a &lt; b &amp;&amp; c &gt; d &quot;q&quot; &apos;</f>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->text(), "a < b && c > d \"q\" '");
}

TEST(XmlParseTest, NumericCharacterReferences) {
  auto r = Parse("<f>&#65;&#x42;</f>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->text(), "AB");
}

TEST(XmlParseTest, CommentsAreSkipped) {
  auto r = Parse("<!-- head --><a><!-- inner --><b/><!-- tail --></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->children().size(), 1u);
}

TEST(XmlParseTest, CdataBecomesText) {
  auto r = Parse("<f><![CDATA[1 < 2 & so on]]></f>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->text(), "1 < 2 & so on");
}

TEST(XmlParseTest, DoctypeSkipped) {
  auto r = Parse("<!DOCTYPE cube SYSTEM \"xrq.dtd\"><cube/>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->name(), "cube");
}

TEST(XmlParseTest, ErrorOnMismatchedTags) {
  EXPECT_TRUE(Parse("<a><b></a></b>").status().IsParseError());
}

TEST(XmlParseTest, ErrorOnUnterminatedElement) {
  EXPECT_TRUE(Parse("<a><b>").status().IsParseError());
}

TEST(XmlParseTest, ErrorOnGarbage) {
  EXPECT_TRUE(Parse("plain text").status().IsParseError());
  EXPECT_TRUE(Parse("").status().IsParseError());
}

TEST(XmlParseTest, ErrorOnTrailingContent) {
  EXPECT_TRUE(Parse("<a/><b/>").status().IsParseError());
}

TEST(XmlParseTest, ErrorOnUnknownEntity) {
  EXPECT_TRUE(Parse("<a>&bogus;</a>").status().IsParseError());
}

TEST(XmlWriteTest, EscapesSpecialCharacters) {
  Element root("f");
  root.set_text("a<b&c>\"d'");
  root.SetAttr("x", "1<2");
  std::string out = Write(root);
  EXPECT_NE(out.find("a&lt;b&amp;c&gt;&quot;d&apos;"), std::string::npos);
  EXPECT_NE(out.find("x=\"1&lt;2\""), std::string::npos);
}

TEST(XmlWriteTest, PrettyPrintsNestedStructure) {
  Element root("MDschema");
  Element* facts = root.AddChild("facts");
  Element* fact = facts->AddChild("fact");
  fact->AddTextChild("name", "fact_table_revenue");
  std::string out = Write(root);
  EXPECT_NE(out.find("  <facts>"), std::string::npos);
  EXPECT_NE(out.find("<name>fact_table_revenue</name>"), std::string::npos);
}

TEST(XmlRoundtripTest, WriteThenParsePreservesTree) {
  Element root("design");
  root.SetAttr("version", "1.0");
  Element* nodes = root.AddChild("nodes");
  for (int i = 0; i < 5; ++i) {
    Element* node = nodes->AddChild("node");
    node->AddTextChild("name", "op_" + std::to_string(i));
    node->AddTextChild("type", i % 2 == 0 ? "Selection" : "Join");
    node->SetAttr("id", std::to_string(i));
  }
  std::string text = Write(root);
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(DeepEqual(root, **parsed));
}

TEST(XmlElementTest, CloneIsDeepAndEqual) {
  Element root("a");
  root.AddTextChild("b", "t");
  root.SetAttr("k", "v");
  auto copy = root.Clone();
  EXPECT_TRUE(DeepEqual(root, *copy));
  copy->FirstChild("b")->set_text("changed");
  EXPECT_FALSE(DeepEqual(root, *copy));
  EXPECT_EQ(root.ChildText("b"), "t");
}

TEST(XmlElementTest, SubtreeSizeCountsAllElements) {
  Element root("a");
  root.AddChild("b")->AddChild("c");
  root.AddChild("d");
  EXPECT_EQ(root.SubtreeSize(), 4u);
}

TEST(XmlElementTest, SetAttrOverwrites) {
  Element e("a");
  e.SetAttr("k", "1");
  e.SetAttr("k", "2");
  EXPECT_EQ(e.attributes().size(), 1u);
  EXPECT_EQ(e.AttrOr("k"), "2");
}

// Property: a randomly generated tree survives write->parse unchanged.
class XmlRoundtripProperty : public ::testing::TestWithParam<uint64_t> {};

void BuildRandomTree(quarry::Prng* rng, int depth, Element* node) {
  int attrs = static_cast<int>(rng->Uniform(0, 3));
  for (int i = 0; i < attrs; ++i) {
    node->SetAttr("a" + std::to_string(i), rng->Word(5) + "<&>\"'");
  }
  if (depth >= 4 || rng->Chance(0.3)) {
    node->set_text(rng->Word(8) + " & <text> " + rng->Word(3));
    return;
  }
  int kids = static_cast<int>(rng->Uniform(1, 4));
  for (int i = 0; i < kids; ++i) {
    BuildRandomTree(rng, depth + 1, node->AddChild("n" + rng->Word(4)));
  }
}

TEST_P(XmlRoundtripProperty, RandomTreeRoundtrips) {
  quarry::Prng rng(GetParam());
  Element root("root");
  BuildRandomTree(&rng, 0, &root);
  auto parsed = Parse(Write(root));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(DeepEqual(root, **parsed));
  // Compact output must round-trip too.
  auto parsed_compact = Parse(Write(root, /*pretty=*/false));
  ASSERT_TRUE(parsed_compact.ok()) << parsed_compact.status();
  EXPECT_TRUE(DeepEqual(root, **parsed_compact));
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundtripProperty,
                         ::testing::Range<uint64_t>(0, 25));

// ---- hostile-input hardening (ParseLimits) --------------------------------

TEST(XmlLimitsTest, BillionTagsBombIsRefusedNotOverflowed) {
  // 100k nested opens would blow the stack in a naive recursive parser;
  // the depth limit turns it into a structured error.
  constexpr int kDepth = 100000;
  std::string bomb;
  bomb.reserve(kDepth * 3);
  for (int i = 0; i < kDepth; ++i) bomb += "<a>";
  auto parsed = Parse(bomb);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsResourceExhausted()) << parsed.status();
  EXPECT_NE(parsed.status().message().find("depth"), std::string::npos);
}

TEST(XmlLimitsTest, DepthJustUnderTheLimitParses) {
  ParseLimits limits;
  limits.max_depth = 8;
  std::string doc;
  for (int i = 0; i < 8; ++i) doc += "<a>";
  for (int i = 0; i < 8; ++i) doc += "</a>";
  EXPECT_TRUE(Parse(doc, limits).ok());
  std::string too_deep = "<a>" + doc + "</a>";
  auto over = Parse(too_deep, limits);
  ASSERT_FALSE(over.ok());
  EXPECT_TRUE(over.status().IsResourceExhausted()) << over.status();
}

TEST(XmlLimitsTest, OversizedInputIsRefusedUpfront) {
  ParseLimits limits;
  limits.max_input_bytes = 16;
  auto parsed = Parse("<root>way past sixteen bytes</root>", limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsResourceExhausted()) << parsed.status();
  EXPECT_TRUE(Parse("<r/>", limits).ok());
}

TEST(XmlLimitsTest, ZeroDisablesALimit) {
  ParseLimits limits;
  limits.max_depth = 0;
  limits.max_input_bytes = 0;
  std::string doc;
  for (int i = 0; i < 300; ++i) doc += "<a>";
  for (int i = 0; i < 300; ++i) doc += "</a>";
  EXPECT_TRUE(Parse(doc, limits).ok());
}

TEST(XmlLimitsTest, TruncatedDocumentIsAParseError) {
  auto parsed = Parse("<root><child>text");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsParseError()) << parsed.status();
}

}  // namespace
}  // namespace quarry::xml
