#include "etl/cost_model.h"

#include <cmath>

namespace quarry::etl {

Result<FlowCostEstimate> EstimateCost(
    const Flow& flow, const std::map<std::string, int64_t>& table_rows,
    const CostModelConfig& config) {
  QUARRY_ASSIGN_OR_RETURN(auto order, flow.TopologicalOrder());
  FlowCostEstimate estimate;
  // Cardinality of the datastore each node's data descends from (a join
  // keeps its probe/left side's base): lets the FK-join estimate translate
  // build-side filtering into output reduction.
  std::map<std::string, double> base_rows;
  for (const std::string& id : order) {
    const Node& node = *flow.GetNode(id).value();
    double rows_in = 0;
    std::vector<double> input_rows;
    std::vector<std::string> preds = flow.Predecessors(id);
    for (const std::string& pred : preds) {
      double r = estimate.node_output_rows.at(pred);
      input_rows.push_back(r);
      rows_in += r;
    }
    double rows_out = 0;
    double base = preds.empty() ? 0 : base_rows.at(preds[0]);
    switch (node.type) {
      case OpType::kDatastore: {
        auto it = node.params.find("table");
        if (it != node.params.end()) {
          auto rit = table_rows.find(it->second);
          rows_out = rit == table_rows.end()
                         ? 0.0
                         : static_cast<double>(rit->second);
        }
        base = rows_out;
        break;
      }
      case OpType::kSelection:
        rows_out = rows_in * config.selection_selectivity;
        break;
      case OpType::kAggregation:
        rows_out = rows_in * config.aggregation_ratio;
        break;
      case OpType::kJoin: {
        double lhs = input_rows.size() > 0 ? input_rows[0] : 0;
        double rhs = input_rows.size() > 1 ? input_rows[1] : 0;
        double rhs_base = preds.size() > 1 ? base_rows.at(preds[1]) : 0;
        // FK-join estimate with the key side on the right; degrade to
        // max(l,r) when the right side's base is unknown/empty.
        rows_out = rhs_base > 0
                       ? lhs * (rhs / rhs_base) * config.join_fanout
                       : std::max(lhs, rhs) * config.join_fanout;
        base = preds.empty() ? 0 : base_rows.at(preds[0]);
        break;
      }
      case OpType::kUnion: {
        rows_out = rows_in;
        base = 0;
        for (const std::string& pred : preds) base += base_rows.at(pred);
        break;
      }
      case OpType::kLoader:
        rows_out = 0;
        break;
      default:
        rows_out = rows_in;  // Row-preserving unary operators.
    }
    base_rows[id] = base;
    auto wit = config.weights.find(node.type);
    double weight = wit == config.weights.end() ? 1.0 : wit->second;
    double cost = weight * rows_in;
    if (node.type == OpType::kSort) {
      cost *= std::log2(rows_in + 2.0);
    }
    estimate.total_cost += cost;
    estimate.rows_processed += rows_in;
    estimate.node_output_rows[id] = rows_out;
  }
  return estimate;
}

}  // namespace quarry::etl
