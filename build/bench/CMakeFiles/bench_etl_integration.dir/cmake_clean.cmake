file(REMOVE_RECURSE
  "CMakeFiles/bench_etl_integration.dir/bench_etl_integration.cc.o"
  "CMakeFiles/bench_etl_integration.dir/bench_etl_integration.cc.o.d"
  "bench_etl_integration"
  "bench_etl_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_etl_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
