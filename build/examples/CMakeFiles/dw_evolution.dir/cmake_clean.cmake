file(REMOVE_RECURSE
  "CMakeFiles/dw_evolution.dir/dw_evolution.cpp.o"
  "CMakeFiles/dw_evolution.dir/dw_evolution.cpp.o.d"
  "dw_evolution"
  "dw_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dw_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
