#include "etl/schema_inference.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"
#include "etl/expr.h"

namespace quarry::etl {

Result<std::vector<AggSpec>> ParseAggSpecs(const std::string& text) {
  std::vector<AggSpec> out;
  for (const std::string& raw : Split(text, ';')) {
    std::string_view item = Trim(raw);
    if (item.empty()) continue;
    size_t open = item.find('(');
    size_t close = item.find(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      return Status::ParseError("bad aggregate spec '" + std::string(item) +
                                "'");
    }
    AggSpec spec;
    spec.function = ToUpper(Trim(item.substr(0, open)));
    spec.input = std::string(Trim(item.substr(open + 1, close - open - 1)));
    std::string_view rest = Trim(item.substr(close + 1));
    if (rest.size() >= 3 && EqualsIgnoreCase(rest.substr(0, 2), "AS")) {
      spec.output = std::string(Trim(rest.substr(2)));
    } else if (rest.empty()) {
      spec.output = spec.function + "_" + spec.input;
    } else {
      return Status::ParseError("bad aggregate alias in '" +
                                std::string(item) + "'");
    }
    if (spec.function != "SUM" && spec.function != "AVG" &&
        spec.function != "MIN" && spec.function != "MAX" &&
        spec.function != "COUNT") {
      return Status::ParseError("unknown aggregate function '" +
                                spec.function + "'");
    }
    if (spec.input == "*" && spec.function != "COUNT") {
      return Status::ParseError("'*' is only valid for COUNT");
    }
    if (spec.input.empty() || spec.output.empty()) {
      return Status::ParseError("empty aggregate input/alias in '" +
                                std::string(item) + "'");
    }
    out.push_back(std::move(spec));
  }
  if (out.empty()) return Status::ParseError("empty aggregate list");
  return out;
}

std::string AggSpecsToString(const std::vector<AggSpec>& specs) {
  std::vector<std::string> parts;
  parts.reserve(specs.size());
  for (const AggSpec& s : specs) {
    parts.push_back(s.function + "(" + s.input + ") AS " + s.output);
  }
  return Join(parts, ";");
}

namespace {

Status RequireColumns(const std::vector<std::string>& have,
                      const std::set<std::string>& need,
                      const std::string& node_id) {
  for (const std::string& c : need) {
    if (std::find(have.begin(), have.end(), c) == have.end()) {
      return Status::ValidationError("node '" + node_id +
                                     "' references unknown column '" + c +
                                     "'");
    }
  }
  return Status::OK();
}

std::vector<std::string> SplitNonEmpty(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& part : Split(text, ',')) {
    std::string trimmed(Trim(part));
    if (!trimmed.empty()) out.push_back(std::move(trimmed));
  }
  return out;
}

}  // namespace

Result<std::map<std::string, std::vector<std::string>>> InferColumns(
    const Flow& flow, const TableColumns& sources) {
  QUARRY_ASSIGN_OR_RETURN(auto order, flow.TopologicalOrder());
  std::map<std::string, std::vector<std::string>> columns;
  for (const std::string& id : order) {
    const Node& node = *flow.GetNode(id).value();
    std::vector<std::string> inputs = flow.Predecessors(id);
    auto input_columns = [&](size_t i) -> const std::vector<std::string>& {
      return columns.at(inputs[i]);
    };
    switch (node.type) {
      case OpType::kDatastore: {
        auto it = sources.find(node.params.count("table")
                                   ? node.params.at("table")
                                   : "");
        if (it == sources.end()) {
          return Status::NotFound("source table for datastore '" + id + "'");
        }
        columns[id] = it->second;
        break;
      }
      case OpType::kExtraction:
      case OpType::kSelection:
      case OpType::kSort:
      case OpType::kLoader: {
        if (inputs.empty()) {
          return Status::ValidationError("node '" + id + "' has no input");
        }
        if (node.type == OpType::kSelection) {
          auto pred_it = node.params.find("predicate");
          if (pred_it == node.params.end()) {
            return Status::ValidationError("selection '" + id +
                                           "' lacks a predicate");
          }
          QUARRY_ASSIGN_OR_RETURN(Expr::Ptr pred, ParseExpr(pred_it->second));
          QUARRY_RETURN_NOT_OK(RequireColumns(input_columns(0),
                                              pred->ReferencedColumns(), id));
        }
        columns[id] = input_columns(0);
        break;
      }
      case OpType::kProjection: {
        std::vector<std::string> keep =
            SplitNonEmpty(node.params.count("columns")
                              ? node.params.at("columns")
                              : "");
        QUARRY_RETURN_NOT_OK(RequireColumns(
            input_columns(0),
            std::set<std::string>(keep.begin(), keep.end()), id));
        columns[id] = std::move(keep);
        break;
      }
      case OpType::kJoin: {
        if (inputs.size() != 2) {
          return Status::ValidationError("join '" + id +
                                         "' needs exactly 2 inputs");
        }
        std::vector<std::string> left_keys =
            SplitNonEmpty(node.params.count("left") ? node.params.at("left")
                                                    : "");
        std::vector<std::string> right_keys =
            SplitNonEmpty(node.params.count("right")
                              ? node.params.at("right")
                              : "");
        if (left_keys.empty() || left_keys.size() != right_keys.size()) {
          return Status::ValidationError("join '" + id +
                                         "' has mismatched key lists");
        }
        QUARRY_RETURN_NOT_OK(RequireColumns(
            input_columns(0),
            std::set<std::string>(left_keys.begin(), left_keys.end()), id));
        QUARRY_RETURN_NOT_OK(RequireColumns(
            input_columns(1),
            std::set<std::string>(right_keys.begin(), right_keys.end()), id));
        std::vector<std::string> merged = input_columns(0);
        for (const std::string& c : input_columns(1)) {
          if (std::find(merged.begin(), merged.end(), c) != merged.end()) {
            return Status::ValidationError("join '" + id +
                                           "' would duplicate column '" + c +
                                           "'");
          }
          merged.push_back(c);
        }
        columns[id] = std::move(merged);
        break;
      }
      case OpType::kAggregation: {
        std::vector<std::string> group =
            SplitNonEmpty(node.params.count("group") ? node.params.at("group")
                                                     : "");
        QUARRY_ASSIGN_OR_RETURN(
            auto specs, ParseAggSpecs(node.params.count("aggs")
                                          ? node.params.at("aggs")
                                          : ""));
        std::set<std::string> need(group.begin(), group.end());
        for (const AggSpec& s : specs) {
          if (s.input != "*") need.insert(s.input);
        }
        QUARRY_RETURN_NOT_OK(RequireColumns(input_columns(0), need, id));
        std::vector<std::string> out = group;
        for (const AggSpec& s : specs) out.push_back(s.output);
        columns[id] = std::move(out);
        break;
      }
      case OpType::kFunction: {
        auto col_it = node.params.find("column");
        auto expr_it = node.params.find("expr");
        if (col_it == node.params.end() || expr_it == node.params.end()) {
          return Status::ValidationError("function '" + id +
                                         "' needs column and expr params");
        }
        QUARRY_ASSIGN_OR_RETURN(Expr::Ptr expr, ParseExpr(expr_it->second));
        QUARRY_RETURN_NOT_OK(
            RequireColumns(input_columns(0), expr->ReferencedColumns(), id));
        std::vector<std::string> out = input_columns(0);
        if (std::find(out.begin(), out.end(), col_it->second) != out.end()) {
          return Status::ValidationError("function '" + id +
                                         "' overwrites existing column '" +
                                         col_it->second + "'");
        }
        out.push_back(col_it->second);
        columns[id] = std::move(out);
        break;
      }
      case OpType::kSurrogateKey: {
        auto col_it = node.params.find("column");
        if (col_it == node.params.end()) {
          return Status::ValidationError("surrogate key '" + id +
                                         "' needs a column param");
        }
        std::vector<std::string> keys =
            SplitNonEmpty(node.params.count("keys") ? node.params.at("keys")
                                                    : "");
        QUARRY_RETURN_NOT_OK(RequireColumns(
            input_columns(0), std::set<std::string>(keys.begin(), keys.end()),
            id));
        std::vector<std::string> out = input_columns(0);
        out.push_back(col_it->second);
        columns[id] = std::move(out);
        break;
      }
      case OpType::kUnion: {
        if (inputs.size() < 2) {
          return Status::ValidationError("union '" + id +
                                         "' needs >= 2 inputs");
        }
        const std::vector<std::string>& first = input_columns(0);
        for (size_t i = 1; i < inputs.size(); ++i) {
          if (input_columns(i) != first) {
            return Status::ValidationError("union '" + id +
                                           "' inputs have different schemas");
          }
        }
        columns[id] = first;
        break;
      }
    }
  }
  return columns;
}

}  // namespace quarry::etl
