// Experiment F2 (EXPERIMENTS.md): the Requirements Elicitor (paper Fig. 2 /
// §2.1) — suggestion quality on the TPC-H ontology and suggestion latency
// as the domain ontology grows (the demo claim is interactive assistance).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/prng.h"
#include "common/timer.h"
#include "ontology/tpch_ontology.h"
#include "requirements/elicitor.h"

namespace {

using quarry::ontology::Multiplicity;
using quarry::ontology::Ontology;
using quarry::req::Elicitor;

/// Synthetic ontology: a functional "galaxy" — `n` concepts, each with a
/// couple of numeric + descriptive properties, chained into rollup spines
/// with random extra to-one shortcuts (shape of a real enterprise model).
Ontology SyntheticOntology(int n, uint64_t seed) {
  quarry::Prng rng(seed);
  Ontology onto("synthetic_" + std::to_string(n));
  for (int i = 0; i < n; ++i) {
    std::string id = "C" + std::to_string(i);
    if (!onto.AddConcept(id).ok()) std::abort();
    (void)onto.AddDataProperty(id, "amount",
                               quarry::storage::DataType::kDouble);
    (void)onto.AddDataProperty(id, "name",
                               quarry::storage::DataType::kString);
  }
  // Spine: Ci -> C(i/2) (tree of rollups toward C0).
  for (int i = 1; i < n; ++i) {
    std::string from = "C" + std::to_string(i);
    std::string to = "C" + std::to_string(i / 2);
    (void)onto.AddAssociation("a" + std::to_string(i), from, to,
                              Multiplicity::kManyToOne);
  }
  // Shortcuts.
  for (int i = 0; i < n / 2; ++i) {
    int from = static_cast<int>(rng.Uniform(1, n - 1));
    int to = static_cast<int>(rng.Uniform(0, from - 1));
    (void)onto.AddAssociation("s" + std::to_string(i),
                              "C" + std::to_string(from),
                              "C" + std::to_string(to),
                              Multiplicity::kManyToOne);
  }
  return onto;
}

void PrintSeries() {
  std::printf("F2: Requirements Elicitor suggestions\n");
  // Part 1: the paper's example — focus Lineitem on the TPC-H ontology.
  Ontology tpch = quarry::ontology::BuildTpchOntology();
  Elicitor elicitor(&tpch);
  std::printf("  TPC-H, focus=Lineitem, suggested dimensions "
              "(paper: Supplier, Nation, Part...):\n");
  auto dims = elicitor.SuggestDimensions("Lineitem");
  if (!dims.ok()) std::abort();
  for (const auto& d : *dims) {
    std::printf("    %-10s hops=%d score=%.2f attrs=%zu\n",
                d.concept_id.c_str(), d.hops, d.score,
                d.descriptive_properties.size());
  }
  // Part 2: latency vs ontology size.
  std::printf("  latency vs ontology size (leaf focus, all suggestions):\n");
  std::printf("  %8s %10s %12s %12s\n", "concepts", "reachable",
              "dims_us", "facts_us");
  for (int n : {8, 32, 128, 512, 2048}) {
    Ontology onto = SyntheticOntology(n, 5);
    Elicitor e(&onto);
    std::string focus = "C" + std::to_string(n - 1);
    quarry::Timer t1;
    auto suggestions = e.SuggestDimensions(focus);
    double dims_us = t1.ElapsedMicros();
    if (!suggestions.ok()) std::abort();
    quarry::Timer t2;
    auto facts = e.SuggestFacts();
    double facts_us = t2.ElapsedMicros();
    std::printf("  %8d %10zu %12.1f %12.1f\n", n, suggestions->size(),
                dims_us, facts_us);
  }
  std::printf("\n");
}

void BM_SuggestDimensionsTpch(benchmark::State& state) {
  Ontology onto = quarry::ontology::BuildTpchOntology();
  Elicitor elicitor(&onto);
  for (auto _ : state) {
    auto dims = elicitor.SuggestDimensions("Lineitem");
    if (!dims.ok()) std::abort();
    benchmark::DoNotOptimize(dims->size());
  }
}
BENCHMARK(BM_SuggestDimensionsTpch);

void BM_SuggestFactsTpch(benchmark::State& state) {
  Ontology onto = quarry::ontology::BuildTpchOntology();
  Elicitor elicitor(&onto);
  for (auto _ : state) {
    auto facts = elicitor.SuggestFacts();
    benchmark::DoNotOptimize(facts.size());
  }
}
BENCHMARK(BM_SuggestFactsTpch);

void BM_SuggestDimensionsSynthetic(benchmark::State& state) {
  Ontology onto = SyntheticOntology(static_cast<int>(state.range(0)), 5);
  Elicitor elicitor(&onto);
  std::string focus = "C" + std::to_string(state.range(0) - 1);
  for (auto _ : state) {
    auto dims = elicitor.SuggestDimensions(focus);
    if (!dims.ok()) std::abort();
    benchmark::DoNotOptimize(dims->size());
  }
  state.counters["concepts"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SuggestDimensionsSynthetic)->Arg(32)->Arg(128)->Arg(512);

void BM_BuildRequirementValidated(benchmark::State& state) {
  Ontology onto = quarry::ontology::BuildTpchOntology();
  Elicitor elicitor(&onto);
  for (auto _ : state) {
    auto ir = elicitor.BuildRequirement(
        "ir", "r", "Lineitem",
        {{"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
          quarry::md::AggFunc::kSum}},
        {{"Part.p_name"}, {"Supplier.s_name"}},
        {{"Nation.n_name", "=", "SPAIN"}});
    if (!ir.ok()) std::abort();
    benchmark::DoNotOptimize(ir->aggregations.size());
  }
}
BENCHMARK(BM_BuildRequirementValidated);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
