#ifndef QUARRY_DEPLOYER_SQL_GENERATOR_H_
#define QUARRY_DEPLOYER_SQL_GENERATOR_H_

#include <string>

#include "common/result.h"
#include "mdschema/md_schema.h"
#include "ontology/mapping.h"
#include "storage/database.h"

namespace quarry::deployer {

/// \brief Generates the PostgreSQL-flavoured DDL deploying an MD schema as
/// a star/snowflake of relational tables (paper Fig. 3 left: "MD schema
/// (SQL, RDBMS)").
///
/// Layout:
///  * one table per dimension level: `dim_<LevelConcept>` with the
///    concept's natural key columns (NOT NULL, PRIMARY KEY) and the
///    level's attributes;
///  * one table per fact: the union of the referenced levels' key columns
///    (its base; NOT NULL, composite PRIMARY KEY) plus one column per
///    measure, with a FOREIGN KEY per dimension reference.
///
/// The source database provides the types of natural key columns (they are
/// source table columns, not ontology properties). Quarry's original demo
/// emitted surrogate-key columns; this implementation carries natural keys
/// instead — same shape, simpler lineage (see DESIGN.md).
Result<std::string> GenerateSql(const md::MdSchema& schema,
                                const ontology::SourceMapping& mapping,
                                const storage::Database& source,
                                const std::string& database_name = "demo");

}  // namespace quarry::deployer

#endif  // QUARRY_DEPLOYER_SQL_GENERATOR_H_
