#include "storage/table.h"

#include <functional>

namespace quarry::storage {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t MixString(uint64_t h, const std::string& s) {
  return Mix(h, std::hash<std::string>{}(s));
}

}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  pk_positions_ = schema_.PrimaryKeyIndexes();
}

std::vector<Chunk> Table::ScanChunks(int64_t chunk_size) const {
  return ChunkRows(rows_, schema_.columns().size(), chunk_size);
}

std::unique_ptr<Table> Table::Clone() const {
  auto copy = std::make_unique<Table>(schema_);
  copy->rows_ = rows_;
  copy->indexes_ = indexes_;
  copy->pk_set_ = pk_set_;
  copy->pk_positions_ = pk_positions_;
  return copy;
}

uint64_t Table::Fingerprint() const {
  uint64_t h = MixString(1469598103934665603ULL, schema_.name());
  for (const Column& c : schema_.columns()) {
    h = MixString(h, c.name);
    h = Mix(h, static_cast<uint64_t>(c.type));
    h = Mix(h, c.nullable ? 1 : 0);
  }
  for (const std::string& k : schema_.primary_key()) h = MixString(h, k);
  for (const ForeignKey& fk : schema_.foreign_keys()) {
    for (const std::string& c : fk.columns) h = MixString(h, c);
    h = MixString(h, fk.referenced_table);
    for (const std::string& c : fk.referenced_columns) h = MixString(h, c);
  }
  h = Mix(h, rows_.size());
  for (const Row& row : rows_) h = Mix(h, HashRow(row));
  return h;
}

Status Table::ValidateAndCoerce(Row* row) const {
  if (row->size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row->size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table '" + name() +
        "'");
  }
  for (size_t i = 0; i < row->size(); ++i) {
    const Column& col = schema_.columns()[i];
    Value& cell = (*row)[i];
    if (cell.is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL in NOT NULL column '" +
                                       col.name + "' of '" + name() + "'");
      }
      continue;
    }
    QUARRY_ASSIGN_OR_RETURN(DataType actual, cell.type());
    if (actual == col.type) continue;
    // Lossless numeric widening / narrowing between INT and DOUBLE.
    if ((actual == DataType::kInt64 && col.type == DataType::kDouble) ||
        (actual == DataType::kDouble && col.type == DataType::kInt64)) {
      QUARRY_ASSIGN_OR_RETURN(cell, cell.CastTo(col.type));
      continue;
    }
    return Status::InvalidArgument(
        std::string("type mismatch in column '") + col.name + "' of '" +
        name() + "': expected " + DataTypeToString(col.type) + ", got " +
        DataTypeToString(actual));
  }
  return Status::OK();
}

Row Table::ExtractKey(const Row& row,
                      const std::vector<size_t>& positions) const {
  Row key;
  key.reserve(positions.size());
  for (size_t p : positions) key.push_back(row[p]);
  return key;
}

Status Table::Insert(Row row) {
  QUARRY_RETURN_NOT_OK(ValidateAndCoerce(&row));
  if (!pk_positions_.empty()) {
    Row key = ExtractKey(row, pk_positions_);
    auto [it, inserted] = pk_set_.try_emplace(std::move(key));
    if (!inserted && !it->second.empty()) {
      return Status::AlreadyExists("duplicate primary key in table '" +
                                   name() + "'");
    }
    it->second.push_back(rows_.size());
  }
  for (Index& index : indexes_) {
    index.map[ExtractKey(row, index.positions)].push_back(rows_.size());
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::InsertAll(std::vector<Row> rows) {
  for (Row& row : rows) {
    QUARRY_RETURN_NOT_OK(Insert(std::move(row)));
  }
  return Status::OK();
}

Status Table::AddColumn(Column column) {
  if (!column.nullable) {
    return Status::InvalidArgument(
        "cannot add NOT NULL column '" + column.name + "' to table '" +
        name() + "' (existing rows would violate it)");
  }
  QUARRY_RETURN_NOT_OK(schema_.AddColumn(std::move(column)));
  for (Row& row : rows_) {
    row.push_back(Value::Null());
  }
  return Status::OK();
}

Status Table::CreateIndex(const std::vector<std::string>& columns) {
  Index index;
  index.columns = columns;
  for (const std::string& c : columns) {
    auto pos = schema_.ColumnIndex(c);
    if (!pos.has_value()) {
      return Status::NotFound("index column '" + c + "' in table '" + name() +
                              "'");
    }
    index.positions.push_back(*pos);
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    index.map[ExtractKey(rows_[i], index.positions)].push_back(i);
  }
  // Replace an existing index over the same columns.
  for (Index& existing : indexes_) {
    if (existing.columns == columns) {
      existing = std::move(index);
      return Status::OK();
    }
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

bool Table::HasIndex(const std::vector<std::string>& columns) const {
  for (const Index& index : indexes_) {
    if (index.columns == columns) return true;
  }
  return false;
}

Result<std::vector<size_t>> Table::IndexLookup(
    const std::vector<std::string>& columns, const Row& key) const {
  for (const Index& index : indexes_) {
    if (index.columns != columns) continue;
    auto it = index.map.find(key);
    if (it == index.map.end()) return std::vector<size_t>{};
    return it->second;
  }
  return Status::NotFound("no index over the requested columns in table '" +
                          name() + "'");
}

std::vector<size_t> Table::ScanEquals(const std::string& column,
                                      const Value& value) const {
  std::vector<size_t> out;
  auto pos = schema_.ColumnIndex(column);
  if (!pos.has_value()) return out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i][*pos].SameAs(value)) out.push_back(i);
  }
  return out;
}

Status Table::SetCell(size_t row, size_t column, Value value) {
  if (row >= rows_.size()) {
    return Status::InvalidArgument("row index out of range in table '" +
                                   name() + "'");
  }
  if (column >= schema_.num_columns()) {
    return Status::InvalidArgument("column index out of range in table '" +
                                   name() + "'");
  }
  for (size_t p : pk_positions_) {
    if (p == column) {
      return Status::InvalidArgument("cannot update primary-key column in '" +
                                     name() + "'");
    }
  }
  for (const Index& index : indexes_) {
    for (size_t p : index.positions) {
      if (p == column) {
        return Status::InvalidArgument("cannot update indexed column in '" +
                                       name() + "'");
      }
    }
  }
  const Column& col = schema_.columns()[column];
  if (value.is_null()) {
    if (!col.nullable) {
      return Status::InvalidArgument("NULL in NOT NULL column '" + col.name +
                                     "' of '" + name() + "'");
    }
  } else {
    QUARRY_ASSIGN_OR_RETURN(DataType actual, value.type());
    if (actual != col.type) {
      if ((actual == DataType::kInt64 && col.type == DataType::kDouble) ||
          (actual == DataType::kDouble && col.type == DataType::kInt64)) {
        QUARRY_ASSIGN_OR_RETURN(value, value.CastTo(col.type));
      } else {
        return Status::InvalidArgument("type mismatch updating column '" +
                                       col.name + "' of '" + name() + "'");
      }
    }
  }
  rows_[row][column] = std::move(value);
  return Status::OK();
}

void Table::Truncate() {
  rows_.clear();
  pk_set_.clear();
  for (Index& index : indexes_) index.map.clear();
}

}  // namespace quarry::storage
