#include "integrator/etl_integrator.h"

#include <algorithm>

#include "etl/equivalence.h"

namespace quarry::integrator {

using etl::Edge;
using etl::Flow;
using etl::Node;
using etl::OpType;

Result<std::map<std::string, std::string>> EtlIntegrator::ComputeSignatures(
    const Flow& flow) {
  QUARRY_ASSIGN_OR_RETURN(auto order, flow.TopologicalOrder());
  std::map<std::string, std::string> signatures;
  for (const std::string& id : order) {
    const Node& node = *flow.GetNode(id).value();
    std::vector<std::string> input_sigs;
    for (const std::string& pred : flow.Predecessors(id)) {
      input_sigs.push_back(signatures.at(pred));
    }
    // Union inputs are order-insensitive; everything else (notably Join's
    // left/right) keeps edge order.
    if (node.type == OpType::kUnion) {
      std::sort(input_sigs.begin(), input_sigs.end());
    }
    std::string sig = node.Signature() + "{";
    for (const std::string& s : input_sigs) sig += s + ",";
    sig += "}";
    signatures[id] = std::move(sig);
  }
  return signatures;
}

Result<EtlIntegrationReport> EtlIntegrator::Integrate(
    Flow* unified, const Flow& partial) const {
  EtlIntegrationReport report;

  // Stage 1: align the partial flow via equivalence rules.
  Flow aligned = partial.Clone();
  if (options_.align_with_equivalence_rules) {
    QUARRY_ASSIGN_OR_RETURN(int rewrites,
                            etl::Normalize(&aligned, source_columns_));
    report.rewrites_applied = rewrites;
  }

  // Cost of running the flows separately (before integration).
  QUARRY_ASSIGN_OR_RETURN(auto unified_cost_before,
                          etl::EstimateCost(*unified, table_rows_,
                                            cost_config_));
  QUARRY_ASSIGN_OR_RETURN(auto partial_cost,
                          etl::EstimateCost(aligned, table_rows_,
                                            cost_config_));
  report.cost_separate =
      unified_cost_before.total_cost + partial_cost.total_cost;

  // Stage 2: signatures of the existing unified flow.
  Flow draft = unified->Clone();
  QUARRY_ASSIGN_OR_RETURN(auto unified_sigs, ComputeSignatures(draft));
  std::map<std::string, std::string> sig_to_id;
  for (const auto& [id, sig] : unified_sigs) sig_to_id[sig] = id;

  // Stage 3: walk the partial flow in topological order, mapping each node
  // either onto an existing node (same computation) or a fresh copy.
  QUARRY_ASSIGN_OR_RETURN(auto order, aligned.TopologicalOrder());
  std::map<std::string, std::string> mapping;  // partial id -> draft id
  std::map<std::string, std::string> partial_sigs;
  for (const std::string& id : order) {
    const Node& node = *aligned.GetNode(id).value();
    std::vector<std::string> input_sigs;
    std::vector<std::string> mapped_inputs;
    for (const std::string& pred : aligned.Predecessors(id)) {
      input_sigs.push_back(partial_sigs.at(pred));
      mapped_inputs.push_back(mapping.at(pred));
    }
    if (node.type == OpType::kUnion) {
      std::sort(input_sigs.begin(), input_sigs.end());
    }
    std::string sig = node.Signature() + "{";
    for (const std::string& s : input_sigs) sig += s + ",";
    sig += "}";
    partial_sigs[id] = sig;

    auto hit = sig_to_id.find(sig);
    if (hit != sig_to_id.end()) {
      // Same operator over the same inputs: reuse.
      Node* reused = *draft.GetMutableNode(hit->second);
      reused->requirement_ids.insert(node.requirement_ids.begin(),
                                     node.requirement_ids.end());
      mapping[id] = hit->second;
      ++report.nodes_reused;
      continue;
    }
    // Graft a copy, uniquifying the id if a different node holds it.
    Node copy = node;
    std::string new_id = node.id;
    int suffix = 2;
    while (draft.HasNode(new_id)) {
      new_id = node.id + "#" + std::to_string(suffix++);
    }
    copy.id = new_id;
    QUARRY_RETURN_NOT_OK(draft.AddNode(std::move(copy)));
    for (const std::string& input : mapped_inputs) {
      QUARRY_RETURN_NOT_OK(draft.AddEdge(input, new_id));
    }
    mapping[id] = new_id;
    sig_to_id[sig] = new_id;
    ++report.nodes_added;
  }

  QUARRY_RETURN_NOT_OK(draft.Validate().WithContext("integrated ETL flow"));
  QUARRY_ASSIGN_OR_RETURN(
      auto unified_cost_after,
      etl::EstimateCost(draft, table_rows_, cost_config_));
  report.cost_unified = unified_cost_after.total_cost;
  *unified = std::move(draft);
  return report;
}

}  // namespace quarry::integrator
