#ifndef QUARRY_COMMON_EXEC_CONTEXT_H_
#define QUARRY_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"

namespace quarry {

/// \brief Scheduling class of a request (docs/ROBUSTNESS.md §11).
///
/// Lower numeric value = more urgent. The admission controller prefers
/// higher-priority waiters (with aging, so low priority is starvation-free),
/// and the tenant registry stamps a tenant's configured class onto every
/// context it admits.
enum class Priority : uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

inline const char* PriorityName(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "unknown";
}

/// \brief Cooperative cancellation handle (docs/ROBUSTNESS.md §7).
///
/// A token is a cheap, copyable handle onto shared cancellation state.
/// Cancel() may be called from any thread; cancelled() is a few relaxed
/// atomic loads, so long-running loops can poll it per batch. Tokens link
/// parent→child: a child created with Child() observes its own cancellation
/// AND every ancestor's, so cancelling a request token cancels all the work
/// it fanned out, while cancelling one child leaves its siblings running.
class CancellationToken {
 public:
  /// A fresh root token (not cancelled until Cancel()).
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// A child linked under `parent`: cancelled when either itself or any
  /// ancestor is cancelled.
  static CancellationToken Child(const CancellationToken& parent) {
    CancellationToken child;
    child.state_->parent = parent.state_;
    return child;
  }

  /// Cancels this token (and, transitively, every descendant). Idempotent;
  /// the first non-empty reason wins. The first Cancel() also fires every
  /// callback registered via AddCancelCallback, synchronously, on the
  /// cancelling thread.
  void Cancel(std::string reason = "cancelled") {
    State* s = state_.get();
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->reason.empty()) s->reason = std::move(reason);
    }
    if (s->cancelled.exchange(true, std::memory_order_acq_rel)) return;
    // Invocation holds cb_mu, so RemoveCancelCallback doubles as a barrier:
    // once it returns, no callback is (or will be) running. Callbacks must
    // not touch this token's registration API re-entrantly.
    std::lock_guard<std::mutex> lock(s->cb_mu);
    for (auto& [id, fn] : s->callbacks) fn();
  }

  /// Registers `fn` to run when this token or any ancestor is cancelled;
  /// returns a handle for RemoveCancelCallback. If the chain is already
  /// cancelled, `fn` runs immediately on the calling thread. Callbacks must
  /// be idempotent (a callback registered on a chain may observe the
  /// already-cancelled fast path AND a concurrent Cancel()) and must not
  /// register/remove callbacks or Cancel() from inside the callback.
  uint64_t AddCancelCallback(std::function<void()> fn) const {
    static std::atomic<uint64_t> next_id{0};
    const uint64_t id = next_id.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire_now = false;
    for (State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_acquire)) {
        fire_now = true;
        break;
      }
      std::lock_guard<std::mutex> lock(s->cb_mu);
      // Re-check under cb_mu: Cancel() flips the flag before draining
      // callbacks, so either we see the flag here or Cancel() sees our entry.
      if (s->cancelled.load(std::memory_order_acquire)) {
        fire_now = true;
        break;
      }
      s->callbacks.emplace(id, fn);
    }
    if (fire_now) fn();
    return id;
  }

  /// Unregisters a callback. Blocks until any in-flight invocation (from a
  /// concurrent Cancel) has finished, so the callback's captures may be
  /// destroyed safely once this returns.
  void RemoveCancelCallback(uint64_t id) const {
    for (State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      std::lock_guard<std::mutex> lock(s->cb_mu);
      s->callbacks.erase(id);
    }
  }

  /// True once this token or any ancestor was cancelled.
  bool cancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  /// The reason of the nearest cancelled token in the chain ("" when not
  /// cancelled).
  std::string reason() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(s->mu);
        return s->reason;
      }
    }
    return "";
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    mutable std::mutex mu;
    std::string reason;  ///< Guarded by mu; readable once cancelled is set.
    std::shared_ptr<State> parent;  ///< Immutable after construction.
    // Cancel notification hooks. cb_mu is distinct from mu (and is never
    // held while mu is taken) so a callback may block on an external lock —
    // e.g. the admission controller's — without deadlocking readers that
    // call cancelled()/reason() from under that same lock.
    mutable std::mutex cb_mu;
    std::map<uint64_t, std::function<void()>> callbacks;  ///< By cb_mu.
  };
  std::shared_ptr<State> state_;
};

/// \brief An absolute point in time a request must finish by.
///
/// Default-constructed deadlines are unbounded. Deadlines are wall-agnostic
/// (steady clock), so they are immune to clock adjustments.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : when_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::time_point when) { return Deadline(when); }
  static Deadline After(double millis) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(millis)));
  }

  bool unbounded() const { return when_ == Clock::time_point::max(); }
  bool expired() const { return !unbounded() && Clock::now() >= when_; }
  Clock::time_point when() const { return when_; }

  /// Milliseconds until expiry: +inf when unbounded, clamped at 0 once
  /// expired.
  double remaining_millis() const {
    if (unbounded()) return std::numeric_limits<double>::infinity();
    double ms = std::chrono::duration<double, std::milli>(when_ - Clock::now())
                    .count();
    return ms > 0 ? ms : 0.0;
  }

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}
  Clock::time_point when_;
};

/// \brief Per-request resource budgets enforced cooperatively by the ETL
/// executor. 0 = unlimited. A SODA-style business-user query that explodes
/// into a huge flow trips one of these instead of wedging the process.
struct ResourceBudget {
  int64_t max_rows_materialized = 0;  ///< Total operator output rows.
  int64_t max_intermediate_bytes = 0; ///< Approximate materialized bytes.
  int64_t max_flow_nodes = 0;         ///< Nodes in a flow handed to Run().
};

/// Mints a process-unique, monotonically increasing request id (1-based).
/// Every Quarry::Submit* / SubmitQuery entry point stamps one onto its
/// ExecContext so spans, metrics and the event log can attribute work to
/// the request that caused it (docs/OBSERVABILITY.md).
inline uint64_t MintRequestId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// \brief Everything a long-running request carries through the pipeline:
/// cancellation token, deadline and resource budgets, plus the running
/// consumption counters (docs/ROBUSTNESS.md §7).
///
/// All components accept a nullable `ExecContext*`; nullptr means "no
/// limits" and costs nothing on the hot path. Check() is the cancellation
/// point primitive: it returns kCancelled / kDeadlineExceeded with the
/// location baked into the message. Charge counters are atomic, so one
/// context can be shared by concurrent stages of the same request.
class ExecContext {
 public:
  ExecContext() = default;
  explicit ExecContext(Deadline deadline) : deadline_(deadline) {}
  ExecContext(CancellationToken token, Deadline deadline,
              ResourceBudget budget = {})
      : token_(std::move(token)), deadline_(deadline), budget_(budget) {}

  const CancellationToken& token() const { return token_; }
  CancellationToken& token() { return token_; }
  const Deadline& deadline() const { return deadline_; }
  const ResourceBudget& budget() const { return budget_; }

  /// The cancellation point: OK, or kCancelled / kDeadlineExceeded naming
  /// `where` (e.g. "etl.run node 'JOIN_1'").
  Status Check(const std::string& where) const {
    if (token_.cancelled()) {
      std::string reason = token_.reason();
      return Status::Cancelled("request cancelled at " + where +
                               (reason.empty() ? "" : " (" + reason + ")"));
    }
    if (deadline_.expired()) {
      return Status::DeadlineExceeded("deadline exceeded at " + where);
    }
    return Status::OK();
  }

  /// Charges `rows` operator-output rows against the budget.
  Status ChargeRows(int64_t rows, const std::string& where) const {
    int64_t total =
        rows_materialized_.fetch_add(rows, std::memory_order_relaxed) + rows;
    if (budget_.max_rows_materialized > 0 &&
        total > budget_.max_rows_materialized) {
      return Status::ResourceExhausted(
          "row budget exhausted at " + where + ": materialized " +
          std::to_string(total) + " rows, budget " +
          std::to_string(budget_.max_rows_materialized));
    }
    return Status::OK();
  }

  /// Charges approximately `bytes` of materialized intermediates.
  Status ChargeBytes(int64_t bytes, const std::string& where) const {
    int64_t total =
        intermediate_bytes_.fetch_add(bytes, std::memory_order_relaxed) +
        bytes;
    if (budget_.max_intermediate_bytes > 0 &&
        total > budget_.max_intermediate_bytes) {
      return Status::ResourceExhausted(
          "byte budget exhausted at " + where + ": ~" +
          std::to_string(total) + " bytes materialized, budget " +
          std::to_string(budget_.max_intermediate_bytes));
    }
    return Status::OK();
  }

  /// The request id attributed to this context (0 = none assigned yet).
  uint64_t request_id() const {
    return request_id_.load(std::memory_order_relaxed);
  }

  /// Stamps `id` as this context's request id (entry points that minted an
  /// id up front).
  void set_request_id(uint64_t id) const {
    request_id_.store(id, std::memory_order_relaxed);
  }

  /// Returns the request id, minting one on first call. Idempotent and
  /// thread-safe: concurrent callers agree on a single id (the CAS loser
  /// reads the winner's), so a caller-provided context keeps one identity
  /// across every stage it flows through.
  uint64_t EnsureRequestId() const {
    uint64_t id = request_id_.load(std::memory_order_relaxed);
    if (id != 0) return id;
    uint64_t minted = MintRequestId();
    if (request_id_.compare_exchange_strong(id, minted,
                                            std::memory_order_relaxed)) {
      return minted;
    }
    return id;  // Lost the race; `id` holds the winner's value.
  }

  /// The tenant this request runs on behalf of ("" = untenanted; the tenant
  /// registry passes those through ungated). Set once, before the context is
  /// handed to a Submit* entry point; not synchronized against concurrent
  /// readers mid-request.
  const std::string& tenant() const { return tenant_; }
  void set_tenant(std::string tenant) { tenant_ = std::move(tenant); }

  /// Scheduling class used by priority-aware admission. Defaults to
  /// kNormal; the tenant registry stamps the tenant's configured class on
  /// admit (hence the const setter, mirroring set_request_id).
  Priority priority() const {
    return static_cast<Priority>(priority_.load(std::memory_order_relaxed));
  }
  void set_priority(Priority p) const {
    priority_.store(static_cast<uint8_t>(p), std::memory_order_relaxed);
  }

  int64_t rows_materialized() const {
    return rows_materialized_.load(std::memory_order_relaxed);
  }
  int64_t intermediate_bytes() const {
    return intermediate_bytes_.load(std::memory_order_relaxed);
  }

  /// Zeroes the consumption counters (a Resume after a budget trip wants a
  /// fresh allowance, not an instantly re-tripping one).
  void ResetCharges() {
    rows_materialized_.store(0, std::memory_order_relaxed);
    intermediate_bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  CancellationToken token_;
  Deadline deadline_;
  ResourceBudget budget_;
  std::string tenant_;
  mutable std::atomic<uint8_t> priority_{
      static_cast<uint8_t>(Priority::kNormal)};
  mutable std::atomic<int64_t> rows_materialized_{0};
  mutable std::atomic<int64_t> intermediate_bytes_{0};
  mutable std::atomic<uint64_t> request_id_{0};
};

/// True for the lifecycle error classes that must never be retried: the
/// request itself is over (cancelled / out of time / out of budget), so
/// another attempt can only waste resources.
inline bool IsLifecycleError(const Status& status) {
  return status.IsCancelled() || status.IsDeadlineExceeded() ||
         status.IsResourceExhausted() || status.IsOverloaded();
}

/// Checks a nullable context; OK when ctx is nullptr.
inline Status CheckContext(const ExecContext* ctx, const std::string& where) {
  return ctx == nullptr ? Status::OK() : ctx->Check(where);
}

/// The request id of a nullable context (0 when ctx is nullptr or no id was
/// assigned) — the span-attribute convenience used across the pipeline.
inline uint64_t RequestId(const ExecContext* ctx) {
  return ctx == nullptr ? 0 : ctx->request_id();
}

/// The tenant of a nullable context ("" when ctx is nullptr or untenanted).
inline const std::string& TenantId(const ExecContext* ctx) {
  static const std::string kEmpty;
  return ctx == nullptr ? kEmpty : ctx->tenant();
}

/// The priority of a nullable context (kNormal when ctx is nullptr).
inline Priority RequestPriority(const ExecContext* ctx) {
  return ctx == nullptr ? Priority::kNormal : ctx->priority();
}

}  // namespace quarry

#endif  // QUARRY_COMMON_EXEC_CONTEXT_H_
