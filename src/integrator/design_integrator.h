#ifndef QUARRY_INTEGRATOR_DESIGN_INTEGRATOR_H_
#define QUARRY_INTEGRATOR_DESIGN_INTEGRATOR_H_

#include <map>
#include <string>

#include "common/result.h"
#include "integrator/etl_integrator.h"
#include "integrator/md_integrator.h"
#include "interpreter/interpreter.h"
#include "requirements/requirement.h"

namespace quarry::integrator {

/// Combined outcome of integrating one requirement's partial designs.
struct IntegrationOutcome {
  MdIntegrationReport md;
  EtlIntegrationReport etl;
};

/// \brief The Design Integrator component (paper Fig. 1): maintains the
/// unified MD schema and unified ETL process, incrementally consolidating
/// each new requirement's partial designs via the MD Schema Integrator and
/// the ETL Process Integrator, and guaranteeing soundness + satisfiability
/// of every requirement processed so far.
///
/// Also implements the paper's "accommodating a DW design to changes"
/// scenario: removing a requirement prunes all design elements that served
/// only that requirement (via the per-element trace sets), then re-checks
/// soundness and the satisfiability of the remaining requirements.
class DesignIntegrator {
 public:
  /// All pointers must outlive the integrator.
  DesignIntegrator(const ontology::Ontology* onto,
                   etl::TableColumns source_columns,
                   std::map<std::string, int64_t> table_rows,
                   MdIntegrationOptions md_options = {},
                   etl::CostModelConfig cost_config = {})
      : onto_(onto),
        md_integrator_(onto, md_options),
        etl_integrator_(std::move(source_columns), std::move(table_rows),
                        cost_config),
        schema_("unified"),
        flow_("unified") {}

  const md::MdSchema& schema() const { return schema_; }
  const etl::Flow& flow() const { return flow_; }
  const std::map<std::string, req::InformationRequirement>& requirements()
      const {
    return requirements_;
  }

  /// Integrates the partial design of `ir`; on success the unified design
  /// satisfies `ir` and all previously added requirements. `ctx` (nullable)
  /// is checked before each integration stage — MD integrate, ETL
  /// integrate, verification — and the round rolls back cleanly when the
  /// request is cancelled or out of time between stages.
  Result<IntegrationOutcome> AddRequirement(
      const req::InformationRequirement& ir,
      const interpreter::PartialDesign& partial,
      const ExecContext* ctx = nullptr);

  /// Removes a requirement and prunes design elements serving only it.
  /// Fails (leaving the design untouched) if a remaining requirement would
  /// become unsatisfied.
  Status RemoveRequirement(const std::string& ir_id);

  /// Replaces a changed requirement: removal + re-integration.
  Result<IntegrationOutcome> ChangeRequirement(
      const req::InformationRequirement& ir,
      const interpreter::PartialDesign& partial,
      const ExecContext* ctx = nullptr);

  /// Re-verifies soundness and every requirement's satisfiability.
  Status VerifyAll() const;

 private:
  const ontology::Ontology* onto_;
  MdIntegrator md_integrator_;
  EtlIntegrator etl_integrator_;
  md::MdSchema schema_;
  etl::Flow flow_;
  std::map<std::string, req::InformationRequirement> requirements_;
};

}  // namespace quarry::integrator

#endif  // QUARRY_INTEGRATOR_DESIGN_INTEGRATOR_H_
