#ifndef QUARRY_COMMON_TIMER_H_
#define QUARRY_COMMON_TIMER_H_

#include <chrono>

namespace quarry {

/// \brief Monotonic stopwatch for reporting stage timings.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace quarry

#endif  // QUARRY_COMMON_TIMER_H_
