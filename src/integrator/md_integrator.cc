#include "integrator/md_integrator.h"

#include <algorithm>
#include <map>
#include <set>

#include "mdschema/validator.h"

namespace quarry::integrator {

using md::Dimension;
using md::DimensionRef;
using md::Fact;
using md::Level;
using md::LevelAttribute;
using md::MdSchema;
using md::Measure;

namespace {

/// Level concepts referenced by a fact, resolved against `schema`.
Result<std::set<std::string>> BaseConcepts(const MdSchema& schema,
                                           const Fact& fact) {
  std::set<std::string> out;
  for (const DimensionRef& ref : fact.dimension_refs) {
    QUARRY_ASSIGN_OR_RETURN(const Dimension* dim,
                            schema.GetDimension(ref.dimension));
    const Level* level = dim->FindLevel(ref.level);
    if (level == nullptr) {
      return Status::ValidationError("fact '" + fact.name +
                                     "' references missing level '" +
                                     ref.level + "'");
    }
    out.insert(level->concept_id);
  }
  return out;
}

void MergeAttributes(Level* into, const Level& from, int* attributes_added) {
  for (const LevelAttribute& attr : from.attributes) {
    bool present = std::any_of(
        into->attributes.begin(), into->attributes.end(),
        [&](const LevelAttribute& e) { return e.name == attr.name; });
    if (!present) {
      into->attributes.push_back(attr);
      ++*attributes_added;
    }
  }
  into->requirement_ids.insert(from.requirement_ids.begin(),
                               from.requirement_ids.end());
}

}  // namespace

Result<MdIntegrationReport> MdIntegrator::Integrate(
    MdSchema* unified, const MdSchema& partial) const {
  MdIntegrationReport report;
  // Naive union complexity = sum of both schemas untouched.
  report.complexity_naive_union =
      md::StructuralComplexity(*unified, options_.weights).score +
      md::StructuralComplexity(partial, options_.weights).score;
  // Work on a copy so failures leave `unified` untouched.
  MdSchema draft = *unified;
  QUARRY_RETURN_NOT_OK(IntegrateInto(&draft, partial, &report));
  if (options_.allow_hierarchy_merge) {
    QUARRY_RETURN_NOT_OK(FoldHierarchies(&draft, &report));
  }
  QUARRY_RETURN_NOT_OK(md::CheckSound(draft, onto_));
  report.complexity_after =
      md::StructuralComplexity(draft, options_.weights).score;
  *unified = std::move(draft);
  return report;
}

Result<std::vector<MdAlternative>> MdIntegrator::ProposeAlternatives(
    const MdSchema& unified, const MdSchema& partial) const {
  std::vector<MdAlternative> out;

  // Alternative 1: full integration with folding.
  {
    MdSchema draft = unified;
    MdIntegrationReport report;
    Status s = IntegrateInto(&draft, partial, &report);
    if (s.ok()) s = FoldHierarchies(&draft, &report);
    if (s.ok() && md::CheckSound(draft, onto_).ok()) {
      MdAlternative alt;
      alt.description = "integrate (conform dimensions, merge same-grain "
                        "facts, fold hierarchies)";
      alt.complexity = md::StructuralComplexity(draft, options_.weights).score;
      alt.schema = std::move(draft);
      out.push_back(std::move(alt));
    }
  }

  // Alternative 2: integration without hierarchy folding.
  {
    MdSchema draft = unified;
    MdIntegrationReport report;
    Status s = IntegrateInto(&draft, partial, &report);
    if (s.ok() && md::CheckSound(draft, onto_).ok()) {
      MdAlternative alt;
      alt.description = "integrate, keep dimensions flat (no folding)";
      alt.complexity = md::StructuralComplexity(draft, options_.weights).score;
      alt.schema = std::move(draft);
      out.push_back(std::move(alt));
    }
  }

  // Alternative 3: side-by-side union, renaming collisions.
  {
    MdSchema draft = unified;
    bool ok = true;
    std::map<std::string, std::string> renamed_dims;
    for (const Dimension& pd : partial.dimensions()) {
      Dimension copy = pd;
      while (draft.GetDimension(copy.name).ok()) copy.name += "_2";
      renamed_dims[pd.name] = copy.name;
      if (!draft.AddDimension(std::move(copy)).ok()) {
        ok = false;
        break;
      }
    }
    for (const Fact& pf : partial.facts()) {
      if (!ok) break;
      Fact copy = pf;
      while (draft.GetFact(copy.name).ok()) copy.name += "_2";
      for (DimensionRef& ref : copy.dimension_refs) {
        auto it = renamed_dims.find(ref.dimension);
        if (it != renamed_dims.end()) ref.dimension = it->second;
      }
      if (!draft.AddFact(std::move(copy)).ok()) ok = false;
    }
    if (ok && md::CheckSound(draft, onto_).ok()) {
      MdAlternative alt;
      alt.description = "append side by side (no matching, collisions "
                        "renamed)";
      alt.complexity = md::StructuralComplexity(draft, options_.weights).score;
      alt.schema = std::move(draft);
      out.push_back(std::move(alt));
    }
  }

  if (out.empty()) {
    return Status::Unsatisfiable(
        "no sound integration alternative for partial schema '" +
        partial.name() + "'");
  }
  std::sort(out.begin(), out.end(),
            [](const MdAlternative& a, const MdAlternative& b) {
              return a.complexity < b.complexity;
            });
  return out;
}

Status MdIntegrator::IntegrateInto(MdSchema* unified, const MdSchema& partial,
                                   MdIntegrationReport* report) const {
  // ---- stage 1 & 2 prep: match dimensions ---------------------------------
  // partial dimension name -> unified dimension name (after conforming).
  std::map<std::string, std::string> dim_mapping;
  for (const Dimension& pd : partial.dimensions()) {
    if (pd.levels.empty()) {
      return Status::ValidationError("partial dimension '" + pd.name +
                                     "' has no levels");
    }
    // A unified dimension conforms when it has a level over the partial
    // dimension's base concept.
    Dimension* match = nullptr;
    for (const Dimension& ud : unified->dimensions()) {
      for (const Level& level : ud.levels) {
        if (level.concept_id == pd.levels[0].concept_id) {
          match = *unified->GetMutableDimension(ud.name);
          break;
        }
      }
      if (match != nullptr) break;
    }
    if (match == nullptr) {
      QUARRY_RETURN_NOT_OK(unified->AddDimension(pd));
      dim_mapping[pd.name] = pd.name;
      ++report->dimensions_added;
      report->decisions.push_back("added dimension '" + pd.name + "'");
      continue;
    }
    // Conform: merge level attributes; append genuinely new upper levels.
    for (const Level& pl : pd.levels) {
      Level* existing = nullptr;
      for (Level& ul : match->levels) {
        if (ul.concept_id == pl.concept_id) {
          existing = &ul;
          break;
        }
      }
      if (existing != nullptr) {
        MergeAttributes(existing, pl, &report->attributes_added);
        continue;
      }
      // Appendable only if it extends the hierarchy functionally.
      const Level& top = match->levels.back();
      auto path = onto_->FindFunctionalPath(top.concept_id, pl.concept_id);
      if (!path.ok()) {
        return Status::ValidationError(
            "cannot conform dimension '" + pd.name + "': level '" + pl.name +
            "' does not roll up from '" + top.name + "'");
      }
      match->levels.push_back(pl);
    }
    match->requirement_ids.insert(pd.requirement_ids.begin(),
                                  pd.requirement_ids.end());
    dim_mapping[pd.name] = match->name;
    ++report->dimensions_conformed;
    report->decisions.push_back("conformed dimension '" + pd.name +
                                "' into '" + match->name + "'");
  }

  // ---- stage 1: match facts ------------------------------------------------
  for (const Fact& pf_original : partial.facts()) {
    Fact pf = pf_original;
    for (DimensionRef& ref : pf.dimension_refs) {
      auto it = dim_mapping.find(ref.dimension);
      if (it == dim_mapping.end()) {
        return Status::ValidationError("fact '" + pf.name +
                                       "' references unknown dimension '" +
                                       ref.dimension + "'");
      }
      ref.dimension = it->second;
    }
    QUARRY_ASSIGN_OR_RETURN(auto pf_base, BaseConcepts(*unified, pf));

    Fact* match = nullptr;
    for (const Fact& uf : unified->facts()) {
      if (uf.concept_id != pf.concept_id) continue;
      QUARRY_ASSIGN_OR_RETURN(auto uf_base, BaseConcepts(*unified, uf));
      if (uf_base == pf_base) {
        match = *unified->GetMutableFact(uf.name);
        break;
      }
    }
    if (match == nullptr) {
      QUARRY_RETURN_NOT_OK(unified->AddFact(std::move(pf)));
      ++report->facts_added;
      report->fact_mapping[pf_original.name] = pf_original.name;
      report->decisions.push_back("added fact '" + pf_original.name + "'");
      continue;
    }
    // Same focus and same grain: merge measures.
    for (const Measure& pm : pf.measures) {
      Measure* existing = nullptr;
      for (Measure& um : match->measures) {
        if (um.name == pm.name) {
          existing = &um;
          break;
        }
      }
      if (existing == nullptr) {
        match->measures.push_back(pm);
        ++report->measures_added;
        continue;
      }
      if (existing->expression != pm.expression ||
          existing->aggregation != pm.aggregation) {
        return Status::ValidationError(
            "measure '" + pm.name + "' of fact '" + match->name +
            "' conflicts with an existing definition; rename the measure in "
            "the new requirement");
      }
      existing->requirement_ids.insert(pm.requirement_ids.begin(),
                                       pm.requirement_ids.end());
    }
    match->requirement_ids.insert(pf.requirement_ids.begin(),
                                  pf.requirement_ids.end());
    ++report->facts_merged;
    report->fact_mapping[pf_original.name] = match->name;
    report->decisions.push_back("merged fact '" + pf_original.name +
                                "' into '" + match->name + "'");
  }
  return Status::OK();
}

Status MdIntegrator::FoldHierarchies(MdSchema* unified,
                                     MdIntegrationReport* report) const {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Dimension& candidate : unified->dimensions()) {
      if (candidate.levels.size() != 1) continue;
      const std::string target_concept = candidate.levels[0].concept_id;
      for (const Dimension& host : unified->dimensions()) {
        if (host.name == candidate.name || host.levels.empty()) continue;
        // The host's top level must roll up to the candidate's concept.
        bool already_present = false;
        for (const Level& level : host.levels) {
          if (level.concept_id == target_concept) already_present = true;
        }
        if (already_present) continue;
        auto path = onto_->FindFunctionalPath(host.levels.back().concept_id,
                                              target_concept);
        if (!path.ok()) continue;
        // (A fact referencing both dimensions is fine: after the fold it
        // references the host at two levels, which the validator accepts
        // because the lower level determines the upper.)
        // Cost model: fold only when it lowers structural complexity.
        MdSchema trial = *unified;
        Dimension* trial_host = *trial.GetMutableDimension(host.name);
        Dimension* trial_candidate =
            *trial.GetMutableDimension(candidate.name);
        trial_host->levels.push_back(trial_candidate->levels[0]);
        trial_host->requirement_ids.insert(
            trial_candidate->requirement_ids.begin(),
            trial_candidate->requirement_ids.end());
        std::string candidate_level = trial_candidate->levels[0].name;
        std::string candidate_name = candidate.name;
        QUARRY_RETURN_NOT_OK(trial.RemoveDimension(candidate_name));
        for (const Fact& fact : trial.facts()) {
          Fact* mutable_fact = *trial.GetMutableFact(fact.name);
          for (DimensionRef& ref : mutable_fact->dimension_refs) {
            if (ref.dimension == candidate_name) {
              ref.dimension = host.name;
              ref.level = candidate_level;
            }
          }
        }
        double before =
            md::StructuralComplexity(*unified, options_.weights).score;
        double after = md::StructuralComplexity(trial, options_.weights).score;
        if (after >= before) continue;
        if (!md::CheckSound(trial, onto_).ok()) continue;
        report->decisions.push_back(
            "folded dimension '" + candidate_name + "' into hierarchy of '" +
            host.name + "' (complexity " + std::to_string(before) + " -> " +
            std::to_string(after) + ")");
        ++report->dimensions_folded;
        *unified = std::move(trial);
        changed = true;
        break;
      }
      if (changed) break;
    }
  }
  return Status::OK();
}

}  // namespace quarry::integrator
