#ifndef QUARRY_ETL_EXEC_EXECUTOR_H_
#define QUARRY_ETL_EXEC_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "etl/flow.h"
#include "storage/database.h"

namespace quarry::etl {

/// An intermediate operator result: named columns over rows.
struct Dataset {
  std::vector<std::string> columns;
  std::vector<storage::Row> rows;
};

/// Per-node execution statistics.
struct NodeStats {
  std::string node_id;
  OpType type = OpType::kExtraction;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  double millis = 0;
};

/// \brief Outcome of executing a flow.
///
/// `rows_processed` (the sum of every operator's input cardinality) is the
/// engine-level measure behind the paper's "overall execution time" quality
/// factor: the ETL Process Integrator's cost model predicts it, and the
/// benches compare predicted vs. measured.
struct ExecutionReport {
  double total_millis = 0;
  int64_t rows_processed = 0;
  std::vector<NodeStats> nodes;
  std::map<std::string, int64_t> loaded;  ///< target table -> rows written
};

/// \brief Executes logical ETL flows (xLM) — the repo's stand-in for
/// Pentaho PDI (see DESIGN.md §2).
///
/// Operators are evaluated in topological order, materializing one Dataset
/// per node. Loader semantics: the target table is created on first use
/// (column types inferred from the data) unless it already exists; target
/// columns the dataset lacks load as NULL; when the Loader declares `keys`,
/// a row whose key already exists *merges* — its non-NULL values fill the
/// existing row's NULL cells. This makes dimension and fact loads
/// idempotent and lets several partial loaders of one integrated flow
/// converge on the same table (e.g. two requirements contributing different
/// measures of a merged fact).
class Executor {
 public:
  /// `source` provides Datastore tables; `target` receives Loader output.
  /// Both pointers must outlive the executor. They may alias.
  Executor(const storage::Database* source, storage::Database* target)
      : source_(source), target_(target) {}

  /// Runs the flow; fails fast on the first operator error.
  Result<ExecutionReport> Run(const Flow& flow);

 private:
  Result<Dataset> RunNode(const Node& node, const Flow& flow,
                          const std::map<std::string, Dataset>& done,
                          ExecutionReport* report);

  const storage::Database* source_;
  storage::Database* target_;
};

}  // namespace quarry::etl

#endif  // QUARRY_ETL_EXEC_EXECUTOR_H_
