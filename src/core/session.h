#ifndef QUARRY_CORE_SESSION_H_
#define QUARRY_CORE_SESSION_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/quarry.h"

namespace quarry::core {

/// \brief Design-session persistence over the metadata repository.
///
/// The paper's Communication & Metadata layer "serves as a repository for
/// the metadata that are produced and used during the DW design lifecycle"
/// — which is exactly what makes a design session restorable: the domain
/// ontology, the source schema mappings and every accepted xRQ requirement
/// are sufficient to rebuild the unified design deterministically.

/// Dumps the instance's metadata repository (ontology, mappings, xRQ
/// stream, partial + unified designs) as JSON collections under `dir`
/// (which must exist).
Status SaveSession(const Quarry& quarry, const std::string& dir);

/// Restores a session saved with SaveSession: re-creates the Quarry over
/// `source` from the stored ontology + mappings, then re-interprets and
/// re-integrates the stored requirements in their original order. The
/// resulting unified design is byte-identical to the saved one (the whole
/// pipeline is deterministic), which Load verifies against the stored
/// unified xMD.
Result<std::unique_ptr<Quarry>> LoadSession(const std::string& dir,
                                            const storage::Database* source,
                                            QuarryConfig config = {});

}  // namespace quarry::core

#endif  // QUARRY_CORE_SESSION_H_
