# Empty dependencies file for quarry_docstore.
# This may be replaced when dependencies are built.
