# Empty dependencies file for quarry_core.
# This may be replaced when dependencies are built.
