// Experiment S2a (EXPERIMENTS.md): the MD quality factor — "structural
// design complexity as an example quality factor for output MD schemata"
// (paper §3, scenario 2).
//
// For a stream of N requirements with low/high dimension overlap, we
// compare the structural complexity of the integrated unified schema
// against the naive side-by-side union of the partial schemas, plus the
// element counts behind the score.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "integrator/md_integrator.h"
#include "interpreter/interpreter.h"
#include "mdschema/complexity.h"
#include "mdschema/validator.h"
#include "ontology/tpch_ontology.h"
#include "requirements/workload.h"

namespace {

using quarry::integrator::MdIntegrator;
using quarry::interpreter::Interpreter;
using quarry::md::MdSchema;

struct Env {
  quarry::ontology::Ontology onto = quarry::ontology::BuildTpchOntology();
  quarry::ontology::SourceMapping mapping =
      quarry::ontology::BuildTpchMappings();
};

Env& SharedEnv() {
  static Env* env = new Env();
  return *env;
}

std::vector<MdSchema> InterpretWorkload(int n, double overlap,
                                        uint64_t seed) {
  Env& env = SharedEnv();
  Interpreter interpreter(&env.onto, &env.mapping);
  quarry::req::WorkloadConfig config;
  config.num_requirements = n;
  config.overlap = overlap;
  config.seed = seed;
  std::vector<MdSchema> schemas;
  for (const auto& ir : quarry::req::GenerateTpchWorkload(config)) {
    auto design = interpreter.Interpret(ir);
    if (!design.ok()) std::abort();
    schemas.push_back(std::move(design->schema));
  }
  return schemas;
}

void PrintSeries() {
  Env& env = SharedEnv();
  std::printf(
      "S2a: structural complexity, integrated vs naive union of partial "
      "schemas\n");
  std::printf("%7s %4s | %10s %10s %7s | %6s %6s %7s %7s | %6s\n", "overlap",
              "N", "cx_naive", "cx_integr", "ratio", "facts", "dims",
              "folded", "merged", "sound");
  for (double overlap : {0.2, 0.8}) {
    for (int n : {2, 4, 6, 8, 10}) {
      std::vector<MdSchema> schemas = InterpretWorkload(n, overlap, 7);
      MdIntegrator integrator(&env.onto);
      MdSchema unified("unified");
      double naive = 0;
      int folded = 0, merged = 0;
      for (const MdSchema& partial : schemas) {
        naive += quarry::md::StructuralComplexity(partial).score;
        auto report = integrator.Integrate(&unified, partial);
        if (!report.ok()) std::abort();
        folded += report->dimensions_folded;
        merged += report->facts_merged;
      }
      double integrated = quarry::md::StructuralComplexity(unified).score;
      bool sound = quarry::md::CheckSound(unified, &env.onto).ok();
      std::printf(
          "%7.1f %4d | %10.1f %10.1f %6.2fx | %6zu %6zu %7d %7d | %6s\n",
          overlap, n, naive, integrated, naive / integrated,
          unified.facts().size(), unified.dimensions().size(), folded,
          merged, sound ? "yes" : "NO");
    }
  }
  std::printf("\n");
}

void BM_MdIntegrateStream(benchmark::State& state) {
  Env& env = SharedEnv();
  std::vector<MdSchema> schemas =
      InterpretWorkload(static_cast<int>(state.range(0)), 0.8, 11);
  for (auto _ : state) {
    MdIntegrator integrator(&env.onto);
    MdSchema unified("unified");
    for (const MdSchema& partial : schemas) {
      auto report = integrator.Integrate(&unified, partial);
      if (!report.ok()) std::abort();
      benchmark::DoNotOptimize(report->complexity_after);
    }
  }
}
BENCHMARK(BM_MdIntegrateStream)->Arg(2)->Arg(5)->Arg(10);

void BM_StructuralComplexity(benchmark::State& state) {
  Env& env = SharedEnv();
  std::vector<MdSchema> schemas = InterpretWorkload(10, 0.5, 3);
  MdIntegrator integrator(&env.onto);
  MdSchema unified("unified");
  for (const MdSchema& partial : schemas) {
    if (!integrator.Integrate(&unified, partial).ok()) std::abort();
  }
  for (auto _ : state) {
    auto report = quarry::md::StructuralComplexity(unified);
    benchmark::DoNotOptimize(report.score);
  }
}
BENCHMARK(BM_StructuralComplexity);

void BM_SoundnessValidation(benchmark::State& state) {
  Env& env = SharedEnv();
  std::vector<MdSchema> schemas = InterpretWorkload(10, 0.5, 3);
  MdIntegrator integrator(&env.onto);
  MdSchema unified("unified");
  for (const MdSchema& partial : schemas) {
    if (!integrator.Integrate(&unified, partial).ok()) std::abort();
  }
  for (auto _ : state) {
    auto violations = quarry::md::Validate(unified, &env.onto);
    benchmark::DoNotOptimize(violations.size());
  }
}
BENCHMARK(BM_SoundnessValidation);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
