#ifndef QUARRY_DATAGEN_RETAIL_H_
#define QUARRY_DATAGEN_RETAIL_H_

#include <cstdint>

#include "common/result.h"
#include "ontology/mapping.h"
#include "ontology/ontology.h"
#include "storage/database.h"

namespace quarry::datagen {

/// \brief A second demo domain — a retail chain — proving the pipeline is
/// domain-independent (the paper demos "different examples of synthetic
/// and real-world domains, covering a variety of underlying data
/// sources").
///
/// Tables: region, store (rolls up to region), product, customer, sale
/// (the natural fact source, referencing store/product/customer).
struct RetailConfig {
  double scale_factor = 0.01;  ///< sale ~ 100k·sf rows.
  uint64_t seed = 7;
};

/// Creates and fills the five retail tables in `db`.
Status PopulateRetail(storage::Database* db, const RetailConfig& config);

/// The retail domain ontology (concepts Sale, Product, Store, Customer,
/// Region with the natural to-one associations).
ontology::Ontology BuildRetailOntology();

/// Source schema mappings grounding BuildRetailOntology() in the tables of
/// PopulateRetail().
ontology::SourceMapping BuildRetailMappings();

}  // namespace quarry::datagen

#endif  // QUARRY_DATAGEN_RETAIL_H_
