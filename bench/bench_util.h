#ifndef QUARRY_BENCH_BENCH_UTIL_H_
#define QUARRY_BENCH_BENCH_UTIL_H_

// Shared helpers for the bench binaries. The BENCH_*.json records in the
// repo root are only comparable when they say what box they were taken on,
// so every benchmark attaches the host context (core count + load average
// at run time) to its counters: a "regression" measured on a loaded or
// smaller machine can then be recognised as such from the JSON alone.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <thread>
#include <vector>

namespace quarry::bench {

/// 1-minute load average from /proc/loadavg; -1 when the file is missing
/// or unreadable (non-Linux hosts).
inline double LoadAverage1Min() {
  std::ifstream in("/proc/loadavg");
  double load = -1.0;
  if (!in || !(in >> load)) return -1.0;
  return load;
}

/// Attaches the host context to a benchmark's counters so it lands in the
/// console and JSON output next to the numbers it qualifies.
inline void RecordHostInfo(benchmark::State& state) {
  state.counters["host_hw_concurrency"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["host_load_avg_1min"] = LoadAverage1Min();
}

/// Percentile over raw per-op samples (nearest-rank, q in [0, 1]).
/// Sorts a copy; meant for end-of-run reporting, not the hot path.
inline int64_t PercentileNs(std::vector<int64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  auto rank = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (rank >= samples.size()) rank = samples.size() - 1;
  return samples[rank];
}

}  // namespace quarry::bench

#endif  // QUARRY_BENCH_BENCH_UTIL_H_
