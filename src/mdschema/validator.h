#ifndef QUARRY_MDSCHEMA_VALIDATOR_H_
#define QUARRY_MDSCHEMA_VALIDATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mdschema/md_schema.h"
#include "ontology/ontology.h"

namespace quarry::md {

/// Kinds of MD integrity violations (the paper's "soundness", refs [6][9]).
enum class ViolationKind {
  kStructural,        ///< Dangling refs, duplicate names, empty facts.
  kSummarizability,   ///< Non-functional fact->level or level->level rollup.
  kAggregation,       ///< Aggregation incompatible with measure additivity.
  kBase,              ///< A fact's base does not determine its instances.
};

const char* ViolationKindToString(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::string element;  ///< Offending fact/dimension/measure name.
  std::string message;
};

/// \brief Checks a schema against the MD integrity constraints:
///
///  1. *Structure*: unique names; every DimensionRef resolves to an existing
///     dimension level; every fact has >= 1 measure and >= 1 dimension ref;
///     dimensions have >= 1 level and no repeated level names/concepts.
///  2. *Summarizability*: against the ontology, the path from the fact's
///     concept to each referenced level's concept must be functional
///     (to-one), and each adjacent level pair of every hierarchy must roll
///     up functionally base->top (strict hierarchies).
///  3. *Aggregation compatibility*: non-additive measures must not default
///     to SUM.
///
/// Passing a null ontology skips the multiplicity checks (pure structural
/// validation).
std::vector<Violation> Validate(const MdSchema& schema,
                                const ontology::Ontology* onto);

/// Convenience wrapper: OK when Validate returns no violations, otherwise a
/// ValidationError naming the first few.
Status CheckSound(const MdSchema& schema, const ontology::Ontology* onto);

}  // namespace quarry::md

#endif  // QUARRY_MDSCHEMA_VALIDATOR_H_
