file(REMOVE_RECURSE
  "CMakeFiles/quarry_deployer.dir/deployer/deployer.cc.o"
  "CMakeFiles/quarry_deployer.dir/deployer/deployer.cc.o.d"
  "CMakeFiles/quarry_deployer.dir/deployer/pdi_generator.cc.o"
  "CMakeFiles/quarry_deployer.dir/deployer/pdi_generator.cc.o.d"
  "CMakeFiles/quarry_deployer.dir/deployer/sql_generator.cc.o"
  "CMakeFiles/quarry_deployer.dir/deployer/sql_generator.cc.o.d"
  "libquarry_deployer.a"
  "libquarry_deployer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_deployer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
