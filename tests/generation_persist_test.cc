// Durable warehouse generations (docs/ROBUSTNESS.md §10): segment
// round-trips, the two-phase commit, cold-start recovery with torn-publish
// discard and corruption quarantine, the persistence edge cases around
// pins and deferred retires, and the kill-and-recover crash matrix over
// every storage.generation.persist.* / recover.* fault site.

#include "storage/generation_persist.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "storage/csv.h"
#include "storage/generation_store.h"

namespace quarry {
namespace {

namespace fs = std::filesystem;

using fault::Injector;
using fault::SiteConfig;
using storage::Column;
using storage::DataType;
using storage::Database;
using storage::ForeignKey;
using storage::GenerationStore;
using storage::Table;
using storage::TableSchema;
using storage::Value;

std::string TempDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A two-table star (dimension + fact with an FK onto it) covering every
/// value type, NULLs included; `marker` varies the content so fingerprints
/// distinguish generations.
std::unique_ptr<Database> TinyDb(int64_t marker) {
  auto db = std::make_unique<Database>("w");
  TableSchema dim("dim");
  EXPECT_TRUE(dim.AddColumn({"id", DataType::kInt64, false}).ok());
  EXPECT_TRUE(dim.AddColumn({"label", DataType::kString, true}).ok());
  EXPECT_TRUE(dim.AddColumn({"since", DataType::kDate, true}).ok());
  EXPECT_TRUE(dim.AddColumn({"active", DataType::kBool, true}).ok());
  EXPECT_TRUE(dim.SetPrimaryKey({"id"}).ok());
  Table* dim_table = *db->CreateTable(std::move(dim));
  EXPECT_TRUE(dim_table
                  ->InsertAll({{Value::Int(1), Value::String("alpha"),
                                Value::DateYmd(2015, 3, 27), Value::Bool(true)},
                               {Value::Int(2), Value::Null(), Value::Null(),
                                Value::Bool(false)}})
                  .ok());
  TableSchema fact("fact");
  EXPECT_TRUE(fact.AddColumn({"fid", DataType::kInt64, false}).ok());
  EXPECT_TRUE(fact.AddColumn({"did", DataType::kInt64, false}).ok());
  EXPECT_TRUE(fact.AddColumn({"v", DataType::kDouble, true}).ok());
  EXPECT_TRUE(fact.SetPrimaryKey({"fid"}).ok());
  EXPECT_TRUE(fact.AddForeignKey({{"did"}, "dim", {"id"}}).ok());
  Table* fact_table = *db->CreateTable(std::move(fact));
  EXPECT_TRUE(fact_table
                  ->InsertAll({{Value::Int(10), Value::Int(1),
                                Value::Double(static_cast<double>(marker))},
                               {Value::Int(11), Value::Int(2), Value::Null()}})
                  .ok());
  return db;
}

/// Decoder used by the store-level tests: the annex round-trips as a plain
/// string (core uses an xMD document; the store does not care).
GenerationStore::AnnexDecoder StringDecoder() {
  return [](const std::string& bytes) -> Result<std::shared_ptr<const void>> {
    return std::shared_ptr<const void>(
        std::make_shared<std::string>(bytes));
  };
}

void CorruptOneByte(const fs::path& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.get(byte);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(byte ^ 0x5a));
}

class GenerationPersistTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Injector::Instance().Disable();
    Injector::Instance().ClearConfigs();
  }
};

// ---------------------------------------------------------------------------
// Segment format.

TEST_F(GenerationPersistTest, SegmentRoundtripsSchemaRowsAndFingerprint) {
  auto db = TinyDb(7);
  const Table* fact = *db->GetTable("fact");
  std::string bytes = storage::persist::SerializeTable(*fact);
  // Deterministic: equal state, equal bytes.
  EXPECT_EQ(bytes, storage::persist::SerializeTable(*fact));

  auto restored = storage::persist::DeserializeTable(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->Fingerprint(), fact->Fingerprint());
  EXPECT_EQ((*restored)->num_rows(), fact->num_rows());
  const TableSchema& schema = (*restored)->schema();
  EXPECT_EQ(schema.name(), "fact");
  ASSERT_EQ(schema.foreign_keys().size(), 1u);
  EXPECT_EQ(schema.foreign_keys()[0].referenced_table, "dim");
  const std::vector<std::string> want_pk = {"fid"};
  EXPECT_EQ(schema.primary_key(), want_pk);
  // NULL survived as NULL, not as a default.
  EXPECT_TRUE((*restored)->rows()[1][2].is_null());
}

TEST_F(GenerationPersistTest, SegmentCorruptionReadsAsParseError) {
  auto db = TinyDb(1);
  std::string bytes = storage::persist::SerializeTable(**db->GetTable("dim"));
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x40;
  EXPECT_TRUE(
      storage::persist::DeserializeTable(flipped).status().IsParseError());
  EXPECT_TRUE(storage::persist::DeserializeTable(bytes.substr(0, 10))
                  .status()
                  .IsParseError());
  EXPECT_TRUE(storage::persist::DeserializeTable(
                  bytes.substr(0, bytes.size() - 3))
                  .status()
                  .IsParseError());
}

// ---------------------------------------------------------------------------
// Durable publish + cold-start recovery.

TEST_F(GenerationPersistTest, DurablePublishesSurviveColdStart) {
  std::string dir = TempDir("quarry_genpersist_coldstart");
  uint64_t fp3 = 0;
  {
    GenerationStore store("w");
    ASSERT_TRUE(store.EnableDurability(dir, StringDecoder()).ok());
    EXPECT_TRUE(store.durable());
    EXPECT_EQ(store.durable_dir(), dir);
    for (int64_t i = 1; i <= 3; ++i) {
      auto published = store.Publish(TinyDb(i), nullptr,
                                     "annex-" + std::to_string(i));
      ASSERT_TRUE(published.ok()) << published.status().ToString();
    }
    fp3 = *store.PublishedFingerprint(3);
    // Retention on disk mirrors retention in memory: current + previous.
    EXPECT_TRUE(fs::exists(dir + "/gen-2/MANIFEST.json"));
    EXPECT_TRUE(fs::exists(dir + "/gen-3/MANIFEST.json"));
    EXPECT_FALSE(fs::exists(dir + "/gen-1"));
  }
  // "Restart": a fresh store over the same directory.
  GenerationStore recovered("w");
  storage::persist::GenerationRecoveryStats stats;
  ASSERT_TRUE(recovered.EnableDurability(dir, StringDecoder(), &stats).ok());
  EXPECT_EQ(stats.recovered_generation, 3u);
  EXPECT_EQ(stats.recovered_fingerprint, fp3);
  EXPECT_EQ(stats.tables_loaded, 2u);
  EXPECT_EQ(stats.rows_loaded, 4u);
  EXPECT_EQ(stats.older_removed, 1u);  // gen-2 was superseded.
  EXPECT_TRUE(stats.annex_recovered);
  EXPECT_TRUE(stats.quarantined.empty());

  EXPECT_EQ(recovered.current_generation(), 3u);
  auto pin = recovered.Acquire();
  ASSERT_TRUE(pin.ok());
  // Byte-identical content, annex included.
  EXPECT_EQ(pin->db().Fingerprint(), fp3);
  EXPECT_EQ(*recovered.PublishedFingerprint(3), fp3);
  auto annex = std::static_pointer_cast<const std::string>(pin->annex());
  ASSERT_NE(annex, nullptr);
  EXPECT_EQ(*annex, "annex-3");
  // Ids resume above everything ever seen on disk.
  auto next = recovered.Publish(TinyDb(4));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 4u);
}

TEST_F(GenerationPersistTest, RecoveryWithZeroIntactGenerationsServesEmpty) {
  std::string dir = TempDir("quarry_genpersist_empty");
  // A torn publish (no manifest) is all the directory holds.
  fs::create_directories(dir + "/gen-5");
  std::ofstream(dir + "/gen-5/t0000.seg") << "half a segme";

  GenerationStore store("w");
  storage::persist::GenerationRecoveryStats stats;
  ASSERT_TRUE(store.EnableDurability(dir, StringDecoder(), &stats).ok());
  EXPECT_EQ(stats.recovered_generation, 0u);
  EXPECT_EQ(stats.torn_discarded, 1u);
  EXPECT_FALSE(fs::exists(dir + "/gen-5"));
  // Serve empty, don't crash: reads report NotFound, stats work.
  EXPECT_FALSE(store.has_generation());
  EXPECT_TRUE(store.Acquire().status().IsNotFound());
  EXPECT_EQ(store.stats().live_generations, 0);
  // And the store heals forward: the discarded id is never reused.
  auto published = store.Publish(TinyDb(1), nullptr, "a");
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 6u);
  EXPECT_TRUE(fs::exists(dir + "/gen-6/MANIFEST.json"));
}

TEST_F(GenerationPersistTest, TornPublishKeepsServingAndIsDiscardedOnRecovery) {
  std::string dir = TempDir("quarry_genpersist_torn");
  GenerationStore store("w");
  ASSERT_TRUE(store.EnableDurability(dir, StringDecoder()).ok());
  ASSERT_TRUE(store.Publish(TinyDb(1), nullptr, "a").ok());
  const uint64_t fp1 = *store.PublishedFingerprint(1);

  // The commit write fails: everything before the manifest landed.
  Injector::Instance().Enable(23);
  Injector::Instance().Configure("storage.generation.persist.manifest",
                                 {0.0, /*trigger_on_hit=*/1, 0, -1});
  EXPECT_FALSE(store.Publish(TinyDb(2), nullptr, "b").ok());
  Injector::Instance().Disable();
  Injector::Instance().ClearConfigs();

  // The torn directory exists but carries no commit record...
  EXPECT_TRUE(fs::exists(dir + "/gen-2"));
  EXPECT_FALSE(fs::exists(dir + "/gen-2/MANIFEST.json"));
  // ...the store keeps serving generation 1, and a retried publish reuses
  // the id cleanly (ids stay dense).
  EXPECT_EQ(store.current_generation(), 1u);
  EXPECT_EQ(store.stats().publish_failures, 1u);
  auto retry = store.Publish(TinyDb(2), nullptr, "b");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, 2u);
  EXPECT_TRUE(fs::exists(dir + "/gen-2/MANIFEST.json"));

  // A torn dir left by a crash (no retry) is discarded by recovery.
  fs::create_directories(dir + "/gen-3");
  std::ofstream(dir + "/gen-3/t0000.seg") << "torn";
  GenerationStore recovered("w");
  storage::persist::GenerationRecoveryStats stats;
  ASSERT_TRUE(recovered.EnableDurability(dir, StringDecoder(), &stats).ok());
  EXPECT_EQ(stats.torn_discarded, 1u);
  EXPECT_EQ(stats.recovered_generation, 2u);
  EXPECT_EQ(recovered.Acquire()->db().Fingerprint(),
            *store.PublishedFingerprint(2));
  EXPECT_NE(recovered.Acquire()->db().Fingerprint(), fp1);
}

TEST_F(GenerationPersistTest, CorruptSegmentQuarantinesAndFallsBack) {
  std::string dir = TempDir("quarry_genpersist_corrupt");
  uint64_t fp1 = 0;
  {
    GenerationStore store("w");
    ASSERT_TRUE(store.EnableDurability(dir, StringDecoder()).ok());
    ASSERT_TRUE(store.Publish(TinyDb(1), nullptr, "a").ok());
    ASSERT_TRUE(store.Publish(TinyDb(2), nullptr, "b").ok());
    fp1 = *store.PublishedFingerprint(1);
  }
  // Bit rot inside a committed segment of the newest generation.
  CorruptOneByte(dir + "/gen-2/t0000.seg", 64);

  GenerationStore recovered("w");
  storage::persist::GenerationRecoveryStats stats;
  ASSERT_TRUE(recovered.EnableDurability(dir, StringDecoder(), &stats).ok());
  // The corrupt generation is set aside for forensics, not deleted...
  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_EQ(stats.quarantined[0].id, 2u);
  EXPECT_TRUE(fs::exists(dir + "/gen-2.quarantined"));
  EXPECT_FALSE(fs::exists(dir + "/gen-2"));
  // ...and recovery falls back to the next-newest intact generation.
  EXPECT_EQ(stats.recovered_generation, 1u);
  EXPECT_EQ(recovered.Acquire()->db().Fingerprint(), fp1);
  // Ids never collide with the quarantined generation.
  auto next = recovered.Publish(TinyDb(3));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 3u);
}

TEST_F(GenerationPersistTest, FingerprintMismatchQuarantines) {
  std::string dir = TempDir("quarry_genpersist_fpmismatch");
  {
    GenerationStore store("w");
    ASSERT_TRUE(store.EnableDurability(dir, StringDecoder()).ok());
    ASSERT_TRUE(store.Publish(TinyDb(1), nullptr, "a").ok());
  }
  // Tamper the manifest's content fingerprint (still valid JSON + hex).
  std::string manifest = *storage::ReadFile(dir + "/gen-1/MANIFEST.json");
  size_t pos = manifest.find("\"fingerprint\": \"");
  ASSERT_NE(pos, std::string::npos);
  pos += std::string("\"fingerprint\": \"").size();
  for (int i = 0; i < 16; ++i) manifest[pos + i] = '0';
  ASSERT_TRUE(storage::WriteFile(dir + "/gen-1/MANIFEST.json", manifest).ok());

  GenerationStore recovered("w");
  storage::persist::GenerationRecoveryStats stats;
  ASSERT_TRUE(recovered.EnableDurability(dir, StringDecoder(), &stats).ok());
  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_NE(stats.quarantined[0].reason.find("fingerprint"),
            std::string::npos);
  EXPECT_EQ(stats.recovered_generation, 0u);
  EXPECT_FALSE(recovered.has_generation());
}

TEST_F(GenerationPersistTest, UndecodableAnnexQuarantines) {
  std::string dir = TempDir("quarry_genpersist_badannex");
  {
    GenerationStore store("w");
    ASSERT_TRUE(store.EnableDurability(dir, StringDecoder()).ok());
    ASSERT_TRUE(store.Publish(TinyDb(1), nullptr, "not-a-schema").ok());
  }
  GenerationStore recovered("w");
  storage::persist::GenerationRecoveryStats stats;
  GenerationStore::AnnexDecoder refusing =
      [](const std::string&) -> Result<std::shared_ptr<const void>> {
    return Status::ParseError("annex does not parse");
  };
  ASSERT_TRUE(recovered.EnableDurability(dir, refusing, &stats).ok());
  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_EQ(stats.recovered_generation, 0u);
  EXPECT_TRUE(recovered.Acquire().status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Persistence edge cases: pins, deferred retires, pre-durability state.

TEST_F(GenerationPersistTest, PinStaysValidAcrossProcessSimulatedRecovery) {
  std::string dir = TempDir("quarry_genpersist_pin");
  GenerationStore old_process("w");
  ASSERT_TRUE(old_process.EnableDurability(dir, StringDecoder()).ok());
  ASSERT_TRUE(old_process.Publish(TinyDb(1), nullptr, "a").ok());
  ASSERT_TRUE(old_process.Publish(TinyDb(2), nullptr, "b").ok());
  auto pin = old_process.Acquire();
  ASSERT_TRUE(pin.ok());
  const uint64_t fp2 = pin->db().Fingerprint();

  // A second store recovers the same directory while the pin is held (the
  // restarted process; the old one still drains its last queries).
  GenerationStore new_process("w");
  ASSERT_TRUE(new_process.EnableDurability(dir, StringDecoder()).ok());
  EXPECT_EQ(new_process.current_generation(), 2u);
  EXPECT_EQ(new_process.Acquire()->db().Fingerprint(), fp2);

  // The new store publishes (and retires gen 2's directory eventually);
  // the old pin keeps reading its in-memory snapshot, bit-identical.
  ASSERT_TRUE(new_process.Publish(TinyDb(3), nullptr, "c").ok());
  ASSERT_TRUE(new_process.Publish(TinyDb(4), nullptr, "d").ok());
  EXPECT_FALSE(fs::exists(dir + "/gen-2"));
  EXPECT_TRUE(pin->valid());
  EXPECT_EQ(pin->generation(), 2u);
  EXPECT_EQ(pin->db().Fingerprint(), fp2);
  pin->Release();
  EXPECT_EQ(old_process.stats().active_pins, 0);
}

TEST_F(GenerationPersistTest, DrainDeferredRetiresDeletesDirectories) {
  std::string dir = TempDir("quarry_genpersist_drain");
  GenerationStore store("w");
  ASSERT_TRUE(store.EnableDurability(dir, StringDecoder()).ok());
  Injector::Instance().Enable(29);
  Injector::Instance().Configure("storage.generation.persist.remove",
                                 {0.0, 0, /*fail_from_hit=*/1, -1});
  for (int64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(store.Publish(TinyDb(i), nullptr, "x").ok());
  }
  // Gen 1 should have been retired, but its directory deletion failed:
  // parked on the deferred list, directory still on disk — not leaked,
  // not forgotten.
  EXPECT_EQ(store.stats().retired, 0u);
  EXPECT_GE(store.stats().retires_deferred, 1u);
  EXPECT_TRUE(fs::exists(dir + "/gen-1/MANIFEST.json"));

  Injector::Instance().Disable();
  Injector::Instance().ClearConfigs();
  EXPECT_EQ(store.DrainDeferredRetires(), 1);
  // The drain completed the on-disk deletion; current + previous remain.
  EXPECT_FALSE(fs::exists(dir + "/gen-1"));
  EXPECT_TRUE(fs::exists(dir + "/gen-2/MANIFEST.json"));
  EXPECT_TRUE(fs::exists(dir + "/gen-3/MANIFEST.json"));
  EXPECT_EQ(store.stats().retired, 1u);
  EXPECT_EQ(store.stats().live_generations, 2);
}

TEST_F(GenerationPersistTest, EnableDurabilityCheckpointsInMemoryState) {
  std::string dir = TempDir("quarry_genpersist_checkpoint");
  GenerationStore store("w");
  // Published before the store became durable (the upgrade path).
  ASSERT_TRUE(store.Publish(TinyDb(1), nullptr, "a").ok());
  const uint64_t fp1 = *store.PublishedFingerprint(1);
  ASSERT_TRUE(store.EnableDurability(dir, StringDecoder()).ok());
  EXPECT_TRUE(fs::exists(dir + "/gen-1/MANIFEST.json"));

  GenerationStore recovered("w");
  storage::persist::GenerationRecoveryStats stats;
  ASSERT_TRUE(recovered.EnableDurability(dir, StringDecoder(), &stats).ok());
  EXPECT_EQ(stats.recovered_generation, 1u);
  EXPECT_EQ(recovered.Acquire()->db().Fingerprint(), fp1);
}

// ---------------------------------------------------------------------------
// Satellite: crash-safe CSV export.

TEST_F(GenerationPersistTest, CsvExportIsAtomicUnderAFaultMidWrite) {
  std::string dir = TempDir("quarry_genpersist_csv");
  const std::string path = dir + "/dim.csv";
  auto db = TinyDb(1);
  ASSERT_TRUE(storage::WriteCsvFile(**db->GetTable("dim"), path).ok());
  const std::string before = *storage::ReadFile(path);

  // The export now rides AtomicWriteFile: a failed rename (crash window)
  // must leave the previous file byte-identical, never a torn prefix.
  Injector::Instance().Enable(31);
  Injector::Instance().Configure("wal.file.rename",
                                 {0.0, /*trigger_on_hit=*/1, 0, -1});
  auto db2 = TinyDb(2);
  EXPECT_FALSE(storage::WriteCsvFile(**db2->GetTable("dim"), path).ok());
  Injector::Instance().Disable();
  Injector::Instance().ClearConfigs();
  EXPECT_EQ(*storage::ReadFile(path), before);

  // Healthy retry replaces the file completely.
  ASSERT_TRUE(storage::WriteCsvFile(**db2->GetTable("fact"), path).ok());
  EXPECT_NE(*storage::ReadFile(path), before);
}

// ---------------------------------------------------------------------------
// The kill-and-recover crash matrix (docs/ROBUSTNESS.md §10.4).
//
// Workload: recover a pre-populated store directory, then publish three
// more generations. A single injected failure at a chosen (site, hit)
// simulates the process dying at that persistence step. Restart = a fresh
// GenerationStore recovering the directory with injection off. Invariant:
// the recovered generation's content fingerprint is byte-identical either
// to the last acknowledged publish or to the exact in-flight one (the
// unacknowledged-but-committed window of persist.sync) — never a torn or
// partial state — and the store converges when the workload resumes.

struct CrashWorkloadResult {
  bool completed = false;       ///< No injected failure fired.
  uint64_t last_acked_fp = 0;   ///< Fingerprint of the last OK publish.
  uint64_t attempted_fp = 0;    ///< Fingerprint of the last attempt.
};

class GenerationCrashMatrixTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Injector::Instance().Disable();
    Injector::Instance().ClearConfigs();
  }

  /// Publishes gens 1..2 healthily, plus a torn leftover, so the workload's
  /// own recovery pass has torn-discard, load and cleanup work to do.
  void PrePopulate(const std::string& dir) {
    GenerationStore store("w");
    ASSERT_TRUE(store.EnableDurability(dir, StringDecoder()).ok());
    for (int64_t i = 1; i <= 2; ++i) {
      auto published = store.Publish(TinyDb(i), nullptr, "seed");
      ASSERT_TRUE(published.ok());
      acked_ = *store.PublishedFingerprint(*published);
    }
    fs::create_directories(dir + "/gen-4");
    std::ofstream(dir + "/gen-4/t0000.seg") << "torn leftover";
  }

  /// One process lifetime: open (recovery) + three publishes. Returns at
  /// the first injected failure — the simulated kill.
  CrashWorkloadResult RunWorkload(const std::string& dir) {
    CrashWorkloadResult result;
    result.last_acked_fp = acked_;
    GenerationStore store("w");
    if (!store.EnableDurability(dir, StringDecoder()).ok()) return result;
    const uint64_t base = store.current_generation();
    for (int64_t i = 1; i <= 3; ++i) {
      auto db = TinyDb(100 + static_cast<int64_t>(base) + i);
      result.attempted_fp = db->Fingerprint();
      const uint64_t deferred_before = store.stats().retires_deferred;
      auto published = store.Publish(std::move(db), nullptr, "live");
      if (!published.ok()) return result;
      result.last_acked_fp = result.attempted_fp;
      // A retire-path fault is silent (the generation is deferred, its
      // directory kept); treat it as the kill too, so recovery must cope
      // with the extra on-disk directories.
      if (store.stats().retires_deferred > deferred_before) return result;
    }
    result.completed = true;
    return result;
  }

  uint64_t acked_ = 0;
};

TEST_F(GenerationCrashMatrixTest, KillAndRecoverAtEveryPersistenceFaultSite) {
  // Discovery: enumerate the persistence fault surface of the workload.
  std::string dir = TempDir("quarry_gencrash_discovery");
  PrePopulate(dir);
  Injector::Instance().Enable(4242);
  CrashWorkloadResult discovery = RunWorkload(dir);
  ASSERT_TRUE(discovery.completed);
  std::map<std::string, int64_t> sites;
  for (const std::string& site : Injector::Instance().HitSites()) {
    if (site.rfind("storage.generation.", 0) == 0) {
      sites[site] = Injector::Instance().HitCount(site);
    }
  }
  Injector::Instance().Disable();
  // The matrix must cover every persistence step the tentpole added.
  for (const char* expected :
       {"storage.generation.persist.segment",
        "storage.generation.persist.segment.torn",
        "storage.generation.persist.annex",
        "storage.generation.persist.manifest",
        "storage.generation.persist.sync",
        "storage.generation.persist.remove",
        "storage.generation.recover.scan",
        "storage.generation.recover.read",
        "storage.generation.recover.cleanup"}) {
    EXPECT_TRUE(sites.count(expected)) << "site never hit: " << expected;
  }

  int entries = 0;
  for (const auto& [site, hits] : sites) {
    std::vector<int64_t> kill_hits;
    for (int64_t h = 1; h <= hits && h <= 4; ++h) kill_hits.push_back(h);
    if (hits > 4) kill_hits.push_back(hits);
    for (int64_t h : kill_hits) {
      SCOPED_TRACE(site + " @hit " + std::to_string(h));
      std::string run_dir =
          TempDir("quarry_gencrash_" + std::to_string(entries++));
      PrePopulate(run_dir);

      Injector::Instance().Configure(
          site, {0.0, /*trigger_on_hit=*/h, 0, /*max_failures=*/1});
      Injector::Instance().Enable(4242);
      CrashWorkloadResult crashed = RunWorkload(run_dir);
      Injector::Instance().Disable();
      Injector::Instance().ClearConfigs();

      // Restart after the kill: recovery with injection off.
      GenerationStore recovered("w");
      storage::persist::GenerationRecoveryStats stats;
      ASSERT_TRUE(
          recovered.EnableDurability(run_dir, StringDecoder(), &stats).ok())
          << stats.ToString();
      // A crash never manufactures corruption: nothing to quarantine.
      EXPECT_TRUE(stats.quarantined.empty()) << stats.ToString();
      // The invariant: whatever recovery serves is byte-identical to an
      // acknowledged publish (or the exact in-flight one) — never torn.
      ASSERT_TRUE(recovered.has_generation()) << stats.ToString();
      const uint64_t fp = recovered.Acquire()->db().Fingerprint();
      EXPECT_TRUE(fp == crashed.last_acked_fp || fp == crashed.attempted_fp)
          << site << "@" << h << ": recovered " << fp << ", acked "
          << crashed.last_acked_fp << ", attempted " << crashed.attempted_fp;
      EXPECT_EQ(*recovered.PublishedFingerprint(
                    recovered.current_generation()),
                fp);

      // Convergence: the healed store keeps publishing durably.
      auto db = TinyDb(999);
      const uint64_t fp_next = db->Fingerprint();
      auto published = recovered.Publish(std::move(db), nullptr, "heal");
      ASSERT_TRUE(published.ok()) << published.status().ToString();
      EXPECT_EQ(recovered.Acquire()->db().Fingerprint(), fp_next);
      recovered.DrainDeferredRetires();
    }
  }
  EXPECT_GT(entries, 10);  // the matrix actually enumerated something.
}

}  // namespace
}  // namespace quarry
