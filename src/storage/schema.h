#ifndef QUARRY_STORAGE_SCHEMA_H_
#define QUARRY_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace quarry::storage {

/// \brief A column definition.
struct Column {
  std::string name;
  DataType type = DataType::kString;
  bool nullable = true;
};

/// \brief A foreign-key constraint from this table to another.
struct ForeignKey {
  std::vector<std::string> columns;
  std::string referenced_table;
  std::vector<std::string> referenced_columns;
};

/// \brief A table definition: columns plus key constraints.
///
/// Deployed MD schemas are star schemas: dimension tables keyed by a BIGINT
/// surrogate, fact tables keyed by the combination of their dimension
/// references (the fact's *base*, in MD terminology).
class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Appends a column. Fails on duplicate names.
  Status AddColumn(Column column);

  /// Declares the primary key; every column must exist.
  Status SetPrimaryKey(std::vector<std::string> columns);

  /// Adds a foreign key; local columns must exist (the referenced table is
  /// checked at database level).
  Status AddForeignKey(ForeignKey fk);

  /// Index of a column by name.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Column by name.
  Result<Column> GetColumn(const std::string& name) const;

  size_t num_columns() const { return columns_.size(); }

  /// Positions of the primary-key columns.
  std::vector<size_t> PrimaryKeyIndexes() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::string> primary_key_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace quarry::storage

#endif  // QUARRY_STORAGE_SCHEMA_H_
