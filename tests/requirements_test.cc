#include <gtest/gtest.h>

#include "ontology/tpch_ontology.h"
#include "requirements/elicitor.h"
#include "requirements/requirement.h"
#include "requirements/workload.h"
#include "xml/xml.h"

namespace quarry::req {
namespace {

InformationRequirement MakeRevenueIr() {
  InformationRequirement ir;
  ir.id = "ir_revenue";
  ir.name = "revenue";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
       md::AggFunc::kSum});
  ir.dimensions.push_back({"Part.p_name"});
  ir.dimensions.push_back({"Supplier.s_name"});
  ir.slicers.push_back({"Nation.n_name", "=", "SPAIN"});
  ir.aggregations.push_back(
      {"Part.p_name", "revenue", md::AggFunc::kAvg, 1});
  return ir;
}

TEST(XrqTest, RoundtripPreservesRequirement) {
  InformationRequirement ir = MakeRevenueIr();
  auto doc = ToXrq(ir);
  auto parsed = FromXrq(*doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, "ir_revenue");
  EXPECT_EQ(parsed->focus_concept, "Lineitem");
  ASSERT_EQ(parsed->measures.size(), 1u);
  EXPECT_EQ(parsed->measures[0].expression,
            "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)");
  ASSERT_EQ(parsed->dimensions.size(), 2u);
  ASSERT_EQ(parsed->slicers.size(), 1u);
  EXPECT_EQ(parsed->slicers[0].value, "SPAIN");
  ASSERT_EQ(parsed->aggregations.size(), 1u);
  EXPECT_EQ(parsed->aggregations[0].function, md::AggFunc::kAvg);
  EXPECT_TRUE(xml::DeepEqual(*doc, *ToXrq(*parsed)));
}

TEST(XrqTest, MatchesPaperStructure) {
  std::string text = xml::Write(*ToXrq(MakeRevenueIr()));
  EXPECT_NE(text.find("<cube"), std::string::npos);
  EXPECT_NE(text.find("<slicers>"), std::string::npos);
  EXPECT_NE(text.find("<operator>=</operator>"), std::string::npos);
  EXPECT_NE(text.find("<value>SPAIN</value>"), std::string::npos);
  EXPECT_NE(text.find("refID=\"Part.p_name\""), std::string::npos);
}

TEST(XrqTest, ParseFromHandWrittenText) {
  const char* doc = R"(
<cube id="ir1" name="q">
  <dimensions><concept id="Part.p_name"/></dimensions>
  <measures><concept id="rev"><function>Lineitem.l_quantity</function>
  </concept></measures>
</cube>)";
  auto root = xml::Parse(doc);
  ASSERT_TRUE(root.ok());
  auto ir = FromXrq(**root);
  ASSERT_TRUE(ir.ok()) << ir.status();
  EXPECT_EQ(ir->measures[0].aggregation, md::AggFunc::kSum);  // default
  EXPECT_TRUE(ir->focus_concept.empty());
}

TEST(XrqTest, RejectsMalformedCubes) {
  auto no_id = xml::Parse("<cube name=\"x\"/>");
  ASSERT_TRUE(no_id.ok());
  EXPECT_TRUE(FromXrq(**no_id).status().IsParseError());
  auto wrong_tag = xml::Parse("<query id=\"x\"/>");
  ASSERT_TRUE(wrong_tag.ok());
  EXPECT_TRUE(FromXrq(**wrong_tag).status().IsParseError());
  auto measure_without_fn = xml::Parse(
      "<cube id=\"x\"><measures><concept id=\"m\"/></measures></cube>");
  ASSERT_TRUE(measure_without_fn.ok());
  EXPECT_TRUE(FromXrq(**measure_without_fn).status().IsParseError());
}

// --- elicitor ----------------------------------------------------------------

class ElicitorTest : public ::testing::Test {
 protected:
  ElicitorTest() : onto_(ontology::BuildTpchOntology()), elicitor_(&onto_) {}
  ontology::Ontology onto_;
  Elicitor elicitor_;
};

TEST_F(ElicitorTest, LineitemIsTopFactCandidate) {
  auto facts = elicitor_.SuggestFacts();
  ASSERT_FALSE(facts.empty());
  EXPECT_EQ(facts[0].concept_id, "Lineitem");
  EXPECT_GE(facts[0].numeric_properties, 4);
  EXPECT_GE(facts[0].functional_out_degree, 4);
  // Region is a pure rollup target: near the bottom.
  EXPECT_EQ(facts.back().concept_id, "Region");
}

TEST_F(ElicitorTest, SuggestDimensionsMatchesPaperExample) {
  // Paper §2.1: focus Lineitem -> the system suggests Supplier, Nation,
  // Part (among others).
  auto dims = elicitor_.SuggestDimensions("Lineitem");
  ASSERT_TRUE(dims.ok()) << dims.status();
  std::set<std::string> suggested;
  for (const auto& d : *dims) suggested.insert(d.concept_id);
  EXPECT_TRUE(suggested.count("Supplier") > 0);
  EXPECT_TRUE(suggested.count("Nation") > 0);
  EXPECT_TRUE(suggested.count("Part") > 0);
  // One-hop suggestions come before three-hop ones.
  EXPECT_LT((*dims)[0].hops, dims->back().hops);
  // Descriptive properties accompany each suggestion.
  for (const auto& d : *dims) {
    if (d.concept_id == "Part") {
      EXPECT_GE(d.descriptive_properties.size(), 3u);
    }
  }
}

TEST_F(ElicitorTest, NothingSuggestedFromRegion) {
  auto dims = elicitor_.SuggestDimensions("Region");
  ASSERT_TRUE(dims.ok());
  EXPECT_TRUE(dims->empty());
}

TEST_F(ElicitorTest, SuggestMeasuresRanksDoublesFirst) {
  auto measures = elicitor_.SuggestMeasures("Lineitem");
  ASSERT_TRUE(measures.ok());
  ASSERT_GE(measures->size(), 4u);
  // Doubles (extendedprice, discount, tax) rank above the int quantity.
  EXPECT_EQ((*measures)[0].score, 1.0);
  bool quantity_seen = false;
  for (const auto& m : *measures) {
    if (m.property_id == "Lineitem.l_quantity") {
      quantity_seen = true;
      EXPECT_EQ(m.score, 0.5);
    }
  }
  EXPECT_TRUE(quantity_seen);
}

TEST_F(ElicitorTest, UnknownFocusFails) {
  EXPECT_TRUE(elicitor_.SuggestMeasures("Ghost").status().IsNotFound());
  EXPECT_TRUE(elicitor_.SuggestDimensions("Ghost").status().IsNotFound());
}

TEST_F(ElicitorTest, BuildRequirementValidates) {
  auto ir = elicitor_.BuildRequirement(
      "ir_revenue", "revenue", "Lineitem",
      {{"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
        md::AggFunc::kSum}},
      {{"Part.p_name"}, {"Supplier.s_name"}},
      {{"Nation.n_name", "=", "SPAIN"}});
  ASSERT_TRUE(ir.ok()) << ir.status();
  EXPECT_EQ(ir->focus_concept, "Lineitem");
  // Default aggregation plan: 1 measure x 2 dimensions.
  EXPECT_EQ(ir->aggregations.size(), 2u);
}

TEST_F(ElicitorTest, BuildRequirementRejectsUnreachableDimension) {
  // Customer is NOT functionally reachable from Partsupp.
  auto ir = elicitor_.BuildRequirement(
      "ir_bad", "bad", "Partsupp",
      {{"cost", "Partsupp.ps_supplycost", md::AggFunc::kSum}},
      {{"Customer.c_name"}}, {});
  EXPECT_TRUE(ir.status().IsUnsatisfiable());
}

TEST_F(ElicitorTest, BuildRequirementRejectsBadInputs) {
  EXPECT_TRUE(elicitor_
                  .BuildRequirement("", "x", "Lineitem",
                                    {{"m", "Lineitem.l_quantity",
                                      md::AggFunc::kSum}},
                                    {{"Part.p_name"}}, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(elicitor_
                  .BuildRequirement("ir", "x", "Lineitem", {},
                                    {{"Part.p_name"}}, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(elicitor_
                  .BuildRequirement("ir", "x", "Lineitem",
                                    {{"m", "Lineitem.l_quantity",
                                      md::AggFunc::kSum}},
                                    {}, {})
                  .status()
                  .IsInvalidArgument());
  // Unknown property in a measure.
  EXPECT_TRUE(elicitor_
                  .BuildRequirement("ir", "x", "Lineitem",
                                    {{"m", "Lineitem.ghost",
                                      md::AggFunc::kSum}},
                                    {{"Part.p_name"}}, {})
                  .status()
                  .IsNotFound());
  // Bad slicer operator.
  EXPECT_TRUE(elicitor_
                  .BuildRequirement("ir", "x", "Lineitem",
                                    {{"m", "Lineitem.l_quantity",
                                      md::AggFunc::kSum}},
                                    {{"Part.p_name"}},
                                    {{"Part.p_name", "LIKE", "x"}})
                  .status()
                  .IsInvalidArgument());
}

// --- workload generator -------------------------------------------------

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadConfig config;
  config.num_requirements = 6;
  config.seed = 77;
  auto a = GenerateTpchWorkload(config);
  auto b = GenerateTpchWorkload(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].measures[0].expression, b[i].measures[0].expression);
    ASSERT_EQ(a[i].dimensions.size(), b[i].dimensions.size());
    for (size_t d = 0; d < a[i].dimensions.size(); ++d) {
      EXPECT_EQ(a[i].dimensions[d].property_id,
                b[i].dimensions[d].property_id);
    }
  }
}

TEST(WorkloadTest, RespectsCounts) {
  WorkloadConfig config;
  config.num_requirements = 9;
  config.dimensions_per_requirement = 3;
  config.slicer_probability = 0.0;
  auto workload = GenerateTpchWorkload(config);
  ASSERT_EQ(workload.size(), 9u);
  std::set<std::string> ids;
  for (const auto& ir : workload) {
    ids.insert(ir.id);
    EXPECT_EQ(ir.dimensions.size(), 3u);
    EXPECT_TRUE(ir.slicers.empty());
    EXPECT_EQ(ir.focus_concept, "Lineitem");
    EXPECT_EQ(ir.measures.size(), 1u);
  }
  EXPECT_EQ(ids.size(), 9u);  // unique ids -> unique measure names
}

TEST(WorkloadTest, HighOverlapDrawsFromHotPool) {
  WorkloadConfig config;
  config.num_requirements = 20;
  config.overlap = 1.0;
  config.dimensions_per_requirement = 2;
  auto workload = GenerateTpchWorkload(config);
  std::set<std::string> hot{"Part.p_name", "Supplier.s_name",
                            "Orders.o_orderdate"};
  for (const auto& ir : workload) {
    for (const auto& d : ir.dimensions) {
      EXPECT_TRUE(hot.count(d.property_id) > 0) << d.property_id;
    }
  }
}

}  // namespace
}  // namespace quarry::req
