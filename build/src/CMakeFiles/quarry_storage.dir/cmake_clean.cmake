file(REMOVE_RECURSE
  "CMakeFiles/quarry_storage.dir/storage/csv.cc.o"
  "CMakeFiles/quarry_storage.dir/storage/csv.cc.o.d"
  "CMakeFiles/quarry_storage.dir/storage/database.cc.o"
  "CMakeFiles/quarry_storage.dir/storage/database.cc.o.d"
  "CMakeFiles/quarry_storage.dir/storage/schema.cc.o"
  "CMakeFiles/quarry_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/quarry_storage.dir/storage/sql.cc.o"
  "CMakeFiles/quarry_storage.dir/storage/sql.cc.o.d"
  "CMakeFiles/quarry_storage.dir/storage/table.cc.o"
  "CMakeFiles/quarry_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/quarry_storage.dir/storage/value.cc.o"
  "CMakeFiles/quarry_storage.dir/storage/value.cc.o.d"
  "libquarry_storage.a"
  "libquarry_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
