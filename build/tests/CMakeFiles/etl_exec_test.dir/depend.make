# Empty dependencies file for etl_exec_test.
# This may be replaced when dependencies are built.
