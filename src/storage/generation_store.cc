#include "storage/generation_store.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/fault_injection.h"
#include "obs/metrics.h"

namespace quarry::storage {

namespace {

/// Process-wide pin gauge: Pins may outlive their store, so the gauge they
/// decrement on release must too (registry pointers are process-lifetime).
obs::Gauge& PinsGauge() {
  return obs::MetricsRegistry::Instance().gauge(
      "quarry_serving_pins_active",
      "Reader pins currently holding a warehouse generation");
}

}  // namespace

GenerationStore::Pin& GenerationStore::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    Release();
    db_ = std::move(other.db_);
    annex_ = std::move(other.annex_);
    pin_count_ = std::move(other.pin_count_);
    generation_ = other.generation_;
    other.db_ = nullptr;
    other.generation_ = 0;
  }
  return *this;
}

void GenerationStore::Pin::Release() {
  if (db_ == nullptr) return;
  db_ = nullptr;
  annex_ = nullptr;
  generation_ = 0;
  if (pin_count_ != nullptr) {
    pin_count_->fetch_sub(1, std::memory_order_acq_rel);
    PinsGauge().Add(-1.0);
    pin_count_ = nullptr;
  }
}

GenerationStore::GenerationStore(std::string name) : name_(std::move(name)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  published_total_ =
      &reg.counter("quarry_serving_generations_published_total",
                   "Warehouse generations atomically published");
  publish_failures_total_ =
      &reg.counter("quarry_serving_publish_failures_total",
                   "Publishes refused at the storage.generation.publish "
                   "fault site or by a failed durable commit (scratch "
                   "discarded, old generation kept)");
  retired_total_ = &reg.counter("quarry_serving_generations_retired_total",
                                "Warehouse generations released by the store");
  retires_deferred_total_ =
      &reg.counter("quarry_serving_retires_deferred_total",
                   "Retires deferred by the storage.generation.retire fault "
                   "site or a failed generation-directory deletion (retried "
                   "on later publishes)");
  live_gauge_ = &reg.gauge("quarry_serving_generations_live",
                           "Generations the store currently references");
  pins_gauge_ = &PinsGauge();
}

uint64_t GenerationStore::current_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.id;
}

bool GenerationStore::durable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_;
}

std::string GenerationStore::durable_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_dir_;
}

GenerationStore::Pin GenerationStore::MakePin(const Generation& gen) const {
  Pin pin;
  pin.db_ = gen.db;
  pin.annex_ = gen.annex;
  pin.generation_ = gen.id;
  pin.pin_count_ = pin_count_;
  pin_count_->fetch_add(1, std::memory_order_acq_rel);
  pins_gauge_->Add(1.0);
  return pin;
}

Result<GenerationStore::Pin> GenerationStore::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_.id == 0) {
    return Status::NotFound("warehouse '" + name_ +
                            "' has no published generation");
  }
  return MakePin(current_);
}

Result<GenerationStore::Pin> GenerationStore::AcquirePrevious() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (previous_.id == 0) {
    return Status::NotFound("warehouse '" + name_ +
                            "' has no previous generation to serve stale");
  }
  return MakePin(previous_);
}

std::unique_ptr<Database> GenerationStore::BeginBuild() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_.id == 0) return std::make_unique<Database>(name_);
  return current_.db->Clone();
}

std::unique_ptr<Database> GenerationStore::BeginEmptyBuild() const {
  return std::make_unique<Database>(name_);
}

int GenerationStore::RetireBatch(std::vector<Generation> gens) {
  bool durable = false;
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    durable = durable_;
    dir = durable_dir_;
  }
  int released = 0;
  for (Generation& gen : gens) {
    if (gen.id == 0) continue;
    // The release step can genuinely fail on a durable store (the
    // directory deletion); the injected fault models the same failure for
    // in-memory stores. Either way the generation is parked on the
    // deferred list — still accounted live, never leaked — and retried on
    // the next publish.
    Status verdict = Status::OK();
    if (fault::Enabled()) verdict = fault::Check("storage.generation.retire");
    if (verdict.ok() && durable) {
      verdict = persist::RemoveGenerationDir(dir, gen.id);
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!verdict.ok()) {
      ++stats_.retires_deferred;
      retires_deferred_total_->Increment();
      deferred_retire_.push_back(std::move(gen));
      continue;
    }
    ++stats_.retired;
    retired_total_->Increment();
    ++released;
    // Dropping the shared_ptr (when `gens` dies, outside mu_) is the
    // in-memory release; readers still pinned on this generation keep it
    // alive until their Pin goes away.
  }
  return released;
}

void GenerationStore::UpdateGaugesLocked() const {
  int live = (current_.id != 0 ? 1 : 0) + (previous_.id != 0 ? 1 : 0) +
             static_cast<int>(deferred_retire_.size());
  live_gauge_->Set(static_cast<double>(live));
}

Result<uint64_t> GenerationStore::Publish(std::unique_ptr<Database> next,
                                          std::shared_ptr<const void> annex,
                                          std::string_view annex_bytes) {
  if (next == nullptr) {
    return Status::InvalidArgument("cannot publish a null generation");
  }
  // Fingerprint outside the locks: it scans every table, and the scratch
  // is still private to this thread.
  const uint64_t fingerprint = next->Fingerprint();
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  bool durable = false;
  std::string dir;
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fault::Enabled()) {
      if (Status injected = fault::Check("storage.generation.publish");
          !injected.ok()) {
        ++stats_.publish_failures;
        publish_failures_total_->Increment();
        // `next` dies with this scope — that IS the rollback: no store
        // state changed, readers keep the old generation.
        return injected.WithContext("publishing generation of warehouse '" +
                                    name_ + "'");
      }
    }
    id = next_id_++;
    durable = durable_;
    dir = durable_dir_;
  }
  if (durable) {
    // The durable two-phase commit runs before any reader-visible state
    // changes, and outside mu_ so queries never wait on an fsync. A
    // failure here is a torn publish: the old generation keeps serving,
    // the half-written directory is discarded by the next recovery (or by
    // the retried publish reusing the id).
    if (Status persisted = persist::PersistGeneration(dir, id, *next,
                                                      fingerprint,
                                                      annex_bytes);
        !persisted.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      // publish_mu_ guarantees no other publisher interleaved, so the
      // unused id can be handed back and ids stay dense.
      next_id_ = id;
      ++stats_.publish_failures;
      publish_failures_total_->Increment();
      return persisted.WithContext("publishing generation of warehouse '" +
                                   name_ + "'");
    }
  }
  Generation gen;
  gen.id = id;
  gen.db = std::shared_ptr<const Database>(std::move(next));
  gen.annex = std::move(annex);
  gen.annex_bytes = std::string(annex_bytes);
  std::vector<Generation> to_retire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fingerprints_[gen.id] = fingerprint;
    to_retire.push_back(std::move(previous_));
    previous_ = std::move(current_);
    current_ = std::move(gen);
    ++stats_.published;
    published_total_->Increment();
    // Retry earlier deferred retires while we already own publish_mu_.
    for (Generation& d : deferred_retire_) to_retire.push_back(std::move(d));
    deferred_retire_.clear();
  }
  RetireBatch(std::move(to_retire));
  {
    std::lock_guard<std::mutex> lock(mu_);
    UpdateGaugesLocked();
  }
  return id;
}

Result<uint64_t> GenerationStore::PublishedFingerprint(
    uint64_t generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fingerprints_.find(generation);
  if (it == fingerprints_.end()) {
    return Status::NotFound("generation " + std::to_string(generation) +
                            " was never published in warehouse '" + name_ +
                            "'");
  }
  return it->second;
}

int GenerationStore::DrainDeferredRetires() {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  std::vector<Generation> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(deferred_retire_);
  }
  int drained = RetireBatch(std::move(pending));
  {
    std::lock_guard<std::mutex> lock(mu_);
    UpdateGaugesLocked();
  }
  return drained;
}

Status GenerationStore::EnableDurability(
    const std::string& dir, AnnexDecoder decoder,
    persist::GenerationRecoveryStats* stats) {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::ExecutionError("cannot create generation store '" + dir +
                                  "': " + ec.message());
  }
  // The annex of each candidate generation must decode for the candidate
  // to count as intact — an undecodable annex is as unservable as a CRC
  // mismatch, and recovery falls back to the next-newest generation.
  std::shared_ptr<const void> decoded;
  persist::GenerationValidator validator;
  if (decoder != nullptr) {
    validator = [&](const persist::LoadedGeneration& g) -> Status {
      decoded = nullptr;
      if (g.annex_bytes.empty()) return Status::OK();
      QUARRY_ASSIGN_OR_RETURN(decoded, decoder(g.annex_bytes));
      return Status::OK();
    };
  }
  persist::GenerationRecoveryStats local;
  persist::GenerationRecoveryStats& rstats = stats != nullptr ? *stats : local;
  QUARRY_ASSIGN_OR_RETURN(
      persist::LoadedGeneration recovered,
      persist::RecoverNewestGeneration(dir, validator, &rstats));

  uint64_t checkpoint_id = 0;
  std::shared_ptr<const Database> checkpoint_db;
  uint64_t checkpoint_fp = 0;
  std::string checkpoint_annex;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_.id == 0 && recovered.id != 0) {
      // Cold start: republish the newest intact on-disk generation so
      // readers serve immediately, without waiting on any ETL rebuild.
      Generation gen;
      gen.id = recovered.id;
      gen.db = std::shared_ptr<const Database>(std::move(recovered.db));
      gen.annex = std::move(decoded);
      gen.annex_bytes = std::move(recovered.annex_bytes);
      fingerprints_[gen.id] = recovered.fingerprint;
      current_ = std::move(gen);
    } else if (current_.id != 0 && current_.id != recovered.id) {
      // The store was published to before it became durable: checkpoint
      // the in-memory generation so the directory catches up.
      checkpoint_id = current_.id;
      checkpoint_db = current_.db;
      checkpoint_fp = fingerprints_[current_.id];
      checkpoint_annex = current_.annex_bytes;
    }
    next_id_ =
        std::max(next_id_,
                 std::max(recovered.id, recovered.max_seen_id) + 1);
  }
  if (checkpoint_id != 0) {
    QUARRY_RETURN_NOT_OK(
        persist::PersistGeneration(dir, checkpoint_id, *checkpoint_db,
                                   checkpoint_fp, checkpoint_annex)
            .WithContext("checkpointing in-memory generation " +
                         std::to_string(checkpoint_id)));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    durable_ = true;
    durable_dir_ = dir;
    UpdateGaugesLocked();
  }
  return Status::OK();
}

GenerationStoreStats GenerationStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GenerationStoreStats out = stats_;
  out.live_generations = (current_.id != 0 ? 1 : 0) +
                         (previous_.id != 0 ? 1 : 0) +
                         static_cast<int>(deferred_retire_.size());
  out.active_pins = pin_count_->load(std::memory_order_acquire);
  return out;
}

}  // namespace quarry::storage
