#ifndef QUARRY_INTERPRETER_INTERPRETER_H_
#define QUARRY_INTERPRETER_INTERPRETER_H_

#include <string>

#include "common/exec_context.h"
#include "common/result.h"
#include "etl/flow.h"
#include "mdschema/md_schema.h"
#include "ontology/mapping.h"
#include "ontology/ontology.h"
#include "requirements/requirement.h"

namespace quarry::interpreter {

/// A validated partial design: the MD schema and ETL process satisfying one
/// information requirement (paper §2.2, Fig. 4 right side).
struct PartialDesign {
  md::MdSchema schema;
  etl::Flow flow;
};

/// \brief The Requirements Interpreter (paper §2.2): maps an information
/// requirement onto the data sources through the domain ontology and its
/// source schema mappings, validates its MD role assignment, and generates
/// a partial MD schema (xMD) plus a partial ETL flow (xLM) — the GEM
/// algorithm of ref [11], reimplemented.
///
/// Validation performed (failures are kValidationError / kUnsatisfiable):
///  * every referenced property exists and is mapped to a source column;
///  * each dimension / slicer property's concept is reachable from the
///    focus concept through a functional (to-one) path — the
///    summarizability precondition;
///  * measure expressions are parseable and purely numeric-property-based;
///  * the produced MD schema passes md::CheckSound.
///
/// Generated ETL shape (one flow per requirement):
///  * shared DATASTORE_/EXTRACTION_ nodes per source table;
///  * a left-deep join tree from the focus table following the functional
///    paths (one JOIN per association hop, reused across dimensions);
///  * SELECTION nodes for slicers applied after the join tree (the ETL
///    Process Integrator later pushes them down via equivalence rules);
///  * FUNCTION nodes computing each measure;
///  * per-dimension branches projecting key + attribute columns into
///    idempotent dim loaders, and a fact branch projecting, aggregating to
///    the fact's grain, and loading the fact table.
class Interpreter {
 public:
  /// Both pointers must outlive the interpreter.
  Interpreter(const ontology::Ontology* onto,
              const ontology::SourceMapping* mapping)
      : onto_(onto), mapping_(mapping) {}

  /// Translates one requirement into a validated partial design. `ctx`
  /// (nullable) is checked at every phase boundary — focus resolution,
  /// path finding, schema assembly, flow generation — so a cancelled or
  /// expired request stops between phases; the generated flow is also
  /// checked against the context's max_flow_nodes budget, which rejects
  /// requirements that explode into huge flows before anything runs.
  Result<PartialDesign> Interpret(const req::InformationRequirement& ir,
                                  const ExecContext* ctx = nullptr) const;

  /// Target table name for a dimension concept ("dim_<Concept>").
  static std::string DimTableName(const std::string& concept_id);

  /// Target fact table name for a requirement ("fact_table_<name>").
  static std::string FactTableName(const req::InformationRequirement& ir);

 private:
  Result<PartialDesign> InterpretImpl(const req::InformationRequirement& ir,
                                      const ExecContext* ctx) const;

  const ontology::Ontology* onto_;
  const ontology::SourceMapping* mapping_;
};

}  // namespace quarry::interpreter

#endif  // QUARRY_INTERPRETER_INTERPRETER_H_
