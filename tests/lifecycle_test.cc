// Tests of the request-lifecycle layer (docs/ROBUSTNESS.md §7): the
// CancellationToken / Deadline / ExecContext primitives, their cooperative
// enforcement in the ETL executor and the transactional deployer, the
// deadline- and budget-bounded retry backoff, and the AdmissionController
// gate in front of Quarry::Submit*. The whole file carries the ctest
// labels `lifecycle;tsan` and must run cleanly under
// tools/run_tsan.sh (-DQUARRY_SANITIZE=thread).

#include "common/exec_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/timer.h"
#include "core/admission.h"
#include "core/quarry.h"
#include "datagen/tpch.h"
#include "deployer/deployer.h"
#include "docstore/document_store.h"
#include "etl/exec/executor.h"
#include "etl/flow.h"
#include "interpreter/interpreter.h"
#include "obs/metrics.h"
#include "ontology/tpch_ontology.h"
#include "storage/database.h"

namespace quarry {
namespace {

using core::AdmissionController;
using core::AdmissionOptions;
using deployer::Deployer;
using deployer::DeploymentOutcome;
using deployer::DeployOptions;
using etl::Checkpoint;
using etl::Executor;
using etl::Flow;
using etl::Node;
using etl::OpType;
using etl::RetryPolicy;
using interpreter::Interpreter;
using req::InformationRequirement;
using storage::Database;
using storage::Table;
using storage::Value;

// ---- token / deadline / context primitives --------------------------------

TEST(CancellationTokenTest, CancelSetsFlagAndReason) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), "");
  token.Cancel("user closed the session");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "user closed the session");
  token.Cancel("second reason is ignored");
  EXPECT_EQ(token.reason(), "user closed the session");
}

TEST(CancellationTokenTest, ChildObservesParentButNotSiblings) {
  CancellationToken parent;
  CancellationToken a = CancellationToken::Child(parent);
  CancellationToken b = CancellationToken::Child(parent);
  a.Cancel("just a");
  EXPECT_TRUE(a.cancelled());
  EXPECT_FALSE(parent.cancelled());
  EXPECT_FALSE(b.cancelled());
  parent.Cancel("shutdown");
  EXPECT_TRUE(b.cancelled());
  EXPECT_EQ(b.reason(), "shutdown");
  EXPECT_EQ(a.reason(), "just a");  // Nearest cancelled ancestor wins.
}

TEST(CancellationTokenTest, CopiesShareState) {
  CancellationToken token;
  CancellationToken copy = token;
  copy.Cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(DeadlineTest, UnboundedNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.unbounded());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_millis()));
}

TEST(DeadlineTest, PastDeadlineIsExpiredAndClamped) {
  Deadline d = Deadline::After(0.0);
  EXPECT_FALSE(d.unbounded());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_millis(), 0.0);
}

TEST(ExecContextTest, CheckNamesTheCancellationPoint) {
  CancellationToken token;
  ExecContext ctx(token, Deadline::Infinite());
  EXPECT_TRUE(ctx.Check("somewhere").ok());
  token.Cancel("test over");
  Status s = ctx.Check("node 'JOIN_1'");
  EXPECT_TRUE(s.IsCancelled());
  EXPECT_NE(s.message().find("JOIN_1"), std::string::npos);
  EXPECT_NE(s.message().find("test over"), std::string::npos);
}

TEST(ExecContextTest, ExpiredDeadlineFailsCheck) {
  ExecContext ctx(Deadline::After(0.0));
  Status s = ctx.Check("etl.run");
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_NE(s.message().find("etl.run"), std::string::npos);
}

TEST(ExecContextTest, RowAndByteBudgetsTripAndReset) {
  ExecContext ctx(CancellationToken(), Deadline::Infinite(),
                  {/*max_rows_materialized=*/10,
                   /*max_intermediate_bytes=*/100, /*max_flow_nodes=*/0});
  EXPECT_TRUE(ctx.ChargeRows(8, "a").ok());
  Status rows = ctx.ChargeRows(5, "b");
  EXPECT_TRUE(rows.IsResourceExhausted()) << rows;
  EXPECT_EQ(ctx.rows_materialized(), 13);
  EXPECT_TRUE(ctx.ChargeBytes(90, "c").ok());
  EXPECT_TRUE(ctx.ChargeBytes(20, "d").IsResourceExhausted());
  ctx.ResetCharges();
  EXPECT_EQ(ctx.rows_materialized(), 0);
  EXPECT_EQ(ctx.intermediate_bytes(), 0);
  EXPECT_TRUE(ctx.ChargeRows(10, "e").ok());
}

TEST(ExecContextTest, LifecycleErrorClassification) {
  EXPECT_TRUE(IsLifecycleError(Status::Cancelled("x")));
  EXPECT_TRUE(IsLifecycleError(Status::DeadlineExceeded("x")));
  EXPECT_TRUE(IsLifecycleError(Status::ResourceExhausted("x")));
  EXPECT_TRUE(IsLifecycleError(Status::Overloaded("x")));
  EXPECT_FALSE(IsLifecycleError(Status::OK()));
  EXPECT_FALSE(IsLifecycleError(Status::ExecutionError("x")));
  EXPECT_TRUE(CheckContext(nullptr, "anywhere").ok());
}

// ---- deadline/budget-bounded retry backoff --------------------------------

RetryPolicy NoJitterPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_millis = 100.0;
  policy.max_backoff_millis = 1000.0;
  policy.jitter_fraction = 0.0;  // Deterministic raw backoff.
  return policy;
}

TEST(BoundedBackoffTest, UnboundedMatchesRawBackoff) {
  RetryPolicy policy = NoJitterPolicy();
  Prng raw_prng(policy.jitter_seed), bounded_prng(policy.jitter_seed);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_DOUBLE_EQ(
        etl::BoundedBackoffMillis(policy, attempt, &bounded_prng, 0.0,
                                  nullptr),
        etl::RetryBackoffMillis(policy, attempt, &raw_prng));
  }
}

TEST(BoundedBackoffTest, OverallBudgetClipsTheLastSleep) {
  RetryPolicy policy = NoJitterPolicy();
  policy.total_backoff_budget_millis = 150.0;
  Prng prng(policy.jitter_seed);
  // Raw schedule is 100, 200, 400...; with 150ms of budget the second
  // sleep is clipped to 50 and everything after is zero.
  EXPECT_DOUBLE_EQ(
      etl::BoundedBackoffMillis(policy, 1, &prng, /*spent=*/0.0, nullptr),
      100.0);
  EXPECT_DOUBLE_EQ(
      etl::BoundedBackoffMillis(policy, 2, &prng, /*spent=*/100.0, nullptr),
      50.0);
  EXPECT_DOUBLE_EQ(
      etl::BoundedBackoffMillis(policy, 3, &prng, /*spent=*/150.0, nullptr),
      0.0);
}

TEST(BoundedBackoffTest, DeadlineClipsTheSleep) {
  RetryPolicy policy = NoJitterPolicy();
  Prng prng(policy.jitter_seed);
  ExecContext ctx(Deadline::After(20.0));
  double sleep = etl::BoundedBackoffMillis(policy, 1, &prng, 0.0, &ctx);
  EXPECT_LE(sleep, 20.0);
  EXPECT_GE(sleep, 0.0);
  ExecContext expired(Deadline::After(0.0));
  EXPECT_DOUBLE_EQ(etl::BoundedBackoffMillis(policy, 1, &prng, 0.0, &expired),
                   0.0);
}

// ---- cooperative enforcement in the ETL executor --------------------------

Node MakeNode(const std::string& id, OpType type,
              std::map<std::string, std::string> params) {
  Node node;
  node.id = id;
  node.type = type;
  node.params = std::move(params);
  return node;
}

// ds -> ex -> sel(qty >= 0) -> load("out"): loads 3 of the 4 sales rows
// (the NULL-qty row filters out).
std::unique_ptr<Database> MakeTinySource() {
  auto db = std::make_unique<Database>("src");
  storage::TableSchema sales("sales");
  EXPECT_TRUE(sales.AddColumn({"id", storage::DataType::kInt64, false}).ok());
  EXPECT_TRUE(sales.AddColumn({"qty", storage::DataType::kInt64, true}).ok());
  Table* t = *db->CreateTable(sales);
  EXPECT_TRUE(t->InsertAll({{Value::Int(1), Value::Int(2)},
                            {Value::Int(2), Value::Int(5)},
                            {Value::Int(3), Value::Int(1)},
                            {Value::Int(4), Value::Null()}})
                  .ok());
  return db;
}

Flow MakeTinyFlow() {
  Flow flow("tiny");
  EXPECT_TRUE(
      flow.AddNode(MakeNode("ds", OpType::kDatastore, {{"table", "sales"}}))
          .ok());
  EXPECT_TRUE(
      flow.AddNode(MakeNode("ex", OpType::kExtraction, {{"table", "sales"}}))
          .ok());
  EXPECT_TRUE(flow.AddNode(MakeNode("sel", OpType::kSelection,
                                    {{"predicate", "qty >= 0"}}))
                  .ok());
  EXPECT_TRUE(flow.AddNode(MakeNode("load", OpType::kLoader,
                                    {{"table", "out"}, {"keys", "id"}}))
                  .ok());
  EXPECT_TRUE(flow.AddEdge("ds", "ex").ok());
  EXPECT_TRUE(flow.AddEdge("ex", "sel").ok());
  EXPECT_TRUE(flow.AddEdge("sel", "load").ok());
  return flow;
}

TEST(ExecutorLifecycleTest, CancelledContextFailsBeforeAnyWork) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow = MakeTinyFlow();
  CancellationToken token;
  token.Cancel("caller gave up");
  ExecContext ctx(token, Deadline::Infinite());
  Checkpoint checkpoint;
  Executor executor(src.get(), &target);
  auto result = executor.Run(flow, {}, &checkpoint, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  EXPECT_FALSE(target.HasTable("out"));
  // Resume after cancellation works exactly like resume after a fault.
  // (Nothing completed before the cancel, so the resume is a clean re-run
  // from the empty prefix.)
  ASSERT_TRUE(checkpoint.valid);
  auto resumed = executor.Resume(flow, &checkpoint);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ((*target.GetTable("out"))->num_rows(), 3u);
}

TEST(ExecutorLifecycleTest, ExpiredDeadlineFailsRunAndResumeCompletes) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow = MakeTinyFlow();
  ExecContext ctx(Deadline::After(0.0));
  Checkpoint checkpoint;
  Executor executor(src.get(), &target);
  auto result = executor.Run(flow, {}, &checkpoint, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
  ASSERT_TRUE(checkpoint.valid);
  // A fresh (unbounded) context stands in for the caller extending the
  // deadline before resuming.
  ExecContext fresh;
  auto resumed = executor.Resume(flow, &checkpoint, {}, &fresh);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ((*target.GetTable("out"))->num_rows(), 3u);
}

TEST(ExecutorLifecycleTest, RowBudgetTripsMidFlowAndResumeCompletes) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow = MakeTinyFlow();
  // Datastore + extraction charge 4 rows each (8 total); the selection's
  // 3 output rows trip the budget of 9 mid-flow.
  ExecContext ctx(CancellationToken(), Deadline::Infinite(),
                  {/*max_rows_materialized=*/9, 0, 0});
  Checkpoint checkpoint;
  Executor executor(src.get(), &target);
  auto result = executor.Run(flow, {}, &checkpoint, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  EXPECT_EQ(checkpoint.failed_node, "sel");
  EXPECT_FALSE(target.HasTable("out"));
  auto resumed = executor.Resume(flow, &checkpoint);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ((*target.GetTable("out"))->num_rows(), 3u);
}

TEST(ExecutorLifecycleTest, BudgetTripAtLoaderRollsTheTableBack) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow = MakeTinyFlow();
  // 4 (ds) + 4 (ex) + 3 (sel) + 3 (load) = 14 > 12: the loader itself
  // goes over budget AFTER writing — its table must roll back (vanish).
  ExecContext ctx(CancellationToken(), Deadline::Infinite(),
                  {/*max_rows_materialized=*/12, 0, 0});
  Checkpoint checkpoint;
  Executor executor(src.get(), &target);
  auto result = executor.Run(flow, {}, &checkpoint, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  EXPECT_EQ(checkpoint.failed_node, "load");
  EXPECT_FALSE(target.HasTable("out"));
}

TEST(ExecutorLifecycleTest, ByteBudgetTrips) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow = MakeTinyFlow();
  ExecContext ctx(CancellationToken(), Deadline::Infinite(),
                  {0, /*max_intermediate_bytes=*/1, 0});
  Executor executor(src.get(), &target);
  auto result = executor.Run(flow, {}, nullptr, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
}

TEST(ExecutorLifecycleTest, FlowNodeBudgetRejectsUpfront) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow = MakeTinyFlow();  // 4 nodes.
  ExecContext ctx(CancellationToken(), Deadline::Infinite(),
                  {0, 0, /*max_flow_nodes=*/3});
  Executor executor(src.get(), &target);
  auto result = executor.Run(flow, {}, nullptr, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  EXPECT_FALSE(target.HasTable("out"));
}

class ExecutorRetryLifecycleTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::Injector::Instance().Disable();
    fault::Injector::Instance().ClearConfigs();
  }
};

TEST_F(ExecutorRetryLifecycleTest, DeadlineCapsRetryBackoff) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow = MakeTinyFlow();
  // Every Selection attempt faults; the raw backoff schedule (100, 200,
  // 400... ms) would sleep for seconds, but the 50ms deadline clips the
  // first sleep and the next attempt's pre-check fails.
  fault::Injector::Instance().Enable(/*seed=*/3);
  fault::Injector::Instance().Configure("etl.exec.Selection",
                                        {0.0, 0, /*fail_from_hit=*/1, -1});
  RetryPolicy policy = NoJitterPolicy();
  ExecContext ctx(Deadline::After(50.0));
  Timer timer;
  Executor executor(src.get(), &target);
  auto result = executor.Run(flow, policy, nullptr, &ctx);
  double elapsed_ms = timer.ElapsedMicros() / 1000.0;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
  // Generous bound: without clipping this would take >= 700ms of sleep.
  EXPECT_LT(elapsed_ms, 600.0);
}

TEST_F(ExecutorRetryLifecycleTest, OverallBackoffBudgetCapsSleeps) {
  auto src = MakeTinySource();
  Database target("dw");
  Flow flow = MakeTinyFlow();
  fault::Injector::Instance().Enable(/*seed=*/3);
  fault::Injector::Instance().Configure("etl.exec.Selection",
                                        {0.0, 0, /*fail_from_hit=*/1, -1});
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 4;  // Raw sleeps 100+200+400 = 700ms...
  policy.total_backoff_budget_millis = 50.0;  // ...bounded to 50ms total.
  Timer timer;
  Executor executor(src.get(), &target);
  auto result = executor.Run(flow, policy, nullptr, nullptr);
  double elapsed_ms = timer.ElapsedMicros() / 1000.0;
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(IsLifecycleError(result.status()));  // A real operator fault.
  EXPECT_LT(elapsed_ms, 600.0);
}

// ---- transactional deployment under a lifecycle ---------------------------

InformationRequirement RevenueIr() {
  InformationRequirement ir;
  ir.id = "ir_revenue";
  ir.name = "revenue";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
       md::AggFunc::kSum});
  ir.dimensions.push_back({"Part.p_name"});
  ir.dimensions.push_back({"Supplier.s_name"});
  return ir;
}

class DeployLifecycleTest : public ::testing::Test {
 protected:
  DeployLifecycleTest()
      : onto_(ontology::BuildTpchOntology()),
        mapping_(ontology::BuildTpchMappings()),
        interpreter_(&onto_, &mapping_) {
    EXPECT_TRUE(datagen::PopulateTpch(&src_, {0.005, 23}).ok());
    auto design = interpreter_.Interpret(RevenueIr());
    EXPECT_TRUE(design.ok()) << design.status();
    design_ = std::move(*design);
  }

  /// Seeds target + metadata with pre-existing content and returns the
  /// outcome of a transactional deploy under `ctx`.
  DeploymentOutcome DeployUnder(const ExecContext* ctx, bool best_effort,
                                uint64_t* target_fp_before,
                                uint64_t* meta_fp_before,
                                storage::Database* target,
                                docstore::DocumentStore* meta) {
    storage::TableSchema legacy("legacy");
    EXPECT_TRUE(
        legacy.AddColumn({"id", storage::DataType::kInt64, false}).ok());
    Table* t = *target->CreateTable(std::move(legacy));
    EXPECT_TRUE(t->Insert({Value::Int(7)}).ok());
    json::Object doc;
    doc.emplace_back("_id", json::Value("onto"));
    EXPECT_TRUE(meta->GetOrCreate("ontologies")
                    ->Upsert("onto", json::Value(std::move(doc)))
                    .ok());
    *target_fp_before = target->Fingerprint();
    *meta_fp_before = meta->Fingerprint();
    DeployOptions options;
    options.context = ctx;
    options.best_effort = best_effort;
    options.metadata = meta;
    Deployer dep(&src_, target);
    auto outcome =
        dep.DeployTransactional(design_.schema, design_.flow, mapping_,
                                options);
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    return std::move(*outcome);
  }

  ontology::Ontology onto_;
  ontology::SourceMapping mapping_;
  Interpreter interpreter_;
  storage::Database src_;
  interpreter::PartialDesign design_;
};

TEST_F(DeployLifecycleTest, ExpiredDeadlineFailsBeforeAnythingMutates) {
  storage::Database target;
  docstore::DocumentStore meta;
  uint64_t target_fp = 0, meta_fp = 0;
  ExecContext ctx(Deadline::After(0.0));
  DeploymentOutcome outcome =
      DeployUnder(&ctx, /*best_effort=*/false, &target_fp, &meta_fp, &target,
                  &meta);
  EXPECT_FALSE(outcome.success);
  ASSERT_TRUE(outcome.failure.has_value());
  EXPECT_EQ(outcome.failure->stage, "generate");
  EXPECT_TRUE(outcome.failure->cause.IsDeadlineExceeded())
      << outcome.failure->cause;
  EXPECT_EQ(target.Fingerprint(), target_fp);
  EXPECT_EQ(meta.Fingerprint(), meta_fp);
}

TEST_F(DeployLifecycleTest, BudgetTripMidEtlRollsEverythingBack) {
  storage::Database target;
  docstore::DocumentStore meta;
  uint64_t target_fp = 0, meta_fp = 0;
  // Far too small for the revenue flow: trips inside the ETL stage after
  // the DDL already created tables.
  ExecContext ctx(CancellationToken(), Deadline::Infinite(),
                  {/*max_rows_materialized=*/10, 0, 0});
  DeploymentOutcome outcome =
      DeployUnder(&ctx, /*best_effort=*/false, &target_fp, &meta_fp, &target,
                  &meta);
  EXPECT_FALSE(outcome.success);
  ASSERT_TRUE(outcome.failure.has_value());
  EXPECT_EQ(outcome.failure->stage, "etl");
  EXPECT_TRUE(outcome.failure->cause.IsResourceExhausted())
      << outcome.failure->cause;
  EXPECT_TRUE(outcome.failure->rolled_back);
  EXPECT_EQ(target.Fingerprint(), target_fp);
  EXPECT_EQ(meta.Fingerprint(), meta_fp);
}

TEST_F(DeployLifecycleTest, LifecycleErrorBypassesBestEffortMode) {
  storage::Database target;
  docstore::DocumentStore meta;
  uint64_t target_fp = 0, meta_fp = 0;
  ExecContext ctx(CancellationToken(), Deadline::Infinite(),
                  {/*max_rows_materialized=*/10, 0, 0});
  // best_effort would normally keep completed dimension tables; an
  // abandoned request must roll back fully regardless.
  DeploymentOutcome outcome =
      DeployUnder(&ctx, /*best_effort=*/true, &target_fp, &meta_fp, &target,
                  &meta);
  EXPECT_FALSE(outcome.success);
  EXPECT_FALSE(outcome.partial);
  ASSERT_TRUE(outcome.failure.has_value());
  EXPECT_TRUE(outcome.failure->rolled_back);
  EXPECT_TRUE(outcome.failure->kept_tables.empty());
  EXPECT_EQ(target.Fingerprint(), target_fp);
  EXPECT_EQ(meta.Fingerprint(), meta_fp);
}

TEST_F(DeployLifecycleTest, CancelledMidDeployRollsBack) {
  storage::Database target;
  docstore::DocumentStore meta;
  uint64_t target_fp = 0, meta_fp = 0;
  // Cancel from a watcher thread while the deployment runs. Whether the
  // deploy finishes first (tiny data) or is interrupted, the invariant
  // holds: success XOR full rollback — never a half-deployed warehouse.
  CancellationToken token;
  ExecContext ctx(token, Deadline::Infinite());
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.Cancel("watcher pulled the plug");
  });
  DeploymentOutcome outcome =
      DeployUnder(&ctx, /*best_effort=*/false, &target_fp, &meta_fp, &target,
                  &meta);
  canceller.join();
  if (!outcome.success) {
    ASSERT_TRUE(outcome.failure.has_value());
    EXPECT_TRUE(outcome.failure->cause.IsCancelled())
        << outcome.failure->cause;
    EXPECT_EQ(target.Fingerprint(), target_fp);
    EXPECT_EQ(meta.Fingerprint(), meta_fp);
  }
}

// The acceptance scenario: a deliberately slow flow (TPC-H at 4x the usual
// test scale) with a 50ms deadline fails promptly with kDeadlineExceeded,
// leaves no half-deployed warehouse, and the same run is resumable at the
// executor level via the existing Checkpoint/Resume.
class SlowFlowDeadlineTest : public ::testing::Test {
 protected:
  SlowFlowDeadlineTest()
      : onto_(ontology::BuildTpchOntology()),
        mapping_(ontology::BuildTpchMappings()),
        interpreter_(&onto_, &mapping_) {
    EXPECT_TRUE(datagen::PopulateTpch(&src_, {0.02, 23}).ok());
    auto design = interpreter_.Interpret(RevenueIr());
    EXPECT_TRUE(design.ok()) << design.status();
    design_ = std::move(*design);
  }

  ontology::Ontology onto_;
  ontology::SourceMapping mapping_;
  Interpreter interpreter_;
  storage::Database src_;
  interpreter::PartialDesign design_;
};

TEST_F(SlowFlowDeadlineTest, FiftyMsDeadlineFailsPromptlyAndResumes) {
  storage::Database target;
  Executor executor(&src_, &target);
  ExecContext ctx(Deadline::After(50.0));
  Checkpoint checkpoint;
  Timer timer;
  auto result = executor.Run(design_.flow, {}, &checkpoint, &ctx);
  double elapsed_ms = timer.ElapsedMicros() / 1000.0;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
  // "Promptly": the full run takes multiple seconds at this scale; the
  // per-batch checks must stop it well before that (generous CI bound).
  EXPECT_LT(elapsed_ms, 3000.0);
  ASSERT_TRUE(checkpoint.valid);
  auto resumed = executor.Resume(design_.flow, &checkpoint);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->recovered);
  EXPECT_TRUE(target.HasTable("fact_table_revenue"));
}

TEST_F(SlowFlowDeadlineTest, FiftyMsDeadlineDeployLeavesNoTrace) {
  storage::Database target;
  uint64_t fp_before = target.Fingerprint();
  DeployOptions options;
  ExecContext ctx(Deadline::After(50.0));
  options.context = &ctx;
  Deployer dep(&src_, &target);
  auto outcome =
      dep.DeployTransactional(design_.schema, design_.flow, mapping_,
                              options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->success);
  ASSERT_TRUE(outcome->failure.has_value());
  EXPECT_TRUE(outcome->failure->cause.IsDeadlineExceeded())
      << outcome->failure->cause;
  EXPECT_EQ(target.Fingerprint(), fp_before);
  EXPECT_EQ(target.TableNames().size(), 0u);
}

// ---- admission control ----------------------------------------------------

int64_t CounterValue(const std::string& family, const obs::Labels& labels) {
  return obs::MetricsRegistry::Instance().counter(family, "", labels).value();
}

TEST(AdmissionTest, FastPathAdmitsUpToLimit) {
  AdmissionController gate({/*max_in_flight=*/2, /*max_queue_depth=*/0});
  int64_t admitted_before = CounterValue("quarry_admission_admitted_total", {});
  auto first = gate.Admit();
  auto second = gate.Admit();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(gate.in_flight(), 2);
  EXPECT_EQ(CounterValue("quarry_admission_admitted_total", {}),
            admitted_before + 2);
  first->Release();
  EXPECT_EQ(gate.in_flight(), 1);
  second->Release();
  EXPECT_EQ(gate.in_flight(), 0);
  second->Release();  // Idempotent.
  EXPECT_EQ(gate.in_flight(), 0);
}

TEST(AdmissionTest, FullQueueShedsWithOverloaded) {
  AdmissionController gate({/*max_in_flight=*/1, /*max_queue_depth=*/0});
  int64_t shed_before = CounterValue("quarry_admission_shed_total",
                                     {{"reason", "queue_full"}});
  auto held = gate.Admit();
  ASSERT_TRUE(held.ok());
  auto rejected = gate.Admit();
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsOverloaded()) << rejected.status();
  EXPECT_EQ(CounterValue("quarry_admission_shed_total",
                         {{"reason", "queue_full"}}),
            shed_before + 1);
}

TEST(AdmissionTest, QueueTimeoutShedsWithOverloaded) {
  AdmissionController gate({/*max_in_flight=*/1, /*max_queue_depth=*/4,
                            /*queue_timeout_millis=*/20.0});
  int64_t shed_before = CounterValue("quarry_admission_shed_total",
                                     {{"reason", "queue_timeout"}});
  auto held = gate.Admit();
  ASSERT_TRUE(held.ok());
  Timer timer;
  auto timed_out = gate.Admit();
  double waited_ms = timer.ElapsedMicros() / 1000.0;
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.status().IsOverloaded()) << timed_out.status();
  EXPECT_GE(waited_ms, 15.0);
  EXPECT_EQ(CounterValue("quarry_admission_shed_total",
                         {{"reason", "queue_timeout"}}),
            shed_before + 1);
  EXPECT_EQ(gate.queue_depth(), 0);
}

TEST(AdmissionTest, WaiterAdmittedWhenSlotFreesFifo) {
  AdmissionController gate({/*max_in_flight=*/1, /*max_queue_depth=*/4});
  auto held = gate.Admit();
  ASSERT_TRUE(held.ok());

  std::atomic<int> order{0};
  std::atomic<int> first_rank{-1}, second_rank{-1};
  std::thread first([&] {
    auto ticket = gate.Admit();
    EXPECT_TRUE(ticket.ok());
    first_rank = order.fetch_add(1);
  });
  while (gate.queue_depth() < 1) std::this_thread::yield();
  std::thread second([&] {
    auto ticket = gate.Admit();
    EXPECT_TRUE(ticket.ok());
    second_rank = order.fetch_add(1);
    // Ticket released at scope exit unblocks nothing further.
  });
  while (gate.queue_depth() < 2) std::this_thread::yield();

  held->Release();  // First queued waiter gets the slot first.
  first.join();
  second.join();
  EXPECT_EQ(first_rank.load(), 0);
  EXPECT_EQ(second_rank.load(), 1);
  EXPECT_EQ(gate.in_flight(), 0);
  EXPECT_EQ(gate.queue_depth(), 0);
}

TEST(AdmissionTest, CancellationUnparksQueuedWaiter) {
  AdmissionController gate({/*max_in_flight=*/1, /*max_queue_depth=*/4});
  int64_t cancelled_before =
      CounterValue("quarry_admission_cancelled_total", {});
  auto held = gate.Admit();
  ASSERT_TRUE(held.ok());

  CancellationToken token;
  ExecContext ctx(token, Deadline::Infinite());
  Status waiter_status;
  std::thread waiter([&] {
    auto ticket = gate.Admit(&ctx);
    waiter_status = ticket.status();
  });
  while (gate.queue_depth() < 1) std::this_thread::yield();
  token.Cancel("caller left");
  waiter.join();
  EXPECT_TRUE(waiter_status.IsCancelled()) << waiter_status;
  EXPECT_EQ(CounterValue("quarry_admission_cancelled_total", {}),
            cancelled_before + 1);
  EXPECT_EQ(gate.queue_depth(), 0);
}

TEST(AdmissionTest, DeadlineExpiryWhileQueued) {
  AdmissionController gate({/*max_in_flight=*/1, /*max_queue_depth=*/4});
  int64_t deadline_before =
      CounterValue("quarry_admission_deadline_total", {});
  auto held = gate.Admit();
  ASSERT_TRUE(held.ok());
  ExecContext ctx(Deadline::After(15.0));
  auto expired = gate.Admit(&ctx);
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded()) << expired.status();
  EXPECT_EQ(CounterValue("quarry_admission_deadline_total", {}),
            deadline_before + 1);
}

// ---- Quarry Submit* end-to-end --------------------------------------------

class SubmitTest : public ::testing::Test {
 protected:
  SubmitTest() {
    EXPECT_TRUE(datagen::PopulateTpch(&src_, {0.005, 23}).ok());
    core::QuarryConfig config;
    config.admission.max_in_flight = 1;
    config.admission.max_queue_depth = 0;  // Shed immediately under load.
    auto quarry = core::Quarry::Create(ontology::BuildTpchOntology(),
                                       ontology::BuildTpchMappings(), &src_,
                                       config);
    EXPECT_TRUE(quarry.ok()) << quarry.status();
    quarry_ = std::move(*quarry);
  }

  storage::Database src_;
  std::unique_ptr<core::Quarry> quarry_;
};

TEST_F(SubmitTest, SubmitRequirementAndDeployEndToEnd) {
  auto outcome =
      quarry_->SubmitRequirement(RevenueIr());
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(quarry_->requirements().size(), 1u);
  storage::Database target;
  auto deploy = quarry_->SubmitDeploy(&target);
  ASSERT_TRUE(deploy.ok()) << deploy.status();
  EXPECT_TRUE(deploy->success);
  EXPECT_TRUE(target.HasTable("fact_table_revenue"));
  // The gate is fully released after each call.
  EXPECT_EQ(quarry_->admission().in_flight(), 0);
}

TEST_F(SubmitTest, OverloadedGateShedsSubmit) {
  // Occupy the single slot directly, as a long-running request would.
  auto held = quarry_->admission().Admit();
  ASSERT_TRUE(held.ok());
  auto shed = quarry_->SubmitRequirement(RevenueIr());
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsOverloaded()) << shed.status();
  held->Release();
  auto ok = quarry_->SubmitRequirement(RevenueIr());
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST_F(SubmitTest, CancelledSubmitNeverMutatesTheDesign) {
  CancellationToken token;
  token.Cancel("never mind");
  ExecContext ctx(token, Deadline::Infinite());
  auto cancelled =
      quarry_->SubmitRequirement(RevenueIr(), &ctx);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled()) << cancelled.status();
  EXPECT_EQ(quarry_->requirements().size(), 0u);
  EXPECT_EQ(quarry_->admission().in_flight(), 0);
}

TEST_F(SubmitTest, ConcurrentSubmittersSerializeSafely) {
  // Two threads race SubmitRequirement through a 1-slot gate with no
  // queue: exactly one integrates, the other is shed with kOverloaded or
  // (if the first finished already) also succeeds. Run under TSan this
  // exercises the submit serialization for data races.
  std::atomic<int> succeeded{0}, overloaded{0};
  auto submit = [&](const std::string& id) {
    InformationRequirement ir = RevenueIr();
    ir.id = id;
    ir.name = "revenue_" + id;
    auto result = quarry_->SubmitRequirement(ir);
    if (result.ok()) {
      succeeded.fetch_add(1);
    } else {
      EXPECT_TRUE(result.status().IsOverloaded()) << result.status();
      overloaded.fetch_add(1);
    }
  };
  std::thread a([&] { submit("ir_a"); });
  std::thread b([&] { submit("ir_b"); });
  a.join();
  b.join();
  EXPECT_GE(succeeded.load(), 1);
  EXPECT_EQ(succeeded.load() + overloaded.load(), 2);
  EXPECT_EQ(quarry_->requirements().size(),
            static_cast<size_t>(succeeded.load()));
}

}  // namespace
}  // namespace quarry
