file(REMOVE_RECURSE
  "CMakeFiles/quarryctl.dir/quarryctl.cpp.o"
  "CMakeFiles/quarryctl.dir/quarryctl.cpp.o.d"
  "quarryctl"
  "quarryctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarryctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
