// Post-deployment usage (paper §2.4: deployed designs are "available for
// further user-preferred tunings and use"): latency of roll-up cube
// queries over the deployed star schema, by grouping arity and filter.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/quarry.h"
#include "datagen/tpch.h"
#include "olap/cube_query.h"
#include "ontology/tpch_ontology.h"

namespace {

struct Env {
  quarry::storage::Database source{"tpch"};
  std::unique_ptr<quarry::core::Quarry> quarry;
  quarry::storage::Database warehouse;
  std::unique_ptr<quarry::olap::CubeQueryEngine> engine;

  Env() {
    if (!quarry::datagen::PopulateTpch(&source, {0.01, 19}).ok()) {
      std::abort();
    }
    auto q = quarry::core::Quarry::Create(
        quarry::ontology::BuildTpchOntology(),
        quarry::ontology::BuildTpchMappings(), &source);
    if (!q.ok()) std::abort();
    quarry = std::move(*q);
    if (!quarry
             ->AddRequirementFromQuery(
                 "ANALYZE revenue ON Lineitem MEASURE revenue = "
                 "Lineitem.l_extendedprice * (1 - Lineitem.l_discount) SUM "
                 "BY Part.p_type, Supplier.s_name, Orders.o_orderdate")
             .ok()) {
      std::abort();
    }
    if (!quarry->Deploy(&warehouse).ok()) std::abort();
    engine = std::make_unique<quarry::olap::CubeQueryEngine>(
        &quarry->schema(), &quarry->mapping(), &warehouse);
  }
};

Env& SharedEnv() {
  static Env* env = new Env();
  return *env;
}

void RunQuery(benchmark::State& state, const quarry::olap::CubeQuery& query) {
  Env& env = SharedEnv();
  size_t rows = 0;
  for (auto _ : state) {
    auto result = env.engine->Execute(query);
    if (!result.ok()) std::abort();
    rows = result->rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}

void BM_RollUpOneDim(benchmark::State& state) {
  quarry::olap::CubeQuery query;
  query.fact = "fact_table_revenue";
  query.group_by = {"p_type"};
  query.measures = {{"revenue", quarry::md::AggFunc::kSum, ""}};
  RunQuery(state, query);
}
BENCHMARK(BM_RollUpOneDim)->Unit(benchmark::kMillisecond);

void BM_RollUpTwoDims(benchmark::State& state) {
  quarry::olap::CubeQuery query;
  query.fact = "fact_table_revenue";
  query.group_by = {"p_type", "s_name"};
  query.measures = {{"revenue", quarry::md::AggFunc::kSum, ""}};
  RunQuery(state, query);
}
BENCHMARK(BM_RollUpTwoDims)->Unit(benchmark::kMillisecond);

void BM_SlicedRollUp(benchmark::State& state) {
  quarry::olap::CubeQuery query;
  query.fact = "fact_table_revenue";
  query.group_by = {"s_name"};
  query.measures = {{"revenue", quarry::md::AggFunc::kSum, ""}};
  query.filters = {"p_type = 'SMALL'"};
  RunQuery(state, query);
}
BENCHMARK(BM_SlicedRollUp)->Unit(benchmark::kMillisecond);

void BM_FactLocalGroupBy(benchmark::State& state) {
  quarry::olap::CubeQuery query;
  query.fact = "fact_table_revenue";
  query.group_by = {"o_orderdate"};  // grain column: no dimension join
  query.measures = {{"revenue", quarry::md::AggFunc::kSum, ""},
                    {"revenue", quarry::md::AggFunc::kCount, "n"}};
  RunQuery(state, query);
}
BENCHMARK(BM_FactLocalGroupBy)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("OLAP: cube-query latency on the deployed warehouse "
              "(fact at (part,supplier,orderdate) grain, sf=0.01)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
