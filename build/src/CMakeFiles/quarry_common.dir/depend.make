# Empty dependencies file for quarry_common.
# This may be replaced when dependencies are built.
