// Demo scenario "DW design" (paper §3): a business user with no knowledge
// of the underlying sources explores the domain ontology through the
// Requirements Elicitor, accepts its suggestions, and obtains an initial
// validated DW design — printing the same artifacts the paper's Figure 4
// shows (xRQ in, partial xMD + xLM out).

#include <cstdio>
#include <iostream>

#include "core/quarry.h"
#include "datagen/tpch.h"
#include "etl/xlm.h"
#include "interpreter/interpreter.h"
#include "ontology/tpch_ontology.h"
#include "requirements/requirement.h"
#include "xml/xml.h"

namespace {

int Fail(const quarry::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

}  // namespace

int main() {
  quarry::storage::Database source("tpch");
  if (auto s = quarry::datagen::PopulateTpch(&source, {0.02, 3}); !s.ok()) {
    return Fail(s);
  }
  auto quarry = quarry::core::Quarry::Create(
      quarry::ontology::BuildTpchOntology(),
      quarry::ontology::BuildTpchMappings(), &source);
  if (!quarry.ok()) return Fail(quarry.status());
  quarry::req::Elicitor& elicitor = (*quarry)->elicitor();

  // 1. "What could I analyze?" — fact candidates over the whole ontology.
  std::cout << "=== subjects of analysis (fact candidates) ===\n";
  for (const auto& f : elicitor.SuggestFacts()) {
    std::printf("  %-10s score=%5.2f  numeric props=%d  to-one fanout=%d\n",
                f.concept_id.c_str(), f.score, f.numeric_properties,
                f.functional_out_degree);
  }
  std::string focus = elicitor.SuggestFacts().front().concept_id;
  std::cout << "user picks focus: " << focus << "\n\n";

  // 2. Measures of the focus.
  std::cout << "=== suggested measures for " << focus << " ===\n";
  auto measures = elicitor.SuggestMeasures(focus);
  if (!measures.ok()) return Fail(measures.status());
  for (const auto& m : *measures) {
    std::printf("  %-28s score=%.1f\n", m.property_id.c_str(), m.score);
  }

  // 3. Analysis dimensions, as in the paper: "the system then automatically
  //    suggests useful dimensions (e.g., Supplier, Nation, Part)".
  std::cout << "\n=== suggested dimensions for " << focus << " ===\n";
  auto dims = elicitor.SuggestDimensions(focus);
  if (!dims.ok()) return Fail(dims.status());
  for (const auto& d : *dims) {
    std::printf("  %-10s hops=%d  attributes: ", d.concept_id.c_str(),
                d.hops);
    for (const std::string& p : d.descriptive_properties) {
      std::cout << p << " ";
    }
    std::cout << "\n";
  }

  // 4. The user accepts suggestions; the elicitor assembles + validates.
  auto ir = elicitor.BuildRequirement(
      "ir_explored", "explored_revenue", focus,
      {{"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
        quarry::md::AggFunc::kSum}},
      {{"Part.p_name"}, {"Supplier.s_name"}},
      {{"Nation.n_name", "=", "SPAIN"}});
  if (!ir.ok()) return Fail(ir.status());

  std::cout << "\n=== xRQ (the requirement as Quarry stores it) ===\n"
            << quarry::xml::Write(*quarry::req::ToXrq(*ir));

  // 5. Interpret into partial designs, exactly Figure 4's right side.
  quarry::interpreter::Interpreter interpreter(&(*quarry)->ontology(),
                                               &(*quarry)->mapping());
  auto partial = interpreter.Interpret(*ir);
  if (!partial.ok()) return Fail(partial.status());
  std::cout << "\n=== partial MD schema (xMD) ===\n"
            << quarry::xml::Write(*partial->schema.ToXml());
  std::string xlm = quarry::xml::Write(*quarry::etl::FlowToXlm(partial->flow));
  std::cout << "\n=== partial ETL process (xLM, excerpt) ===\n"
            << xlm.substr(0, 1200) << "...\n";

  // 6. And the end of the pipeline: integrate + deploy.
  if (auto outcome = (*quarry)->AddRequirement(*ir); !outcome.ok()) {
    return Fail(outcome.status());
  }
  quarry::storage::Database warehouse;
  auto deployment = (*quarry)->Deploy(&warehouse);
  if (!deployment.ok()) return Fail(deployment.status());
  std::cout << "\ninitial DW deployed: " << deployment->tables_created
            << " tables, ETL loaded ";
  for (const auto& [table, rows] : deployment->etl.loaded) {
    std::cout << table << "=" << rows << " ";
  }
  std::cout << "\nelicitor tour finished OK\n";
  return 0;
}
