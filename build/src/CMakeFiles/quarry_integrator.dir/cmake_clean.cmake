file(REMOVE_RECURSE
  "CMakeFiles/quarry_integrator.dir/integrator/design_integrator.cc.o"
  "CMakeFiles/quarry_integrator.dir/integrator/design_integrator.cc.o.d"
  "CMakeFiles/quarry_integrator.dir/integrator/etl_integrator.cc.o"
  "CMakeFiles/quarry_integrator.dir/integrator/etl_integrator.cc.o.d"
  "CMakeFiles/quarry_integrator.dir/integrator/md_integrator.cc.o"
  "CMakeFiles/quarry_integrator.dir/integrator/md_integrator.cc.o.d"
  "CMakeFiles/quarry_integrator.dir/integrator/satisfiability.cc.o"
  "CMakeFiles/quarry_integrator.dir/integrator/satisfiability.cc.o.d"
  "libquarry_integrator.a"
  "libquarry_integrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_integrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
