# Empty dependencies file for dw_evolution.
# This may be replaced when dependencies are built.
