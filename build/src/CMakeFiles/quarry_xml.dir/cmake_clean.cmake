file(REMOVE_RECURSE
  "CMakeFiles/quarry_xml.dir/xml/xml.cc.o"
  "CMakeFiles/quarry_xml.dir/xml/xml.cc.o.d"
  "libquarry_xml.a"
  "libquarry_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
