// Quickstart: the paper's running example end to end.
//
// Builds the TPC-H source database and domain ontology, poses the Figure-3
// "revenue" information requirement ("Analyze the revenue ... per products
// that are ordered from Spain"), lets Quarry interpret + integrate + deploy
// it, and finally queries the freshly populated data warehouse.

#include <cstdio>
#include <iostream>

#include "core/quarry.h"
#include "datagen/tpch.h"
#include "ontology/tpch_ontology.h"

namespace {

using quarry::core::Quarry;
using quarry::req::InformationRequirement;

int Fail(const quarry::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

}  // namespace

int main() {
  // 1. Source layer: a TPC-H-style operational database.
  quarry::storage::Database source("tpch");
  quarry::datagen::TpchConfig data_config;
  data_config.scale_factor = 0.01;
  data_config.seed = 7;
  if (auto s = quarry::datagen::PopulateTpch(&source, data_config); !s.ok()) {
    return Fail(s);
  }
  std::cout << "source database: " << source.TotalRows()
            << " rows across " << source.num_tables() << " tables\n";

  // 2. Semantic layer: domain ontology + source schema mappings.
  auto quarry = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                               quarry::ontology::BuildTpchMappings(),
                               &source);
  if (!quarry.ok()) return Fail(quarry.status());

  // 3. An information requirement, in MD terms (paper Fig. 4 left).
  InformationRequirement ir;
  ir.id = "ir_revenue";
  ir.name = "revenue";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
       quarry::md::AggFunc::kSum});
  ir.dimensions.push_back({"Part.p_name"});
  ir.dimensions.push_back({"Supplier.s_name"});
  ir.slicers.push_back({"Nation.n_name", "=", "SPAIN"});

  auto outcome = (*quarry)->AddRequirement(ir);
  if (!outcome.ok()) return Fail(outcome.status());
  std::cout << "integrated requirement '" << ir.id << "': "
            << (*quarry)->schema().facts().size() << " fact(s), "
            << (*quarry)->schema().dimensions().size() << " dimension(s)\n";

  // 4. Deployment: DDL + ETL run against the embedded warehouse.
  quarry::storage::Database warehouse;
  auto deployment = (*quarry)->Deploy(&warehouse);
  if (!deployment.ok()) return Fail(deployment.status());
  std::cout << "deployed " << deployment->tables_created << " tables; ETL "
            << "processed " << deployment->etl.rows_processed << " rows in "
            << deployment->etl.total_millis << " ms\n";
  std::cout << "\n--- generated DDL (excerpt) ---\n"
            << deployment->ddl.substr(0, 400) << "...\n";

  // 5. Use the warehouse: top revenue rows with dimension context.
  const quarry::storage::Table& fact =
      **warehouse.GetTable("fact_table_revenue");
  const quarry::storage::Table& dim_part = **warehouse.GetTable("dim_Part");
  std::cout << "\nfact_table_revenue holds " << fact.num_rows()
            << " rows at grain (part, supplier); sample:\n";
  auto p_idx = *fact.schema().ColumnIndex("p_partkey");
  auto r_idx = *fact.schema().ColumnIndex("revenue");
  int shown = 0;
  for (const quarry::storage::Row& row : fact.rows()) {
    if (shown++ == 5) break;
    std::string part_name = "?";
    auto hits = dim_part.ScanEquals("p_partkey", row[p_idx]);
    if (!hits.empty()) {
      part_name =
          dim_part.rows()[hits[0]]
                  [*dim_part.schema().ColumnIndex("p_name")]
                      .ToString();
    }
    std::printf("  %-28s revenue=%.2f\n", part_name.c_str(),
                row[r_idx].as_double());
  }
  std::cout << "\nquickstart finished OK\n";
  return 0;
}
