#include "storage/generation_persist.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"
#include "common/wal.h"
#include "json/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace quarry::storage::persist {

namespace {

namespace fs = std::filesystem;

constexpr char kSegmentMagic[4] = {'Q', 'S', 'E', 'G'};
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderSize = 20;  ///< magic + version + crc + len.
constexpr char kManifestName[] = "MANIFEST.json";
constexpr char kAnnexName[] = "annex.seg";
constexpr char kManifestFormat[] = "quarry-generation";
constexpr char kQuarantineSuffix[] = ".quarantined";

// --- metrics (process-lifetime registry pointers) --------------------------

obs::Counter& PersistTotal() {
  return obs::MetricsRegistry::Instance().counter(
      "quarry_generation_persist_total",
      "Warehouse generations committed to disk (manifest rename landed)");
}
obs::Counter& PersistFailuresTotal() {
  return obs::MetricsRegistry::Instance().counter(
      "quarry_generation_persist_failures_total",
      "Generation persists that failed before commit (torn publish on disk, "
      "discarded by the next recovery)");
}
obs::Counter& PersistBytesTotal() {
  return obs::MetricsRegistry::Instance().counter(
      "quarry_generation_persist_bytes_total",
      "Bytes of segment + manifest data written by generation persists");
}
obs::Histogram& PersistMicros() {
  return obs::MetricsRegistry::Instance().histogram(
      "quarry_generation_persist_micros",
      "Latency of a successful generation persist (serialize + fsyncs)",
      obs::LatencyBucketsMicros());
}
obs::Counter& RecoverTotal() {
  return obs::MetricsRegistry::Instance().counter(
      "quarry_generation_recover_total",
      "Warehouse recovery passes over a generation store directory");
}
obs::Counter& RecoverQuarantinedTotal() {
  return obs::MetricsRegistry::Instance().counter(
      "quarry_generation_recover_quarantined_total",
      "Committed generations quarantined by recovery (CRC / fingerprint / "
      "annex validation failure — corruption, not a crash artifact)");
}
obs::Counter& RecoverDiscardedTotal() {
  return obs::MetricsRegistry::Instance().counter(
      "quarry_generation_recover_discarded_total",
      "Torn (uncommitted) generation directories discarded by recovery");
}
obs::Histogram& RecoverMicros() {
  return obs::MetricsRegistry::Instance().histogram(
      "quarry_generation_recover_micros",
      "Latency of a warehouse recovery pass (scan + validate + republish)",
      obs::LatencyBucketsMicros());
}

// --- little-endian framing helpers -----------------------------------------

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}
void AppendString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked cursor over serialized bytes; every read reports
/// truncation as kParseError (corruption class).
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> U8() {
    QUARRY_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  Result<uint32_t> U32() {
    QUARRY_RETURN_NOT_OK(Need(4));
    uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    QUARRY_RETURN_NOT_OK(Need(8));
    uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  Result<std::string> String() {
    QUARRY_ASSIGN_OR_RETURN(uint32_t len, U32());
    QUARRY_RETURN_NOT_OK(Need(len));
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Need(size_t n) {
    if (bytes_.size() - pos_ < n) {
      return Status::ParseError("segment truncated at byte " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

// --- segment framing --------------------------------------------------------

std::string WrapSegment(std::string_view payload) {
  std::string out;
  out.reserve(kSegmentHeaderSize + payload.size());
  out.append(kSegmentMagic, 4);
  AppendU32(&out, kSegmentVersion);
  AppendU32(&out, wal::Crc32(payload.data(), payload.size()));
  AppendU64(&out, payload.size());
  out.append(payload);
  return out;
}

Result<std::string_view> UnwrapSegment(std::string_view bytes) {
  if (bytes.size() < kSegmentHeaderSize) {
    return Status::ParseError("segment shorter than its header");
  }
  if (std::memcmp(bytes.data(), kSegmentMagic, 4) != 0) {
    return Status::ParseError("bad segment magic");
  }
  ByteReader reader(bytes.substr(4));
  QUARRY_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
  if (version != kSegmentVersion) {
    return Status::ParseError("unknown segment version " +
                              std::to_string(version));
  }
  QUARRY_ASSIGN_OR_RETURN(uint32_t crc, reader.U32());
  QUARRY_ASSIGN_OR_RETURN(uint64_t len, reader.U64());
  std::string_view payload = bytes.substr(kSegmentHeaderSize);
  if (payload.size() != len) {
    return Status::ParseError("segment payload length mismatch (header says " +
                              std::to_string(len) + ", file holds " +
                              std::to_string(payload.size()) + ")");
  }
  if (wal::Crc32(payload.data(), payload.size()) != crc) {
    return Status::ParseError("segment CRC mismatch");
  }
  return payload;
}

// --- table (de)serialization ------------------------------------------------

/// Value type tags in row storage. Appending only — the on-disk format.
enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagDouble = 3,
  kTagString = 4,
  kTagDate = 5,
};

std::string SerializeTablePayload(const Table& table) {
  const TableSchema& schema = table.schema();
  std::string out;
  AppendString(&out, schema.name());
  AppendU32(&out, static_cast<uint32_t>(schema.columns().size()));
  for (const Column& col : schema.columns()) {
    AppendString(&out, col.name);
    AppendU8(&out, static_cast<uint8_t>(col.type));
    AppendU8(&out, col.nullable ? 1 : 0);
  }
  AppendU32(&out, static_cast<uint32_t>(schema.primary_key().size()));
  for (const std::string& pk : schema.primary_key()) AppendString(&out, pk);
  AppendU32(&out, static_cast<uint32_t>(schema.foreign_keys().size()));
  for (const ForeignKey& fk : schema.foreign_keys()) {
    AppendU32(&out, static_cast<uint32_t>(fk.columns.size()));
    for (const std::string& c : fk.columns) AppendString(&out, c);
    AppendString(&out, fk.referenced_table);
    AppendU32(&out, static_cast<uint32_t>(fk.referenced_columns.size()));
    for (const std::string& c : fk.referenced_columns) AppendString(&out, c);
  }
  AppendU64(&out, table.num_rows());
  for (const Row& row : table.rows()) {
    for (const Value& value : row) {
      if (value.is_null()) {
        AppendU8(&out, kTagNull);
      } else if (value.is_bool()) {
        AppendU8(&out, kTagBool);
        AppendU8(&out, value.as_bool() ? 1 : 0);
      } else if (value.is_int()) {
        AppendU8(&out, kTagInt);
        AppendU64(&out, static_cast<uint64_t>(value.as_int()));
      } else if (value.is_double()) {
        AppendU8(&out, kTagDouble);
        uint64_t bits;
        double d = value.as_double();
        std::memcpy(&bits, &d, 8);
        AppendU64(&out, bits);
      } else if (value.is_string()) {
        AppendU8(&out, kTagString);
        AppendString(&out, value.as_string());
      } else {
        AppendU8(&out, kTagDate);
        AppendU32(&out, static_cast<uint32_t>(value.as_date_days()));
      }
    }
  }
  return out;
}

Result<Value> ReadValue(ByteReader* reader) {
  QUARRY_ASSIGN_OR_RETURN(uint8_t tag, reader->U8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      QUARRY_ASSIGN_OR_RETURN(uint8_t b, reader->U8());
      return Value::Bool(b != 0);
    }
    case kTagInt: {
      QUARRY_ASSIGN_OR_RETURN(uint64_t v, reader->U64());
      return Value::Int(static_cast<int64_t>(v));
    }
    case kTagDouble: {
      QUARRY_ASSIGN_OR_RETURN(uint64_t bits, reader->U64());
      double d;
      std::memcpy(&d, &bits, 8);
      return Value::Double(d);
    }
    case kTagString: {
      QUARRY_ASSIGN_OR_RETURN(std::string s, reader->String());
      return Value::String(std::move(s));
    }
    case kTagDate: {
      QUARRY_ASSIGN_OR_RETURN(uint32_t days, reader->U32());
      return Value::Date(static_cast<int32_t>(days));
    }
    default:
      return Status::ParseError("unknown value tag " + std::to_string(tag));
  }
}

Status ParseSegment(std::string_view bytes, TableSchema* schema,
                    std::vector<Row>* rows) {
  QUARRY_ASSIGN_OR_RETURN(std::string_view payload, UnwrapSegment(bytes));
  ByteReader reader(payload);
  QUARRY_ASSIGN_OR_RETURN(std::string name, reader.String());
  *schema = TableSchema(std::move(name));
  QUARRY_ASSIGN_OR_RETURN(uint32_t ncols, reader.U32());
  for (uint32_t i = 0; i < ncols; ++i) {
    Column col;
    QUARRY_ASSIGN_OR_RETURN(col.name, reader.String());
    QUARRY_ASSIGN_OR_RETURN(uint8_t type, reader.U8());
    if (type > static_cast<uint8_t>(DataType::kDate)) {
      return Status::ParseError("unknown column type tag " +
                                std::to_string(type));
    }
    col.type = static_cast<DataType>(type);
    QUARRY_ASSIGN_OR_RETURN(uint8_t nullable, reader.U8());
    col.nullable = nullable != 0;
    QUARRY_RETURN_NOT_OK(schema->AddColumn(std::move(col)));
  }
  QUARRY_ASSIGN_OR_RETURN(uint32_t npk, reader.U32());
  if (npk > 0) {
    std::vector<std::string> pk(npk);
    for (uint32_t i = 0; i < npk; ++i) {
      QUARRY_ASSIGN_OR_RETURN(pk[i], reader.String());
    }
    QUARRY_RETURN_NOT_OK(schema->SetPrimaryKey(std::move(pk)));
  }
  QUARRY_ASSIGN_OR_RETURN(uint32_t nfk, reader.U32());
  for (uint32_t i = 0; i < nfk; ++i) {
    ForeignKey fk;
    QUARRY_ASSIGN_OR_RETURN(uint32_t nc, reader.U32());
    fk.columns.resize(nc);
    for (uint32_t j = 0; j < nc; ++j) {
      QUARRY_ASSIGN_OR_RETURN(fk.columns[j], reader.String());
    }
    QUARRY_ASSIGN_OR_RETURN(fk.referenced_table, reader.String());
    QUARRY_ASSIGN_OR_RETURN(uint32_t nr, reader.U32());
    fk.referenced_columns.resize(nr);
    for (uint32_t j = 0; j < nr; ++j) {
      QUARRY_ASSIGN_OR_RETURN(fk.referenced_columns[j], reader.String());
    }
    QUARRY_RETURN_NOT_OK(schema->AddForeignKey(std::move(fk)));
  }
  QUARRY_ASSIGN_OR_RETURN(uint64_t nrows, reader.U64());
  rows->clear();
  rows->reserve(nrows);
  for (uint64_t r = 0; r < nrows; ++r) {
    Row row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      QUARRY_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
      row.push_back(std::move(v));
    }
    rows->push_back(std::move(row));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("trailing bytes after the last row");
  }
  return Status::OK();
}

// --- small file / path helpers ----------------------------------------------

std::string SegmentFileName(size_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "t%04zu.seg", index);
  return buf;
}

std::string FingerprintToHex(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

Result<uint64_t> FingerprintFromHex(const std::string& hex) {
  if (hex.size() != 16 ||
      hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return Status::ParseError("malformed fingerprint '" + hex + "'");
  }
  return std::strtoull(hex.c_str(), nullptr, 16);
}

Result<std::string> ReadWholeFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::ExecutionError("cannot read '" + path.string() + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    return Status::ExecutionError("read of '" + path.string() + "' failed");
  }
  return ss.str();
}

Status RemoveAll(const fs::path& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return Status::ExecutionError("cannot remove '" + path.string() +
                                  "': " + ec.message());
  }
  return Status::OK();
}

/// Parses "<prefix>gen-<digits>" into the generation id; nullopt otherwise.
std::optional<uint64_t> ParseGenerationDirName(const std::string& name,
                                               bool* quarantined) {
  std::string stem = name;
  *quarantined = false;
  if (stem.size() > std::strlen(kQuarantineSuffix) &&
      stem.compare(stem.size() - std::strlen(kQuarantineSuffix),
                   std::string::npos, kQuarantineSuffix) == 0) {
    *quarantined = true;
    stem.resize(stem.size() - std::strlen(kQuarantineSuffix));
  }
  if (stem.rfind("gen-", 0) != 0) return std::nullopt;
  std::string digits = stem.substr(4);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

/// Writes a deliberately truncated segment straight to the final path — the
/// artifact a crashed non-atomic writer would leave. Only ever used by the
/// "storage.generation.persist.segment.torn" fault site.
void PlantTornSegment(const fs::path& path, std::string_view segment) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(segment.data(),
            static_cast<std::streamsize>(segment.size() / 2));
}

Status PersistGenerationImpl(const fs::path& gen_dir,
                             const std::string& store_dir, uint64_t id,
                             const Database& db, uint64_t fingerprint,
                             std::string_view annex_bytes, uint64_t* bytes) {
  // Leftovers of an earlier failed attempt at this id (the torn publish a
  // crash would have left) are discarded first, so retries commit cleanly.
  QUARRY_RETURN_NOT_OK(RemoveAll(gen_dir));
  std::error_code ec;
  fs::create_directories(gen_dir, ec);
  if (ec) {
    return Status::ExecutionError("cannot create '" + gen_dir.string() +
                                  "': " + ec.message());
  }

  json::Array table_entries;
  std::vector<std::string> names = db.TableNames();
  for (size_t i = 0; i < names.size(); ++i) {
    QUARRY_ASSIGN_OR_RETURN(const Table* table, db.GetTable(names[i]));
    std::string segment = WrapSegment(SerializeTablePayload(*table));
    const fs::path seg_path = gen_dir / SegmentFileName(i);
    QUARRY_FAULT_POINT("storage.generation.persist.segment");
    if (fault::Enabled()) {
      if (Status torn = fault::Check("storage.generation.persist.segment.torn");
          !torn.ok()) {
        PlantTornSegment(seg_path, segment);
        return torn;
      }
    }
    QUARRY_RETURN_NOT_OK(wal::AtomicWriteFile(seg_path.string(), segment));
    *bytes += segment.size();
    json::Object entry;
    entry.emplace_back("name", json::Value(names[i]));
    entry.emplace_back("file", json::Value(SegmentFileName(i)));
    entry.emplace_back("bytes",
                       json::Value(static_cast<int64_t>(segment.size())));
    entry.emplace_back(
        "crc", json::Value(static_cast<int64_t>(
                   wal::Crc32(segment.data(), segment.size()))));
    table_entries.emplace_back(std::move(entry));
  }

  json::Object manifest;
  manifest.emplace_back("format", json::Value(kManifestFormat));
  manifest.emplace_back("version",
                        json::Value(static_cast<int64_t>(kSegmentVersion)));
  manifest.emplace_back("name", json::Value(db.name()));
  manifest.emplace_back("generation",
                        json::Value(static_cast<int64_t>(id)));
  manifest.emplace_back("fingerprint",
                        json::Value(FingerprintToHex(fingerprint)));
  manifest.emplace_back("tables", json::Value(std::move(table_entries)));
  if (!annex_bytes.empty()) {
    std::string annex_segment = WrapSegment(annex_bytes);
    QUARRY_FAULT_POINT("storage.generation.persist.annex");
    QUARRY_RETURN_NOT_OK(
        wal::AtomicWriteFile((gen_dir / kAnnexName).string(), annex_segment));
    *bytes += annex_segment.size();
    json::Object annex_entry;
    annex_entry.emplace_back("file", json::Value(kAnnexName));
    annex_entry.emplace_back(
        "bytes", json::Value(static_cast<int64_t>(annex_segment.size())));
    annex_entry.emplace_back(
        "crc", json::Value(static_cast<int64_t>(wal::Crc32(
                   annex_segment.data(), annex_segment.size()))));
    manifest.emplace_back("annex", json::Value(std::move(annex_entry)));
  }

  // The commit point: everything the manifest names is already durable, so
  // the atomic rename of MANIFEST.json flips the directory from "torn, will
  // be discarded" to "committed, will be recovered".
  std::string manifest_bytes =
      json::Write(json::Value(std::move(manifest)), /*pretty=*/true);
  QUARRY_FAULT_POINT("storage.generation.persist.manifest");
  QUARRY_RETURN_NOT_OK(wal::AtomicWriteFile(
      (gen_dir / kManifestName).string(), manifest_bytes));
  *bytes += manifest_bytes.size();

  // Make the gen-<id> directory entry itself durable. A crash in this
  // window (manifest committed, store dir not yet fsynced) may surface the
  // generation after restart even though the publish was never
  // acknowledged — the standard unacknowledged-write semantics of a WAL
  // record written but not fsynced.
  QUARRY_FAULT_POINT("storage.generation.persist.sync");
  QUARRY_RETURN_NOT_OK(wal::SyncDirectory(store_dir));
  return Status::OK();
}

/// Validation failures mean corruption (quarantine); everything else is an
/// IO-class failure recovery treats as fatal-but-rerunnable.
bool IsCorruption(const Status& status) {
  return status.IsParseError() || status.IsValidationError();
}

}  // namespace

std::string GenerationDirName(uint64_t id) {
  return "gen-" + std::to_string(id);
}

std::string SerializeTable(const Table& table) {
  return WrapSegment(SerializeTablePayload(table));
}

Result<std::unique_ptr<Table>> DeserializeTable(std::string_view bytes) {
  TableSchema schema;
  std::vector<Row> rows;
  QUARRY_RETURN_NOT_OK(ParseSegment(bytes, &schema, &rows));
  auto table = std::make_unique<Table>(std::move(schema));
  QUARRY_RETURN_NOT_OK(table->InsertAll(std::move(rows)));
  return table;
}

Status PersistGeneration(const std::string& store_dir, uint64_t id,
                         const Database& db, uint64_t fingerprint,
                         std::string_view annex_bytes) {
  QUARRY_NAMED_SPAN(span, "generation_store.persist");
  QUARRY_SPAN_ATTR(span, "generation", std::to_string(id));
  const auto start = std::chrono::steady_clock::now();
  uint64_t bytes = 0;
  Status status =
      PersistGenerationImpl(fs::path(store_dir) / GenerationDirName(id),
                            store_dir, id, db, fingerprint, annex_bytes,
                            &bytes);
  if (!status.ok()) {
    PersistFailuresTotal().Increment();
    return status.WithContext("persisting generation " + std::to_string(id) +
                              " under '" + store_dir + "'");
  }
  PersistTotal().Increment();
  PersistBytesTotal().Increment(static_cast<int64_t>(bytes));
  PersistMicros().Observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return Status::OK();
}

Result<LoadedGeneration> LoadGeneration(const std::string& store_dir,
                                        uint64_t id) {
  const fs::path gen_dir = fs::path(store_dir) / GenerationDirName(id);
  QUARRY_FAULT_POINT("storage.generation.recover.read");
  QUARRY_ASSIGN_OR_RETURN(std::string manifest_bytes,
                          ReadWholeFile(gen_dir / kManifestName));
  QUARRY_ASSIGN_OR_RETURN(json::Value manifest, json::Parse(manifest_bytes));
  if (manifest.GetString("format") != kManifestFormat) {
    return Status::ParseError("manifest of generation " + std::to_string(id) +
                              " has an unknown format");
  }
  const json::Value* gen_field = manifest.Find("generation");
  if (gen_field == nullptr || !gen_field->is_int() ||
      static_cast<uint64_t>(gen_field->as_int()) != id) {
    return Status::ValidationError("manifest generation id does not match "
                                   "directory gen-" +
                                   std::to_string(id));
  }
  QUARRY_ASSIGN_OR_RETURN(uint64_t fingerprint,
                          FingerprintFromHex(manifest.GetString("fingerprint")));

  const json::Value* tables = manifest.Find("tables");
  if (tables == nullptr || !tables->is_array()) {
    return Status::ParseError("manifest of generation " + std::to_string(id) +
                              " lacks a tables list");
  }
  // Segments named by a committed manifest were durable before the commit;
  // any mismatch below is corruption, not a crash artifact.
  auto db = std::make_unique<Database>(manifest.GetString("name"));
  std::vector<std::pair<TableSchema, std::vector<Row>>> parsed;
  for (const json::Value& entry : tables->as_array()) {
    const std::string file = entry.GetString("file");
    const fs::path seg_path = gen_dir / file;
    std::error_code ec;
    if (!fs::exists(seg_path, ec)) {
      return Status::ValidationError("segment '" + file + "' of generation " +
                                     std::to_string(id) + " is missing");
    }
    QUARRY_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(seg_path));
    const json::Value* crc = entry.Find("crc");
    const json::Value* size = entry.Find("bytes");
    if (crc == nullptr || size == nullptr ||
        static_cast<int64_t>(bytes.size()) != size->as_int() ||
        static_cast<int64_t>(wal::Crc32(bytes.data(), bytes.size())) !=
            crc->as_int()) {
      return Status::ValidationError("segment '" + file + "' of generation " +
                                     std::to_string(id) +
                                     " fails its manifest CRC");
    }
    TableSchema schema;
    std::vector<Row> rows;
    QUARRY_RETURN_NOT_OK(
        ParseSegment(bytes, &schema, &rows)
            .WithContext("segment '" + file + "' of generation " +
                         std::to_string(id)));
    if (schema.name() != entry.GetString("name")) {
      return Status::ValidationError("segment '" + file +
                                     "' holds table '" + schema.name() +
                                     "', manifest says '" +
                                     entry.GetString("name") + "'");
    }
    parsed.emplace_back(std::move(schema), std::move(rows));
  }

  // CreateTable wants FK-referenced tables to exist first; commit parsed
  // tables in dependency order (star schemas: dimensions before facts).
  std::vector<bool> done(parsed.size(), false);
  size_t remaining = parsed.size();
  while (remaining > 0) {
    size_t progressed = 0;
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (done[i]) continue;
      bool ready = true;
      for (const ForeignKey& fk : parsed[i].first.foreign_keys()) {
        if (!db->HasTable(fk.referenced_table)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      QUARRY_ASSIGN_OR_RETURN(Table * table,
                              db->CreateTable(std::move(parsed[i].first)));
      QUARRY_RETURN_NOT_OK(table->InsertAll(std::move(parsed[i].second)));
      done[i] = true;
      ++progressed;
      --remaining;
    }
    if (progressed == 0) {
      return Status::ValidationError(
          "generation " + std::to_string(id) +
          " has foreign keys onto tables outside the manifest");
    }
  }

  if (db->Fingerprint() != fingerprint) {
    return Status::ValidationError(
        "generation " + std::to_string(id) +
        " fails its content fingerprint: manifest says " +
        FingerprintToHex(fingerprint) + ", tables hash to " +
        FingerprintToHex(db->Fingerprint()));
  }

  LoadedGeneration out;
  out.id = id;
  out.db = std::move(db);
  out.fingerprint = fingerprint;
  if (const json::Value* annex = manifest.Find("annex"); annex != nullptr) {
    const fs::path annex_path = gen_dir / annex->GetString("file");
    QUARRY_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(annex_path));
    const json::Value* crc = annex->Find("crc");
    if (crc == nullptr ||
        static_cast<int64_t>(wal::Crc32(bytes.data(), bytes.size())) !=
            crc->as_int()) {
      return Status::ValidationError("annex of generation " +
                                     std::to_string(id) +
                                     " fails its manifest CRC");
    }
    QUARRY_ASSIGN_OR_RETURN(std::string_view payload, UnwrapSegment(bytes));
    out.annex_bytes = std::string(payload);
  }
  return out;
}

Status RemoveGenerationDir(const std::string& store_dir, uint64_t id) {
  QUARRY_FAULT_POINT("storage.generation.persist.remove");
  return RemoveAll(fs::path(store_dir) / GenerationDirName(id));
}

Result<LoadedGeneration> RecoverNewestGeneration(
    const std::string& store_dir, const GenerationValidator& validate,
    GenerationRecoveryStats* stats) {
  QUARRY_NAMED_SPAN(span, "generation_store.recover");
  const auto start = std::chrono::steady_clock::now();
  RecoverTotal().Increment();
  GenerationRecoveryStats local;
  GenerationRecoveryStats& out = stats != nullptr ? *stats : local;
  out = GenerationRecoveryStats();

  QUARRY_FAULT_POINT("storage.generation.recover.scan");
  std::vector<uint64_t> candidates;
  uint64_t max_seen = 0;
  {
    std::error_code ec;
    fs::directory_iterator it(store_dir, ec);
    if (ec) {
      return Status::ExecutionError("cannot scan generation store '" +
                                    store_dir + "': " + ec.message());
    }
    for (const fs::directory_entry& entry : it) {
      if (!entry.is_directory()) continue;
      bool quarantined = false;
      std::optional<uint64_t> id =
          ParseGenerationDirName(entry.path().filename().string(),
                                 &quarantined);
      if (!id.has_value()) continue;
      max_seen = std::max(max_seen, *id);
      if (!quarantined) candidates.push_back(*id);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](uint64_t a, uint64_t b) { return a > b; });

  LoadedGeneration recovered;
  size_t next_candidate = 0;
  for (; next_candidate < candidates.size(); ++next_candidate) {
    const uint64_t id = candidates[next_candidate];
    const fs::path gen_dir = fs::path(store_dir) / GenerationDirName(id);
    ++out.generations_scanned;
    std::error_code ec;
    if (!fs::exists(gen_dir / kManifestName, ec)) {
      // No commit record: a torn publish. O(1) discard.
      QUARRY_FAULT_POINT("storage.generation.recover.cleanup");
      QUARRY_RETURN_NOT_OK(RemoveAll(gen_dir));
      ++out.torn_discarded;
      RecoverDiscardedTotal().Increment();
      continue;
    }
    Result<LoadedGeneration> loaded = LoadGeneration(store_dir, id);
    Status verdict = loaded.status();
    if (verdict.ok() && validate != nullptr) verdict = validate(*loaded);
    if (verdict.ok()) {
      recovered = std::move(*loaded);
      ++next_candidate;
      break;
    }
    if (!IsCorruption(verdict)) {
      // IO-class failure: abort like a crash mid-recovery — nothing was
      // quarantined or removed wrongly, so re-running converges.
      return verdict.WithContext("recovering generation " +
                                 std::to_string(id));
    }
    // Committed but invalid: corruption. Set it aside for forensics and
    // fall back to the next-newest intact generation.
    const fs::path quarantine =
        fs::path(store_dir) / (GenerationDirName(id) + kQuarantineSuffix);
    QUARRY_RETURN_NOT_OK(RemoveAll(quarantine));
    fs::rename(gen_dir, quarantine, ec);
    if (ec) {
      return Status::ExecutionError("cannot quarantine '" +
                                    gen_dir.string() + "': " + ec.message());
    }
    out.quarantined.push_back({id, quarantine.string(), verdict.ToString()});
    RecoverQuarantinedTotal().Increment();
  }

  // Generations older than the recovered one are superseded: the store
  // would never serve or retire them, so dropping them here is what keeps
  // restarts from leaking disk.
  for (; next_candidate < candidates.size(); ++next_candidate) {
    QUARRY_FAULT_POINT("storage.generation.recover.cleanup");
    QUARRY_RETURN_NOT_OK(RemoveAll(
        fs::path(store_dir) / GenerationDirName(candidates[next_candidate])));
    ++out.older_removed;
  }

  recovered.max_seen_id = max_seen;
  out.recovered_generation = recovered.id;
  out.recovered_fingerprint = recovered.fingerprint;
  out.annex_recovered = !recovered.annex_bytes.empty();
  if (recovered.db != nullptr) {
    out.tables_loaded = recovered.db->num_tables();
    out.rows_loaded = recovered.db->TotalRows();
  }
  RecoverMicros().Observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return recovered;
}

std::string GenerationRecoveryStats::ToString() const {
  std::ostringstream ss;
  ss << "scanned=" << generations_scanned
     << " recovered_generation=" << recovered_generation
     << " tables=" << tables_loaded << " rows=" << rows_loaded
     << " torn_discarded=" << torn_discarded
     << " older_removed=" << older_removed
     << " quarantined=" << quarantined.size()
     << " annex=" << (annex_recovered ? "yes" : "no");
  for (const QuarantinedGeneration& q : quarantined) {
    ss << " [gen-" << q.id << " -> " << q.path << ": " << q.reason << "]";
  }
  return ss.str();
}

}  // namespace quarry::storage::persist
