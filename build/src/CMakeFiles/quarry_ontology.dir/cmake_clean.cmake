file(REMOVE_RECURSE
  "CMakeFiles/quarry_ontology.dir/ontology/mapping.cc.o"
  "CMakeFiles/quarry_ontology.dir/ontology/mapping.cc.o.d"
  "CMakeFiles/quarry_ontology.dir/ontology/ontology.cc.o"
  "CMakeFiles/quarry_ontology.dir/ontology/ontology.cc.o.d"
  "CMakeFiles/quarry_ontology.dir/ontology/tpch_ontology.cc.o"
  "CMakeFiles/quarry_ontology.dir/ontology/tpch_ontology.cc.o.d"
  "libquarry_ontology.a"
  "libquarry_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
