#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"

namespace quarry::obs {

namespace {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Small sequential thread ids: trace viewers group rows by tid, and a
// stable 1..N numbering reads better than pthread handles.
std::atomic<uint32_t> g_next_tid{1};
thread_local uint32_t tls_tid = 0;
thread_local uint32_t tls_depth = 0;

uint32_t CurrentTid() {
  if (tls_tid == 0) {
    tls_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_tid;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Micros(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

TraceRecorder::TraceRecorder() = default;

TraceRecorder& TraceRecorder::Instance() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Start(size_t capacity) {
  // Start/Stop are control-plane calls (test setup, CLI entry): they must
  // not race with spans in flight on other threads.
  enabled_.store(false, std::memory_order_relaxed);
  if (capacity == 0) capacity = 1;
  if (capacity_ < capacity) {
    // Leak any previous (smaller) array — see the field comment.
    slots_ = new Slot[capacity];
    capacity_ = capacity;
  }
  size_t used = std::min(next_.load(std::memory_order_relaxed), capacity_);
  for (size_t i = 0; i < used; ++i) {
    slots_[i].ready.store(false, std::memory_order_relaxed);
    slots_[i].record = SpanRecord{};  // free the strings
  }
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ns_ = MonotonicNanos();
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_relaxed);
}

double TraceRecorder::NowMicros() const {
  return static_cast<double>(MonotonicNanos() - epoch_ns_) / 1000.0;
}

void TraceRecorder::Record(SpanRecord record) {
  if (!enabled()) return;
  size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    // Keep the recorded prefix instead of wrapping: the beginning of a run
    // is what the trace viewer needs intact.
    MetricsRegistry::Instance()
        .counter("quarry_trace_spans_dropped_total",
                 "Spans that found the trace buffer full")
        .Increment();
    return;
  }
  Slot& slot = slots_[idx];
  slot.record = std::move(record);
  slot.ready.store(true, std::memory_order_release);
}

size_t TraceRecorder::size() const {
  return std::min(next_.load(std::memory_order_relaxed), capacity_);
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  std::vector<SpanRecord> out;
  size_t used = size();
  out.reserve(used);
  for (size_t i = 0; i < used; ++i) {
    const Slot& slot = slots_[i];
    if (!slot.ready.load(std::memory_order_acquire)) continue;
    out.push_back(slot.record);
  }
  return out;
}

std::string TraceRecorder::ChromeTraceJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"" << JsonEscape(span.name)
        << "\", \"cat\": \"quarry\", \"ph\": \"X\", \"ts\": "
        << Micros(span.start_us) << ", \"dur\": " << Micros(span.dur_us)
        << ", \"pid\": 1, \"tid\": " << span.tid << ", \"args\": {";
    out << "\"depth\": " << span.depth;
    for (const SpanAttr& attr : span.attrs) {
      out << ", \"" << JsonEscape(attr.key) << "\": \""
          << JsonEscape(attr.value) << "\"";
    }
    out << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

bool TraceRecorder::WriteChromeTrace(const std::string& path,
                                     std::string* error) const {
  std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && error != nullptr) *error = "short write on '" + path + "'";
  return ok;
}

Span::Span(std::string name) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  if (!recorder.enabled()) return;
  active_ = true;
  name_ = std::move(name);
  depth_ = tls_depth++;
  start_us_ = recorder.NowMicros();
}

Span::~Span() {
  if (!active_) return;
  --tls_depth;
  TraceRecorder& recorder = TraceRecorder::Instance();
  SpanRecord record;
  record.name = std::move(name_);
  record.start_us = start_us_;
  record.dur_us = recorder.NowMicros() - start_us_;
  record.tid = CurrentTid();
  record.depth = depth_;
  record.attrs = std::move(attrs_);
  recorder.Record(std::move(record));
}

void Span::SetAttr(std::string_view key, std::string_view value) {
  if (!active_) return;
  attrs_.push_back({std::string(key), std::string(value)});
}

void Span::SetAttr(std::string_view key, int64_t value) {
  if (!active_) return;
  attrs_.push_back({std::string(key), std::to_string(value)});
}

void Span::SetAttr(std::string_view key, double value) {
  if (!active_) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  attrs_.push_back({std::string(key), buf});
}

}  // namespace quarry::obs
