file(REMOVE_RECURSE
  "libquarry_json.a"
)
