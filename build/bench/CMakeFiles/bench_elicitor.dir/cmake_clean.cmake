file(REMOVE_RECURSE
  "CMakeFiles/bench_elicitor.dir/bench_elicitor.cc.o"
  "CMakeFiles/bench_elicitor.dir/bench_elicitor.cc.o.d"
  "bench_elicitor"
  "bench_elicitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elicitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
