#include "storage/generation_store.h"

#include <utility>

#include "common/fault_injection.h"
#include "obs/metrics.h"

namespace quarry::storage {

namespace {

/// Process-wide pin gauge: Pins may outlive their store, so the gauge they
/// decrement on release must too (registry pointers are process-lifetime).
obs::Gauge& PinsGauge() {
  return obs::MetricsRegistry::Instance().gauge(
      "quarry_serving_pins_active",
      "Reader pins currently holding a warehouse generation");
}

}  // namespace

GenerationStore::Pin& GenerationStore::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    Release();
    db_ = std::move(other.db_);
    annex_ = std::move(other.annex_);
    pin_count_ = std::move(other.pin_count_);
    generation_ = other.generation_;
    other.db_ = nullptr;
    other.generation_ = 0;
  }
  return *this;
}

void GenerationStore::Pin::Release() {
  if (db_ == nullptr) return;
  db_ = nullptr;
  annex_ = nullptr;
  generation_ = 0;
  if (pin_count_ != nullptr) {
    pin_count_->fetch_sub(1, std::memory_order_acq_rel);
    PinsGauge().Add(-1.0);
    pin_count_ = nullptr;
  }
}

GenerationStore::GenerationStore(std::string name) : name_(std::move(name)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  published_total_ =
      &reg.counter("quarry_serving_generations_published_total",
                   "Warehouse generations atomically published");
  publish_failures_total_ =
      &reg.counter("quarry_serving_publish_failures_total",
                   "Publishes refused at the storage.generation.publish "
                   "fault site (scratch discarded, old generation kept)");
  retired_total_ = &reg.counter("quarry_serving_generations_retired_total",
                                "Warehouse generations released by the store");
  retires_deferred_total_ =
      &reg.counter("quarry_serving_retires_deferred_total",
                   "Retires deferred by the storage.generation.retire fault "
                   "site (retried on later publishes)");
  live_gauge_ = &reg.gauge("quarry_serving_generations_live",
                           "Generations the store currently references");
  pins_gauge_ = &PinsGauge();
}

uint64_t GenerationStore::current_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.id;
}

GenerationStore::Pin GenerationStore::MakePin(const Generation& gen) const {
  Pin pin;
  pin.db_ = gen.db;
  pin.annex_ = gen.annex;
  pin.generation_ = gen.id;
  pin.pin_count_ = pin_count_;
  pin_count_->fetch_add(1, std::memory_order_acq_rel);
  pins_gauge_->Add(1.0);
  return pin;
}

Result<GenerationStore::Pin> GenerationStore::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_.id == 0) {
    return Status::NotFound("warehouse '" + name_ +
                            "' has no published generation");
  }
  return MakePin(current_);
}

Result<GenerationStore::Pin> GenerationStore::AcquirePrevious() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (previous_.id == 0) {
    return Status::NotFound("warehouse '" + name_ +
                            "' has no previous generation to serve stale");
  }
  return MakePin(previous_);
}

std::unique_ptr<Database> GenerationStore::BeginBuild() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_.id == 0) return std::make_unique<Database>(name_);
  return current_.db->Clone();
}

std::unique_ptr<Database> GenerationStore::BeginEmptyBuild() const {
  return std::make_unique<Database>(name_);
}

void GenerationStore::RetireLocked(Generation gen) {
  if (gen.id == 0) return;
  // A real system would delete files / unmap segments here — the injected
  // fault models that step failing. The generation is then parked on the
  // deferred list (still accounted live, never leaked) and retried on the
  // next publish.
  if (fault::Enabled() &&
      !fault::Check("storage.generation.retire").ok()) {
    ++stats_.retires_deferred;
    retires_deferred_total_->Increment();
    deferred_retire_.push_back(std::move(gen));
    return;
  }
  ++stats_.retired;
  retired_total_->Increment();
  // Dropping the shared_ptr is the release; readers still pinned on this
  // generation keep it alive until their Pin goes away.
}

void GenerationStore::UpdateGaugesLocked() const {
  int live = (current_.id != 0 ? 1 : 0) + (previous_.id != 0 ? 1 : 0) +
             static_cast<int>(deferred_retire_.size());
  live_gauge_->Set(static_cast<double>(live));
}

Result<uint64_t> GenerationStore::Publish(std::unique_ptr<Database> next,
                                          std::shared_ptr<const void> annex) {
  if (next == nullptr) {
    return Status::InvalidArgument("cannot publish a null generation");
  }
  // Fingerprint outside the lock: it scans every table, and the scratch is
  // still private to this thread.
  const uint64_t fingerprint = next->Fingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  if (fault::Enabled()) {
    if (Status injected = fault::Check("storage.generation.publish");
        !injected.ok()) {
      ++stats_.publish_failures;
      publish_failures_total_->Increment();
      // `next` dies with this scope — that IS the rollback: no store state
      // changed, readers keep the old generation.
      return injected.WithContext("publishing generation of warehouse '" +
                                  name_ + "'");
    }
  }
  Generation gen;
  gen.id = next_id_++;
  gen.db = std::shared_ptr<const Database>(std::move(next));
  gen.annex = std::move(annex);
  fingerprints_[gen.id] = fingerprint;

  RetireLocked(std::move(previous_));
  previous_ = std::move(current_);
  current_ = std::move(gen);
  ++stats_.published;
  published_total_->Increment();

  // Retry earlier deferred retires while we hold the lock anyway.
  std::vector<Generation> still_deferred;
  for (Generation& d : deferred_retire_) {
    if (fault::Enabled() &&
        !fault::Check("storage.generation.retire").ok()) {
      ++stats_.retires_deferred;
      retires_deferred_total_->Increment();
      still_deferred.push_back(std::move(d));
      continue;
    }
    ++stats_.retired;
    retired_total_->Increment();
  }
  deferred_retire_ = std::move(still_deferred);
  UpdateGaugesLocked();
  return current_.id;
}

Result<uint64_t> GenerationStore::PublishedFingerprint(
    uint64_t generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fingerprints_.find(generation);
  if (it == fingerprints_.end()) {
    return Status::NotFound("generation " + std::to_string(generation) +
                            " was never published in warehouse '" + name_ +
                            "'");
  }
  return it->second;
}

int GenerationStore::DrainDeferredRetires() {
  std::lock_guard<std::mutex> lock(mu_);
  int drained = 0;
  std::vector<Generation> still_deferred;
  for (Generation& d : deferred_retire_) {
    if (fault::Enabled() &&
        !fault::Check("storage.generation.retire").ok()) {
      ++stats_.retires_deferred;
      retires_deferred_total_->Increment();
      still_deferred.push_back(std::move(d));
      continue;
    }
    ++stats_.retired;
    retired_total_->Increment();
    ++drained;
  }
  deferred_retire_ = std::move(still_deferred);
  UpdateGaugesLocked();
  return drained;
}

GenerationStoreStats GenerationStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GenerationStoreStats out = stats_;
  out.live_generations = (current_.id != 0 ? 1 : 0) +
                         (previous_.id != 0 ? 1 : 0) +
                         static_cast<int>(deferred_retire_.size());
  out.active_pins = pin_count_->load(std::memory_order_acquire);
  return out;
}

}  // namespace quarry::storage
