#include <gtest/gtest.h>

#include "common/prng.h"
#include "storage/csv.h"
#include "storage/database.h"
#include "storage/schema.h"
#include "storage/sql.h"
#include "storage/table.h"
#include "storage/value.h"

namespace quarry::storage {
namespace {

TEST(ValueTest, NullBehaviour) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.SqlEquals(Value::Null()));
  EXPECT_TRUE(v.SameAs(Value::Null()));
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_FALSE(v.type().ok());
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Double(1.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
  EXPECT_TRUE(Value::Int(3).SqlEquals(Value::Double(3.0)));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueTest, DateRoundtrip) {
  Value d = Value::DateYmd(1995, 3, 15);
  EXPECT_TRUE(d.is_date());
  EXPECT_EQ(d.ToString(), "1995-03-15");
  auto parsed = Value::Parse("1995-03-15", DataType::kDate);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(d.SameAs(*parsed));
}

TEST(ValueTest, CivilDateMath) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  int y, m, d;
  CivilFromDays(DaysFromCivil(2000, 2, 29), &y, &m, &d);
  EXPECT_EQ(y, 2000);
  EXPECT_EQ(m, 2);
  EXPECT_EQ(d, 29);
}

TEST(ValueTest, ParseByType) {
  EXPECT_EQ(Value::Parse("42", DataType::kInt64)->as_int(), 42);
  EXPECT_DOUBLE_EQ(Value::Parse("2.5", DataType::kDouble)->as_double(), 2.5);
  EXPECT_TRUE(Value::Parse("true", DataType::kBool)->as_bool());
  EXPECT_EQ(Value::Parse("hi", DataType::kString)->as_string(), "hi");
  EXPECT_FALSE(Value::Parse("x", DataType::kInt64).ok());
  EXPECT_FALSE(Value::Parse("2020-13-01", DataType::kDate).ok());
}

TEST(ValueTest, CastBetweenTypes) {
  EXPECT_DOUBLE_EQ(Value::Int(4).CastTo(DataType::kDouble)->as_double(), 4.0);
  EXPECT_EQ(Value::Double(4.9).CastTo(DataType::kInt64)->as_int(), 4);
  EXPECT_EQ(Value::Int(4).CastTo(DataType::kString)->as_string(), "4");
  EXPECT_TRUE(Value::Null().CastTo(DataType::kInt64)->is_null());
  EXPECT_FALSE(Value::DateYmd(2020, 1, 1).CastTo(DataType::kDouble).ok());
}

TableSchema MakePartSchema() {
  TableSchema schema("part");
  EXPECT_TRUE(schema.AddColumn({"p_partkey", DataType::kInt64, false}).ok());
  EXPECT_TRUE(schema.AddColumn({"p_name", DataType::kString, true}).ok());
  EXPECT_TRUE(
      schema.AddColumn({"p_retailprice", DataType::kDouble, true}).ok());
  EXPECT_TRUE(schema.SetPrimaryKey({"p_partkey"}).ok());
  return schema;
}

TEST(SchemaTest, DuplicateColumnRejected) {
  TableSchema schema("t");
  ASSERT_TRUE(schema.AddColumn({"a", DataType::kInt64, true}).ok());
  EXPECT_TRUE(schema.AddColumn({"a", DataType::kInt64, true})
                  .IsAlreadyExists());
}

TEST(SchemaTest, PrimaryKeyMustExist) {
  TableSchema schema("t");
  ASSERT_TRUE(schema.AddColumn({"a", DataType::kInt64, true}).ok());
  EXPECT_TRUE(schema.SetPrimaryKey({"zzz"}).IsNotFound());
}

TEST(SchemaTest, ForeignKeyArityChecked) {
  TableSchema schema("t");
  ASSERT_TRUE(schema.AddColumn({"a", DataType::kInt64, true}).ok());
  ForeignKey fk{{"a"}, "other", {"x", "y"}};
  EXPECT_TRUE(schema.AddForeignKey(fk).IsInvalidArgument());
}

TEST(TableTest, InsertValidatesArityAndTypes) {
  Table t(MakePartSchema());
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::String("bolt"),
                        Value::Double(9.99)})
                  .ok());
  EXPECT_TRUE(t.Insert({Value::Int(2)}).IsInvalidArgument());
  EXPECT_TRUE(t.Insert({Value::String("x"), Value::String("y"),
                        Value::Double(1)})
                  .IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, NotNullEnforced) {
  Table t(MakePartSchema());
  EXPECT_TRUE(
      t.Insert({Value::Null(), Value::String("x"), Value::Double(1)})
          .IsInvalidArgument());
}

TEST(TableTest, PrimaryKeyUniquenessEnforced) {
  Table t(MakePartSchema());
  ASSERT_TRUE(
      t.Insert({Value::Int(1), Value::String("a"), Value::Double(1)}).ok());
  EXPECT_TRUE(
      t.Insert({Value::Int(1), Value::String("b"), Value::Double(2)})
          .IsAlreadyExists());
}

TEST(TableTest, NumericWideningOnInsert) {
  Table t(MakePartSchema());
  ASSERT_TRUE(
      t.Insert({Value::Int(1), Value::String("a"), Value::Int(5)}).ok());
  EXPECT_TRUE(t.rows()[0][2].is_double());
  EXPECT_DOUBLE_EQ(t.rows()[0][2].as_double(), 5.0);
}

TEST(TableTest, IndexLookup) {
  Table t(MakePartSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::String("p" + std::to_string(i % 10)),
                          Value::Double(i * 1.5)})
                    .ok());
  }
  ASSERT_TRUE(t.CreateIndex({"p_name"}).ok());
  EXPECT_TRUE(t.HasIndex({"p_name"}));
  auto hits = t.IndexLookup({"p_name"}, {Value::String("p3")});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 10u);
  auto missing = t.IndexLookup({"p_name"}, {Value::String("nope")});
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
  EXPECT_TRUE(t.IndexLookup({"p_retailprice"}, {Value::Double(1.5)})
                  .status()
                  .IsNotFound());
}

TEST(TableTest, IndexBuiltAfterInsertSeesExistingRows) {
  Table t(MakePartSchema());
  ASSERT_TRUE(
      t.Insert({Value::Int(1), Value::String("a"), Value::Double(1)}).ok());
  ASSERT_TRUE(t.CreateIndex({"p_partkey"}).ok());
  ASSERT_TRUE(
      t.Insert({Value::Int(2), Value::String("b"), Value::Double(2)}).ok());
  EXPECT_EQ(t.IndexLookup({"p_partkey"}, {Value::Int(1)})->size(), 1u);
  EXPECT_EQ(t.IndexLookup({"p_partkey"}, {Value::Int(2)})->size(), 1u);
}

TEST(TableTest, ScanEquals) {
  Table t(MakePartSchema());
  ASSERT_TRUE(
      t.Insert({Value::Int(1), Value::String("a"), Value::Double(1)}).ok());
  ASSERT_TRUE(
      t.Insert({Value::Int(2), Value::String("a"), Value::Double(2)}).ok());
  EXPECT_EQ(t.ScanEquals("p_name", Value::String("a")).size(), 2u);
  EXPECT_TRUE(t.ScanEquals("bogus", Value::Int(0)).empty());
}

TEST(TableTest, SetCellUpdatesInPlace) {
  Table t(MakePartSchema());
  ASSERT_TRUE(
      t.Insert({Value::Int(1), Value::String("a"), Value::Null()}).ok());
  ASSERT_TRUE(t.SetCell(0, 2, Value::Double(3.5)).ok());
  EXPECT_DOUBLE_EQ(t.rows()[0][2].as_double(), 3.5);
  // Int widens to the double column.
  ASSERT_TRUE(t.SetCell(0, 2, Value::Int(4)).ok());
  EXPECT_DOUBLE_EQ(t.rows()[0][2].as_double(), 4.0);
  // Primary-key column refuses updates; so do bad indexes and bad types.
  EXPECT_TRUE(t.SetCell(0, 0, Value::Int(9)).IsInvalidArgument());
  EXPECT_TRUE(t.SetCell(5, 2, Value::Double(1)).IsInvalidArgument());
  EXPECT_TRUE(t.SetCell(0, 9, Value::Double(1)).IsInvalidArgument());
  EXPECT_TRUE(t.SetCell(0, 2, Value::String("x")).IsInvalidArgument());
  // Indexed columns refuse updates too.
  ASSERT_TRUE(t.CreateIndex({"p_name"}).ok());
  EXPECT_TRUE(t.SetCell(0, 1, Value::String("b")).IsInvalidArgument());
}

TEST(TableTest, AddColumnExtendsExistingRowsWithNull) {
  Table t(MakePartSchema());
  ASSERT_TRUE(
      t.Insert({Value::Int(1), Value::String("a"), Value::Double(1)}).ok());
  ASSERT_TRUE(t.AddColumn({"p_comment", DataType::kString, true}).ok());
  EXPECT_EQ(t.schema().num_columns(), 4u);
  EXPECT_TRUE(t.rows()[0][3].is_null());
  // New inserts must carry the new column.
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::String("b"), Value::Double(2),
                        Value::String("note")})
                  .ok());
  // NOT NULL columns cannot be added to a table (existing rows violate).
  EXPECT_TRUE(
      t.AddColumn({"p_extra", DataType::kInt64, false}).IsInvalidArgument());
  EXPECT_TRUE(
      t.AddColumn({"p_comment", DataType::kString, true}).IsAlreadyExists());
}

TEST(TableTest, TruncateClearsRowsAndIndexes) {
  Table t(MakePartSchema());
  ASSERT_TRUE(t.CreateIndex({"p_name"}).ok());
  ASSERT_TRUE(
      t.Insert({Value::Int(1), Value::String("a"), Value::Double(1)}).ok());
  t.Truncate();
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_TRUE(t.IndexLookup({"p_name"}, {Value::String("a")})->empty());
  // PK slot is free again after truncate.
  EXPECT_TRUE(
      t.Insert({Value::Int(1), Value::String("a"), Value::Double(1)}).ok());
}

TEST(DatabaseTest, CreateGetDrop) {
  Database db("demo");
  ASSERT_TRUE(db.CreateTable(MakePartSchema()).ok());
  EXPECT_TRUE(db.HasTable("part"));
  EXPECT_TRUE(db.CreateTable(MakePartSchema()).status().IsAlreadyExists());
  EXPECT_TRUE(db.GetTable("part").ok());
  EXPECT_TRUE(db.GetTable("nope").status().IsNotFound());
  EXPECT_TRUE(db.DropTable("part").ok());
  EXPECT_FALSE(db.HasTable("part"));
  EXPECT_TRUE(db.DropTable("part").IsNotFound());
}

TEST(DatabaseTest, ForeignKeyRequiresReferencedTable) {
  Database db;
  TableSchema orders("orders");
  ASSERT_TRUE(orders.AddColumn({"o_id", DataType::kInt64, false}).ok());
  ASSERT_TRUE(orders.AddColumn({"o_custkey", DataType::kInt64, true}).ok());
  ASSERT_TRUE(
      orders.AddForeignKey({{"o_custkey"}, "customer", {"c_id"}}).ok());
  EXPECT_TRUE(db.CreateTable(orders).status().IsNotFound());
}

TEST(DatabaseTest, ReferentialIntegrityCheck) {
  Database db;
  TableSchema customer("customer");
  ASSERT_TRUE(customer.AddColumn({"c_id", DataType::kInt64, false}).ok());
  ASSERT_TRUE(customer.SetPrimaryKey({"c_id"}).ok());
  auto ct = db.CreateTable(customer);
  ASSERT_TRUE(ct.ok());
  ASSERT_TRUE((*ct)->Insert({Value::Int(1)}).ok());

  TableSchema orders("orders");
  ASSERT_TRUE(orders.AddColumn({"o_id", DataType::kInt64, false}).ok());
  ASSERT_TRUE(orders.AddColumn({"o_custkey", DataType::kInt64, true}).ok());
  ASSERT_TRUE(
      orders.AddForeignKey({{"o_custkey"}, "customer", {"c_id"}}).ok());
  auto ot = db.CreateTable(orders);
  ASSERT_TRUE(ot.ok());
  ASSERT_TRUE((*ot)->Insert({Value::Int(10), Value::Int(1)}).ok());
  EXPECT_TRUE(db.CheckReferentialIntegrity().ok());

  // NULL FK is allowed.
  ASSERT_TRUE((*ot)->Insert({Value::Int(11), Value::Null()}).ok());
  EXPECT_TRUE(db.CheckReferentialIntegrity().ok());

  // Dangling FK detected.
  ASSERT_TRUE((*ot)->Insert({Value::Int(12), Value::Int(99)}).ok());
  EXPECT_TRUE(db.CheckReferentialIntegrity().IsValidationError());
}

// --- SQL front end -------------------------------------------------------

TEST(SqlTest, CreateTableLikePaperFigure3) {
  Database db;
  const char* ddl = R"sql(
CREATE DATABASE demo;
CREATE TABLE fact_table_revenue (
  Partsupp_PartsuppID BIGINT NOT NULL,
  Orders_OrdersID BIGINT NOT NULL,
  revenue double precision,
  PRIMARY KEY( Partsupp_PartsuppID, Orders_OrdersID )
);
)sql";
  auto report = ExecuteSql(&db, ddl);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->statements, 2);
  EXPECT_EQ(report->tables_created, 1);
  EXPECT_EQ(db.name(), "demo");
  auto table = db.GetTable("fact_table_revenue");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->schema().num_columns(), 3u);
  EXPECT_EQ((*table)->schema().primary_key().size(), 2u);
  EXPECT_EQ((*table)->schema().columns()[2].type, DataType::kDouble);
}

TEST(SqlTest, ForeignKeysAndIndexes) {
  Database db;
  const char* ddl = R"sql(
CREATE TABLE dim_part ( partID BIGINT NOT NULL, p_name VARCHAR(55),
                        PRIMARY KEY(partID) );
CREATE TABLE fact_rev ( partID BIGINT, revenue DOUBLE PRECISION,
  FOREIGN KEY (partID) REFERENCES dim_part (partID) );
CREATE INDEX idx_part ON fact_rev (partID);
)sql";
  auto report = ExecuteSql(&db, ddl);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->tables_created, 2);
  EXPECT_EQ(report->indexes_created, 1);
  EXPECT_TRUE((*db.GetTable("fact_rev"))->HasIndex({"partID"}));
}

TEST(SqlTest, InsertLiterals) {
  Database db;
  const char* script = R"sql(
CREATE TABLE t ( i BIGINT, d DOUBLE PRECISION, s VARCHAR(10), b BOOLEAN,
                 dt DATE );
INSERT INTO t VALUES (1, 2.5, 'it''s', TRUE, DATE '1995-03-15'),
                     (NULL, NULL, NULL, NULL, NULL);
)sql";
  auto report = ExecuteSql(&db, script);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->rows_inserted, 2);
  const Table& t = **db.GetTable("t");
  EXPECT_EQ(t.rows()[0][2].as_string(), "it's");
  EXPECT_EQ(t.rows()[0][4].ToString(), "1995-03-15");
  EXPECT_TRUE(t.rows()[1][0].is_null());
}

TEST(SqlTest, DropTableIfExists) {
  Database db;
  ASSERT_TRUE(ExecuteSql(&db, "CREATE TABLE t (a INT);").ok());
  EXPECT_TRUE(ExecuteSql(&db, "DROP TABLE IF EXISTS t;").ok());
  EXPECT_TRUE(ExecuteSql(&db, "DROP TABLE IF EXISTS t;").ok());
  EXPECT_TRUE(ExecuteSql(&db, "DROP TABLE t;").status().IsNotFound());
}

TEST(SqlTest, CommentsAndCaseInsensitivity) {
  Database db;
  const char* ddl =
      "-- a star schema\n"
      "create table T1 ( A bigint not null, primary key (A) );\n";
  EXPECT_TRUE(ExecuteSql(&db, ddl).ok());
  EXPECT_FALSE((*db.GetTable("T1"))->schema().columns()[0].nullable);
}

TEST(SqlTest, ParseErrors) {
  Database db;
  EXPECT_TRUE(ExecuteSql(&db, "CREATE TABLE (").status().IsParseError());
  EXPECT_TRUE(ExecuteSql(&db, "SELECT 1;").status().IsParseError());
  EXPECT_TRUE(
      ExecuteSql(&db, "CREATE TABLE t (a FANCYTYPE);").status().IsParseError());
  EXPECT_TRUE(ExecuteSql(&db, "CREATE TABLE t (a INT) garbage")
                  .status()
                  .IsParseError());
}

TEST(SqlTest, SchemaToDdlRoundtrips) {
  Database db;
  TableSchema dim("dim_part");
  ASSERT_TRUE(dim.AddColumn({"partID", DataType::kInt64, false}).ok());
  ASSERT_TRUE(dim.AddColumn({"p_name", DataType::kString, true}).ok());
  ASSERT_TRUE(dim.SetPrimaryKey({"partID"}).ok());
  ASSERT_TRUE(db.CreateTable(dim).ok());

  TableSchema schema("fact");
  ASSERT_TRUE(schema.AddColumn({"partID", DataType::kInt64, false}).ok());
  ASSERT_TRUE(schema.AddColumn({"revenue", DataType::kDouble, true}).ok());
  ASSERT_TRUE(schema.AddColumn({"ship", DataType::kDate, true}).ok());
  ASSERT_TRUE(schema.AddColumn({"flag", DataType::kBool, true}).ok());
  ASSERT_TRUE(schema.SetPrimaryKey({"partID"}).ok());
  ASSERT_TRUE(
      schema.AddForeignKey({{"partID"}, "dim_part", {"partID"}}).ok());

  std::string ddl = SchemaToDdl(schema);
  auto report = ExecuteSql(&db, ddl);
  ASSERT_TRUE(report.ok()) << report.status() << "\n" << ddl;
  const TableSchema& round = (*db.GetTable("fact"))->schema();
  EXPECT_EQ(round.num_columns(), 4u);
  EXPECT_EQ(round.primary_key(), schema.primary_key());
  ASSERT_EQ(round.foreign_keys().size(), 1u);
  EXPECT_EQ(round.foreign_keys()[0].referenced_table, "dim_part");
  EXPECT_EQ(round.columns()[2].type, DataType::kDate);
}

// --- CSV -----------------------------------------------------------------

TEST(CsvTest, RoundtripWithNullsAndQuoting) {
  Table t(MakePartSchema());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a,b \"q\"\nline"),
                        Value::Double(1.5)})
                  .ok());
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::Null(), Value::Null()}).ok());
  std::string csv = TableToCsv(t);
  Table t2(MakePartSchema());
  ASSERT_TRUE(LoadCsvInto(&t2, csv).ok());
  ASSERT_EQ(t2.num_rows(), 2u);
  EXPECT_EQ(t2.rows()[0][1].as_string(), "a,b \"q\"\nline");
  EXPECT_TRUE(t2.rows()[1][1].is_null());
  EXPECT_DOUBLE_EQ(t2.rows()[0][2].as_double(), 1.5);
}

TEST(CsvTest, HeaderMismatchRejected) {
  Table t(MakePartSchema());
  EXPECT_TRUE(LoadCsvInto(&t, "x,y,z\n").IsParseError());
  EXPECT_TRUE(LoadCsvInto(&t, "p_partkey,p_name\n").IsParseError());
}

TEST(CsvTest, TypeErrorsCarryLineNumbers) {
  Table t(MakePartSchema());
  Status s = LoadCsvInto(&t, "p_partkey,p_name,p_retailprice\nnotanint,a,1\n");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

// Property: random tables survive the CSV roundtrip.
class CsvRoundtripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundtripProperty, RandomTableRoundtrips) {
  Prng rng(GetParam() * 31 + 1);
  TableSchema schema("r");
  ASSERT_TRUE(schema.AddColumn({"i", DataType::kInt64, true}).ok());
  ASSERT_TRUE(schema.AddColumn({"d", DataType::kDouble, true}).ok());
  ASSERT_TRUE(schema.AddColumn({"s", DataType::kString, true}).ok());
  ASSERT_TRUE(schema.AddColumn({"dt", DataType::kDate, true}).ok());
  Table t(schema);
  for (int r = 0; r < 50; ++r) {
    Row row;
    row.push_back(rng.Chance(0.1) ? Value::Null()
                                  : Value::Int(rng.Uniform(-1000, 1000)));
    row.push_back(rng.Chance(0.1)
                      ? Value::Null()
                      : Value::Double(rng.Uniform(0, 1000) * 0.25));
    row.push_back(rng.Chance(0.1)
                      ? Value::Null()
                      : Value::String(rng.Word(6) + ",\"" + rng.Word(2)));
    row.push_back(rng.Chance(0.1)
                      ? Value::Null()
                      : Value::Date(static_cast<int32_t>(
                            rng.Uniform(0, 20000))));
    ASSERT_TRUE(t.Insert(std::move(row)).ok());
  }
  Table t2(schema);
  ASSERT_TRUE(LoadCsvInto(&t2, TableToCsv(t)).ok());
  ASSERT_EQ(t2.num_rows(), t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_TRUE(t.rows()[i][c].SameAs(t2.rows()[i][c]))
          << "row " << i << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundtripProperty,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace quarry::storage
