#ifndef QUARRY_STORAGE_VALUE_H_
#define QUARRY_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace quarry::storage {

/// Column data types supported by the embedded engine. The set mirrors what
/// Quarry's Design Deployer emits for PostgreSQL star schemas (Fig. 3 of the
/// paper): BIGINT surrogate keys, DOUBLE PRECISION measures, VARCHAR level
/// attributes, DATE dimension attributes.
enum class DataType {
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,  ///< Stored as days since 1970-01-01 (proleptic Gregorian).
};

const char* DataTypeToString(DataType type);

/// Days since epoch for a calendar date.
int32_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int32_t days, int* year, int* month, int* day);

/// \brief A dynamically typed cell value (SQL semantics: nullable).
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Data(b)); }
  static Value Int(int64_t i) { return Value(Data(i)); }
  static Value Double(double d) { return Value(Data(d)); }
  static Value String(std::string s) { return Value(Data(std::move(s))); }
  /// A date given as days since epoch.
  static Value Date(int32_t days) { return Value(Data(DateRep{days})); }
  static Value DateYmd(int year, int month, int day) {
    return Date(DaysFromCivil(year, month, day));
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_date() const { return std::holds_alternative<DateRep>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(data_))
                    : std::get<double>(data_);
  }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  int32_t as_date_days() const { return std::get<DateRep>(data_).days; }

  /// The value's runtime type; calling on NULL is a logic error guarded by
  /// callers (SQL NULL is typeless).
  Result<DataType> type() const;

  /// SQL-style equality: NULL equals nothing (including NULL). For hashing
  /// and group-by semantics use SameAs, which treats NULLs as identical.
  bool SqlEquals(const Value& other) const;

  /// Structural identity: NULL == NULL, used by group-by keys and indexes.
  bool SameAs(const Value& other) const;

  /// Three-way order: NULLs first, then by numeric/string/date comparison.
  /// Numeric types compare cross-type (1 == 1.0). Returns -1/0/+1.
  int Compare(const Value& other) const;

  /// Stable hash consistent with SameAs.
  size_t Hash() const;

  /// Display form: "NULL", "42", "3.14", "abc", "1995-03-15", "true".
  std::string ToString() const;

  /// Parses `text` as the given type ("" and "NULL" are rejected; callers
  /// decide how to spell NULL, e.g. the CSV reader uses empty fields).
  static Result<Value> Parse(const std::string& text, DataType type);

  /// Coerces this value to `type` (int<->double, string->anything parseable).
  /// NULL coerces to NULL.
  Result<Value> CastTo(DataType type) const;

  bool operator==(const Value& other) const { return SameAs(other); }

 private:
  struct DateRep {
    int32_t days;
    bool operator==(const DateRep&) const = default;
  };
  using Data =
      std::variant<std::monostate, bool, int64_t, double, std::string, DateRep>;

  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

/// A tuple of cell values.
using Row = std::vector<Value>;

/// Hash of a row prefix (for composite keys); consistent with SameAs.
size_t HashRow(const Row& row);

}  // namespace quarry::storage

#endif  // QUARRY_STORAGE_VALUE_H_
