#ifndef QUARRY_DATAGEN_TPCH_H_
#define QUARRY_DATAGEN_TPCH_H_

#include <cstdint>

#include "common/result.h"
#include "storage/database.h"

namespace quarry::datagen {

/// \brief Sizing and determinism knobs for the TPC-H-style generator.
///
/// Cardinalities follow the TPC-H multipliers (supplier 10k·sf,
/// customer 150k·sf, part 200k·sf, orders 1.5M·sf, lineitem 1-7 per order)
/// with small floors so tiny scale factors still produce joinable data.
/// The paper demos Quarry on the TPC-H domain (Fig. 2), so every example,
/// test and benchmark in this repo uses this generator as the source layer.
struct TpchConfig {
  double scale_factor = 0.01;
  uint64_t seed = 42;
};

/// Creates the eight TPC-H tables (region, nation, supplier, customer, part,
/// partsupp, orders, lineitem) in `db` and fills them deterministically.
/// Fails if any of the tables already exist.
Status PopulateTpch(storage::Database* db, const TpchConfig& config);

/// Row count the generator will produce for `table` under `config`
/// ("lineitem" is an expectation; actual count is deterministic per seed).
int64_t ExpectedRows(const std::string& table, const TpchConfig& config);

}  // namespace quarry::datagen

#endif  // QUARRY_DATAGEN_TPCH_H_
