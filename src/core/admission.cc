#include "core/admission.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"

namespace quarry::core {

namespace {

/// Histogram samples below this are fast-path (never-queued) admissions;
/// the expected-wait estimate is the mean of the genuinely-queued tail.
constexpr double kQueuedSampleFloorMicros = 200.0;

/// Retry-after hint when no wait estimate is available yet.
constexpr double kDefaultRetryHintMillis = 10.0;

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  // Lanes label their metric instances; the default (empty) lane keeps the
  // original unlabeled identities, so pre-lane dashboards and tests hold.
  obs::Labels lane;
  obs::Labels shed_full{{"reason", "queue_full"}};
  obs::Labels shed_timeout{{"reason", "queue_timeout"}};
  obs::Labels evict_deadline{{"reason", "deadline_unreachable"}};
  obs::Labels evict_preempt{{"reason", "preempted"}};
  if (!options_.lane.empty()) {
    lane = {{"lane", options_.lane}};
    shed_full.insert(shed_full.begin(), {"lane", options_.lane});
    shed_timeout.insert(shed_timeout.begin(), {"lane", options_.lane});
    evict_deadline.insert(evict_deadline.begin(), {"lane", options_.lane});
    evict_preempt.insert(evict_preempt.begin(), {"lane", options_.lane});
  }
  requests_total_ =
      &reg.counter("quarry_admission_requests_total",
                   "Requests that reached the admission controller", lane);
  admitted_total_ = &reg.counter("quarry_admission_admitted_total",
                                 "Requests granted an in-flight slot", lane);
  const std::string shed_help =
      "Requests shed by admission control, by reason";
  shed_queue_full_ =
      &reg.counter("quarry_admission_shed_total", shed_help, shed_full);
  shed_queue_timeout_ =
      &reg.counter("quarry_admission_shed_total", shed_help, shed_timeout);
  const std::string evicted_help =
      "Requests evicted by deadline-aware or priority-aware admission, "
      "by reason";
  evicted_deadline_ = &reg.counter("quarry_admission_evicted_total",
                                   evicted_help, evict_deadline);
  evicted_preempted_ = &reg.counter("quarry_admission_evicted_total",
                                    evicted_help, evict_preempt);
  cancelled_total_ =
      &reg.counter("quarry_admission_cancelled_total",
                   "Requests cancelled while waiting in the admission queue",
                   lane);
  deadline_total_ = &reg.counter(
      "quarry_admission_deadline_total",
      "Requests whose deadline expired while waiting in the admission queue",
      lane);
  in_flight_gauge_ =
      &reg.gauge("quarry_admission_in_flight",
                 "Requests currently holding an in-flight slot", lane);
  queue_depth_gauge_ = &reg.gauge(
      "quarry_admission_queue_depth",
      "Requests currently parked in the admission wait queue", lane);
  queue_wait_micros_ = &reg.histogram(
      "quarry_admission_queue_wait_micros",
      "Time admitted requests spent queued, in microseconds",
      obs::LatencyBucketsMicros(), lane);
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(waiters_.size());
}

double AdmissionController::EstimatedQueueWaitMicrosLocked() const {
  // Histogram reads are lock-free; "Locked" refers to callers already
  // holding mu_ (public callers go through EstimatedQueueWaitMicros).
  const std::vector<double>& bounds = queue_wait_micros_->bounds();
  int64_t samples = 0;
  double weighted = 0.0;
  double prev = 0.0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (bounds[i] >= kQueuedSampleFloorMicros) {
      int64_t n = queue_wait_micros_->bucket_count(i);
      samples += n;
      weighted += static_cast<double>(n) * 0.5 * (prev + bounds[i]);
    }
    prev = bounds[i];
  }
  int64_t overflow = queue_wait_micros_->bucket_count(bounds.size());
  samples += overflow;
  weighted += static_cast<double>(overflow) *
              (bounds.empty() ? kQueuedSampleFloorMicros : bounds.back() * 2);
  if (samples < options_.eviction_min_samples || samples == 0) return -1.0;
  return weighted / static_cast<double>(samples);
}

double AdmissionController::EstimatedQueueWaitMicros() const {
  return EstimatedQueueWaitMicrosLocked();
}

std::list<AdmissionController::Waiter*>::iterator
AdmissionController::SelectNextLocked(Clock::time_point now) {
  // Weighted-fair score: one priority class equals priority_aging_millis of
  // queue time. Iteration is arrival order and the comparison is strict, so
  // equal scores (same class, same wait) resolve FIFO.
  const double aging = options_.priority_aging_millis;
  auto best = waiters_.end();
  double best_score = std::numeric_limits<double>::infinity();
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    const Waiter& w = **it;
    const double prio = static_cast<double>(w.priority);
    double score;
    if (aging > 0) {
      const double waited_ms =
          std::chrono::duration<double, std::milli>(now - w.enqueued).count();
      score = prio * aging - waited_ms;
    } else {
      score = prio;  // Strict priority; FIFO within a class.
    }
    if (score < best_score) {
      best_score = score;
      best = it;
    }
  }
  return best;
}

void AdmissionController::WakeNextLocked(Clock::time_point now) {
  // Grant-transfer: the releaser moves the slot to the selected waiter
  // under mu_ (no barging window) and notifies exactly that waiter's cv.
  while (in_flight_ < options_.max_in_flight && !waiters_.empty()) {
    auto it = SelectNextLocked(now);
    if (it == waiters_.end()) return;
    Waiter* w = *it;
    waiters_.erase(it);
    queue_depth_gauge_->Set(static_cast<double>(waiters_.size()));
    w->granted = true;
    ++in_flight_;
    in_flight_gauge_->Set(static_cast<double>(in_flight_));
    w->cv.notify_one();
  }
}

void AdmissionController::ReleaseSlot() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  in_flight_gauge_->Set(static_cast<double>(in_flight_));
  WakeNextLocked(Clock::now());
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const ExecContext* ctx, double* queue_wait_micros) {
  requests_total_->Increment();
  Timer queued;
  if (queue_wait_micros != nullptr) *queue_wait_micros = 0.0;
  std::unique_lock<std::mutex> lock(mu_);

  auto admit = [&]() -> Ticket {
    admitted_total_->Increment();
    double waited = queued.ElapsedMicros();
    queue_wait_micros_->Observe(waited);
    if (queue_wait_micros != nullptr) *queue_wait_micros = waited;
    return Ticket(this);
  };

  // Fast path: a free slot and nobody queued ahead. (Waiters only exist
  // while every slot is taken — WakeNextLocked drains them on release — so
  // the two conditions are really one.)
  if (in_flight_ < options_.max_in_flight && waiters_.empty()) {
    ++in_flight_;
    in_flight_gauge_->Set(static_cast<double>(in_flight_));
    return admit();
  }

  // Deadline-aware eviction (docs/ROBUSTNESS.md §11): when the expected
  // queue wait already exceeds the remaining deadline, queueing the request
  // only converts a fast failure into a slow one and keeps the queue
  // metastable. Shed it now with a concrete backoff.
  const bool bounded_deadline =
      ctx != nullptr && !ctx->deadline().unbounded();
  double estimate_micros = -1.0;
  if (options_.deadline_eviction) {
    estimate_micros = EstimatedQueueWaitMicrosLocked();
    if (bounded_deadline && estimate_micros >= 0 &&
        ctx->deadline().remaining_millis() * 1000.0 < estimate_micros) {
      evicted_deadline_->Increment();
      return WithRetryAfterMillis(
          Status::Overloaded(
              "deadline cannot cover expected admission wait (~" +
              std::to_string(static_cast<int64_t>(estimate_micros / 1000.0)) +
              " ms queued ahead)"),
          estimate_micros / 1000.0);
    }
  }

  const Priority priority = RequestPriority(ctx);
  if (static_cast<int>(waiters_.size()) >= options_.max_queue_depth) {
    // Queue full: try to preempt the newest strictly-lower-priority waiter
    // before shedding the arrival.
    Waiter* victim = nullptr;
    auto victim_it = waiters_.end();
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      Waiter* w = *it;
      if (w->priority <= priority) continue;  // Not strictly lower.
      if (victim == nullptr || w->priority > victim->priority ||
          (w->priority == victim->priority && w->seq > victim->seq)) {
        victim = w;
        victim_it = it;
      }
    }
    if (victim == nullptr) {
      shed_queue_full_->Increment();
      Status shed = Status::Overloaded(
          "admission queue full (" + std::to_string(waiters_.size()) +
          " waiting, " + std::to_string(in_flight_) + " in flight)");
      if (estimate_micros < 0) {
        estimate_micros = EstimatedQueueWaitMicrosLocked();
      }
      if (estimate_micros >= 0) {
        shed = WithRetryAfterMillis(std::move(shed), estimate_micros / 1000.0);
      }
      return shed;
    }
    waiters_.erase(victim_it);
    evicted_preempted_->Increment();
    if (estimate_micros < 0) estimate_micros = EstimatedQueueWaitMicrosLocked();
    victim->evicted = true;
    victim->evicted_status = WithRetryAfterMillis(
        Status::Overloaded(
            "preempted from the admission queue by a higher-priority "
            "arrival"),
        estimate_micros >= 0 ? estimate_micros / 1000.0
                             : kDefaultRetryHintMillis);
    victim->cv.notify_one();
    // Fall through: the freed queue slot goes to this (higher-priority)
    // arrival.
  }

  Waiter waiter;
  waiter.seq = next_seq_++;
  waiter.priority = priority;
  waiter.enqueued = Clock::now();
  waiters_.push_back(&waiter);
  queue_depth_gauge_->Set(static_cast<double>(waiters_.size()));

  // Queue timeout: explicit, or derived from the request deadline so a
  // request never burns its whole deadline parked in the queue.
  double timeout_ms = options_.queue_timeout_millis;
  if (timeout_ms < 0 && options_.derive_queue_timeout_from_deadline &&
      bounded_deadline) {
    timeout_ms =
        ctx->deadline().remaining_millis() * options_.deadline_queue_fraction;
  }
  const bool has_timeout = timeout_ms >= 0;
  const Clock::time_point shed_at =
      has_timeout
          ? waiter.enqueued +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(timeout_ms))
          : Clock::time_point::max();

  // Cross-thread cancellation unparks via a token callback — no polling.
  // Registered without mu_ held (the callback takes mu_); the wait loop
  // re-checks ctx before every park, so a cancel racing the registration
  // cannot be lost.
  uint64_t cb_id = 0;
  bool cb_registered = false;
  if (ctx != nullptr) {
    const uint64_t seq = waiter.seq;
    lock.unlock();
    cb_id = ctx->token().AddCancelCallback([this, seq] {
      std::lock_guard<std::mutex> cb_lock(mu_);
      for (Waiter* w : waiters_) {
        if (w->seq == seq) {
          w->cv.notify_one();
          break;
        }
      }
    });
    cb_registered = true;
    lock.lock();
  }

  // Removes this waiter from the queue on a give-up path. The grant and
  // eviction paths have already removed it (under mu_), so those skip this.
  auto remove_self = [&] {
    auto self = std::find(waiters_.begin(), waiters_.end(), &waiter);
    if (self != waiters_.end()) {
      waiters_.erase(self);
      queue_depth_gauge_->Set(static_cast<double>(waiters_.size()));
    }
  };

  Result<Ticket> outcome = Status::Internal("admission wait loop bug");
  while (true) {
    if (waiter.granted) {
      // WakeNextLocked already moved the slot to us.
      outcome = admit();
      break;
    }
    if (waiter.evicted) {
      outcome = waiter.evicted_status;
      break;
    }
    if (ctx != nullptr) {
      if (Status live = ctx->Check("admission queue"); !live.ok()) {
        (live.IsCancelled() ? cancelled_total_ : deadline_total_)->Increment();
        remove_self();
        outcome = live;
        break;
      }
    }
    if (has_timeout && Clock::now() >= shed_at) {
      shed_queue_timeout_->Increment();
      remove_self();
      outcome = WithRetryAfterMillis(
          Status::Overloaded("shed after " + std::to_string(timeout_ms) +
                             " ms in the admission queue"),
          estimate_micros >= 0 ? estimate_micros / 1000.0 : timeout_ms);
      break;
    }
    // Targeted wakeups: a slot grant or eviction notifies this waiter's cv;
    // cancellation notifies via the token callback; the only timers are the
    // queue timeout and the request's own deadline — no polling slices.
    Clock::time_point wake = shed_at;
    if (bounded_deadline) wake = std::min(wake, ctx->deadline().when());
    if (wake == Clock::time_point::max()) {
      waiter.cv.wait(lock);
    } else {
      waiter.cv.wait_until(lock, wake);
    }
  }

  lock.unlock();
  if (cb_registered) {
    // Blocks until any in-flight callback invocation finishes, so the stack
    // waiter node cannot be referenced after this frame unwinds (the
    // callback only resolves the seq against the live waiter list anyway).
    ctx->token().RemoveCancelCallback(cb_id);
  }
  return outcome;
}

}  // namespace quarry::core
