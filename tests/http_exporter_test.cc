// The telemetry HTTP listener (docs/OBSERVABILITY.md §"HTTP endpoints &
// request profiles"): golden /metrics exposition, JSON endpoints parsing
// with the in-tree parser, /healthz flipping with the serving warehouse
// (including under publish faults), robustness against malformed/oversized
// requests, and admission-style shedding when the worker pool saturates.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <future>
#include <regex>
#include <string>
#include <thread>

#include "common/fault_injection.h"
#include "core/http_telemetry.h"
#include "core/quarry.h"
#include "datagen/retail.h"
#include "json/json.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/request_log.h"

namespace quarry::obs {
namespace {

// Minimal raw-socket HTTP client: one request, read to connection close.
// Raw on purpose — it can send garbage a well-formed client never would.
std::string RawRequest(int port, const std::string& wire) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct timeval tv{};
  tv.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path,
                const std::string& method = "GET") {
  return RawRequest(port, method + " " + path +
                              " HTTP/1.1\r\nHost: test\r\n"
                              "Connection: close\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

int CodeOf(const std::string& response) {
  // "HTTP/1.1 200 OK" -> 200.
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0) {
    return -1;
  }
  return std::atoi(response.c_str() + 9);
}

class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Instance().ResetForTest();
    RequestLog::Instance().ResetForTest();
    fault::Injector::Instance().ClearConfigs();
    fault::Injector::Instance().Disable();
  }
  void TearDown() override {
    fault::Injector::Instance().ClearConfigs();
    fault::Injector::Instance().Disable();
  }
};

// /metrics serves well-formed Prometheus text exposition: every line is a
// comment or `name{labels} value`, and the registered families appear.
TEST_F(HttpExporterTest, MetricsEndpointServesGoldenPrometheusText) {
  MetricsRegistry::Instance()
      .counter("http_exporter_test_events_total", "help")
      .Increment(7);

  HttpExporter exporter;
  std::string error;
  ASSERT_TRUE(exporter.Start(&error)) << error;

  const std::string response = Get(exporter.port(), "/metrics");
  EXPECT_EQ(CodeOf(response), 200);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);

  const std::string body = BodyOf(response);
  EXPECT_NE(body.find("http_exporter_test_events_total 7"),
            std::string::npos);
  // Families the exporter registers eagerly are present before any traffic
  // beyond this scrape.
  EXPECT_NE(body.find("quarry_http_requests_total"), std::string::npos);
  EXPECT_NE(body.find("quarry_http_shed_total"), std::string::npos);

  const std::regex sample_line(
      R"(^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9+.eEinf]+$)");
  size_t samples = 0;
  size_t start = 0;
  while (start < body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_TRUE(std::regex_match(line, sample_line)) << "bad line: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);

  exporter.Stop();
  EXPECT_FALSE(exporter.running());
}

// The JSON endpoints all satisfy the in-tree parser, and /requestz carries
// the event log.
TEST_F(HttpExporterTest, JsonEndpointsParse) {
  RequestRecord record;
  record.id = 42;
  record.kind = "query";
  RequestLog::Instance().Record(std::move(record));

  HttpExporter exporter;
  ASSERT_TRUE(exporter.Start());

  for (const char* path : {"/metrics.json", "/requestz"}) {
    const std::string response = Get(exporter.port(), path);
    EXPECT_EQ(CodeOf(response), 200) << path;
    auto parsed = json::Parse(BodyOf(response));
    EXPECT_TRUE(parsed.ok()) << path << ": " << parsed.status().ToString();
  }

  const std::string requestz = BodyOf(Get(exporter.port(), "/requestz"));
  EXPECT_NE(requestz.find("\"request_id\":42"), std::string::npos) << requestz;
}

// HEAD answers like GET minus the body.
TEST_F(HttpExporterTest, HeadOmitsBody) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.Start());
  const std::string response = Get(exporter.port(), "/metrics", "HEAD");
  EXPECT_EQ(CodeOf(response), 200);
  EXPECT_TRUE(BodyOf(response).empty());
}

// Malformed, oversized, unknown and unsupported requests are answered with
// the right status code and never wedge the server.
TEST_F(HttpExporterTest, MalformedAndOversizedRequestsAreShedNotCrashed) {
  HttpExporterOptions options;
  options.max_request_bytes = 512;
  options.read_timeout_millis = 300;
  HttpExporter exporter(options);
  ASSERT_TRUE(exporter.Start());
  const int port = exporter.port();

  EXPECT_EQ(CodeOf(RawRequest(port, "GARBAGE\r\n\r\n")), 400);
  EXPECT_EQ(CodeOf(Get(port, "/metrics", "POST")), 405);
  EXPECT_EQ(CodeOf(Get(port, "/no-such-endpoint")), 404);
  // Head larger than max_request_bytes -> 431.
  EXPECT_EQ(CodeOf(RawRequest(port, "GET /metrics HTTP/1.1\r\nX-Pad: " +
                                        std::string(2048, 'x') + "\r\n\r\n")),
            431);
  // A client that connects and goes silent is timed out with 408.
  EXPECT_EQ(CodeOf(RawRequest(port, "GET /metrics HTTP/1.1\r\n")), 408);

  // After all that abuse the server still serves.
  EXPECT_EQ(CodeOf(Get(port, "/metrics")), 200);
  EXPECT_GE(MetricsRegistry::Instance()
                .counter("quarry_http_responses_total", "", {{"code", "400"}})
                .value(),
            1);

  exporter.Stop();
}

// Admission-style shedding: with one worker wedged and the pending queue
// full, the acceptor answers 503 immediately instead of queuing unboundedly.
TEST_F(HttpExporterTest, ShedsWithImmediate503WhenSaturated) {
  HttpExporterOptions options;
  options.worker_threads = 1;
  options.max_pending_connections = 1;
  HttpExporter exporter(options);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> handler_started{false};
  exporter.AddHandler("/block", [&](const HttpExporter::Request&) {
    handler_started.store(true);
    released.wait();
    HttpExporter::Response response;
    response.body = "unblocked";
    return response;
  });
  ASSERT_TRUE(exporter.Start());
  const int port = exporter.port();

  // A occupies the only worker...
  std::thread blocked([&] {
    const std::string response = Get(port, "/block");
    EXPECT_EQ(CodeOf(response), 200);
    EXPECT_NE(response.find("unblocked"), std::string::npos);
  });
  while (!handler_started.load()) {
    std::this_thread::yield();
  }
  // ...B fills the single pending slot...
  std::thread queued([&] { EXPECT_EQ(CodeOf(Get(port, "/metrics")), 200); });
  // Give the acceptor a moment to move B into the queue.
  for (int i = 0; i < 100; ++i) {
    if (MetricsRegistry::Instance()
            .counter("quarry_http_requests_total", "", {{"path", "/block"}})
            .value() > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...so C is shed at accept time.
  const std::string shed = Get(port, "/metrics");
  EXPECT_EQ(CodeOf(shed), 503);
  EXPECT_GE(MetricsRegistry::Instance()
                .counter("quarry_http_shed_total")
                .value(),
            1);

  release.set_value();
  blocked.join();
  queued.join();
  exporter.Stop();
}

// /healthz mirrors the serving warehouse: 503 before the first publish,
// 200 once DeployServing lands a generation.
TEST_F(HttpExporterTest, HealthzFlipsWhenServingStarts) {
  storage::Database source;
  ASSERT_TRUE(
      datagen::PopulateRetail(&source, datagen::RetailConfig{}).ok());
  auto quarry = core::Quarry::Create(datagen::BuildRetailOntology(),
                                     datagen::BuildRetailMappings(), &source);
  ASSERT_TRUE(quarry.ok()) << quarry.status().ToString();
  ASSERT_TRUE((*quarry)
                  ->SubmitRequirementFromQuery(
                      "ANALYZE turnover ON Sale MEASURE turnover = "
                      "Sale.sl_amount SUM BY Product.pr_category")
                  .ok());

  auto exporter = core::StartTelemetryServer(quarry->get());
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
  const int port = (*exporter)->port();

  std::string response = Get(port, "/healthz");
  EXPECT_EQ(CodeOf(response), 503);
  EXPECT_NE(response.find("\"status\":\"unavailable\""), std::string::npos);
  ASSERT_TRUE(json::Parse(BodyOf(response)).ok());

  auto deployed = (*quarry)->DeployServing();
  ASSERT_TRUE(deployed.ok()) << deployed.status().ToString();
  ASSERT_TRUE(deployed->success);

  response = Get(port, "/healthz");
  EXPECT_EQ(CodeOf(response), 200);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.find("\"serving\":true"), std::string::npos);

  // /statusz is live too and reports the published warehouse.
  response = Get(port, "/statusz");
  EXPECT_EQ(CodeOf(response), 200);
  auto statusz = json::Parse(BodyOf(response));
  ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
  EXPECT_NE(BodyOf(response).find("\"current_generation\":1"),
            std::string::npos);

  (*exporter)->Stop();
}

// A publish fault keeps /healthz at 503 and surfaces the failure count in
// the body — the endpoint tells the truth under faults, not just in the
// happy path.
TEST_F(HttpExporterTest, HealthzStaysUnavailableOnPublishFault) {
  storage::Database source;
  ASSERT_TRUE(
      datagen::PopulateRetail(&source, datagen::RetailConfig{}).ok());
  auto quarry = core::Quarry::Create(datagen::BuildRetailOntology(),
                                     datagen::BuildRetailMappings(), &source);
  ASSERT_TRUE(quarry.ok()) << quarry.status().ToString();
  ASSERT_TRUE((*quarry)
                  ->SubmitRequirementFromQuery(
                      "ANALYZE turnover ON Sale MEASURE turnover = "
                      "Sale.sl_amount SUM BY Product.pr_category")
                  .ok());

  auto exporter = core::StartTelemetryServer(quarry->get());
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
  const int port = (*exporter)->port();

  fault::Injector::Instance().Enable(29);
  fault::Injector::Instance().Configure("storage.generation.publish",
                                        {0.0, /*trigger_on_hit=*/1, 0, -1});
  auto deployed = (*quarry)->DeployServing();
  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Disable();
  // The publish failed — whichever way it surfaced, nothing is serving.
  if (deployed.ok()) {
    EXPECT_FALSE(deployed->success);
  }

  const std::string response = Get(port, "/healthz");
  EXPECT_EQ(CodeOf(response), 503);
  EXPECT_NE(response.find("\"status\":\"unavailable\""), std::string::npos);
  EXPECT_NE(response.find("\"publish_failures\":1"), std::string::npos);

  (*exporter)->Stop();
}

}  // namespace
}  // namespace quarry::obs
