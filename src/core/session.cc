#include "core/session.h"

#include "json/xml_json.h"
#include "ontology/mapping.h"
#include "ontology/ontology.h"
#include "requirements/requirement.h"
#include "xml/xml.h"

namespace quarry::core {

namespace {

/// Unwraps the {"_id","kind","doc"} envelope StoreXml writes.
Result<std::unique_ptr<xml::Element>> UnwrapDoc(const json::Value& wrapper) {
  const json::Value* payload = wrapper.Find("doc");
  if (payload == nullptr) {
    return Status::ParseError("repository document lacks a 'doc' field");
  }
  return json::JsonToXml(*payload);
}

/// First (and only expected) document of a collection, as XML.
Result<std::unique_ptr<xml::Element>> SingleDoc(
    const docstore::DocumentStore& store, const std::string& collection) {
  QUARRY_ASSIGN_OR_RETURN(const docstore::Collection* c,
                          store.Get(collection));
  std::vector<std::string> ids = c->Ids();
  if (ids.empty()) {
    return Status::NotFound("collection '" + collection + "' is empty");
  }
  QUARRY_ASSIGN_OR_RETURN(json::Value doc, c->Get(ids.front()));
  return UnwrapDoc(doc);
}

}  // namespace

Status SaveSession(const Quarry& quarry, const std::string& dir) {
  return quarry.repository().store().SaveToDirectory(dir);
}

Result<std::unique_ptr<Quarry>> LoadSession(const std::string& dir,
                                            const storage::Database* source,
                                            QuarryConfig config,
                                            docstore::RecoveryStats* stats) {
  docstore::RecoveryStats recovery;
  QUARRY_ASSIGN_OR_RETURN(
      docstore::DocumentStore store,
      docstore::DocumentStore::LoadFromDirectory(dir, &recovery));
  QUARRY_ASSIGN_OR_RETURN(auto onto_doc, SingleDoc(store, "ontologies"));
  QUARRY_ASSIGN_OR_RETURN(ontology::Ontology onto,
                          ontology::Ontology::FromXml(*onto_doc));
  QUARRY_ASSIGN_OR_RETURN(auto mapping_doc, SingleDoc(store, "mappings"));
  QUARRY_ASSIGN_OR_RETURN(ontology::SourceMapping mapping,
                          ontology::SourceMapping::FromXml(*mapping_doc));
  QUARRY_ASSIGN_OR_RETURN(
      auto quarry,
      Quarry::Create(std::move(onto), std::move(mapping), source,
                     std::move(config)));

  // Replay the requirement stream in its stored (insertion) order.
  auto xrq_collection = store.Get("xrq");
  if (xrq_collection.ok()) {
    for (const std::string& id : (*xrq_collection)->Ids()) {
      QUARRY_ASSIGN_OR_RETURN(json::Value wrapper,
                              (*xrq_collection)->Get(id));
      QUARRY_ASSIGN_OR_RETURN(auto xrq, UnwrapDoc(wrapper));
      QUARRY_ASSIGN_OR_RETURN(req::InformationRequirement ir,
                              req::FromXrq(*xrq));
      QUARRY_RETURN_NOT_OK(quarry->AddRequirement(ir).status().WithContext(
          "replaying requirement '" + ir.id + "'"));
    }
  }

  // Verify the rebuilt unified design matches the stored snapshot.
  auto stored_xmd = store.Get("unified_xmd");
  if (stored_xmd.ok() && (*stored_xmd)->size() > 0) {
    QUARRY_ASSIGN_OR_RETURN(json::Value wrapper,
                            (*stored_xmd)->Get("unified"));
    QUARRY_ASSIGN_OR_RETURN(auto saved, UnwrapDoc(wrapper));
    auto rebuilt = quarry->schema().ToXml();
    if (!xml::DeepEqual(*saved, *rebuilt)) {
      return Status::ValidationError(
          "rebuilt unified design differs from the stored snapshot in '" +
          dir + "' (source data or code version changed?)");
    }
  }
  quarry->set_recovery_stats(recovery);
  if (stats != nullptr) *stats = std::move(recovery);
  return quarry;
}

Result<std::unique_ptr<Quarry>> OpenDurableSession(
    const std::string& dir, const storage::Database* source,
    QuarryConfig config, docstore::RecoveryStats* stats) {
  QUARRY_ASSIGN_OR_RETURN(auto quarry,
                          LoadSession(dir, source, std::move(config), stats));
  QUARRY_RETURN_NOT_OK(quarry->EnableDurability(dir));
  return quarry;
}

Result<std::unique_ptr<Quarry>> OpenDurableServingSession(
    const std::string& dir, const storage::Database* source,
    QuarryConfig config, RecoveryReport* report) {
  QUARRY_ASSIGN_OR_RETURN(
      auto quarry, OpenDurableSession(dir, source, std::move(config)));
  QUARRY_RETURN_NOT_OK(quarry->EnableServingDurability(
      dir + "/" + kWarehouseSubdir));
  if (report != nullptr) *report = quarry->recovery_report();
  return quarry;
}

}  // namespace quarry::core
