#include "integrator/design_integrator.h"

#include "common/timer.h"
#include "integrator/satisfiability.h"
#include "mdschema/validator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace quarry::integrator {

namespace {

/// Publishes the paper's quality factors for the latest integration round
/// as gauges, plus the running size of the unified design — the numbers a
/// dashboard wants after every AddRequirement (docs/OBSERVABILITY.md).
void PublishRoundGauges(const IntegrationOutcome& outcome,
                        const md::MdSchema& schema, const etl::Flow& flow,
                        size_t requirements) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  reg.gauge("quarry_integrator_md_complexity",
            "Structural complexity of the unified MD schema after the "
            "latest integration round")
      .Set(outcome.md.complexity_after);
  reg.gauge("quarry_integrator_md_complexity_naive_union",
            "Structural complexity a side-by-side union would have had")
      .Set(outcome.md.complexity_naive_union);
  reg.gauge("quarry_integrator_etl_cost_unified",
            "Cost-model estimate of the unified ETL flow")
      .Set(outcome.etl.cost_unified);
  reg.gauge("quarry_integrator_etl_cost_separate",
            "Cost-model estimate of executing the flows separately")
      .Set(outcome.etl.cost_separate);
  reg.gauge("quarry_integrator_etl_nodes_reused",
            "Partial-flow nodes mapped onto existing nodes in the latest "
            "round")
      .Set(outcome.etl.nodes_reused);
  reg.gauge("quarry_integrator_etl_nodes_added",
            "Partial-flow nodes added to the unified flow in the latest "
            "round")
      .Set(outcome.etl.nodes_added);
  reg.gauge("quarry_design_requirements",
            "Requirements currently integrated into the unified design")
      .Set(static_cast<double>(requirements));
  reg.gauge("quarry_design_flow_nodes", "Nodes in the unified ETL flow")
      .Set(static_cast<double>(flow.num_nodes()));
  reg.gauge("quarry_design_facts", "Facts in the unified MD schema")
      .Set(static_cast<double>(schema.facts().size()));
  reg.gauge("quarry_design_dimensions",
            "Dimensions in the unified MD schema")
      .Set(static_cast<double>(schema.dimensions().size()));
}

}  // namespace

Result<IntegrationOutcome> DesignIntegrator::AddRequirement(
    const req::InformationRequirement& ir,
    const interpreter::PartialDesign& partial, const ExecContext* ctx) {
  if (requirements_.count(ir.id) > 0) {
    return Status::AlreadyExists("requirement '" + ir.id +
                                 "' is already integrated");
  }
  QUARRY_RETURN_NOT_OK(
      CheckContext(ctx, "MD integration of '" + ir.id + "'"));
  QUARRY_NAMED_SPAN(span, "integrator.add_requirement");
  QUARRY_SPAN_ATTR(span, "ir_id", ir.id);
  Timer round_timer;
  obs::MetricsRegistry::Instance()
      .counter("quarry_integrator_rounds_total",
               "Integration rounds attempted (add or change)")
      .Increment();
  md::MdSchema schema_backup = schema_;
  etl::Flow flow_backup = flow_.Clone();

  IntegrationOutcome outcome;
  auto md_report = [&] {
    QUARRY_SPAN("integrator.md_integrate");
    return md_integrator_.Integrate(&schema_, partial.schema);
  }();
  if (!md_report.ok()) {
    schema_ = std::move(schema_backup);
    return md_report.status().WithContext("MD integration of '" + ir.id +
                                          "'");
  }
  outcome.md = std::move(*md_report);
  // When stage 1 merged a partial fact into an existing same-grain fact,
  // the partial flow must load the merged fact's table (its new measure
  // columns fill in via the loader's merge semantics).
  etl::Flow flow_to_integrate = partial.flow.Clone();
  std::vector<std::string> loader_ids;
  for (const auto& [id, node] : flow_to_integrate.nodes()) {
    if (node.type == etl::OpType::kLoader) loader_ids.push_back(id);
  }
  for (const std::string& id : loader_ids) {
    etl::Node* node = *flow_to_integrate.GetMutableNode(id);
    auto table_it = node->params.find("table");
    if (table_it == node->params.end()) continue;
    auto mapped = outcome.md.fact_mapping.find(table_it->second);
    if (mapped != outcome.md.fact_mapping.end() &&
        mapped->second != table_it->second) {
      table_it->second = mapped->second;
    }
  }
  if (Status live = CheckContext(ctx, "ETL integration of '" + ir.id + "'");
      !live.ok()) {
    schema_ = std::move(schema_backup);
    return live;
  }
  auto etl_report = [&] {
    QUARRY_SPAN("integrator.etl_integrate");
    return etl_integrator_.Integrate(&flow_, flow_to_integrate);
  }();
  if (!etl_report.ok()) {
    schema_ = std::move(schema_backup);
    flow_ = std::move(flow_backup);
    return etl_report.status().WithContext("ETL integration of '" + ir.id +
                                           "'");
  }
  outcome.etl = std::move(*etl_report);

  if (Status live =
          CheckContext(ctx, "post-integration verification of '" + ir.id +
                                "'");
      !live.ok()) {
    schema_ = std::move(schema_backup);
    flow_ = std::move(flow_backup);
    return live;
  }
  requirements_.emplace(ir.id, ir);
  Status verified = [&] {
    QUARRY_SPAN("integrator.verify_all");
    return VerifyAll();
  }();
  if (!verified.ok()) {
    requirements_.erase(ir.id);
    schema_ = std::move(schema_backup);
    flow_ = std::move(flow_backup);
    return verified.WithContext("post-integration verification of '" + ir.id +
                                "'");
  }
  obs::MetricsRegistry::Instance()
      .histogram("quarry_integrator_round_micros",
                 "Wall time of a successful integration round in "
                 "microseconds")
      .Observe(round_timer.ElapsedMicros());
  PublishRoundGauges(outcome, schema_, flow_, requirements_.size());
  QUARRY_SPAN_ATTR(span, "complexity_after", outcome.md.complexity_after);
  QUARRY_SPAN_ATTR(span, "nodes_reused",
                   static_cast<int64_t>(outcome.etl.nodes_reused));
  return outcome;
}

Status DesignIntegrator::RemoveRequirement(const std::string& ir_id) {
  auto it = requirements_.find(ir_id);
  if (it == requirements_.end()) {
    return Status::NotFound("requirement '" + ir_id + "'");
  }
  md::MdSchema schema_backup = schema_;
  etl::Flow flow_backup = flow_.Clone();
  req::InformationRequirement ir_backup = it->second;

  schema_.PruneRequirement(ir_id);
  flow_.PruneRequirement(ir_id);
  requirements_.erase(it);

  Status verified = VerifyAll();
  if (!verified.ok()) {
    schema_ = std::move(schema_backup);
    flow_ = std::move(flow_backup);
    requirements_.emplace(ir_backup.id, std::move(ir_backup));
    return verified.WithContext("removal of '" + ir_id + "'");
  }
  return Status::OK();
}

Result<IntegrationOutcome> DesignIntegrator::ChangeRequirement(
    const req::InformationRequirement& ir,
    const interpreter::PartialDesign& partial, const ExecContext* ctx) {
  // Check before the removal: a cancelled change must not get as far as
  // removing the old version of the requirement.
  QUARRY_RETURN_NOT_OK(
      CheckContext(ctx, "change of requirement '" + ir.id + "'"));
  QUARRY_RETURN_NOT_OK(RemoveRequirement(ir.id));
  return AddRequirement(ir, partial, ctx);
}

Status DesignIntegrator::VerifyAll() const {
  if (!schema_.facts().empty() || !schema_.dimensions().empty()) {
    QUARRY_RETURN_NOT_OK(md::CheckSound(schema_, onto_));
  }
  if (flow_.num_nodes() > 0) {
    QUARRY_RETURN_NOT_OK(flow_.Validate());
  }
  for (const auto& [id, ir] : requirements_) {
    QUARRY_RETURN_NOT_OK(CheckSatisfies(schema_, flow_, ir));
  }
  return Status::OK();
}

}  // namespace quarry::integrator
