#ifndef QUARRY_COMMON_WAL_H_
#define QUARRY_COMMON_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace quarry::wal {

/// CRC-32 (reflected, polynomial 0xEDB88320 — the zlib/IEEE 802.3 CRC).
/// Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t size);

/// \brief Write-ahead log file format (docs/ROBUSTNESS.md §6).
///
/// A log is an 8-byte header ("QWAL" magic + format version) followed by
/// length-prefixed, CRC-framed records:
///
///   [u32 payload_len | u32 crc32(payload) | payload bytes]   (little-endian)
///
/// Appends go to the file in frame order; Sync() is the explicit durability
/// point (fsync). A crash mid-append leaves a torn final frame that readers
/// detect via the length prefix / CRC and discard — earlier frames stay
/// intact because frames are only ever appended.
constexpr char kWalMagic[4] = {'Q', 'W', 'A', 'L'};
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderSize = 8;
constexpr size_t kWalFrameOverhead = 8;  ///< length + crc prefix per record.

/// Result of scanning a log file.
struct ReadResult {
  std::vector<std::string> records;   ///< Intact payloads, in append order.
  uint64_t valid_bytes = 0;           ///< Header + intact frames.
  uint64_t tail_bytes_discarded = 0;  ///< Torn / CRC-failing tail bytes.
  bool torn_tail = false;             ///< A torn tail was found and dropped.
};

/// \brief Appends CRC-framed records to a log file.
///
/// Open() creates (or truncates) the file and makes the header durable, so
/// a log referenced by a just-committed snapshot manifest is guaranteed
/// readable. The writer owns the file descriptor; it is move-only.
class Writer {
 public:
  /// Creates (or truncates) `path` and writes + fsyncs the header.
  static Result<std::unique_ptr<Writer>> Open(const std::string& path);

  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Appends one framed record. Does NOT sync — call Sync() to make it
  /// durable. Fault sites: "wal.append" fails before any byte is written
  /// (a clean crash); "wal.append.torn" writes a partial frame and then
  /// fails (a genuine torn write for recovery to discard).
  ///
  /// Fail-stop: after a partial write (real or injected) or a failed fsync
  /// the on-disk tail is in an unknown state, so appending more records
  /// behind it could make acknowledged data unreadable. The writer
  /// therefore poisons itself and rejects every further Append/Sync; the
  /// next successful checkpoint rotates in a fresh log and heals it.
  Status Append(std::string_view payload);

  /// fsyncs everything appended so far (fault site "wal.sync" fires before
  /// the fsync — the crash-before-fsync case: the bytes may or may not
  /// survive, and callers must treat the record as unacknowledged).
  Status Sync();

  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return bytes_written_; }
  int64_t records_appended() const { return records_appended_; }
  bool failed() const { return failed_; }

 private:
  Writer(std::string path, int fd)
      : path_(std::move(path)), fd_(fd), bytes_written_(kWalHeaderSize) {}

  std::string path_;
  int fd_;
  uint64_t bytes_written_;
  int64_t records_appended_ = 0;
  bool failed_ = false;  ///< Tail state unknown; see Append's fail-stop note.
};

/// Scans a log file, returning every intact record and discarding a torn
/// or CRC-failing tail (the normal artifact of a crash mid-append). A
/// missing file is NotFound; a file whose header is complete but wrong
/// (bad magic / unknown version) is a ParseError — that is corruption, not
/// a crash artifact. A file shorter than the header reads as an empty log
/// with a torn tail.
Result<ReadResult> ReadLog(const std::string& path);

/// Writes `data` to `path` atomically: `<path>.tmp` + fsync + rename +
/// parent-directory fsync. Readers see either the old file or the complete
/// new one, never a prefix. Fault sites: "wal.file.write" (crash before
/// writing), "wal.file.write.torn" (partial tmp write — harmless, the tmp
/// is never visible under the target name), "wal.file.sync",
/// "wal.file.rename".
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// fsyncs a directory so a rename/creation inside it is durable. Best
/// effort on filesystems that reject directory fsync.
Status SyncDirectory(const std::string& dir);

}  // namespace quarry::wal

#endif  // QUARRY_COMMON_WAL_H_
