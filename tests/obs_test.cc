// Tests for the observability layer (docs/OBSERVABILITY.md): span nesting
// across threads, histogram bucket boundaries, Chrome-trace JSON round-trip
// through the in-repo JSON parser, Prometheus exposition format, and an
// end-to-end pipeline run asserting spans + metrics show up.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/quarry.h"
#include "datagen/retail.h"
#include "json/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace quarry::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Instance().Stop();
    MetricsRegistry::Instance().ResetForTest();
  }
  void TearDown() override { TraceRecorder::Instance().Stop(); }
};

[[maybe_unused]] const SpanRecord* FindSpan(
    const std::vector<SpanRecord>& spans, const std::string& name) {
  auto it = std::find_if(spans.begin(), spans.end(), [&](const SpanRecord& s) {
    return s.name == name;
  });
  return it == spans.end() ? nullptr : &*it;
}

// ---- spans ----------------------------------------------------------------
// Compiled out under -DQUARRY_DISABLE_TRACING: every QUARRY_SPAN is a no-op
// there, so nothing these tests assert can be recorded. The metrics tests
// below run in both configurations.
#ifndef QUARRY_DISABLE_TRACING

TEST_F(ObsTest, SpansRecordNestingAndAttributes) {
  TraceRecorder::Instance().Start();
  {
    QUARRY_NAMED_SPAN(outer, "outer");
    QUARRY_SPAN_ATTR(outer, "ir_id", "ir_revenue");
    {
      QUARRY_NAMED_SPAN(inner, "inner");
      QUARRY_SPAN_ATTR(inner, "rows_out", int64_t{42});
    }
  }
  TraceRecorder::Instance().Stop();

  std::vector<SpanRecord> spans = TraceRecorder::Instance().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Spans complete innermost-first.
  const SpanRecord* inner = FindSpan(spans, "inner");
  const SpanRecord* outer = FindSpan(spans, "outer");
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us,
            outer->start_us + outer->dur_us + 1e-3);
  ASSERT_EQ(outer->attrs.size(), 1u);
  EXPECT_EQ(outer->attrs[0].key, "ir_id");
  EXPECT_EQ(outer->attrs[0].value, "ir_revenue");
  ASSERT_EQ(inner->attrs.size(), 1u);
  EXPECT_EQ(inner->attrs[0].value, "42");
}

TEST_F(ObsTest, SpanDepthIsPerThread) {
  TraceRecorder::Instance().Start();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      QUARRY_SPAN("thread.outer");
      QUARRY_SPAN("thread.inner");
    });
  }
  for (std::thread& t : threads) t.join();
  TraceRecorder::Instance().Stop();

  std::vector<SpanRecord> spans = TraceRecorder::Instance().Snapshot();
  ASSERT_EQ(spans.size(), 2u * kThreads);
  std::set<uint32_t> tids;
  for (const SpanRecord& span : spans) {
    tids.insert(span.tid);
    // Each thread nests independently: outer at depth 0, inner at 1,
    // regardless of interleaving.
    EXPECT_EQ(span.depth, span.name == "thread.outer" ? 0u : 1u);
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST_F(ObsTest, FullBufferDropsNewestAndCounts) {
  // The buffer only ever grows (Start() leaks smaller arrays rather than
  // shrink under live writers), so fill the default capacity instead of
  // asking for a tiny one.
  constexpr size_t kCapacity = TraceRecorder::kDefaultCapacity;
  TraceRecorder::Instance().Start(kCapacity);
  for (size_t i = 0; i < kCapacity + 10; ++i) {
    QUARRY_SPAN("spill");
  }
  TraceRecorder::Instance().Stop();
  EXPECT_EQ(TraceRecorder::Instance().size(), kCapacity);
  EXPECT_EQ(TraceRecorder::Instance().dropped(), 10);
  // The drop is also a metric (the one place obs self-reports).
  EXPECT_EQ(MetricsRegistry::Instance()
                .counter("quarry_trace_spans_dropped_total")
                .value(),
            10);
}

TEST_F(ObsTest, DisabledRecorderCostsNothingAndRecordsNothing) {
  // Start + Stop leaves an empty, disabled buffer.
  TraceRecorder::Instance().Start();
  TraceRecorder::Instance().Stop();
  {
    QUARRY_NAMED_SPAN(span, "ignored");
    QUARRY_SPAN_ATTR(span, "key", "value");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(TraceRecorder::Instance().size(), 0u);
}

TEST_F(ObsTest, ChromeTraceJsonRoundTripsThroughParser) {
  TraceRecorder::Instance().Start();
  {
    QUARRY_NAMED_SPAN(span, "stage \"one\"\n");  // exercises escaping
    QUARRY_SPAN_ATTR(span, "rows_out", int64_t{7});
  }
  TraceRecorder::Instance().Stop();

  auto parsed = json::Parse(TraceRecorder::Instance().ChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->is_object());
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 1u);
  const json::Value& event = events->as_array()[0];
  EXPECT_EQ(event.GetString("name"), "stage \"one\"\n");
  EXPECT_EQ(event.GetString("ph"), "X");
  const json::Value* ts = event.Find("ts");
  ASSERT_NE(ts, nullptr);
  EXPECT_TRUE(ts->is_number());
  const json::Value* args = event.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->GetString("rows_out"), "7");
}

#endif  // QUARRY_DISABLE_TRACING

// ---- metrics --------------------------------------------------------------

TEST_F(ObsTest, CounterAndGaugeBasics) {
  Counter& counter =
      MetricsRegistry::Instance().counter("obs_test_events_total", "help");
  counter.Increment();
  counter.Increment(4);
  EXPECT_EQ(counter.value(), 5);
  // Same (family, labels) yields the same instance.
  EXPECT_EQ(&MetricsRegistry::Instance().counter("obs_test_events_total"),
            &counter);

  Gauge& gauge = MetricsRegistry::Instance().gauge("obs_test_gauge");
  gauge.Set(2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST_F(ObsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Histogram& histogram = MetricsRegistry::Instance().histogram(
      "obs_test_latency", "help", {1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // -> le=1
  histogram.Observe(1.0);    // boundary: inclusive -> le=1
  histogram.Observe(1.001);  // -> le=10
  histogram.Observe(10.0);   // boundary -> le=10
  histogram.Observe(99.9);   // -> le=100
  histogram.Observe(250.0);  // -> +Inf
  EXPECT_EQ(histogram.count(), 6);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 1.001 + 10.0 + 99.9 + 250.0);
  EXPECT_EQ(histogram.bucket_count(0), 2);  // le=1
  EXPECT_EQ(histogram.bucket_count(1), 2);  // le=10
  EXPECT_EQ(histogram.bucket_count(2), 1);  // le=100
  EXPECT_EQ(histogram.bucket_count(3), 1);  // +Inf
}

TEST_F(ObsTest, ExponentialBucketsShape) {
  std::vector<double> bounds = ExponentialBuckets(1.0, 4.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 4.0);
  EXPECT_DOUBLE_EQ(bounds[2], 16.0);
  EXPECT_DOUBLE_EQ(bounds[3], 64.0);
}

TEST_F(ObsTest, PrometheusTextFormat) {
  MetricsRegistry::Instance()
      .counter("obs_fmt_total", "Things counted", {{"kind", "a\"b"}})
      .Increment(3);
  MetricsRegistry::Instance().gauge("obs_fmt_gauge", "A level").Set(1.25);
  MetricsRegistry::Instance()
      .histogram("obs_fmt_micros", "A latency", {1.0, 10.0})
      .Observe(5.0);
  std::string text = MetricsRegistry::Instance().PrometheusText();

  EXPECT_NE(text.find("# HELP obs_fmt_total Things counted"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_fmt_total counter"), std::string::npos);
  // Label values escape quotes.
  EXPECT_NE(text.find("obs_fmt_total{kind=\"a\\\"b\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_fmt_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_fmt_gauge 1.25"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_fmt_micros histogram"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("obs_fmt_micros_bucket{le=\"1\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("obs_fmt_micros_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_fmt_micros_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_fmt_micros_sum 5"), std::string::npos);
  EXPECT_NE(text.find("obs_fmt_micros_count 1"), std::string::npos);
}

TEST_F(ObsTest, JsonSnapshotParses) {
  MetricsRegistry::Instance().counter("obs_snap_total").Increment();
  MetricsRegistry::Instance()
      .histogram("obs_snap_micros", "", {1.0})
      .Observe(0.5);
  auto parsed = json::Parse(MetricsRegistry::Instance().JsonSnapshot());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const json::Value* counter = parsed->Find("obs_snap_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->as_int(), 1);
  const json::Value* histogram = parsed->Find("obs_snap_micros");
  ASSERT_NE(histogram, nullptr);
  ASSERT_TRUE(histogram->is_object());
  EXPECT_EQ(histogram->Find("count")->as_int(), 1);
}

TEST_F(ObsTest, ResetForTestZeroesButKeepsInstances) {
  Counter& counter = MetricsRegistry::Instance().counter("obs_reset_total");
  counter.Increment(9);
  MetricsRegistry::Instance().ResetForTest();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(&MetricsRegistry::Instance().counter("obs_reset_total"),
            &counter);
}

// ---- end-to-end -----------------------------------------------------------

TEST_F(ObsTest, FullPipelineEmitsSpansAndMetrics) {
  storage::Database source;
  datagen::RetailConfig config;
  config.scale_factor = 0.002;  // keep the test fast
  ASSERT_TRUE(datagen::PopulateRetail(&source, config).ok());
  auto quarry = core::Quarry::Create(datagen::BuildRetailOntology(),
                                     datagen::BuildRetailMappings(), &source);
  ASSERT_TRUE(quarry.ok()) << quarry.status();

  core::Quarry::Telemetry().StartTracing();
  auto outcome = (*quarry)->AddRequirementFromQuery(
      "ANALYZE turnover ON Sale "
      "MEASURE turnover = Sale.sl_amount SUM BY Product.pr_category");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  storage::Database warehouse;
  auto report = (*quarry)->DeployResilient(&warehouse);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->success);
  core::Quarry::Telemetry().StopTracing();

#ifndef QUARRY_DISABLE_TRACING
  std::vector<SpanRecord> spans = TraceRecorder::Instance().Snapshot();
  for (const char* name :
       {"quarry.add_requirement", "interpreter.interpret",
        "integrator.add_requirement", "integrator.md_integrate",
        "integrator.etl_integrate", "deploy", "deploy.generate",
        "deploy.ddl", "deploy.etl", "deploy.integrity", "etl.run",
        "etl.node.Loader"}) {
    EXPECT_NE(FindSpan(spans, name), nullptr) << "missing span " << name;
  }
  // The pipeline spans nest: etl.node.* under etl.run under deploy.
  const SpanRecord* run = FindSpan(spans, "etl.run");
  const SpanRecord* loader = FindSpan(spans, "etl.node.Loader");
  ASSERT_NE(run, nullptr);
  ASSERT_NE(loader, nullptr);
  EXPECT_GT(loader->depth, run->depth);
#endif  // QUARRY_DISABLE_TRACING

  // Metrics stay live even when tracing is compiled out.
  MetricsRegistry& reg = MetricsRegistry::Instance();
  EXPECT_GE(reg.counter("quarry_interpreter_requirements_total").value(), 1);
  EXPECT_GE(reg.counter("quarry_etl_runs_total").value(), 1);
  EXPECT_GT(reg.counter("quarry_etl_rows_out_total").value(), 0);
  EXPECT_GT(reg.gauge("quarry_design_requirements").value(), 0);
  EXPECT_GE(
      reg.counter("quarry_etl_nodes_executed_total", "", {{"op", "Loader"}})
          .value(),
      1);
  EXPECT_EQ(reg.counter("quarry_deploy_success_total").value(), 1);
  // Every registered family is inventoried in docs/OBSERVABILITY.md
  // (tools/check_metrics_doc.sh enforces the same invariant in CI).
  EXPECT_FALSE(reg.FamilyNames().empty());
}

}  // namespace
}  // namespace quarry::obs
